// Fig. 6: the three delay-cost profile functions — f1 (eTrain Mail), f2
// (Luna Weibo), f3 (eTrain Cloud) — tabulated against delay, normalized to
// the deadline.
#include <cstdio>

#include "common/table.h"
#include "core/cost_profile.h"
#include "obs/bench_options.h"
#include "obs/report.h"

int main(int argc, char** argv) {
  using namespace etrain;
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Fig. 6 — delay cost profile functions ===\n");
  const double deadline = 60.0;
  Table table({"delay/deadline", "f1 (Mail)", "f2 (Weibo)", "f3 (Cloud)"});
  for (double r = 0.0; r <= 3.0 + 1e-9; r += 0.25) {
    const double d = r * deadline;
    table.add_row({Table::num(r, 2),
                   Table::num(core::mail_cost_profile().cost(d, deadline), 3),
                   Table::num(core::weibo_cost_profile().cost(d, deadline), 3),
                   Table::num(core::cloud_cost_profile().cost(d, deadline), 3)});
  }
  table.print();
  std::printf(
      "paper: f1 = 0 until the deadline then d/deadline - 1; f2 = d/deadline "
      "capped at 2; f3 = d/deadline then 3*(d/deadline) - 2.\n");
  if (opts.reporting()) {
    obs::RunReport report;
    report.bench = "fig06_cost_profiles";
    report.add_provenance("deadline_s", "60");
    for (const double r : {1.0, 2.0, 3.0}) {
      const double d = r * deadline;
      const std::string suffix = "_at_" + Table::num(r, 0) + "x";
      report.add_result("f1_mail" + suffix,
                        core::mail_cost_profile().cost(d, deadline));
      report.add_result("f2_weibo" + suffix,
                        core::weibo_cost_profile().cost(d, deadline));
      report.add_result("f3_cloud" + suffix,
                        core::cloud_cost_profile().cost(d, deadline));
    }
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
