// Fig. 6: the three delay-cost profile functions — f1 (eTrain Mail), f2
// (Luna Weibo), f3 (eTrain Cloud) — tabulated against delay, normalized to
// the deadline.
#include <cstdio>

#include "common/table.h"
#include "core/cost_profile.h"

int main() {
  using namespace etrain;
  std::printf(
      "=== eTrain reproduction: Fig. 6 — delay cost profile functions ===\n");
  const double deadline = 60.0;
  Table table({"delay/deadline", "f1 (Mail)", "f2 (Weibo)", "f3 (Cloud)"});
  for (double r = 0.0; r <= 3.0 + 1e-9; r += 0.25) {
    const double d = r * deadline;
    table.add_row({Table::num(r, 2),
                   Table::num(core::mail_cost_profile().cost(d, deadline), 3),
                   Table::num(core::weibo_cost_profile().cost(d, deadline), 3),
                   Table::num(core::cloud_cost_profile().cost(d, deadline), 3)});
  }
  table.print();
  std::printf(
      "paper: f1 = 0 until the deadline then d/deadline - 1; f2 = d/deadline "
      "capped at 2; f3 = d/deadline then 3*(d/deadline) - 2.\n");
  return 0;
}
