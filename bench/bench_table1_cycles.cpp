// Table 1: heartbeat cycles of popular apps per device, recovered with the
// paper's own methodology — capture traffic (Wireshark-style), analyze the
// capture offline, and read the cycle off the inter-heartbeat gaps.
// Android devices show per-app cycles; iPhones show one unified 1800 s
// cycle because Apple forces every app through APNS.
#include <cstdio>

#include "android/pcap.h"
#include "common/table.h"
#include "obs/bench_options.h"
#include "obs/report.h"

namespace {

using namespace etrain;

std::string describe(const android::CycleEstimate& e) {
  if (e.heartbeats < 2) return "n/a";
  if (e.fixed_cycle) return Table::num(e.median_cycle, 0) + "s";
  return Table::num(e.min_cycle, 0) + "-" + Table::num(e.max_cycle, 0) + "s";
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Table 1 — heartbeat cycles from captures "
      "===\n");
  const Duration horizon = hours(4.0);
  const android::PcapAnalyzer analyzer;

  // Android devices: each app keeps its own TCP connection and cycle. The
  // three handsets in the paper observe identical cycles; we model the
  // device only through the capture seed.
  const char* devices[] = {"HTC Sensation Z710e", "Samsung Note II",
                           "Samsung GALAXY S IV"};
  Table table({"device", "WeChat", "WhatsApp", "QQ", "RenRen", "NetEase"});
  std::uint64_t seed = 1;
  for (const char* device : devices) {
    std::vector<std::string> row{device};
    for (const auto& spec : apps::android_catalog()) {
      Rng rng(seed++);
      const auto capture = android::synthesize_capture(
          spec, horizon, rng, /*with_data_traffic=*/true);
      row.push_back(describe(analyzer.analyze_flow(spec.app_name, capture)));
    }
    table.add_row(row);
  }
  // iOS: every app's notifications ride the single APNS connection.
  {
    std::vector<std::string> row{"iPhone 4 / iPhone 5 (APNS)"};
    Rng rng(seed++);
    const auto capture = android::synthesize_capture(
        apps::apns_spec(), horizon, rng, /*with_data_traffic=*/false);
    const auto estimate =
        analyzer.analyze_flow(apps::apns_spec().app_name, capture);
    for (int i = 0; i < 5; ++i) row.push_back(describe(estimate));
    table.add_row(row);
  }
  table.print();
  std::printf(
      "paper: WeChat 270s, WhatsApp 240s, QQ 300s, RenRen 300s, NetEase "
      "60-480s on Android; 1800s for everything on iOS.\n");

  // Extension: literature-reported cycles of other always-online apps,
  // recovered through the same capture pipeline.
  print_banner("extended catalog (beyond the paper's Table 1)");
  Table extended({"app", "recovered cycle", "heartbeats in 4 h"});
  for (const auto& spec :
       {apps::skype_spec(), apps::facebook_spec(), apps::line_spec(),
        apps::push_email_spec()}) {
    Rng rng(seed++);
    const auto capture =
        android::synthesize_capture(spec, horizon, rng, true);
    const auto e = analyzer.analyze_flow(spec.app_name, capture);
    extended.add_row({spec.app_name, describe(e),
                      Table::integer(static_cast<long long>(e.heartbeats))});
  }
  extended.print();

  if (opts.reporting()) {
    // Re-run the first Android device's captures with their original seeds
    // so the reported cycles match the printed table's first row.
    obs::RunReport report;
    report.bench = "table1_cycles";
    report.add_provenance("capture_horizon_s", "14400");
    report.add_provenance("device", devices[0]);
    std::uint64_t report_seed = 1;
    for (const auto& spec : apps::android_catalog()) {
      Rng rng(report_seed++);
      const auto capture = android::synthesize_capture(
          spec, horizon, rng, /*with_data_traffic=*/true);
      const auto e = analyzer.analyze_flow(spec.app_name, capture);
      report.add_result(std::string(spec.app_name) + "_median_cycle_s",
                        e.median_cycle);
    }
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
