// One-screen digest: the paper's headline claims next to this
// reproduction's measurements, on the standard 2-hour scenario. Every
// number here is produced live; the per-figure benches hold the full
// tables.
//
// Honors the shared bench flags: --quick shortens the scenario to 30
// minutes, --trace/--timeline export the representative eTrain run, and
// --report emits the digest (one result per policy) as a RunReport.
#include <cstdio>

#include "baselines/baseline_policy.h"
#include "baselines/etime_policy.h"
#include "baselines/oracle_policy.h"
#include "baselines/peres_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/sweeps.h"
#include "radio/battery.h"
#include "traced_run.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf("=== eTrain reproduction: headline digest ===\n\n");

  // 1. The motivating measurement.
  const auto device = radio::PowerModel::PaperUmts3G();
  std::printf(
      "one heartbeat tail: %s (paper: ~10.91 J); %zu heartbeats per 2 h "
      "from QQ+WeChat+WhatsApp\n",
      format_joules(device.full_tail_energy()).c_str(),
      apps::build_train_schedule(apps::default_train_specs(), 7200.0).size());

  // 2. The scheduler comparison (simulation settings).
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.model = radio::PowerModel::PaperSimulation();
  if (opts.quick) cfg.horizon = 1800.0;
  const Scenario s = make_scenario(cfg);

  obs::RunReport digest;
  digest.bench = "summary";
  digest.add_provenance("policy_spec", "etrain:theta=2,k=20");

  Table table({"policy", "energy_J", "delay_s", "violation",
               "vs Baseline"});
  baselines::BaselinePolicy baseline;
  const auto mb = run_slotted(s, baseline);
  const auto add = [&](core::SchedulingPolicy& p, const char* key) {
    const auto m = run_slotted(s, p);
    table.add_row({m.policy_name, Table::num(m.network_energy(), 1),
                   Table::num(m.normalized_delay, 1),
                   Table::num(m.violation_ratio, 3),
                   Table::num(100.0 * (1.0 - m.network_energy() /
                                                 mb.network_energy()),
                              1) +
                       " %"});
    digest.add_result(std::string(key) + "_energy_J", m.network_energy());
    digest.add_result(std::string(key) + "_delay_s", m.normalized_delay);
    return m;
  };
  table.add_row({mb.policy_name, Table::num(mb.network_energy(), 1),
                 Table::num(mb.normalized_delay, 1), "0.000", "-"});
  digest.add_result("baseline_energy_J", mb.network_energy());
  digest.add_result("baseline_delay_s", mb.normalized_delay);
  core::EtrainScheduler etrain({.theta = 2.0, .k = 20});
  const auto me = add(etrain, "etrain");
  baselines::ETimePolicy etime({.v = 2.0});
  add(etime, "etime");
  baselines::PerESPolicy peres({.omega = 0.5});
  add(peres, "peres");
  baselines::OraclePolicy oracle;
  add(oracle, "oracle");
  table.print();

  // 3. The battery translation.
  const radio::Battery battery;
  const double battery_pct = 100.0 * battery.fraction_of_capacity(
                                         mb.network_energy() -
                                         me.network_energy());
  digest.add_result("battery_saving_pct", battery_pct);
  std::printf(
      "\nover 2 h at lambda = 0.08, eTrain returns %.2f %% of a 1700 mAh "
      "battery vs. sending immediately (paper: 12-33 %% of total energy in "
      "the controlled experiments).\n",
      battery_pct);
  std::printf(
      "paper headline: \"eTrain can achieve 12%%-33%% energy saving in "
      "various application scenarios\" — reproduced; see EXPERIMENTS.md for "
      "the per-figure comparison.\n");

  // The digest's own results ride on top of the representative traced run's
  // sections (scenario provenance, energy, ledger, metrics).
  benchutil::maybe_export_traced_run(opts, s,
                                     core::EtrainConfig{.theta = 2.0, .k = 20},
                                     digest.bench, std::move(digest));
  return 0;
}
