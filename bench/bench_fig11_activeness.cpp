// Fig. 11: user-activeness replay. Luna Weibo behaviour traces (synthesized
// per the paper's activeness classes) are replayed over 10-minute app-use
// sessions with 3 train apps; uploads are scheduled by eTrain while
// interactive refresh/browse traffic goes out immediately. The paper
// reports savings of 227.92 J (23.1 %) for active, 134.47 J (19.4 %) for
// moderate, and 63.23 J (13.3 %) for inactive users.
#include <cstdio>

#include "apps/user_trace.h"
#include "baselines/registry.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "traced_run.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

// One scenario = a set of same-class users' 10-minute sessions laid
// back-to-back (with idle gaps), against the 3 default trains.
Scenario activeness_scenario(apps::Activeness klass, int users,
                             std::uint64_t seed) {
  const Duration session = 600.0;
  const Duration gap = 60.0;
  const Duration horizon = users * (session + gap);
  net::SyntheticBandwidthConfig bw;
  bw.length = horizon;

  std::vector<core::Packet> packets;
  std::vector<apps::TrainEvent> background;
  Rng rng(seed);
  core::PacketId next_id = 0;
  for (int u = 0; u < users; ++u) {
    auto trace = apps::synthesize_trace(klass, u, rng);
    trace.truncate(session);  // the paper truncates to 10 minutes
    const TimePoint start = u * (session + gap);
    // Uploads become cargo with the paper's 30 s Weibo deadline.
    auto uploads = apps::replay_uploads(trace, 0, start, 30.0, next_id);
    next_id += static_cast<core::PacketId>(uploads.size());
    packets.insert(packets.end(), uploads.begin(), uploads.end());
    // Interactive traffic replays verbatim, outside eTrain's control.
    for (const auto& e : trace.events) {
      if (e.behavior == apps::BehaviorType::kUpload) continue;
      background.push_back(
          apps::TrainEvent{start + e.time, /*train=*/0, e.bytes});
    }
  }
  return ScenarioBuilder()
      .horizon(horizon)
      .model(radio::PowerModel::PaperUmts3G())
      .trace(net::generate_synthetic_trace(bw, 20141208))
      .timetable(
          apps::build_train_schedule(apps::default_train_specs(), horizon))
      .packets(std::move(packets), {&core::weibo_cost_profile()})
      .background(std::move(background))
      .build();
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Fig. 11 — impact of user activeness "
      "(%zu jobs) ===\n",
      default_jobs());
  const int users = 20;
  if (opts.quick) {
    obs::RunReport base;
    base.bench = "fig11_activeness";
    base.add_provenance("policy_spec", "etrain:theta=0.2,k=20");
    base.add_provenance("activeness_class", "active");
    base.add_provenance("users", std::to_string(users));
    benchutil::maybe_export_traced_run(
        opts, activeness_scenario(apps::Activeness::kActive, users, 7),
        core::EtrainConfig{.theta = 0.2, .k = 20, .drip_defer_window = 60.0},
        base.bench, std::move(base));
    return 0;
  }
  Table table({"class", "uploads", "without eTrain_J (blue)",
               "with eTrain_J", "saved_J (green)", "saved %", "delay_s"});
  struct Row {
    const char* name;
    apps::Activeness klass;
  };
  struct ClassResult {
    std::size_t uploads = 0;
    RunMetrics without, with_etrain;
  };
  const std::vector<Row> rows = {Row{"active", apps::Activeness::kActive},
                                 Row{"moderate", apps::Activeness::kModerate},
                                 Row{"inactive", apps::Activeness::kInactive}};
  // Each activeness class synthesizes its own scenario (seeded Rng) and
  // runs both policies against it; the classes fan out concurrently.
  const auto results = parallel_map(rows, [users](const Row& row) {
    const Scenario s = activeness_scenario(row.klass, users, 7);
    const auto baseline = baselines::make_policy("baseline");
    const auto etrain = baselines::make_policy("etrain:theta=0.2,k=20");
    ClassResult r;
    r.uploads = s.packets.size();
    r.without = run_slotted(s, *baseline);
    r.with_etrain = run_slotted(s, *etrain);
    return r;
  });
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = results[i];
    const double without = r.without.network_energy();
    const double with = r.with_etrain.network_energy();
    table.add_row({rows[i].name,
                   Table::integer(static_cast<long long>(r.uploads)),
                   Table::num(without, 1), Table::num(with, 1),
                   Table::num(without - with, 1),
                   Table::num(100.0 * (1.0 - with / without), 1) + " %",
                   Table::num(r.with_etrain.normalized_delay, 1)});
  }
  table.print();
  std::printf(
      "per-session scale: divide the joule columns by %d users.  paper "
      "(single session): active 227.92 J (23.1 %%), moderate 134.47 J "
      "(19.4 %%), inactive 63.23 J (13.3 %%) — more uploads give eTrain more "
      "cargo to piggyback, so savings grow with activeness.\n",
      users);
  obs::RunReport base;
  base.bench = "fig11_activeness";
  base.add_provenance("policy_spec", "etrain:theta=0.2,k=20");
  base.add_provenance("activeness_class", "active");
  base.add_provenance("users", std::to_string(users));
  benchutil::maybe_export_traced_run(
      opts, activeness_scenario(apps::Activeness::kActive, users, 7),
      core::EtrainConfig{.theta = 0.2, .k = 20, .drip_defer_window = 60.0},
      base.bench, std::move(base));
  return 0;
}
