// Engine-throughput tracker: how many simulated slots (and scheduled
// packets) per wall-clock second the slotted engine sustains under each
// policy on the Fig. 8 headline scenario (lambda = 0.08, paper simulation
// power model).
//
// Two phases, both under OBS_PROFILE_SCOPE so the emitted report's profile
// section shows where the wall time went:
//   validate — one run per policy through parallel_map; its deterministic
//              outcomes (packet counts, energy, delay) land in the report's
//              compared `results` section, so a serial and a parallel run
//              of this bench must agree exactly (same contract as fig08);
//   time     — best-of-reps serial timing per policy; the wall-clock
//              slots/sec and packets/sec land in the non-compared
//              `environment` section, where scripts/check.sh's perf gate
//              reads them via `compare_reports --floor`.
//
// Emits BENCH_throughput.json by default (or wherever --report points).
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/parallel.h"
#include "exp/run_report.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "obs/bench_options.h"
#include "obs/profile.h"
#include "obs/report.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

struct PolicyUnderTest {
  const char* key;  // report-key-safe short name
  const char* spec; // baselines::make_policy spec string
};

constexpr PolicyUnderTest kPolicies[] = {
    {"etrain", "etrain:theta=1,k=20"},
    {"baseline", "baseline"},
    {"peres", "peres:omega=0.5"},
    {"etime", "etime:v=1"},
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  // This bench exists to produce BENCH_throughput.json; --report only
  // redirects it.
  if (opts.report_path.empty()) opts.report_path = "BENCH_throughput.json";

  const Duration horizon = opts.quick ? 1800.0 : 7200.0;
  const int reps = opts.quick ? 2 : 3;
  const Scenario scenario = ScenarioBuilder()
                                .lambda(0.08)
                                .horizon(horizon)
                                .model(radio::PowerModel::PaperSimulation())
                                .build();

  std::printf(
      "=== engine throughput: %zu-packet fig08 scenario, horizon %.0f s, "
      "best of %d reps ===\n",
      scenario.packets.size(), horizon, reps);

  obs::RunReport report;
  report.bench = "throughput";
  describe_scenario(report, scenario);
  report.add_provenance("reps", std::to_string(reps));
  for (const auto& p : kPolicies) {
    report.add_provenance(std::string("policy_spec_") + p.key, p.spec);
  }

  const std::vector<PolicyUnderTest> policies(std::begin(kPolicies),
                                              std::end(kPolicies));

  // Phase 1: correctness snapshot, fanned out over the experiment engine.
  // Everything recorded here is deterministic — check.sh compares a serial
  // and a parallel run of this phase bit for bit.
  std::vector<RunMetrics> validation;
  {
    OBS_PROFILE_SCOPE("throughput.validate");
    validation = parallel_map(
        policies, [&](const PolicyUnderTest& p) {
          const auto policy = baselines::make_policy(p.spec);
          return run_slotted(scenario, *policy);
        });
  }
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& m = validation[i];
    const std::string key = policies[i].key;
    report.add_result("packets_" + key,
                      static_cast<double>(m.outcomes.size()));
    report.add_result("energy_J_" + key, m.network_energy());
    report.add_result("delay_s_" + key, m.normalized_delay);
  }

  // Phase 2: serial best-of-reps timing. Wall-clock rates are machine- and
  // load-dependent, so they live in `environment` (never diffed, floor-
  // gated only).
  {
    OBS_PROFILE_SCOPE("throughput.time");
    for (std::size_t i = 0; i < policies.size(); ++i) {
      const auto policy = baselines::make_policy(policies[i].spec);
      const double slots = horizon / policy->preferred_slot_length();
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < reps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        const auto metrics = run_slotted(scenario, *policy);
        const double elapsed = seconds_since(start);
        best = std::min(best, elapsed);
        if (metrics.outcomes.size() != validation[i].outcomes.size()) {
          std::printf("throughput: %s timing rep diverged from validation\n",
                      policies[i].key);
          return 1;
        }
      }
      const std::string key = policies[i].key;
      const double slots_per_sec = slots / best;
      const double packets_per_sec =
          static_cast<double>(validation[i].outcomes.size()) / best;
      report.add_environment("run_seconds_" + key, best);
      report.add_environment("slots_per_sec_" + key, slots_per_sec);
      report.add_environment("packets_per_sec_" + key, packets_per_sec);
      std::printf(
          "%-8s %8.0f slots in %6.3f s -> %10.0f slots/s, %7.0f packets/s "
          "(%zu packets, %.1f J)\n",
          policies[i].key, slots, best, slots_per_sec, packets_per_sec,
          validation[i].outcomes.size(), validation[i].network_energy());
    }
  }

  obs::finalize_run_report(opts.report_path, std::move(report));
  return 0;
}
