// Parallel experiment engine: scaling and determinism check.
//
// Runs the Fig. 7(b) sweep grid — k in {2, 4, 8, 16} x Theta in 0..3 step
// 0.5, i.e. 28 independent 2-hour simulations — through parallel_map at
// 1 / 2 / 4 / hardware_concurrency() threads, reporting wall-clock and
// speedup per thread count, and asserts that every parallel frontier is
// *bit-identical* to the serial one (FNV-1a checksum over the raw bytes of
// every EDPoint field).
//
// Exit status is non-zero when any checksum diverges, so this bench doubles
// as the determinism smoke test scripts/check.sh runs with ETRAIN_JOBS=2.
// Speedup depends on the machine: on a single-core container every row
// reports ~1x (the checksums must still agree); on an N-core box the grid
// should approach min(N, 28)x.
//
// Flags: --quick shortens the horizon to 1800 s (smoke-test mode);
// --jobs N only caps the `auto` row (explicit thread counts are always
// measured).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/sweeps.h"
#include "traced_run.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

struct GridCell {
  std::size_t k = 0;
  double theta = 0.0;
};

std::vector<GridCell> fig7b_grid() {
  std::vector<GridCell> grid;
  for (const std::size_t k : {2, 4, 8, 16}) {
    for (const double theta : linspace_step(0.0, 3.0, 0.5)) {
      grid.push_back({k, theta});
    }
  }
  return grid;
}

/// FNV-1a over the raw bytes of every result field: any single-bit
/// divergence between a serial and a parallel run changes the digest.
class Fnv1a {
 public:
  void add(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (bits >> (8 * i)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// One grid cell's simulation result plus a per-task random draw: the draw
/// is seeded from task_seed(base, index), so the checksum covers both the
/// simulation outputs and the deterministic seed-derivation scheme.
struct Sample {
  EDPoint point;
  double task_draw = 0.0;
};

std::uint64_t checksum(const std::vector<Sample>& samples) {
  Fnv1a fnv;
  for (const auto& s : samples) {
    fnv.add(s.point.param);
    fnv.add(s.point.energy);
    fnv.add(s.point.delay);
    fnv.add(s.point.violation);
    fnv.add(s.task_draw);
  }
  return fnv.value();
}

std::vector<Sample> run_grid(const Scenario& scenario,
                             const std::vector<GridCell>& grid,
                             std::size_t jobs) {
  constexpr std::uint64_t kBaseSeed = 2015;
  return parallel_map(
      grid,
      [&](const GridCell& cell, std::size_t index) {
        core::EtrainScheduler policy({.theta = cell.theta, .k = cell.k});
        const RunMetrics m = run_slotted(scenario, policy);
        Rng rng(task_seed(kBaseSeed, index));
        return Sample{EDPoint{cell.theta, m.network_energy(),
                              m.normalized_delay, m.violation_ratio},
                      rng.uniform(0.0, 1.0)};
      },
      jobs);
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  const bool quick = opts.quick;

  std::printf(
      "=== parallel experiment engine: scaling on the Fig. 7(b) grid ===\n");
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.model = radio::PowerModel::PaperSimulation();
  if (quick) cfg.horizon = 1800.0;
  const Scenario scenario = make_scenario(cfg);
  const auto grid = fig7b_grid();
  std::printf("grid: %zu (k, Theta) simulations x %.0f s horizon%s\n",
              grid.size(), scenario.horizon, quick ? " (--quick)" : "");

  // Serial reference first: its checksum is the ground truth.
  const auto t0 = std::chrono::steady_clock::now();
  const auto serial = run_grid(scenario, grid, 1);
  const auto t1 = std::chrono::steady_clock::now();
  const double serial_s = std::chrono::duration<double>(t1 - t0).count();
  const std::uint64_t want = checksum(serial);

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t n = default_jobs();
  if (n > 4) thread_counts.push_back(n);

  Table table({"threads", "wall_s", "speedup", "checksum", "bit-identical"});
  table.add_row({"1 (reference)", Table::num(serial_s, 3), "1.00x",
                 std::to_string(want), "yes"});
  bool all_identical = true;
  for (const std::size_t jobs : thread_counts) {
    if (jobs == 1) continue;
    const auto a = std::chrono::steady_clock::now();
    const auto frontier = run_grid(scenario, grid, jobs);
    const auto b = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(b - a).count();
    const std::uint64_t got = checksum(frontier);
    const bool same = got == want;
    all_identical = all_identical && same;
    table.add_row({std::to_string(jobs), Table::num(secs, 3),
                   Table::num(serial_s / secs, 2) + "x",
                   std::to_string(got), same ? "yes" : "NO"});
  }
  table.print();

  if (!all_identical) {
    std::printf("FAIL: a parallel run diverged from the serial reference\n");
    return 1;
  }
  std::printf(
      "all parallel runs byte-identical to serial (hardware_concurrency = "
      "%u; speedup is hardware-bound and ~1x on a single-core container).\n",
      std::thread::hardware_concurrency());

  obs::RunReport base;
  base.bench = "parallel_scaling";
  base.add_provenance("policy_spec", "etrain:theta=1,k=20");
  base.add_result("serial_checksum", static_cast<double>(want));
  benchutil::maybe_export_traced_run(
      opts, scenario, core::EtrainConfig{.theta = 1.0, .k = 20},
      base.bench, std::move(base));
  return 0;
}
