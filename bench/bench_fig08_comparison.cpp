// Fig. 8: comparative analysis against the Baseline (send-on-arrival) and
// the two Lyapunov schedulers from the literature, PerES and eTime.
//
//   (a) E-D panel at lambda = 0.08: each algorithm's energy/delay frontier,
//       produced by sweeping its own knob (Theta / Omega / V);
//   (b) energies at an equalized normalized delay of 55 s across lambda in
//       {0.04 .. 0.12}: the Baseline grows then flattens (tails start to
//       overlap under heavy load), eTrain saves the most at every lambda,
//       and eTime out-saves PerES.
#include <cstdio>

#include "baselines/registry.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/figure_export.h"
#include "exp/replication.h"
#include "exp/scenario_builder.h"
#include "exp/sweeps.h"
#include "traced_run.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

Scenario scenario_for(double lambda) {
  return ScenarioBuilder()
      .lambda(lambda)
      .model(radio::PowerModel::PaperSimulation())
      .build();
}

// Each algorithm's knob sweep comes straight from the policy registry.
PolicyFactory etrain_factory() {
  return baselines::sweep_factory("etrain", "theta");
}
PolicyFactory peres_factory() {
  return baselines::sweep_factory("peres", "omega");
}
PolicyFactory etime_factory() { return baselines::sweep_factory("etime", "v"); }

const std::vector<double> kThetas = {0.0, 0.2, 0.5, 1.0, 1.5, 2.0, 2.5,
                                     3.0, 3.5, 4.0, 4.5, 5.0, 5.5, 6.0,
                                     8.0, 10.0};
const std::vector<double> kOmegas = {0.02, 0.05, 0.1, 0.2, 0.5,
                                     1.0,  2.0,  4.0, 8.0};
const std::vector<double> kVs = {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};

void fig8a() {
  print_banner("Fig. 8(a): E-D panel of all algorithms, lambda = 0.08");
  const Scenario s = scenario_for(0.08);

  const auto baseline = baselines::make_policy("baseline");
  const auto mb = run_slotted(s, *baseline);
  std::printf("Baseline: energy %.1f J at delay %.1f s (single point)\n",
              mb.network_energy(), mb.normalized_delay);

  Table table({"algorithm", "knob", "value", "energy_J", "delay_s",
               "violation"});
  const auto emit = [&](const char* name, const char* knob,
                        const std::vector<EDPoint>& frontier) {
    for (const auto& p : frontier) {
      table.add_row({name, knob, Table::num(p.param, 2),
                     Table::num(p.energy, 1), Table::num(p.delay, 1),
                     Table::num(p.violation, 3)});
    }
  };
  const auto dir = ensure_results_dir();
  const auto f_etrain = sweep(s, etrain_factory(), kThetas);
  const auto f_peres = sweep(s, peres_factory(), kOmegas);
  const auto f_etime = sweep(s, etime_factory(), kVs);
  export_frontier(dir, "fig08a_etrain", f_etrain);
  export_frontier(dir, "fig08a_peres", f_peres);
  export_frontier(dir, "fig08a_etime", f_etime);
  emit("eTrain", "Theta", f_etrain);
  emit("PerES", "Omega", f_peres);
  emit("eTime", "V", f_etime);
  table.print();
  std::printf(
      "paper: eTrain's frontier dominates PerES and eTime across the "
      "panel.\n");
}

void fig8b() {
  print_banner(
      "Fig. 8(b): total energy at equalized delay D = 55 s vs. lambda");
  const double target_delay = 55.0;
  Table table({"lambda", "Baseline_J", "eTrain_J", "eTime_J", "PerES_J",
               "eTrain saving_J", "eTrain viol", "eTime viol", "PerES viol"});
  // One row per lambda; each row's three sweeps fan out internally, so the
  // outer loop stays serial (nested pools would oversubscribe).
  const std::vector<double> lambdas = {0.04, 0.06, 0.08, 0.10, 0.12};
  for (const double lambda : lambdas) {
    const Scenario s = scenario_for(lambda);
    const auto baseline = baselines::make_policy("baseline");
    const auto mb = run_slotted(s, *baseline);
    const auto etrain =
        frontier_at_delay(sweep(s, etrain_factory(), kThetas), target_delay);
    const auto etime =
        frontier_at_delay(sweep(s, etime_factory(), kVs), target_delay);
    const auto peres =
        frontier_at_delay(sweep(s, peres_factory(), kOmegas), target_delay);
    table.add_row({Table::num(lambda, 2), Table::num(mb.network_energy(), 1),
                   Table::num(etrain.energy, 1), Table::num(etime.energy, 1),
                   Table::num(peres.energy, 1),
                   Table::num(mb.network_energy() - etrain.energy, 1),
                   Table::num(etrain.violation, 3),
                   Table::num(etime.violation, 3),
                   Table::num(peres.violation, 3)});
  }
  table.print();
  std::printf(
      "paper: Baseline rises then flattens (~2600 J past lambda = 0.1); "
      "eTrain saves 628 -> 1650 J vs. Baseline as lambda grows; eTime beats "
      "PerES (~320 J at lambda = 0.08); eTrain is best throughout.\n");
}

void fig8_replicated() {
  print_banner(
      "Fig. 8 robustness: headline comparison replicated over 5 seeds "
      "(mean +- 95% CI)");
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.model = radio::PowerModel::PaperSimulation();
  const auto seeds = default_seeds(5);

  Table table({"policy", "energy_J (mean +- CI)", "delay_s", "violation"});
  struct Row {
    const char* name;
    std::function<std::unique_ptr<core::SchedulingPolicy>()> make;
  };
  const Row rows[] = {
      {"Baseline", [] { return baselines::make_policy("baseline"); }},
      {"eTrain (Theta=2)",
       [] { return baselines::make_policy("etrain:theta=2"); }},
      {"PerES (Omega=0.5)",
       [] { return baselines::make_policy("peres:omega=0.5"); }},
      {"eTime (V=2)", [] { return baselines::make_policy("etime:v=2"); }},
  };
  for (const auto& row : rows) {
    const auto r = replicate(cfg, seeds, row.make);
    table.add_row({row.name,
                   Table::num(r.energy.mean, 1) + " +- " +
                       Table::num(r.energy.ci95_half_width, 1),
                   Table::num(r.delay.mean, 1) + " +- " +
                       Table::num(r.delay.ci95_half_width, 1),
                   Table::num(r.violation.mean, 3)});
  }
  table.print();
  std::printf(
      "the ordering eTrain < eTime < PerES < Baseline holds in expectation, "
      "not just for the headline seed.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Fig. 8 — comparison with Baseline, PerES, "
      "eTime (%zu jobs) ===\n",
      default_jobs());
  if (!opts.quick) {
    fig8a();
    fig8b();
    fig8_replicated();
  }
  obs::RunReport base;
  base.bench = "fig08_comparison";
  base.add_provenance("policy_spec", "etrain:theta=1,k=20");
  benchutil::maybe_export_traced_run(opts, scenario_for(0.08),
                                     core::EtrainConfig{.theta = 1.0, .k = 20},
                                     base.bench, std::move(base));
  return 0;
}
