// Fig. 2: the motivating toy example. One heartbeat cycle; five scattered
// 5-KB e-mails each paying their own radio tail, versus the same five
// e-mails deferred and aggregated right behind the second heartbeat. The
// paper reports ~40% transmission-energy saving in its power-trace capture.
#include <cstdio>

#include "common/table.h"
#include "net/bandwidth_trace.h"
#include "obs/bench_options.h"
#include "obs/report.h"
#include "radio/energy_meter.h"
#include "radio/power_monitor.h"

namespace {

using namespace etrain;

radio::TransmissionLog scattered_log(const net::BandwidthTrace& trace) {
  radio::TransmissionLog log;
  const auto add = [&](TimePoint t, Bytes bytes, radio::TxKind kind) {
    radio::Transmission tx;
    tx.start = t;
    tx.duration = trace.transfer_duration(bytes, t);
    tx.bytes = bytes;
    tx.kind = kind;
    log.add(tx);
  };
  add(0.0, 74, radio::TxKind::kHeartbeat);
  for (int i = 1; i <= 5; ++i) {
    add(45.0 * i, kilobytes(5.0), radio::TxKind::kData);  // scattered mails
  }
  add(270.0, 74, radio::TxKind::kHeartbeat);
  return log;
}

radio::TransmissionLog piggybacked_log(const net::BandwidthTrace& trace) {
  radio::TransmissionLog log;
  TimePoint t = 0.0;
  const auto add = [&](TimePoint at, Bytes bytes, radio::TxKind kind) {
    radio::Transmission tx;
    tx.start = at;
    tx.duration = trace.transfer_duration(bytes, at);
    tx.bytes = bytes;
    tx.kind = kind;
    log.add(tx);
    t = tx.end();
  };
  add(0.0, 74, radio::TxKind::kHeartbeat);
  add(270.0, 74, radio::TxKind::kHeartbeat);
  for (int i = 0; i < 5; ++i) {
    add(t, kilobytes(5.0), radio::TxKind::kData);  // ride the 2nd train
  }
  return log;
}

void print_power_trace(const radio::TransmissionLog& log,
                       const radio::PowerModel& model, const char* label) {
  // Compress the 0.1 s Monsoon-style trace into its plateau segments.
  const radio::PowerMonitor monitor(0.1);
  const auto samples = monitor.sample(log, model, 300.0);
  std::printf("%s power trace (plateaus):\n", label);
  double current = samples.front().power;
  TimePoint since = 0.0;
  for (const auto& s : samples) {
    if (s.power != current) {
      std::printf("  %8s .. %8s : %6.0f mW\n", format_time(since).c_str(),
                  format_time(s.time).c_str(), current * 1000.0);
      current = s.power;
      since = s.time;
    }
  }
  std::printf("  %8s .. %8s : %6.0f mW\n", format_time(since).c_str(),
              format_time(300.0).c_str(), current * 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Fig. 2 — piggybacking toy example ===\n");
  const auto model = radio::PowerModel::PaperUmts3G();
  const auto trace = net::BandwidthTrace::constant(120.0e3, 600);

  const auto scattered = scattered_log(trace);
  const auto piggy = piggybacked_log(trace);
  const auto rep_s = radio::measure_energy(scattered, model, 300.0);
  const auto rep_p = radio::measure_energy(piggy, model, 300.0);

  Table table({"schedule", "tx_J", "tail_J", "network_J", "tails paid"});
  table.add_row({"scattered (no eTrain)", Table::num(rep_s.tx_energy, 2),
                 Table::num(rep_s.tail_energy(), 2),
                 Table::num(rep_s.network_energy(), 2),
                 Table::integer(static_cast<long long>(
                     rep_s.full_tails + rep_s.truncated_tails))});
  table.add_row({"aggregated behind 2nd heartbeat",
                 Table::num(rep_p.tx_energy, 2),
                 Table::num(rep_p.tail_energy(), 2),
                 Table::num(rep_p.network_energy(), 2),
                 Table::integer(static_cast<long long>(
                     rep_p.full_tails + rep_p.truncated_tails))});
  table.print();

  const double saving =
      1.0 - rep_p.network_energy() / rep_s.network_energy();
  std::printf(
      "transmission-energy saving: %.1f %%  (paper's power trace: ~40 %%; "
      "our radio model pays no promotion energy, so the margin is larger)\n",
      100.0 * saving);

  print_power_trace(scattered, model, "\nwithout eTrain");
  print_power_trace(piggy, model, "\nwith eTrain");

  if (opts.reporting()) {
    // The report prices the piggybacked schedule (the "with eTrain" side of
    // the figure); the scattered totals ride along as plain results.
    obs::RunReport report;
    report.bench = "fig02_toy_example";
    report.add_provenance("device_preset", model.name);
    report.add_provenance("horizon_s", "300");
    report.add_provenance("emails", "5");
    report.add_result("scattered_network_J", rep_s.network_energy());
    report.add_result("piggybacked_network_J", rep_p.network_energy());
    report.add_result("saving_fraction", saving);
    report.add_result("scattered_tails",
                      static_cast<double>(rep_s.full_tails +
                                          rep_s.truncated_tails));
    report.add_result("piggybacked_tails",
                      static_cast<double>(rep_p.full_tails +
                                          rep_p.truncated_tails));

    obs::EnergySection energy;
    energy.cellular = rep_p;
    report.energy = energy;
    obs::EnergyLedger ledger;
    obs::append_ledger(ledger, "cellular", piggy, model, rep_p.horizon);
    report.ledger = std::move(ledger);
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
