// Fault sweep (extension): the energy/delay story under an imperfect
// network. The paper's evaluation assumes every transfer succeeds and
// every heartbeat departs on schedule; docs/faults.md describes the seeded
// FaultPlan this bench sweeps — per-attempt transfer loss x coverage-outage
// duty — against every policy in the registry.
//
// Two headline questions:
//   1. does eTrain's saving survive retransmissions and outages, or do the
//      failed-attempt joules (billed, never delivered) erase it?
//   2. how much delay do recovery (requeue + backoff) and outage deferral
//      add for each policy?
//
// Like bench_parallel_scaling, the whole grid runs twice — serially and
// through parallel_map — and the FNV-1a digests over every result field
// must match bit-for-bit: fault draws are hashed, not stateful, so the
// schedule of worker threads must not change a single bit. Exit status is
// non-zero on divergence, which makes this bench double as the fault-
// determinism smoke test scripts/check.sh runs.
//
// Flags: --quick shrinks the grid and the horizon to 1800 s; --jobs N caps
// the parallel run's thread count.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/parallel.h"
#include "common/table.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "traced_run.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

struct Cell {
  double loss = 0.0;
  double outage_duty = 0.0;
  std::string policy;
};

struct Sample {
  double energy = 0.0;
  double delay = 0.0;
  double violation = 0.0;
  double failed_airtime = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t heartbeats_dropped = 0;
};

/// FNV-1a over the raw bytes of every Sample field; any single-bit
/// divergence between the serial and parallel sweep changes the digest.
class Fnv1a {
 public:
  void add(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    add(bits);
  }
  void add(std::uint64_t bits) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (bits >> (8 * i)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::uint64_t checksum(const std::vector<Sample>& samples) {
  Fnv1a fnv;
  for (const auto& s : samples) {
    fnv.add(s.energy);
    fnv.add(s.delay);
    fnv.add(s.violation);
    fnv.add(s.failed_airtime);
    fnv.add(s.failures);
    fnv.add(s.retries);
    fnv.add(s.recovered);
    fnv.add(s.deferrals);
    fnv.add(s.heartbeats_dropped);
  }
  return fnv.value();
}

Scenario cell_scenario(const Cell& cell, Duration horizon) {
  ScenarioBuilder builder;
  builder.lambda(0.08)
      .model(radio::PowerModel::PaperSimulation())
      .horizon(horizon)
      .loss(cell.loss)
      .heartbeat_jitter(cell.loss > 0.0 ? 5.0 : 0.0)
      .heartbeat_drops(cell.loss > 0.0 ? cell.loss / 2.0 : 0.0)
      .fault_seed(7);
  if (cell.outage_duty > 0.0) builder.outages(cell.outage_duty);
  return builder.build();
}

std::vector<Sample> run_grid(const std::vector<Cell>& grid, Duration horizon,
                             std::size_t jobs) {
  return parallel_map(
      grid,
      [horizon](const Cell& cell) {
        const Scenario s = cell_scenario(cell, horizon);
        const auto policy = baselines::make_policy(cell.policy);
        obs::Registry registry;  // per-task: registries are thread-confined
        const RunMetrics m =
            run_slotted(s, *policy, obs::Observers{nullptr, &registry});
        Sample out;
        out.energy = m.network_energy();
        out.delay = m.normalized_delay;
        out.violation = m.violation_ratio;
        out.failed_airtime = m.log.failed_airtime();
        out.failures = m.observed.counter("run.tx_failures");
        out.retries = m.observed.counter("run.tx_retries");
        out.recovered = m.observed.counter("run.packets_recovered");
        out.deferrals = m.observed.counter("run.outage_deferrals");
        out.heartbeats_dropped = m.observed.counter("run.heartbeats_dropped");
        return out;
      },
      jobs);
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  const bool quick = opts.quick;

  const Duration horizon = quick ? 1800.0 : 7200.0;
  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 0.15}
            : std::vector<double>{0.0, 0.05, 0.15, 0.3};
  const std::vector<double> duties = quick ? std::vector<double>{0.0, 0.25}
                                           : std::vector<double>{0.0, 0.1,
                                                                 0.25};
  // Every registry policy that can be built from its bare name; parametric
  // templates ("select" needs an interface list) are skipped — their
  // concrete configurations are exercised by bench_multi_interface.
  std::vector<std::string> policies;
  for (const auto& name : baselines::builtin_registry().names()) {
    try {
      baselines::make_policy(name);
    } catch (const std::invalid_argument&) {
      continue;
    }
    policies.push_back(name);
  }
  std::vector<Cell> grid;
  for (const double loss : losses) {
    for (const double duty : duties) {
      for (const auto& p : policies) grid.push_back({loss, duty, p});
    }
  }
  std::printf(
      "=== eTrain extension: fault sweep — loss x outage duty x %zu "
      "policies (%zu cells, %.0f s horizon, %zu jobs%s) ===\n",
      policies.size(), grid.size(), horizon, default_jobs(),
      quick ? ", --quick" : "");

  // Serial reference first: its digest is the ground truth the parallel
  // sweep must reproduce bit-for-bit.
  const auto serial = run_grid(grid, horizon, 1);
  const auto parallel = run_grid(grid, horizon, default_jobs());
  const std::uint64_t want = checksum(serial);
  const std::uint64_t got = checksum(parallel);

  Table table({"loss", "outage", "policy", "energy_J", "delay_s", "violation",
               "failed", "retries", "recovered", "deferred", "hb dropped",
               "wasted_s"});
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& c = grid[i];
    const auto& s = serial[i];
    table.add_row({Table::num(c.loss, 2), Table::num(c.outage_duty, 2),
                   c.policy, Table::num(s.energy, 1), Table::num(s.delay, 1),
                   Table::num(s.violation, 3),
                   Table::integer(static_cast<long long>(s.failures)),
                   Table::integer(static_cast<long long>(s.retries)),
                   Table::integer(static_cast<long long>(s.recovered)),
                   Table::integer(static_cast<long long>(s.deferrals)),
                   Table::integer(
                       static_cast<long long>(s.heartbeats_dropped)),
                   Table::num(s.failed_airtime, 1)});
  }
  table.print();

  // Sanity: a fault-free cell must record zero fault activity — the plan
  // is inert, not merely quiet (the bit-identity guarantee of FaultPlan::
  // none()).
  bool clean_ok = true;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (grid[i].loss > 0.0 || grid[i].outage_duty > 0.0) continue;
    const auto& s = serial[i];
    clean_ok = clean_ok && s.failures == 0 && s.retries == 0 &&
               s.recovered == 0 && s.deferrals == 0 &&
               s.heartbeats_dropped == 0 && s.failed_airtime == 0.0;
  }

  std::printf("serial digest   %llu\nparallel digest %llu (%s)\n",
              static_cast<unsigned long long>(want),
              static_cast<unsigned long long>(got),
              want == got ? "bit-identical" : "DIVERGED");
  if (!clean_ok) {
    std::printf("FAIL: a fault-free cell recorded fault activity\n");
    return 1;
  }
  if (want != got) {
    std::printf("FAIL: parallel sweep diverged from the serial reference\n");
    return 1;
  }
  std::printf(
      "failed attempts are billed but never delivered, so loss inflates "
      "every policy's bill; eTrain's piggybacking still prices under the "
      "Baseline because retries, too, prefer to ride paid tails.\n");

  // The representative artifact run uses the harshest grid cell, so the
  // report's ledger carries nonzero failed-airtime rows and the provenance
  // manifest records the full FaultPlan.
  obs::RunReport base;
  base.bench = "faults";
  base.add_provenance("policy_spec", "etrain:theta=1,k=20");
  benchutil::maybe_export_traced_run(
      opts, cell_scenario(Cell{0.15, 0.25, "etrain:theta=1,k=20"}, horizon),
      core::EtrainConfig{.theta = 1.0, .k = 20, .drip_defer_window = 60.0},
      base.bench, std::move(base));
  return 0;
}
