// Fig. 4: instantaneous power at the different radio states across one
// heartbeat transmission — IDLE, promotion to DCH, transmission, the
// delta_D DCH tail, the delta_F FACH tail, and the demotion back to IDLE.
#include <cstdio>

#include "common/table.h"
#include "net/bandwidth_trace.h"
#include "obs/bench_options.h"
#include "obs/report.h"
#include "radio/power_monitor.h"
#include "radio/rrc_machine.h"

namespace {

using namespace etrain;

void trace_one_heartbeat(const radio::PowerModel& model, const char* label) {
  print_banner(std::string("one heartbeat on ") + label);
  const auto trace = net::BandwidthTrace::constant(120.0e3, 120);

  radio::TransmissionLog log;
  radio::Transmission tx;
  tx.start = 10.0;
  tx.setup = model.idle_to_dch_delay;
  tx.duration = trace.transfer_duration(378, tx.start + tx.setup);
  tx.bytes = 378;
  tx.kind = radio::TxKind::kHeartbeat;
  log.add(tx);

  // Monsoon-style sampled power trace, compressed into plateaus.
  const radio::PowerMonitor monitor(0.1, 3.7);
  const auto samples = monitor.sample(log, model, 60.0);
  Table table({"from_s", "to_s", "power_mW", "current_mA@3.7V", "state"});
  double current = samples.front().power;
  TimePoint since = 0.0;
  const auto state_name = [&](double power) -> std::string {
    if (power >= model.idle_power + model.tx_extra_power - 1e-9) return "TX";
    if (power >= model.idle_power + model.dch_extra_power - 1e-9) {
      return "DCH";
    }
    if (power >= model.idle_power + model.fach_extra_power - 1e-9) {
      return "FACH";
    }
    return "IDLE";
  };
  const auto emit = [&](TimePoint to) {
    table.add_row({Table::num(since, 1), Table::num(to, 1),
                   Table::num(current * 1000.0, 0),
                   Table::num(current / 3.7 * 1000.0, 1),
                   state_name(current)});
  };
  for (const auto& s : samples) {
    if (s.power != current) {
      emit(s.time);
      current = s.power;
      since = s.time;
    }
  }
  emit(60.0);
  table.print();

  const auto report = radio::measure_energy(log, model, 60.0);
  std::printf(
      "tail time T_tail = %.1f s; full-tail energy = %s (paper measures "
      "~10.91 J per heartbeat tail on the Galaxy S4)\n",
      model.tail_time(), format_joules(model.full_tail_energy()).c_str());
  std::printf("network energy of the beat incl. tail: %s\n",
              format_joules(report.network_energy()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Fig. 4 — radio power states across one "
      "heartbeat ===\n");
  trace_one_heartbeat(radio::PowerModel::PaperUmts3G(),
                      "measured Galaxy S4 3G parameters");
  trace_one_heartbeat(radio::PowerModel::Realistic3G(),
                      "3G with RRC promotion delays (extension)");
  trace_one_heartbeat(radio::PowerModel::LteDrx(),
                      "LTE DRX parameter set (extension)");
  if (opts.reporting()) {
    // Re-price the single measured-device heartbeat so the report carries a
    // full energy section + one-row ledger for the headline configuration.
    const auto model = radio::PowerModel::PaperUmts3G();
    const auto trace = net::BandwidthTrace::constant(120.0e3, 120);
    radio::TransmissionLog log;
    radio::Transmission tx;
    tx.start = 10.0;
    tx.setup = model.idle_to_dch_delay;
    tx.duration = trace.transfer_duration(378, tx.start + tx.setup);
    tx.bytes = 378;
    tx.kind = radio::TxKind::kHeartbeat;
    log.add(tx);
    const auto rep = radio::measure_energy(log, model, 60.0);

    obs::RunReport report;
    report.bench = "fig04_power_states";
    report.add_provenance("device_preset", model.name);
    report.add_provenance("horizon_s", "60");
    report.add_result("tail_time_s", model.tail_time());
    report.add_result("full_tail_energy_J", model.full_tail_energy());
    report.add_result("heartbeat_network_J", rep.network_energy());
    obs::EnergySection energy;
    energy.cellular = rep;
    report.energy = energy;
    obs::EnergyLedger ledger;
    obs::append_ledger(ledger, "cellular", log, model, rep.horizon);
    report.ledger = std::move(ledger);
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
