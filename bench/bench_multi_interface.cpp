// Multi-interface study (extension): the paper confines every policy to
// the one 3G uplink; here every interface mix is assembled purely from
// ModelRegistry spec strings and per-packet routing comes from the
// PolicyRegistry's composable "select:" layer. Three mixes anchor the
// sweep:
//
//   c3g        the paper's 3G-only device (the control: the registry path
//              must reproduce the classic eTrain-vs-baseline gap),
//   wifi_cdrx  an LTE/5G CDRX primary with episodic Wi-Fi coverage —
//              "select:wifi;fallback=..." offloads cargo while associated,
//   lora       a 3G primary plus a LoRa-class link whose beacons form a
//              second train source — "select:lora;fallback=etrain" rides
//              the link's rx window when it is hot.
//
// Each mix runs an energy-vs-deadline sweep; the headline savings land in
// the report as savings_pct_<mix> and check.sh floors them against the
// committed bench/baselines/multi_interface.baseline.json.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "common/table.h"
#include "exp/run_report.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"
#include "obs/bench_options.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

struct PolicyUnderTest {
  const char* key;   ///< report-key fragment
  const char* spec;  ///< PolicyRegistry spec
};

struct Mix {
  const char* key;    ///< report-key fragment
  const char* title;  ///< table heading
  const char* radio;  ///< primary-radio ModelRegistry spec
  /// Extra always-on radio spec (slots 2+); nullptr = none.
  const char* extra;
  /// Target Wi-Fi coverage fraction; 0 = no Wi-Fi.
  double wifi_coverage;
  /// Policies under test; [0] is the reference the mix's savings_pct_*
  /// metric compares the last entry against.
  std::vector<PolicyUnderTest> policies;
};

Scenario build_mix_scenario(const Mix& mix, Duration horizon,
                            Duration deadline) {
  ScenarioBuilder b;
  b.lambda(0.08).horizon(horizon).radio(mix.radio).shared_deadline(deadline);
  if (mix.wifi_coverage > 0.0) {
    b.wifi(net::generate_wifi_pattern(
        net::WifiPatternConfig{.horizon = horizon,
                               .coverage = mix.wifi_coverage,
                               .episode_mean = 300.0},
        /*seed=*/61));
  }
  if (mix.extra != nullptr) {
    b.interfaces({mix.extra});
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  const Duration horizon = opts.quick ? 3600.0 : 7200.0;
  const std::vector<Duration> deadlines =
      opts.quick ? std::vector<Duration>{60.0, 300.0}
                 : std::vector<Duration>{30.0, 60.0, 120.0, 300.0};

  const std::vector<Mix> mixes = {
      {"c3g", "3G-only", "3g:paper", nullptr, 0.0,
       {{"baseline", "baseline"}, {"etrain", "etrain:theta=1,k=20"}}},
      {"wifi_cdrx", "Wi-Fi + LTE-CDRX",
       "lte_cdrx:inactivity=10,drx_short=0.02,drx_long=1.28", nullptr, 0.5,
       {{"baseline", "baseline"},
        {"wifi_baseline", "select:wifi;fallback=baseline"},
        {"wifi_etrain", "select:wifi;fallback=etrain:theta=1,k=20"}}},
      {"lora", "3G + LoRa heartbeats", "3g:paper",
       "lora:sf=7,heartbeat_period=30,rx_window=8", 0.0,
       {{"baseline", "baseline"},
        {"etrain", "etrain:theta=1,k=20"},
        {"lora_etrain", "select:lora;fallback=etrain:theta=1,k=20"}}},
  };

  std::printf(
      "=== eTrain extension: interface mixes from registry specs, "
      "energy vs deadline (horizon %.0f s) ===\n",
      horizon);

  obs::RunReport report;
  report.bench = "multi_interface";
  report.add_provenance("horizon_s", std::to_string(horizon));
  for (const Mix& mix : mixes) {
    const std::string prefix = std::string("mix.") + mix.key + ".";
    report.add_provenance(prefix + "radio", mix.radio);
    if (mix.extra != nullptr) {
      report.add_provenance(prefix + "interfaces", mix.extra);
    }
    for (const auto& p : mix.policies) {
      report.add_provenance(prefix + "policy_" + p.key, p.spec);
    }
  }

  Table table({"mix", "deadline_s", "policy", "energy_J", "cellular_J",
               "offload_J", "offload pkts", "delay_s", "violations"});
  for (const Mix& mix : mixes) {
    for (const Duration deadline : deadlines) {
      const Scenario s = build_mix_scenario(mix, horizon, deadline);
      Joules reference = 0.0;
      Joules contender = 0.0;
      for (const auto& [key, spec] : mix.policies) {
        const auto policy = baselines::make_policy(spec);
        const RunMetrics m = run_slotted(s, *policy);

        Joules offload_energy = m.wifi_energy.network_energy();
        std::size_t offload_pkts = m.wifi_log.size();
        for (const auto& extra : m.extras) {
          offload_energy += extra.energy.network_energy();
          offload_pkts += extra.log.count(radio::TxKind::kData);
        }
        table.add_row({mix.title, Table::num(deadline, 0), key,
                       Table::num(m.network_energy(), 1),
                       Table::num(m.energy.network_energy(), 1),
                       Table::num(offload_energy, 1),
                       Table::integer(static_cast<long long>(offload_pkts)),
                       Table::num(m.normalized_delay, 1),
                       Table::num(100.0 * m.violation_ratio, 1) + " %"});

        const std::string suffix = std::string("_") + mix.key + "_" + key +
                                   "_d" + Table::num(deadline, 0);
        report.add_result("energy_J" + suffix, m.network_energy());
        report.add_result("delay_s" + suffix, m.normalized_delay);
        report.add_result("violation_pct" + suffix,
                          100.0 * m.violation_ratio);
        if (key == std::string(mix.policies.front().key)) {
          reference = m.network_energy();
        }
        if (key == std::string(mix.policies.back().key)) {
          contender = m.network_energy();
        }
      }
      // The mix's headline: the smartest policy's savings over the mix's
      // reference at the canonical 60 s deadline (present in quick and
      // full sweeps alike) — the floor check.sh gates on.
      if (deadline == 60.0 && reference > 0.0) {
        report.add_result(std::string("savings_pct_") + mix.key,
                          100.0 * (1.0 - contender / reference));
      }
    }
  }
  table.print();
  std::printf(
      "Offloading composes with train-riding in every mix: Wi-Fi/LoRa "
      "absorb cargo while their radio is hot or associated, and the "
      "fallback policy still boards heartbeat trains on the cellular "
      "stretches.\n");

  if (opts.reporting()) {
    // Representative full run for the ledger cross-checks: the LoRa mix,
    // whose report carries two interfaces' energy sections and per-
    // interface ledger rows (report_check re-bills both).
    const Mix& mix = mixes.back();
    const Scenario s = build_mix_scenario(mix, horizon, 60.0);
    const auto policy = baselines::make_policy(mix.policies.back().spec);
    const RunMetrics m = run_slotted(s, *policy);
    obs::RunReport rep = report_for_run("multi_interface", s, m);
    rep.add_provenance("policy_spec", mix.policies.back().spec);
    // Fold the sweep's results into the representative report so one file
    // carries both the ledger and the floors.
    for (const auto& [key, value] : report.results) {
      rep.add_result(key, value);
    }
    for (const auto& [key, value] : report.provenance) {
      const auto exists = [&](const auto& kv) { return kv.first == key; };
      if (std::find_if(rep.provenance.begin(), rep.provenance.end(),
                       exists) == rep.provenance.end()) {
        rep.add_provenance(key, value);
      }
    }
    obs::finalize_run_report(opts.report_path, std::move(rep));
  }
  return 0;
}
