// Multi-interface study (extension): the paper confines every policy to
// cellular; here we sweep Wi-Fi coverage and show offloading and heartbeat
// piggybacking compose — Wi-Fi absorbs cargo while associated, eTrain rides
// trains in the cellular-only stretches.
#include <cstdio>

#include "baselines/baseline_policy.h"
#include "baselines/multi_interface_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

}  // namespace

int main() {
  std::printf(
      "=== eTrain extension: Wi-Fi offload x heartbeat piggybacking ===\n");

  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.model = radio::PowerModel::PaperUmts3G();
  const Scenario base = make_scenario(cfg);

  Table table({"WiFi target", "realized", "policy", "energy_J",
               "cellular_J", "wifi_J", "wifi pkts", "delay_s"});
  for (const double coverage : {0.0, 0.25, 0.5, 0.75}) {
    Scenario s = base;
    s.wifi = net::generate_wifi_pattern(
        net::WifiPatternConfig{.horizon = s.horizon,
                               .coverage = coverage,
                               .episode_mean = 300.0},
        /*seed=*/static_cast<std::uint64_t>(100.0 * coverage) + 11);

    struct Named {
      const char* name;
      std::unique_ptr<core::SchedulingPolicy> policy;
    };
    std::vector<Named> policies;
    policies.push_back(
        {"Baseline", std::make_unique<baselines::BaselinePolicy>()});
    policies.push_back(
        {"Baseline+WiFi",
         std::make_unique<baselines::MultiInterfaceBaseline>()});
    policies.push_back({"eTrain", std::make_unique<core::EtrainScheduler>(
                                      core::EtrainConfig{.theta = 1.0,
                                                         .k = 20})});
    policies.push_back(
        {"eTrain+WiFi", std::make_unique<baselines::MultiInterfaceEtrain>(
                            core::EtrainConfig{.theta = 1.0, .k = 20})});

    for (auto& [name, policy] : policies) {
      const auto m = run_slotted(s, *policy);
      table.add_row({Table::num(100.0 * coverage, 0) + " %",
                     Table::num(100.0 * s.wifi.coverage(s.horizon), 0) + " %",
                     name,
                     Table::num(m.network_energy(), 1),
                     Table::num(m.energy.network_energy(), 1),
                     Table::num(m.wifi_energy.network_energy(), 1),
                     Table::integer(static_cast<long long>(
                         m.wifi_log.size())),
                     Table::num(m.normalized_delay, 1)});
    }
  }
  table.print();
  std::printf(
      "Wi-Fi absorbs cargo while associated (its ~0.2 s PSM tail is two "
      "orders cheaper than the 3G tail); in the uncovered stretches eTrain's "
      "train-riding still beats immediate sending — the combination "
      "dominates at every coverage level.\n");
  return 0;
}
