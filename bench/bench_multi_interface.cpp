// Multi-interface study (extension): the paper confines every policy to
// cellular; here we sweep Wi-Fi coverage and show offloading and heartbeat
// piggybacking compose — Wi-Fi absorbs cargo while associated, eTrain rides
// trains in the cellular-only stretches.
#include <cstdio>
#include <memory>

#include "baselines/registry.h"
#include "common/table.h"
#include "exp/run_report.h"
#include "exp/scenario_builder.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"
#include "obs/bench_options.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain extension: Wi-Fi offload x heartbeat piggybacking ===\n");

  ScenarioBuilder builder;
  builder.lambda(0.08).model(radio::PowerModel::PaperUmts3G());
  const Scenario base = builder.build();

  Table table({"WiFi target", "realized", "policy", "energy_J",
               "cellular_J", "wifi_J", "wifi pkts", "delay_s"});
  for (const double coverage : {0.0, 0.25, 0.5, 0.75}) {
    ScenarioBuilder b = builder;
    const Scenario s =
        b.wifi(net::generate_wifi_pattern(
                   net::WifiPatternConfig{.horizon = base.horizon,
                                          .coverage = coverage,
                                          .episode_mean = 300.0},
                   /*seed=*/static_cast<std::uint64_t>(100.0 * coverage) + 11))
            .build();

    struct Named {
      const char* name;
      const char* spec;
    };
    const std::vector<Named> policies = {
        {"Baseline", "baseline"},
        {"Baseline+WiFi", "baseline+wifi"},
        {"eTrain", "etrain:theta=1,k=20"},
        {"eTrain+WiFi", "etrain+wifi:theta=1,k=20"},
    };

    for (const auto& [name, spec] : policies) {
      const auto policy = baselines::make_policy(spec);
      const auto m = run_slotted(s, *policy);
      table.add_row({Table::num(100.0 * coverage, 0) + " %",
                     Table::num(100.0 * s.wifi.coverage(s.horizon), 0) + " %",
                     name,
                     Table::num(m.network_energy(), 1),
                     Table::num(m.energy.network_energy(), 1),
                     Table::num(m.wifi_energy.network_energy(), 1),
                     Table::integer(static_cast<long long>(
                         m.wifi_log.size())),
                     Table::num(m.normalized_delay, 1)});
    }
  }
  table.print();
  std::printf(
      "Wi-Fi absorbs cargo while associated (its ~0.2 s PSM tail is two "
      "orders cheaper than the 3G tail); in the uncovered stretches eTrain's "
      "train-riding still beats immediate sending — the combination "
      "dominates at every coverage level.\n");

  if (opts.reporting()) {
    // Representative run for the report: eTrain+WiFi at 50 % target
    // coverage, so the ledger carries both interfaces' rows.
    ScenarioBuilder b = builder;
    const Scenario s =
        b.wifi(net::generate_wifi_pattern(
                   net::WifiPatternConfig{.horizon = base.horizon,
                                          .coverage = 0.5,
                                          .episode_mean = 300.0},
                   /*seed=*/61))
            .build();
    const auto policy = baselines::make_policy("etrain+wifi:theta=1,k=20");
    const auto m = run_slotted(s, *policy);
    obs::RunReport report = report_for_run("multi_interface", s, m);
    report.add_provenance("policy_spec", "etrain+wifi:theta=1,k=20");
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
