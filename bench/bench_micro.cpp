// Microbenchmarks (google-benchmark): the hot paths a phone-side deployment
// cares about — Algorithm 1's per-slot selection, energy-meter replay,
// heartbeat-cycle prediction, and bandwidth-trace integration.
#include <benchmark/benchmark.h>

#include "android/heartbeat_monitor.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"
#include "radio/energy_meter.h"

namespace {

using namespace etrain;

void BM_SchedulerSelect(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  core::WaitingQueues queues(3);
  for (int i = 0; i < n; ++i) {
    core::Packet p;
    p.id = i;
    p.app = i % 3;
    p.arrival = i * 0.5;
    p.deadline = 60.0;
    p.bytes = 2000;
    queues.enqueue(core::QueuedPacket{p, &core::weibo_cost_profile()});
  }
  core::EtrainScheduler scheduler(
      {.theta = 0.0, .k = core::EtrainConfig::unlimited_k()});
  core::SlotContext ctx;
  ctx.slot_start = 1000.0;
  ctx.heartbeat_now = true;
  for (auto _ : state) {
    auto selections = scheduler.select(ctx, queues);
    benchmark::DoNotOptimize(selections);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SchedulerSelect)->RangeMultiplier(4)->Range(4, 256)->Complexity();

void BM_EnergyMeterReplay(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  radio::TransmissionLog log;
  for (std::size_t i = 0; i < n; ++i) {
    radio::Transmission tx;
    tx.start = static_cast<double>(i) * 12.0;
    tx.duration = 0.5;
    tx.bytes = 2000;
    tx.kind = i % 7 == 0 ? radio::TxKind::kHeartbeat : radio::TxKind::kData;
    log.add(tx);
  }
  const auto model = radio::PowerModel::PaperUmts3G();
  const double horizon = static_cast<double>(n) * 12.0 + 100.0;
  for (auto _ : state) {
    auto report = radio::measure_energy(log, model, horizon);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EnergyMeterReplay)->Range(64, 16384);

void BM_MonitorPrediction(benchmark::State& state) {
  android::HeartbeatMonitor monitor;
  for (int app = 0; app < 3; ++app) {
    for (int j = 0; j < 10; ++j) {
      monitor.on_heartbeat(app, app * 5.0 + j * (240.0 + app * 30.0));
    }
  }
  for (auto _ : state) {
    auto departures = monitor.predict_departures(2000.0, 2000.0 + 1800.0);
    benchmark::DoNotOptimize(departures);
  }
}
BENCHMARK(BM_MonitorPrediction);

void BM_TransferDuration(benchmark::State& state) {
  const auto trace = net::wuhan_trace();
  double t = 0.0;
  for (auto _ : state) {
    const double d = trace.transfer_duration(100000, t);
    benchmark::DoNotOptimize(d);
    t += 7.3;
    if (t > 7000.0) t = 0.0;
  }
}
BENCHMARK(BM_TransferDuration);

void BM_FullSlottedRun(benchmark::State& state) {
  experiments::ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = static_cast<double>(state.range(0));
  cfg.model = radio::PowerModel::PaperSimulation();
  const auto scenario = experiments::make_scenario(cfg);
  for (auto _ : state) {
    core::EtrainScheduler policy({.theta = 1.0, .k = 20});
    auto metrics = experiments::run_slotted(scenario, policy);
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scenario.packets.size()));
}
BENCHMARK(BM_FullSlottedRun)->Arg(1800)->Arg(7200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
