// Microbenchmarks (google-benchmark): the hot paths a phone-side deployment
// cares about — Algorithm 1's per-slot selection, energy-meter replay,
// heartbeat-cycle prediction, and bandwidth-trace integration.
//
// Also houses two self-checking guards (the binary exits nonzero when
// either fails):
//   * select-speedup guard — the optimized select_into() kernel must beat
//     the frozen PR-1 selection loop by at least 2x (paired-median ratio
//     <= 0.5) while producing identical selections;
//   * profiler-overhead guard — one OBS_PROFILE_SCOPE per phase must stay
//     within 2 % of the uninstrumented loop.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "android/heartbeat_monitor.h"
#include "core/etrain_scheduler.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"
#include "obs/bench_options.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/trace_buffer.h"
#include "radio/energy_meter.h"

namespace {

using namespace etrain;

core::WaitingQueues make_queues(int n) {
  core::WaitingQueues queues(3);
  for (int i = 0; i < n; ++i) {
    core::Packet p;
    p.id = i;
    p.app = i % 3;
    p.arrival = i * 0.5;
    p.deadline = 60.0;
    p.bytes = 2000;
    queues.enqueue(core::QueuedPacket{p, &core::weibo_cost_profile()});
  }
  return queues;
}

void BM_SchedulerSelect(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const core::WaitingQueues queues = make_queues(n);
  core::EtrainScheduler scheduler(
      {.theta = 0.0, .k = core::EtrainConfig::unlimited_k()});
  core::SlotContext ctx;
  ctx.slot_start = 1000.0;
  ctx.heartbeat_now = true;
  for (auto _ : state) {
    auto selections = scheduler.select(ctx, queues);
    benchmark::DoNotOptimize(selections);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SchedulerSelect)->RangeMultiplier(4)->Range(4, 256)->Complexity();

// The same selection with a live TraceBuffer and Registry attached — the
// price of *enabled* observability, for comparison against the plain case.
void BM_SchedulerSelectTraced(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  const core::WaitingQueues queues = make_queues(n);
  core::EtrainScheduler scheduler(
      {.theta = 0.0, .k = core::EtrainConfig::unlimited_k()});
  obs::TraceBuffer buffer(1 << 16);
  obs::Registry registry;
  scheduler.attach_observability(&buffer, &registry);
  core::SlotContext ctx;
  ctx.slot_start = 1000.0;
  ctx.heartbeat_now = true;
  for (auto _ : state) {
    auto selections = scheduler.select(ctx, queues);
    benchmark::DoNotOptimize(selections);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SchedulerSelectTraced)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

void BM_EnergyMeterReplay(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  radio::TransmissionLog log;
  for (std::size_t i = 0; i < n; ++i) {
    radio::Transmission tx;
    tx.start = static_cast<double>(i) * 12.0;
    tx.duration = 0.5;
    tx.bytes = 2000;
    tx.kind = i % 7 == 0 ? radio::TxKind::kHeartbeat : radio::TxKind::kData;
    log.add(tx);
  }
  const auto model = radio::PowerModel::PaperUmts3G();
  const double horizon = static_cast<double>(n) * 12.0 + 100.0;
  for (auto _ : state) {
    auto report = radio::measure_energy(log, model, horizon);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_EnergyMeterReplay)->Range(64, 16384);

void BM_MonitorPrediction(benchmark::State& state) {
  android::HeartbeatMonitor monitor;
  for (int app = 0; app < 3; ++app) {
    for (int j = 0; j < 10; ++j) {
      monitor.on_heartbeat(app, app * 5.0 + j * (240.0 + app * 30.0));
    }
  }
  for (auto _ : state) {
    auto departures = monitor.predict_departures(2000.0, 2000.0 + 1800.0);
    benchmark::DoNotOptimize(departures);
  }
}
BENCHMARK(BM_MonitorPrediction);

void BM_TransferDuration(benchmark::State& state) {
  const auto trace = net::wuhan_trace();
  double t = 0.0;
  for (auto _ : state) {
    const double d = trace.transfer_duration(100000, t);
    benchmark::DoNotOptimize(d);
    t += 7.3;
    if (t > 7000.0) t = 0.0;
  }
}
BENCHMARK(BM_TransferDuration);

void BM_FullSlottedRun(benchmark::State& state) {
  experiments::ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = static_cast<double>(state.range(0));
  cfg.model = radio::PowerModel::PaperSimulation();
  const auto scenario = experiments::make_scenario(cfg);
  for (auto _ : state) {
    core::EtrainScheduler policy({.theta = 1.0, .k = 20});
    auto metrics = experiments::run_slotted(scenario, policy);
    benchmark::DoNotOptimize(metrics);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(scenario.packets.size()));
}
BENCHMARK(BM_FullSlottedRun)->Arg(1800)->Arg(7200)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Select-speedup guard.
//
// A frozen copy of the selection loop exactly as it shipped in PR 1: one
// virtual speculative_cost() call per packet per greedy round, an
// unordered_set of taken ids, a find_if rescan per pick, and fresh scratch
// vectors per call. The optimized select_into() kernel must beat it by at
// least 2x on the 256-packet heartbeat slot — and must keep returning
// byte-identical selections (core_select_equivalence_test pins that part;
// this guard asserts it on the bench workload too before timing).
// noinline: the real kernel is an out-of-line library call, so the
// reference must be one too — otherwise the comparison measures inlining,
// not the algorithmic change.
__attribute__((noinline)) std::vector<core::Selection> reference_select(
    const core::EtrainConfig& config, const core::SlotContext& ctx,
    const core::WaitingQueues& queues) {
  std::vector<core::Selection> chosen;
  if (queues.empty()) return chosen;

  const TimePoint t = ctx.slot_start;
  const TimePoint next_slot = t + ctx.slot_length;

  const double total_cost = queues.instantaneous_cost(t);
  if (total_cost < config.theta && !ctx.heartbeat_now) return chosen;

  if (!ctx.heartbeat_now && config.drip_defer_window > 0.0) {
    const TimePoint next_train = ctx.next_heartbeat();
    if (next_train - t <= config.drip_defer_window) return chosen;
  }

  if (!ctx.heartbeat_now && config.channel_aware &&
      total_cost < config.panic_factor * config.theta &&
      ctx.bandwidth_long_term > 0.0 &&
      ctx.bandwidth_estimate <
          config.channel_threshold * ctx.bandwidth_long_term) {
    return chosen;
  }

  const std::size_t k_limit = ctx.heartbeat_now ? config.k : 1;

  const int apps = queues.app_count();
  std::vector<double> selected_cost(apps, 0.0);
  std::vector<double> queue_spec_cost(apps, 0.0);
  for (int i = 0; i < apps; ++i) {
    queue_spec_cost[i] = queues.app_speculative_cost(i, next_slot);
  }
  std::unordered_set<core::PacketId> taken;

  while (chosen.size() < k_limit && chosen.size() < queues.total_size()) {
    double best_gain = -std::numeric_limits<double>::infinity();
    int best_app = -1;
    core::PacketId best_packet = -1;
    for (int i = 0; i < apps; ++i) {
      const double remaining = queue_spec_cost[i] - selected_cost[i];
      for (const core::QueuedPacket& p : queues.queue(i)) {
        if (taken.contains(p.packet.id)) continue;
        const double phi = p.speculative_cost(next_slot);
        if (!ctx.heartbeat_now && phi <= 0.0) continue;
        const double gain = remaining * phi - phi * phi / 2.0;
        if (gain > best_gain + 1e-12 ||
            (gain > best_gain - 1e-12 && best_packet >= 0 &&
             p.packet.id < best_packet)) {
          best_gain = gain;
          best_app = i;
          best_packet = p.packet.id;
        }
      }
    }
    if (best_app < 0) break;
    const auto& q = queues.queue(best_app);
    const auto it = std::find_if(
        q.begin(), q.end(), [best_packet](const core::QueuedPacket& p) {
          return p.packet.id == best_packet;
        });
    selected_cost[best_app] += it->speculative_cost(next_slot);
    taken.insert(best_packet);
    chosen.push_back(core::Selection{best_app, best_packet});
  }
  return chosen;
}

/// Minimum wall time of `iters` calls to `fn`, over one rep.
template <typename Fn>
double rep_seconds(Fn&& fn, int iters) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Shared paired-median harness for the overhead guards. Each rep times the
/// two variants back to back (order alternating per rep, so cache/branch
/// warm-up bias cancels) and takes the paired ratio; the median over reps is
/// immune to whole-machine slowdowns that hit an entire rep, which
/// min-of-reps across variants is not. Returns the median ratio.
template <typename Ref, typename Cur>
double paired_median_ratio(const char* label, Ref&& run_reference,
                           Cur&& run_instrumented, double budget,
                           int iters = 200, int reps = 41) {
  // Warm both paths before timing anything.
  rep_seconds(run_reference, iters / 4);
  rep_seconds(run_instrumented, iters / 4);

  std::vector<double> ratios;
  ratios.reserve(reps);
  double ref_min = std::numeric_limits<double>::infinity();
  double cur_min = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    double ref = 0.0;
    double cur = 0.0;
    if (rep % 2 == 0) {
      ref = rep_seconds(run_reference, iters);
      cur = rep_seconds(run_instrumented, iters);
    } else {
      cur = rep_seconds(run_instrumented, iters);
      ref = rep_seconds(run_reference, iters);
    }
    ratios.push_back(cur / ref);
    ref_min = std::min(ref_min, ref);
    cur_min = std::min(cur_min, cur);
  }
  std::nth_element(ratios.begin(), ratios.begin() + reps / 2, ratios.end());
  const double ratio = ratios[reps / 2];
  std::printf(
      "%s: reference min %.3f ms, instrumented min %.3f ms, median paired "
      "ratio %.4f (budget %.2f) — %s\n",
      label, 1e3 * ref_min, 1e3 * cur_min, ratio, budget,
      ratio <= budget ? "OK" : "REGRESSION");
  return ratio;
}

constexpr double kOverheadBudget = 1.02;

/// Ratio budget for the optimized kernel vs. the frozen naive loop:
/// <= 0.5 means "at least twice as fast".
constexpr double kSelectSpeedupBudget = 0.5;

/// Speedup guard: the optimized zero-allocation select_into() (cached
/// speculative costs, index-based candidate scans, reused member scratch)
/// against the frozen PR-1 loop, on the same 256-packet heartbeat slot the
/// old tracing guard used. Returns optimized/reference — smaller is faster.
double select_speedup_ratio() {
  constexpr int kPackets = 256;
  const core::WaitingQueues queues = make_queues(kPackets);
  const core::EtrainConfig config{.theta = 0.0,
                                  .k = core::EtrainConfig::unlimited_k()};
  core::EtrainScheduler scheduler(config);  // no sink, no registry
  core::SlotContext ctx;
  ctx.slot_start = 1000.0;
  ctx.heartbeat_now = true;

  // The two kernels must agree exactly before their speeds are compared.
  std::vector<core::Selection> optimized;
  scheduler.select_into(ctx, queues, optimized);
  const auto naive = reference_select(config, ctx, queues);
  if (optimized.size() != naive.size()) {
    std::printf("select-speedup guard: kernels disagree (%zu vs %zu picks)\n",
                optimized.size(), naive.size());
    return std::numeric_limits<double>::infinity();
  }
  for (std::size_t i = 0; i < naive.size(); ++i) {
    if (optimized[i].app != naive[i].app ||
        optimized[i].packet != naive[i].packet) {
      std::printf("select-speedup guard: kernels disagree at pick %zu\n", i);
      return std::numeric_limits<double>::infinity();
    }
  }

  std::vector<core::Selection> out;  // reused, as the harness reuses it
  return paired_median_ratio(
      "select-speedup guard",
      [&] {
        auto s = reference_select(config, ctx, queues);
        benchmark::DoNotOptimize(s);
      },
      [&] {
        scheduler.select_into(ctx, queues, out);
        benchmark::DoNotOptimize(out);
      },
      kSelectSpeedupBudget);
}

/// Report/profiler guard: one OBS_PROFILE_SCOPE around the same frozen
/// select kernel — the span price a reporting run pays per instrumented
/// phase — must also stay within the 2 % budget.
double profiling_overhead_ratio() {
  constexpr int kPackets = 256;
  const core::WaitingQueues queues = make_queues(kPackets);
  const core::EtrainConfig config{.theta = 0.0,
                                  .k = core::EtrainConfig::unlimited_k()};
  core::SlotContext ctx;
  ctx.slot_start = 1000.0;
  ctx.heartbeat_now = true;

  const double ratio = paired_median_ratio(
      "report/profiler-overhead guard",
      [&] {
        auto s = reference_select(config, ctx, queues);
        benchmark::DoNotOptimize(s);
      },
      [&] {
        OBS_PROFILE_SCOPE("micro.profiled_select");
        auto s = reference_select(config, ctx, queues);
        benchmark::DoNotOptimize(s);
      },
      kOverheadBudget);
  obs::profiler_reset();  // the guard's spans are not part of any report
  return ratio;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull out the shared bench flags (--report/--quick/--jobs/...) before
  // google-benchmark sees the command line — it rejects flags it does not
  // know. parse_bench_options tolerates benchmark's own --benchmark_* flags
  // because it only matches the exact names it owns.
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") continue;
    if (a == "--jobs" || a == "--trace" || a == "--timeline" ||
        a == "--report") {
      ++i;  // skip the flag's value too
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&filtered_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             passthrough.data())) {
    return 1;
  }
  if (!opts.quick) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const double speedup_ratio = select_speedup_ratio();
  const double profiling_ratio = profiling_overhead_ratio();
  const bool ok = speedup_ratio <= kSelectSpeedupBudget &&
                  profiling_ratio <= kOverheadBudget;

  if (opts.reporting()) {
    obs::RunReport report;
    report.bench = "micro";
    report.add_provenance("select_kernel_packets", "256");
    report.add_result("overhead_budget", kOverheadBudget);
    report.add_result("select_speedup_budget", kSelectSpeedupBudget);
    report.add_result("guards_ok", ok ? 1.0 : 0.0);
    // The measured ratios are wall-clock and vary run to run, so they live
    // in the non-compared environment section (same rule as the profile).
    report.add_environment("select_speedup_ratio", speedup_ratio);
    report.add_environment("profiling_overhead_ratio", profiling_ratio);
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return ok ? 0 : 1;
}
