// Alarm-batching study (extension): Android's setInexactRepeating defers
// alarms to shared batch boundaries so independent apps wake the device
// together. Applied to heartbeat daemons this aligns the trains — their
// tails overlap and the heartbeat bill shrinks before eTrain even runs;
// eTrain then stacks its cargo saving on top. This bench quantifies both
// effects against the exact-alarm status quo the paper measured.
#include <cstdio>

#include "android/alarm_manager.h"
#include "apps/train_schedule.h"
#include "baselines/baseline_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/run_report.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"
#include "obs/bench_options.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

/// Generates the merged heartbeat timetable that results from scheduling
/// every train app's daemon via inexact alarms with the given batch window.
std::vector<apps::TrainEvent> batched_schedule(
    const std::vector<apps::HeartbeatSpec>& specs, Duration horizon,
    Duration batch_window) {
  sim::Simulator simulator;
  android::AlarmManager alarms(simulator);
  std::vector<apps::TrainEvent> events;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& spec = specs[i];
    alarms.set_inexact_repeating(
        5.0 * static_cast<double>(i), spec.cycle,
        [&events, &simulator, &spec, i] {
          events.push_back(apps::TrainEvent{
              simulator.now(), static_cast<int>(i), spec.heartbeat_bytes});
        },
        batch_window);
  }
  simulator.run_until(horizon - 1e-9);
  std::sort(events.begin(), events.end(),
            [](const apps::TrainEvent& a, const apps::TrainEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.train < b.train;
            });
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain extension: Android inexact-alarm batching of heartbeats "
      "===\n");
  const Duration horizon = 7200.0;
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.horizon = horizon;
  cfg.model = radio::PowerModel::PaperUmts3G();
  const Scenario base = make_scenario(cfg);

  Table table({"alarm discipline", "beats", "hb-only_J", "Baseline_J",
               "eTrain_J", "eTrain delay_s"});
  struct Row {
    const char* name;
    std::vector<apps::TrainEvent> trains;
  };
  const Row rows[] = {
      {"setExact (the paper's measured apps)",
       apps::build_train_schedule(apps::default_train_specs(), horizon)},
      {"setInexactRepeating, 60 s batches",
       batched_schedule(apps::default_train_specs(), horizon, 60.0)},
      {"setInexactRepeating, 300 s batches",
       batched_schedule(apps::default_train_specs(), horizon, 300.0)},
  };
  for (const auto& row : rows) {
    Scenario s = base;
    s.trains = row.trains;

    Scenario hb_only = s;
    hb_only.packets.clear();
    baselines::BaselinePolicy noop;
    const auto m_hb = run_slotted(hb_only, noop);

    baselines::BaselinePolicy baseline;
    const auto m_base = run_slotted(s, baseline);
    core::EtrainScheduler etrain({.theta = 1.0, .k = 20});
    const auto m_etrain = run_slotted(s, etrain);

    table.add_row({row.name,
                   Table::integer(static_cast<long long>(s.trains.size())),
                   Table::num(m_hb.network_energy(), 1),
                   Table::num(m_base.network_energy(), 1),
                   Table::num(m_etrain.network_energy(), 1),
                   Table::num(m_etrain.normalized_delay, 1)});
  }
  table.print();
  std::printf(
      "moderate (60 s) batching aligns the daemons' beats onto shared "
      "instants: the heartbeat-only bill drops ~17 %% while eTrain's saving "
      "is preserved — complementary techniques. Aggressive (300 s) batching "
      "slashes the heartbeat bill further but collapses the distinct train "
      "departures eTrain piggybacks on, so cargo energy and delay rebound — "
      "the same sparse-train effect bench_unified_push shows.\n");

  if (opts.reporting()) {
    // Report the 60 s batching row — the regime the digest recommends.
    Scenario s = base;
    s.trains = batched_schedule(apps::default_train_specs(), horizon, 60.0);
    core::EtrainScheduler etrain({.theta = 1.0, .k = 20});
    const auto m = run_slotted(s, etrain);
    obs::RunReport report =
        experiments::report_for_run("alarm_batching", s, m);
    report.add_provenance("policy_spec", "etrain:theta=1,k=20");
    report.add_provenance("batch_window_s", "60");
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
