// Unified push study (extension, motivated by Sec. II-B): Apple forces all
// iOS apps through APNS — one TCP connection, one 1800 s heartbeat; Google
// offers GCM on Android but apps roll their own heartbeats instead.
//
// What does consolidation mean for energy, and what does it do to eTrain?
// Fewer trains waste fewer heartbeat tails, but they also give eTrain fewer
// piggybacking opportunities, so cargo delay grows and relief-valve drips
// return. This bench quantifies that tension across heartbeat regimes.
#include <cstdio>

#include "baselines/baseline_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/run_report.h"
#include "exp/slotted_sim.h"
#include "net/synthetic_bandwidth.h"
#include "obs/bench_options.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

Scenario scenario_with_trains(std::vector<apps::HeartbeatSpec> trains) {
  Scenario s;
  s.horizon = 7200.0;
  s.model = radio::PowerModel::PaperUmts3G();
  s.trace = net::wuhan_trace();
  s.trains = apps::build_train_schedule(trains, s.horizon);
  Rng rng(42);
  const auto cargo = apps::default_cargo_specs();
  s.packets = apps::generate_workload(cargo, s.horizon, rng);
  for (const auto& c : cargo) s.profiles.push_back(c.profile);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain extension: per-app heartbeats vs. a unified push channel "
      "===\n");

  apps::HeartbeatSpec gcm;  // a hypothetical consolidated Android channel
  gcm.app_name = "GCM(unified)";
  gcm.cycle = 240.0;  // as frequent as the fastest IM app
  gcm.heartbeat_bytes = 90;

  apps::HeartbeatSpec gcm_slow = gcm;
  gcm_slow.app_name = "GCM(slow)";
  gcm_slow.cycle = 900.0;

  struct Regime {
    const char* name;
    std::vector<apps::HeartbeatSpec> trains;
  };
  const Regime regimes[] = {
      {"3 per-app heartbeats (Android today)", apps::default_train_specs()},
      {"1 unified channel @240s (aggressive GCM)", {gcm}},
      {"1 unified channel @900s (relaxed GCM)", {gcm_slow}},
      {"1 unified channel @1800s (APNS / iOS)", {apps::apns_spec()}},
  };

  Table table({"heartbeat regime", "beats", "hb-only_J",
               "Baseline total_J", "eTrain total_J", "eTrain delay_s",
               "eTrain viol"});
  for (const auto& regime : regimes) {
    const Scenario s = scenario_with_trains(regime.trains);

    // Heartbeats alone (what the always-online connectivity itself costs).
    Scenario hb_only = s;
    hb_only.packets.clear();
    baselines::BaselinePolicy noop;
    const auto m_hb = run_slotted(hb_only, noop);

    baselines::BaselinePolicy baseline;
    const auto m_base = run_slotted(s, baseline);
    core::EtrainScheduler etrain({.theta = 0.5, .k = 20});
    const auto m_etrain = run_slotted(s, etrain);

    table.add_row({regime.name,
                   Table::integer(static_cast<long long>(s.trains.size())),
                   Table::num(m_hb.network_energy(), 1),
                   Table::num(m_base.network_energy(), 1),
                   Table::num(m_etrain.network_energy(), 1),
                   Table::num(m_etrain.normalized_delay, 1),
                   Table::num(m_etrain.violation_ratio, 3)});
  }
  table.print();
  std::printf(
      "consolidation shrinks the heartbeat bill itself, but sparse trains "
      "starve eTrain of piggyback slots: cargo delay grows, the relief valve "
      "pays fresh tails, and past ~900 s cycles deferring is outright "
      "counterproductive — which is why the production service stops "
      "deferring when trains go stale (Sec. V-3; EtrainService's "
      "train_staleness implements exactly that fallback). Android apps do "
      "not consolidate (Sec. II-B), and that dense-train regime is where "
      "eTrain pays off most.\n");

  if (opts.reporting()) {
    // Report the dense-train regime (Android today), where eTrain operates.
    const Scenario s = scenario_with_trains(apps::default_train_specs());
    core::EtrainScheduler etrain({.theta = 0.5, .k = 20});
    const auto m = run_slotted(s, etrain);
    obs::RunReport report =
        experiments::report_for_run("unified_push", s, m);
    report.add_provenance("policy_spec", "etrain:theta=0.5,k=20");
    report.add_provenance("heartbeat_regime", "3 per-app heartbeats");
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
