// Fig. 1(a): overall 4-hour standby energy with 0..3 active IM apps on 3G —
// the measurement that motivates the paper ("nearly 87% of energy spent on
// heartbeats with all apps running", ~2000 J, ~10 h of standby time).
//
// Fig. 1(b): timing and size of the heartbeats the three IM apps generate —
// "frequent, once a minute on average".
#include <cstdio>

#include "apps/train_schedule.h"
#include "radio/battery.h"
#include "common/table.h"
#include "net/synthetic_bandwidth.h"
#include "obs/bench_options.h"
#include "obs/report.h"
#include "radio/energy_meter.h"

namespace {

using namespace etrain;

/// The headline 3-app standby log Fig. 1(a) prices; the --report path
/// re-prices it so the emitted ledger matches the printed table.
radio::TransmissionLog three_app_log(Duration horizon) {
  const auto trace = net::wuhan_trace();
  const auto schedule =
      apps::build_train_schedule(apps::default_train_specs(), horizon);
  radio::TransmissionLog log;
  TimePoint free_at = 0.0;
  for (const auto& hb : schedule) {
    radio::Transmission tx;
    tx.start = std::max(hb.time, free_at);
    tx.duration = trace.transfer_duration(hb.bytes, tx.start);
    tx.bytes = hb.bytes;
    tx.kind = radio::TxKind::kHeartbeat;
    tx.app_id = hb.train;
    log.add(tx);
    free_at = tx.end();
  }
  return log;
}

void fig1a() {
  print_banner(
      "Fig. 1(a): 4-hour standby energy vs. number of active IM apps (3G)");
  const Duration horizon = hours(4.0);
  const auto model = radio::PowerModel::PaperUmts3G();
  const auto trace = net::wuhan_trace();
  const auto specs = apps::default_train_specs();  // QQ, WeChat, WhatsApp

  Table table({"active IM apps", "heartbeats", "network_J", "idle_J",
               "total_J", "heartbeat share", "battery cost (4 h)"});
  for (int n = 0; n <= 3; ++n) {
    const std::vector<apps::HeartbeatSpec> active(specs.begin(),
                                                  specs.begin() + n);
    const auto schedule = apps::build_train_schedule(active, horizon);
    radio::TransmissionLog log;
    TimePoint free_at = 0.0;
    for (const auto& hb : schedule) {
      radio::Transmission tx;
      tx.start = std::max(hb.time, free_at);
      tx.duration = trace.transfer_duration(hb.bytes, tx.start);
      tx.bytes = hb.bytes;
      tx.kind = radio::TxKind::kHeartbeat;
      tx.app_id = hb.train;
      log.add(tx);
      free_at = tx.end();
    }
    const auto report = radio::measure_energy(log, model, horizon);
    const double share = report.total_energy() > 0
                             ? report.network_energy() / report.total_energy()
                             : 0.0;
    // Battery translation the paper uses: 1700 mAh at 3.7 V.
    const radio::Battery battery;
    const double battery_pct =
        100.0 * battery.fraction_of_capacity(report.network_energy());
    // Standby-time equivalent at the standby drain implied by the paper's
    // "2000 J ~ 10 hours" statement (~55 mW).
    const double standby_hours =
        battery.standby_equivalent(report.network_energy(),
                                   milliwatts(55.0)) /
        3600.0;
    table.add_row({Table::integer(n), Table::integer((long long)log.size()),
                   Table::num(report.network_energy(), 1),
                   Table::num(report.idle_baseline, 1),
                   Table::num(report.total_energy(), 1),
                   Table::num(100.0 * share, 1) + " %",
                   Table::num(battery_pct, 2) + " % batt / " +
                       Table::num(standby_hours, 1) + " h standby"});
  }
  table.print();
  std::printf(
      "paper: with 3 apps ~87%% of standby energy (~2000 J) goes to "
      "heartbeats, worth ~10 h of standby time.\n");
}

void fig1b() {
  print_banner(
      "Fig. 1(b): heartbeat timing and size, 3 IM apps, first 15 minutes");
  const auto schedule =
      apps::build_train_schedule(apps::default_train_specs(), 900.0);
  Table table({"time", "app", "size_B"});
  const char* names[] = {"QQ", "WeChat", "WhatsApp"};
  for (const auto& hb : schedule) {
    table.add_row({format_time(hb.time), names[hb.train],
                   Table::integer(hb.bytes)});
  }
  table.print();
  const auto four_hours =
      apps::build_train_schedule(apps::default_train_specs(), hours(4.0));
  std::printf(
      "aggregate heartbeat rate: %.2f per minute over 4 h (paper: \"once a "
      "minute on average\")\n",
      static_cast<double>(four_hours.size()) / (4.0 * 60.0));
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf("=== eTrain reproduction: Fig. 1 — the cost of heartbeats ===\n");
  fig1a();
  fig1b();
  if (opts.reporting()) {
    const Duration horizon = hours(4.0);
    const auto model = radio::PowerModel::PaperUmts3G();
    const auto log = three_app_log(horizon);
    const auto rep = radio::measure_energy(log, model, horizon);

    obs::RunReport report;
    report.bench = "fig01_heartbeat_cost";
    report.add_provenance("device_preset", model.name);
    report.add_provenance("horizon_s", "14400");
    report.add_provenance("im_apps", "3");
    report.add_result("heartbeats", static_cast<double>(log.size()));
    report.add_result("network_energy_J", rep.network_energy());
    report.add_result("tail_energy_J", rep.tail_energy());
    report.add_result("idle_baseline_J", rep.idle_baseline);
    report.add_result("heartbeat_share",
                      rep.total_energy() > 0
                          ? rep.network_energy() / rep.total_energy()
                          : 0.0);

    obs::EnergySection energy;
    energy.cellular = rep;
    report.energy = energy;
    obs::EnergyLedger ledger;
    obs::append_ledger(ledger, "cellular", log, model, rep.horizon);
    report.ledger = std::move(ledger);
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
