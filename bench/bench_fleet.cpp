// Fleet-scale bench: how many simulated devices (and slots) per wall-clock
// second the FleetHarness sustains on the canonical heterogeneous city
// (FleetSpec::city — idle/light/regular/heavy activeness classes, paper
// simulation power model).
//
// Two phases, mirroring bench_throughput:
//   validate — one full fleet run; its deterministic outcomes (population
//              totals, per-class energy/delay, the fleet ledger) land in
//              the compared results/fleet/ledger sections, so a serial and
//              a parallel run of this bench must agree byte for byte —
//              check.sh diffs them with compare_reports;
//   time     — best-of-reps timing of the same run; wall-clock devices/sec
//              and slots/sec land in the non-compared `environment`
//              section, floor-gated against
//              bench/baselines/fleet.baseline.json.
//
// Flags: the shared --report/--quick/--jobs set (obs::BenchOptions) plus
//   --devices N   population size   (default 100000; --quick 5000)
//   --shards N    shard count       (default 0 = auto; byte-invariant)
//   --progress    print periodic progress lines during the validate run
//                 (devices done, devices/sec, ETA, per-class running
//                 energy) — observation only, the report is byte-identical
//                 with or without it
//
// Emits BENCH_fleet.json by default (or wherever --report points).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "baselines/registry.h"
#include "exp/fleet.h"
#include "exp/run_report.h"
#include "obs/bench_options.h"
#include "obs/profile.h"
#include "obs/report.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// `--flag N` / `--flag=N`, or `fallback` when absent. BenchOptions
/// deliberately ignores flags it does not know, so bench-specific knobs
/// parse here without colliding with the shared set.
std::size_t parse_size_flag(int argc, char** argv, const std::string& flag,
                            std::size_t fallback) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == flag && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else {
      continue;
    }
    return static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// One machine-parseable progress line (scripts/check.sh greps these).
void print_progress(const FleetSpec& spec, const FleetProgress& p) {
  std::string energy;
  for (std::size_t c = 0; c < p.class_energy_J.size(); ++c) {
    char item[64];
    std::snprintf(item, sizeof(item), "%s%s=%.1f", c > 0 ? "," : "",
                  spec.classes[c].name.c_str(), p.class_energy_J[c]);
    energy += item;
  }
  std::printf(
      "fleet progress devices=%zu/%zu rate=%.0f/s eta_s=%.1f energy_J=%s\n",
      p.devices_done, p.devices_total, p.devices_per_s, p.eta_s,
      energy.c_str());
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  if (opts.report_path.empty()) opts.report_path = "BENCH_fleet.json";

  // Quick mode trades population and per-device horizon for wall time —
  // the check.sh gate runs it twice (serial + parallel) on every commit.
  const std::size_t devices =
      parse_size_flag(argc, argv, "--devices", opts.quick ? 5000 : 100000);
  const Duration horizon = opts.quick ? 300.0 : 600.0;
  // One rep of 100k devices already averages over millions of slots, so
  // full mode times a single rep; quick mode takes the best of two.
  const int reps = opts.quick ? 2 : 1;

  FleetSpec spec = FleetSpec::city(devices, horizon);
  spec.shards = parse_size_flag(argc, argv, "--shards", 0);
  const FleetHarness harness(spec);
  const auto& registry = baselines::builtin_registry();

  std::printf(
      "=== fleet throughput: %zu devices x %.0f s horizon, %zu classes, "
      "%zu shards, best of %d reps ===\n",
      spec.devices, horizon, spec.classes.size(), harness.shard_count(),
      reps);

  obs::RunReport report;
  report.bench = "fleet";
  describe_fleet(report, spec);
  report.add_provenance("reps", std::to_string(reps));

  // Phase 1: correctness snapshot. Everything recorded here is
  // deterministic for ANY shard/job combination — check.sh compares a
  // serial and a parallel run of this phase bit for bit.
  FleetResult validation;
  {
    OBS_PROFILE_SCOPE("fleet.validate");
    if (has_flag(argc, argv, "--progress")) {
      FleetProgressOptions progress;
      // Quick runs finish in a couple of seconds — emit fast enough that
      // the check.sh gate always sees at least the final 100% line.
      progress.min_interval_s = opts.quick ? 0.2 : 1.0;
      progress.callback = [&spec](const FleetProgress& p) {
        print_progress(spec, p);
      };
      validation = harness.run(registry, opts.jobs, progress);
    } else {
      validation = harness.run(registry, opts.jobs);
    }
  }
  fill_fleet_sections(report, validation);
  for (const auto& agg : validation.classes) {
    std::printf(
        "%-8s %7zu devices %8zu packets  %12.1f J  %6.2f s avg delay\n",
        agg.name.c_str(), agg.devices, agg.packets, agg.network_J,
        agg.normalized_delay_s());
  }

  // Phase 2: best-of-reps timing of the identical run. Wall-clock rates
  // are machine- and load-dependent, so they live in `environment` (never
  // diffed, floor-gated only).
  {
    OBS_PROFILE_SCOPE("fleet.time");
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const FleetResult timed = harness.run(registry, opts.jobs);
      const double elapsed = seconds_since(start);
      best = std::min(best, elapsed);
      if (timed.device_meter_total_J != validation.device_meter_total_J) {
        std::printf("fleet: timing rep diverged from validation\n");
        return 1;
      }
    }
    const double devices_per_sec =
        static_cast<double>(spec.devices) / best;
    const double slots_per_sec =
        static_cast<double>(validation.total_slots) / best;
    report.add_environment("run_seconds", best);
    report.add_environment("devices_per_sec", devices_per_sec);
    report.add_environment("slots_per_sec", slots_per_sec);
    report.add_environment("shards",
                           static_cast<double>(harness.shard_count()));
    std::printf(
        "fleet    %7zu devices (%llu slots) in %6.3f s -> %8.0f devices/s, "
        "%10.0f slots/s, %.1f J total\n",
        spec.devices,
        static_cast<unsigned long long>(validation.total_slots), best,
        devices_per_sec, slots_per_sec, validation.device_meter_total_J);
  }

  obs::finalize_run_report(opts.report_path, std::move(report));
  return 0;
}
