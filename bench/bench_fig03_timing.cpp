// Fig. 3: heartbeat timing/size with foreground data traffic present.
// (a-c) the IM apps keep their fixed cycles regardless of data packets;
// (d) NetEase starts at 60 s and doubles after every 6 beats up to 480 s,
// while RenRen stays constant at 300 s.
#include <cstdio>

#include "android/pcap.h"
#include "common/table.h"
#include "obs/bench_options.h"
#include "obs/report.h"

namespace {

using namespace etrain;

void fixed_apps_with_data() {
  print_banner(
      "Fig. 3(a-c): fixed cycles are undisturbed by foreground data");
  const android::PcapAnalyzer analyzer;
  Table table({"app", "heartbeats", "data pkts", "cycle (no data)",
               "cycle (with data)", "fixed?"});
  std::uint64_t seed = 100;
  for (const auto& spec : {apps::qq_spec(), apps::wechat_spec(),
                           apps::whatsapp_spec()}) {
    Rng rng_a(seed);
    Rng rng_b(seed++);
    const auto quiet =
        android::synthesize_capture(spec, hours(2.0), rng_a, false);
    const auto busy =
        android::synthesize_capture(spec, hours(2.0), rng_b, true);
    const auto e_quiet = analyzer.analyze_flow(spec.app_name, quiet);
    const auto e_busy = analyzer.analyze_flow(spec.app_name, busy);
    table.add_row({spec.app_name, Table::integer((long long)e_busy.heartbeats),
                   Table::integer((long long)(busy.size() - e_busy.heartbeats)),
                   Table::num(e_quiet.median_cycle, 1) + "s",
                   Table::num(e_busy.median_cycle, 1) + "s",
                   e_busy.fixed_cycle ? "yes" : "no"});
  }
  table.print();
}

void netease_doubling() {
  print_banner("Fig. 3(d): NetEase doubling cycle vs. RenRen constant cycle");
  const auto netease = apps::netease_spec();
  Table table({"beat #", "NetEase time", "NetEase gap_s", "RenRen time",
               "RenRen gap_s"});
  const auto renren = apps::renren_spec();
  TimePoint prev_n = 0.0, prev_r = 0.0;
  for (int j = 0; j <= 24; ++j) {
    const TimePoint tn = netease.beat_time(j, 0.0);
    const TimePoint tr = renren.beat_time(j, 0.0);
    table.add_row({Table::integer(j), format_time(tn),
                   j > 0 ? Table::num(tn - prev_n, 0) : "-", format_time(tr),
                   j > 0 ? Table::num(tr - prev_r, 0) : "-"});
    prev_n = tn;
    prev_r = tr;
  }
  table.print();
  std::printf(
      "paper: NetEase 60 s initially, doubling after every 6 beats to a 480 "
      "s cap; RenRen constant at 300 s.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Fig. 3 — heartbeat timing measurements "
      "===\n");
  fixed_apps_with_data();
  netease_doubling();
  if (opts.reporting()) {
    // No radio model runs here — the report carries the measured cycle
    // medians as plain results (provenance + results sections only).
    const android::PcapAnalyzer analyzer;
    obs::RunReport report;
    report.bench = "fig03_timing";
    report.add_provenance("capture_horizon_s", "7200");
    std::uint64_t seed = 100;
    for (const auto& spec : {apps::qq_spec(), apps::wechat_spec(),
                             apps::whatsapp_spec()}) {
      Rng rng(seed++);
      const auto busy =
          android::synthesize_capture(spec, hours(2.0), rng, true);
      const auto e = analyzer.analyze_flow(spec.app_name, busy);
      report.add_result(std::string(spec.app_name) + "_median_cycle_s",
                        e.median_cycle);
      report.add_result(std::string(spec.app_name) + "_heartbeats",
                        static_cast<double>(e.heartbeats));
    }
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
