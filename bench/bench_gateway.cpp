// Live gateway bench: how many loopback clients and scheduled packets per
// wall-clock second the etrain_gatewayd event loop sustains, and the
// enqueue->transmit batching latency distribution it delivers.
//
// Topology: the Gateway runs on a worker thread (epoll loop, WallClock
// compressed by --time-scale); the seeded load generator (gateway/loadgen)
// drives it from this thread over loopback TCP — connect+HELLO storm,
// scripted HEARTBEAT/CARGO traffic paced at the same compression, BYE and
// ACK drain. Every cargo packet must come back as an ACK (the shutdown
// flush guarantees it), every client must connect, and the gateway's own
// shutdown report must satisfy report_check's gateway invariants — the
// bench exits nonzero otherwise.
//
// Wall-clock rates land in the non-compared `environment` section and are
// floor-gated by check.sh against bench/baselines/gateway.baseline.json:
//   connections_per_sec        connect+HELLO storm rate
//   scheduled_packets_per_sec  ACKed cargo per wall second (drive+drain)
//   p99_latency_inverse_per_s  1 / p99 batching latency — a floor on the
//                              inverse bounds the latency from above
//
// The bench also exercises the live telemetry plane under load: the
// gateway serves /metrics from the same epoll loop while the storm runs, a
// scraper thread polls it mid-run, and the bench asserts (a) every mid-run
// gateway.* counter is <= the final report's value (counters are monotone)
// and (b) a final scrape taken after the BYE drain — when every session
// has folded — agrees exactly with the shutdown stats.
//
// With --shards N the gateway serves the same load from N worker shards
// (SO_REUSEPORT listeners, per-shard epoll loops and clocks;
// docs/gateway.md#sharding). The report's environment then also carries
// `scheduled_packets_per_sec_shards<N>` / `p99_latency_inverse_per_s_shards<N>`
// so check.sh can gate the multi-shard scaling floor from the same
// baseline file as the 1-shard floors.
//
// Flags: the shared --report/--quick/--jobs set (obs::BenchOptions) plus
//   --clients N       population size      (default 2000; --quick 1000)
//   --duration S      clock seconds driven (default 180; --quick 90)
//   --time-scale S    clock s per wall s   (default 60)
//   --seed N          script seed          (default 42)
//   --port N          gateway port         (default 0 = ephemeral)
//   --shards N        gateway worker shards (default 1)
//
// Emits BENCH_gateway.json by default (or wherever --report points).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "gateway/gateway.h"
#include "gateway/loadgen.h"
#include "obs/bench_options.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "obs/stats_server.h"

namespace {

using namespace etrain;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// `--flag N` / `--flag=N`, or `fallback` when absent (BenchOptions
/// ignores unknown flags, so bench-specific knobs parse here).
double parse_double_flag(int argc, char** argv, const std::string& flag,
                         double fallback) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == flag && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
    } else {
      continue;
    }
    return std::strtod(value.c_str(), nullptr);
  }
  return fallback;
}

/// First sample of metric `name` in a Prometheus text body; -1 when the
/// metric is absent (comment lines never match — they start with '#').
double prom_value(const std::string& body, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t pos = 0;
  while (pos < body.size()) {
    if (body.compare(pos, needle.size(), needle) == 0) {
      return std::strtod(body.c_str() + pos + needle.size(), nullptr);
    }
    const std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  return -1.0;
}

/// Interpolation-free quantile of an already-sorted sample.
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  if (opts.report_path.empty()) opts.report_path = "BENCH_gateway.json";

  const int clients = static_cast<int>(
      parse_double_flag(argc, argv, "--clients", opts.quick ? 1000 : 2000));
  const double duration =
      parse_double_flag(argc, argv, "--duration", opts.quick ? 90.0 : 180.0);
  const double time_scale =
      parse_double_flag(argc, argv, "--time-scale", 60.0);
  const auto seed = static_cast<std::uint64_t>(
      parse_double_flag(argc, argv, "--seed", 42.0));
  const int port =
      static_cast<int>(parse_double_flag(argc, argv, "--port", 0.0));
  const int shards =
      static_cast<int>(parse_double_flag(argc, argv, "--shards", 1.0));

  gateway::GatewayConfig config;
  config.time_scale = time_scale;
  config.port = port;
  config.shards = shards;
  config.stats_port = 0;  // the bench always scrapes its own gateway
  const auto& registry = etrain::baselines::builtin_registry();
  gateway::Gateway gw(registry, config);
  const int bound_port = gw.open();
  const int stats_port = gw.stats_port();

  std::printf(
      "=== gateway: %d loopback clients x %.0f clock s at %.0fx "
      "compression, %d shard%s%s, port %d (stats %d) ===\n",
      clients, duration, time_scale, shards, shards == 1 ? "" : "s",
      gw.handoff_mode() ? " (hand-off)" : "", bound_port, stats_port);

  std::exception_ptr gateway_error;
  std::thread server([&] {
    try {
      gw.run();
    } catch (...) {
      gateway_error = std::current_exception();
    }
  });

  // Mid-run scraper: polls /healthz until the loop answers, then keeps
  // fetching /metrics while the load generator storms the same epoll
  // loop. The last body it lands is the "mid-run" snapshot compared
  // against the final report below.
  std::atomic<bool> stop_scraper{false};
  std::atomic<std::size_t> scrapes{0};
  std::mutex scrape_mutex;
  std::string mid_scrape;
  std::thread scraper([&] {
    while (!stop_scraper.load() &&
           obs::http_get(stats_port, "/healthz", nullptr) != 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    while (!stop_scraper.load()) {
      std::string body;
      if (obs::http_get(stats_port, "/metrics", &body) == 200) {
        std::lock_guard<std::mutex> lock(scrape_mutex);
        mid_scrape = std::move(body);
        scrapes.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });

  gateway::LoadGenConfig load;
  load.port = bound_port;
  load.clients = clients;
  load.duration = duration;
  load.time_scale = time_scale;
  load.seed = seed;

  gateway::LoadGenResult result;
  const auto load_start = std::chrono::steady_clock::now();
  {
    OBS_PROFILE_SCOPE("gateway.load");
    result = gateway::run_load(load);
  }
  const double load_seconds = seconds_since(load_start);

  stop_scraper.store(true);
  scraper.join();
  // Final scrape: the load generator has BYEd every client, so every
  // session has folded — the live counters must agree exactly with the
  // shutdown stats now.
  // With shards, a worker publishes its snapshot at its next epoll wake
  // after the last close, so poll until the aggregated connection gauge
  // reaches zero (each published snapshot is internally consistent: its
  // counters and connection count come from one wake).
  std::string final_scrape;
  int final_status = 0;
  for (int attempt = 0; attempt < 500; ++attempt) {
    final_status = obs::http_get(stats_port, "/metrics", &final_scrape);
    if (final_status == 200 &&
        prom_value(final_scrape, "etrain_gateway_connections") == 0.0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  gw.request_stop();
  server.join();
  if (gateway_error) std::rethrow_exception(gateway_error);

  const gateway::GatewayStats& stats = gw.stats();
  std::sort(result.latencies.begin(), result.latencies.end());
  const double p50 = quantile(result.latencies, 0.50);
  const double p95 = quantile(result.latencies, 0.95);
  const double p99 = quantile(result.latencies, 0.99);
  const double drive_drain_seconds = load_seconds - result.connect_seconds;
  const double connections_per_sec =
      static_cast<double>(result.clients_connected) /
      std::max(1e-9, result.connect_seconds);
  const double scheduled_per_sec =
      static_cast<double>(result.acks_received) /
      std::max(1e-9, drive_drain_seconds);

  std::printf(
      "gateway  %zu/%d clients in %.3f s (%.0f conn/s), %zu heartbeats, "
      "%zu cargo -> %zu acks (%zu boarded) in %.3f s (%.0f pkts/s)\n",
      result.clients_connected, clients, result.connect_seconds,
      connections_per_sec, result.heartbeats_sent, result.cargos_sent,
      result.acks_received, result.acks_boarded, drive_drain_seconds,
      scheduled_per_sec);
  std::printf(
      "latency  p50 %.3f s  p95 %.3f s  p99 %.3f s (clock seconds)\n", p50,
      p95, p99);

  bool failed = false;
  if (!result.all_connected(load)) {
    std::printf("gateway: only %zu of %d clients connected\n",
                result.clients_connected, clients);
    failed = true;
  }
  if (result.acks_received != result.cargos_sent) {
    std::printf("gateway: %zu cargo sent but %zu acks received\n",
                result.cargos_sent, result.acks_received);
    failed = true;
  }
  if (result.protocol_errors != 0 || stats.protocol_errors != 0) {
    std::printf("gateway: protocol errors (client %zu, server %llu)\n",
                result.protocol_errors,
                static_cast<unsigned long long>(stats.protocol_errors));
    failed = true;
  }

  // Telemetry-plane checks: the loop served /metrics while under load,
  // every mid-run counter is bounded by the final totals (monotonicity),
  // and the post-drain scrape agrees exactly with the shutdown stats.
  if (scrapes.load() == 0) {
    std::printf("gateway: no mid-run /metrics scrape landed\n");
    failed = true;
  }
  if (final_status != 200) {
    std::printf("gateway: final /metrics scrape failed (status %d)\n",
                final_status);
    failed = true;
  }
  const struct {
    const char* metric;
    double final_total;
  } counter_checks[] = {
      {"etrain_gateway_clients_accepted_total",
       static_cast<double>(stats.clients_accepted)},
      {"etrain_gateway_heartbeats_total",
       static_cast<double>(stats.heartbeats)},
      {"etrain_gateway_packets_enqueued_total",
       static_cast<double>(stats.packets_enqueued)},
      {"etrain_gateway_packets_scheduled_total",
       static_cast<double>(stats.packets_enqueued)},  // all released by BYE
      {"etrain_gateway_protocol_errors_total",
       static_cast<double>(stats.protocol_errors)},
  };
  for (const auto& check : counter_checks) {
    const double mid = prom_value(mid_scrape, check.metric);
    const double fin = prom_value(final_scrape, check.metric);
    if (mid < 0.0 || fin < 0.0) {
      std::printf("gateway: %s missing from a scrape\n", check.metric);
      failed = true;
      continue;
    }
    if (mid > check.final_total) {
      std::printf("gateway: mid-run %s = %.0f exceeds final total %.0f\n",
                  check.metric, mid, check.final_total);
      failed = true;
    }
    if (fin != check.final_total) {
      std::printf(
          "gateway: post-drain %s = %.0f disagrees with shutdown total "
          "%.0f\n",
          check.metric, fin, check.final_total);
      failed = true;
    }
  }
  std::printf("scrapes  %zu mid-run /metrics fetches, counters consistent "
              "at shutdown: %s\n",
              scrapes.load(), failed ? "NO" : "yes");

  obs::RunReport report = gw.build_report();
  report.bench = "gateway";
  report.add_provenance("clients", std::to_string(clients));
  report.add_provenance("duration_s", std::to_string(duration));
  report.add_provenance("seed", std::to_string(seed));
  report.add_environment("connect_seconds", result.connect_seconds);
  report.add_environment("drive_drain_seconds", drive_drain_seconds);
  report.add_environment("connections_per_sec", connections_per_sec);
  report.add_environment("scheduled_packets_per_sec", scheduled_per_sec);
  report.add_environment("latency_p50_s", p50);
  report.add_environment("latency_p95_s", p95);
  report.add_environment("latency_p99_s", p99);
  report.add_environment("p99_latency_inverse_per_s",
                         1.0 / std::max(1e-9, p99));
  report.add_environment("mid_run_scrapes",
                         static_cast<double>(scrapes.load()));
  if (shards > 1) {
    // Shard-suffixed copies of the gated rates, so one baseline file can
    // carry both the 1-shard floors and the multi-shard scaling floors.
    const std::string suffix = "_shards" + std::to_string(shards);
    report.add_environment("scheduled_packets_per_sec" + suffix,
                           scheduled_per_sec);
    report.add_environment("p99_latency_inverse_per_s" + suffix,
                           1.0 / std::max(1e-9, p99));
  }
  obs::finalize_run_report(opts.report_path, std::move(report));
  return failed ? 1 : 0;
}
