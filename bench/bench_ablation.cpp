// Ablation study (extension beyond the paper): quantifies each design
// choice DESIGN.md calls out, on the standard lambda = 0.08 scenario.
//
//   1. drip deferral — Algorithm 1 as literally written (drip the moment
//      P(t) >= Theta) vs. the implementation behaviour of Sec. V-1
//      (decisions target "after next heartbeat");
//   2. the batch limit k = 1 vs. 20 vs. unlimited;
//   3. heartbeat awareness removed entirely (TailEnder-style deadline
//      batching) and the clairvoyant Oracle bound;
//   4. radio model sensitivity: measured-device vs. simulation vs. LTE DRX
//      parameters under the identical eTrain schedule.
#include <cstdio>
#include <memory>

#include "baselines/baseline_policy.h"
#include "baselines/etime_policy.h"
#include "baselines/oracle_policy.h"
#include "baselines/peres_policy.h"
#include "baselines/tailender_policy.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/sweeps.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

Scenario standard_scenario(radio::PowerModel model) {
  ScenarioConfig cfg;
  cfg.lambda = 0.08;
  cfg.model = model;
  return make_scenario(cfg);
}

void run_and_report(Table& table, const Scenario& s,
                    core::SchedulingPolicy& policy, const std::string& label) {
  const auto m = run_slotted(s, policy);
  table.add_row({label, Table::num(m.network_energy(), 1),
                 Table::num(m.data_energy(), 1),
                 Table::num(m.normalized_delay, 1),
                 Table::num(m.violation_ratio, 3)});
}

void ablate_deferral(const Scenario& s) {
  print_banner("ablation 1: relief-valve deferral to the next train");
  Table table({"variant", "energy_J", "data_J", "delay_s", "violation"});
  for (const double window : {0.0, 30.0, 60.0, 90.0}) {
    core::EtrainScheduler p(
        {.theta = 1.0, .k = 20, .drip_defer_window = window});
    run_and_report(table, s, p,
                   window == 0.0
                       ? "literal Algorithm 1 (no deferral)"
                       : "defer drips when train < " +
                             Table::num(window, 0) + " s away");
  }
  table.print();
  std::printf(
      "deferring the relief valve to an imminent train (Sec. V-1's "
      "\"transmit after next heartbeat\") is worth hundreds of joules.\n");
}

void ablate_k(const Scenario& s) {
  print_banner("ablation 2: the heartbeat batch limit k");
  Table table({"variant", "energy_J", "data_J", "delay_s", "violation"});
  for (const std::size_t k :
       {std::size_t{1}, std::size_t{4}, std::size_t{20},
        core::EtrainConfig::unlimited_k()}) {
    core::EtrainScheduler p({.theta = 1.0, .k = k});
    const std::string label = (k == core::EtrainConfig::unlimited_k())
                                  ? "k = infinity (deployed setting)"
                                  : "k = " + std::to_string(k);
    run_and_report(table, s, p, label);
  }
  table.print();
}

void ablate_heartbeat_awareness(const Scenario& s) {
  print_banner("ablation 3: heartbeat awareness");
  Table table({"variant", "energy_J", "data_J", "delay_s", "violation"});
  baselines::BaselinePolicy baseline;
  run_and_report(table, s, baseline, "Baseline (no batching at all)");
  baselines::TailEnderPolicy tailender;
  run_and_report(table, s, tailender,
                 "TailEnder (deadline batching, train-blind)");
  core::EtrainScheduler etrain({.theta = 1.0, .k = 20});
  run_and_report(table, s, etrain, "eTrain (train-aware, Theta=1)");
  core::EtrainScheduler etrain_patient({.theta = 5.0, .k = 20});
  run_and_report(table, s, etrain_patient,
                 "eTrain (train-aware, Theta=5, TailEnder-like delay)");
  baselines::OraclePolicy oracle;
  run_and_report(table, s, oracle, "Oracle (clairvoyant bound)");
  table.print();
  std::printf(
      "riding the already-paid heartbeat tails is what separates eTrain "
      "from deadline-only batching.\n");
}

void ablate_radio_model() {
  print_banner("ablation 4: radio model sensitivity (same eTrain schedule)");
  Table table({"radio model", "energy_J", "data_J", "delay_s", "violation"});
  struct Named {
    const char* name;
    radio::PowerModel model;
  };
  for (const auto& [name, model] :
       {Named{"measured Galaxy S4 3G (delta_D=10, delta_F=7.5)",
              radio::PowerModel::PaperUmts3G()},
        Named{"paper simulation set (delta_D=2.5, delta_F=7.5)",
              radio::PowerModel::PaperSimulation()},
        Named{"3G with promotion delays", radio::PowerModel::Realistic3G()},
        Named{"LTE DRX", radio::PowerModel::LteDrx()}}) {
    const Scenario s = standard_scenario(model);
    core::EtrainScheduler p({.theta = 1.0, .k = 20});
    run_and_report(table, s, p, name);
  }
  table.print();
  std::printf(
      "the scheduler is radio-agnostic; shorter tails shrink every number "
      "but preserve the ordering.\n");
}

void ablate_fast_dormancy() {
  print_banner(
      "ablation 5: fast dormancy vs. piggybacking (related work, Sec. VII)");
  // Fast dormancy is the other cure for tail waste: drop the channel right
  // after each transmission. It saves tails but promotes on every send —
  // which the paper argues "may lead to frequent radio interface state
  // transitions" — and it cannot help the heartbeats' own signaling.
  Table table({"configuration", "energy_J", "tails_J", "promo_J",
               "cold starts", "delay_s"});
  struct Config {
    const char* name;
    radio::PowerModel model;
    bool etrain;
  };
  for (const auto& cfg :
       {Config{"normal radio + Baseline", radio::PowerModel::Realistic3G(),
               false},
        Config{"fast dormancy + Baseline",
               radio::PowerModel::FastDormancy3G(), false},
        Config{"normal radio + eTrain", radio::PowerModel::Realistic3G(),
               true},
        Config{"fast dormancy + eTrain",
               radio::PowerModel::FastDormancy3G(), true}}) {
    const Scenario s = standard_scenario(cfg.model);
    std::unique_ptr<core::SchedulingPolicy> policy;
    if (cfg.etrain) {
      policy = std::make_unique<core::EtrainScheduler>(
          core::EtrainConfig{.theta = 1.0, .k = 20});
    } else {
      policy = std::make_unique<baselines::BaselinePolicy>();
    }
    const auto m = run_slotted(s, *policy);
    table.add_row({cfg.name, Table::num(m.network_energy(), 1),
                   Table::num(m.energy.tail_energy(), 1),
                   Table::num(m.energy.setup_energy, 1),
                   Table::integer(static_cast<long long>(
                       m.energy.cold_starts)),
                   Table::num(m.normalized_delay, 1)});
  }
  table.print();
  std::printf(
      "fast dormancy trims joules but multiplies cold starts (signaling "
      "storms on the RNC) and adds per-send promotion latency; eTrain keeps "
      "the tail mechanism and reuses it instead.\n");
}

void ablate_prediction_accuracy() {
  print_banner(
      "ablation 6: what if bandwidth prediction were perfect? (Sec. IV)");
  // PerES/eTime lean on instantaneous bandwidth estimates; the paper argues
  // such estimates are inaccurate in practice and makes eTrain channel-
  // oblivious. Re-run the channel-driven policies with noise-free
  // estimates: even a perfect oracle estimate barely moves them, because
  // tails — not transmission timing — dominate the bill.
  Table table({"policy", "estimate", "energy_J", "delay_s", "violation"});
  for (const double sigma : {0.25, 0.0}) {
    Scenario s = standard_scenario(radio::PowerModel::PaperSimulation());
    s.estimate_noise_sigma = sigma;
    const char* label = sigma > 0.0 ? "noisy (default)" : "perfect";
    {
      baselines::PerESPolicy p({.omega = 0.5});
      const auto m = run_slotted(s, p);
      table.add_row({"PerES", label, Table::num(m.network_energy(), 1),
                     Table::num(m.normalized_delay, 1),
                     Table::num(m.violation_ratio, 3)});
    }
    {
      baselines::ETimePolicy p({.v = 2.0});
      const auto m = run_slotted(s, p);
      table.add_row({"eTime", label, Table::num(m.network_energy(), 1),
                     Table::num(m.normalized_delay, 1),
                     Table::num(m.violation_ratio, 3)});
    }
    {
      core::EtrainScheduler p({.theta = 2.0, .k = 20});
      const auto m = run_slotted(s, p);
      table.add_row({"eTrain (oblivious)", label,
                     Table::num(m.network_energy(), 1),
                     Table::num(m.normalized_delay, 1),
                     Table::num(m.violation_ratio, 3)});
    }
  }
  table.print();
}

}  // namespace

int main() {
  std::printf("=== eTrain ablation studies (extension) ===\n");
  const Scenario s = standard_scenario(radio::PowerModel::PaperSimulation());
  ablate_deferral(s);
  ablate_k(s);
  ablate_heartbeat_awareness(s);
  ablate_radio_model();
  ablate_fast_dormancy();
  ablate_prediction_accuracy();
  return 0;
}
