// Ablation study (extension beyond the paper): quantifies each design
// choice DESIGN.md calls out, on the standard lambda = 0.08 scenario.
//
//   1. drip deferral — Algorithm 1 as literally written (drip the moment
//      P(t) >= Theta) vs. the implementation behaviour of Sec. V-1
//      (decisions target "after next heartbeat");
//   2. the batch limit k = 1 vs. 20 vs. unlimited;
//   3. heartbeat awareness removed entirely (TailEnder-style deadline
//      batching) and the clairvoyant Oracle bound;
//   4. radio model sensitivity: measured-device vs. simulation vs. LTE DRX
//      parameters under the identical eTrain schedule.
#include <cstdio>
#include <memory>

#include "baselines/registry.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/scenario_builder.h"
#include "exp/sweeps.h"
#include "traced_run.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

Scenario standard_scenario(radio::PowerModel model) {
  return ScenarioBuilder().lambda(0.08).model(model).build();
}

void add_report_row(Table& table, const experiments::RunMetrics& m,
                    const std::string& label) {
  table.add_row({label, Table::num(m.network_energy(), 1),
                 Table::num(m.data_energy(), 1),
                 Table::num(m.normalized_delay, 1),
                 Table::num(m.violation_ratio, 3)});
}

/// Runs one labelled policy variant per entry concurrently and reports the
/// rows in entry order — the shape every ablation section shares.
struct Variant {
  std::string label;
  std::function<std::unique_ptr<core::SchedulingPolicy>()> make;
};

void run_variants(Table& table, const Scenario& s,
                  const std::vector<Variant>& variants) {
  const auto runs = parallel_map(variants, [&](const Variant& v) {
    const auto policy = v.make();
    return run_slotted(s, *policy);
  });
  for (std::size_t i = 0; i < variants.size(); ++i) {
    add_report_row(table, runs[i], variants[i].label);
  }
}

void ablate_deferral(const Scenario& s) {
  print_banner("ablation 1: relief-valve deferral to the next train");
  Table table({"variant", "energy_J", "data_J", "delay_s", "violation"});
  std::vector<Variant> variants;
  for (const double window : {0.0, 30.0, 60.0, 90.0}) {
    variants.push_back(
        {window == 0.0 ? "literal Algorithm 1 (no deferral)"
                       : "defer drips when train < " + Table::num(window, 0) +
                             " s away",
         [window] {
           return baselines::make_policy(
               "etrain:theta=1,k=20,drip_defer_window=" +
               std::to_string(window));
         }});
  }
  run_variants(table, s, variants);
  table.print();
  std::printf(
      "deferring the relief valve to an imminent train (Sec. V-1's "
      "\"transmit after next heartbeat\") is worth hundreds of joules.\n");
}

void ablate_k(const Scenario& s) {
  print_banner("ablation 2: the heartbeat batch limit k");
  Table table({"variant", "energy_J", "data_J", "delay_s", "violation"});
  std::vector<Variant> variants;
  // In registry specs k = 0 means unlimited (the deployed setting).
  for (const int k : {1, 4, 20, 0}) {
    variants.push_back({k == 0 ? "k = infinity (deployed setting)"
                               : "k = " + std::to_string(k),
                        [k] {
                          return baselines::make_policy(
                              "etrain:theta=1,k=" + std::to_string(k));
                        }});
  }
  run_variants(table, s, variants);
  table.print();
}

void ablate_heartbeat_awareness(const Scenario& s) {
  print_banner("ablation 3: heartbeat awareness");
  Table table({"variant", "energy_J", "data_J", "delay_s", "violation"});
  const std::vector<Variant> variants = {
      {"Baseline (no batching at all)",
       [] { return baselines::make_policy("baseline"); }},
      {"TailEnder (deadline batching, train-blind)",
       [] { return baselines::make_policy("tailender"); }},
      {"eTrain (train-aware, Theta=1)",
       [] { return baselines::make_policy("etrain:theta=1,k=20"); }},
      {"eTrain (train-aware, Theta=5, TailEnder-like delay)",
       [] { return baselines::make_policy("etrain:theta=5,k=20"); }},
      {"Oracle (clairvoyant bound)",
       [] { return baselines::make_policy("oracle"); }},
  };
  run_variants(table, s, variants);
  table.print();
  std::printf(
      "riding the already-paid heartbeat tails is what separates eTrain "
      "from deadline-only batching.\n");
}

void ablate_radio_model() {
  print_banner("ablation 4: radio model sensitivity (same eTrain schedule)");
  Table table({"radio model", "energy_J", "data_J", "delay_s", "violation"});
  struct Named {
    const char* name;
    radio::PowerModel model;
  };
  const std::vector<Named> models = {
      Named{"measured Galaxy S4 3G (delta_D=10, delta_F=7.5)",
            radio::PowerModel::PaperUmts3G()},
      Named{"paper simulation set (delta_D=2.5, delta_F=7.5)",
            radio::PowerModel::PaperSimulation()},
      Named{"3G with promotion delays", radio::PowerModel::Realistic3G()},
      Named{"LTE DRX", radio::PowerModel::LteDrx()}};
  const auto runs = parallel_map(models, [](const Named& named) {
    const Scenario s = standard_scenario(named.model);
    const auto p = baselines::make_policy("etrain:theta=1,k=20");
    return run_slotted(s, *p);
  });
  for (std::size_t i = 0; i < models.size(); ++i) {
    add_report_row(table, runs[i], models[i].name);
  }
  table.print();
  std::printf(
      "the scheduler is radio-agnostic; shorter tails shrink every number "
      "but preserve the ordering.\n");
}

void ablate_fast_dormancy() {
  print_banner(
      "ablation 5: fast dormancy vs. piggybacking (related work, Sec. VII)");
  // Fast dormancy is the other cure for tail waste: drop the channel right
  // after each transmission. It saves tails but promotes on every send —
  // which the paper argues "may lead to frequent radio interface state
  // transitions" — and it cannot help the heartbeats' own signaling.
  Table table({"configuration", "energy_J", "tails_J", "promo_J",
               "cold starts", "delay_s"});
  struct Config {
    const char* name;
    radio::PowerModel model;
    bool etrain;
  };
  const std::vector<Config> configs = {
      Config{"normal radio + Baseline", radio::PowerModel::Realistic3G(),
             false},
      Config{"fast dormancy + Baseline", radio::PowerModel::FastDormancy3G(),
             false},
      Config{"normal radio + eTrain", radio::PowerModel::Realistic3G(), true},
      Config{"fast dormancy + eTrain", radio::PowerModel::FastDormancy3G(),
             true}};
  const auto runs = parallel_map(configs, [](const Config& cfg) {
    const Scenario s = standard_scenario(cfg.model);
    const auto policy =
        baselines::make_policy(cfg.etrain ? "etrain:theta=1,k=20" : "baseline");
    return run_slotted(s, *policy);
  });
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& m = runs[i];
    table.add_row({configs[i].name, Table::num(m.network_energy(), 1),
                   Table::num(m.energy.tail_energy(), 1),
                   Table::num(m.energy.setup_energy, 1),
                   Table::integer(static_cast<long long>(
                       m.energy.cold_starts)),
                   Table::num(m.normalized_delay, 1)});
  }
  table.print();
  std::printf(
      "fast dormancy trims joules but multiplies cold starts (signaling "
      "storms on the RNC) and adds per-send promotion latency; eTrain keeps "
      "the tail mechanism and reuses it instead.\n");
}

void ablate_prediction_accuracy() {
  print_banner(
      "ablation 6: what if bandwidth prediction were perfect? (Sec. IV)");
  // PerES/eTime lean on instantaneous bandwidth estimates; the paper argues
  // such estimates are inaccurate in practice and makes eTrain channel-
  // oblivious. Re-run the channel-driven policies with noise-free
  // estimates: even a perfect oracle estimate barely moves them, because
  // tails — not transmission timing — dominate the bill.
  Table table({"policy", "estimate", "energy_J", "delay_s", "violation"});
  struct Cell {
    const char* policy;
    double sigma;
    std::function<std::unique_ptr<core::SchedulingPolicy>()> make;
  };
  std::vector<Cell> cells;
  for (const double sigma : {0.25, 0.0}) {
    cells.push_back({"PerES", sigma, [] {
                       return baselines::make_policy("peres:omega=0.5");
                     }});
    cells.push_back({"eTime", sigma, [] {
                       return baselines::make_policy("etime:v=2");
                     }});
    cells.push_back({"eTrain (oblivious)", sigma, [] {
                       return baselines::make_policy("etrain:theta=2,k=20");
                     }});
  }
  const auto runs = parallel_map(cells, [](const Cell& cell) {
    Scenario s = standard_scenario(radio::PowerModel::PaperSimulation());
    s.estimate_noise_sigma = cell.sigma;
    const auto policy = cell.make();
    return run_slotted(s, *policy);
  });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& m = runs[i];
    table.add_row({cells[i].policy,
                   cells[i].sigma > 0.0 ? "noisy (default)" : "perfect",
                   Table::num(m.network_energy(), 1),
                   Table::num(m.normalized_delay, 1),
                   Table::num(m.violation_ratio, 3)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf("=== eTrain ablation studies (extension, %zu jobs) ===\n",
              default_jobs());
  const Scenario s = standard_scenario(radio::PowerModel::PaperSimulation());
  if (!opts.quick) {
    ablate_deferral(s);
    ablate_k(s);
    ablate_heartbeat_awareness(s);
    ablate_radio_model();
    ablate_fast_dormancy();
    ablate_prediction_accuracy();
  }
  obs::RunReport base;
  base.bench = "ablation";
  base.add_provenance("policy_spec", "etrain:theta=1,k=20");
  benchutil::maybe_export_traced_run(
      opts, s,
      core::EtrainConfig{.theta = 1.0, .k = 20, .drip_defer_window = 60.0},
      base.bench, std::move(base));
  return 0;
}
