// Fig. 10: the controlled experiments of Sec. VI-D, run on the full
// Android-substrate system (AlarmManager-driven train daemons, Xposed
// hooks, heartbeat monitor, Algorithm 1, broadcasts, serialized radio) with
// the measured Galaxy S4 radio parameters.
//
//   (a) impact of the number of train apps (0 = NULL .. 3): heartbeat-only
//       energy (red), additional cargo energy under eTrain (blue), average
//       delay (green). Paper: ~45 % cargo-energy saving vs. NULL, total
//       12-33 %, and delay halves from 1 train to 3.
//   (b) impact of Theta 0.1 .. 0.5: ~1200 -> ~850 J (~30 % down), delay 48
//       -> 62 s (~30 % up).
//   (c) impact of a shared deadline 10 .. 180 s: larger deadlines allow
//       more piggybacking, hence more saving.
#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/cargo_app.h"
#include "common/parallel.h"
#include "common/table.h"
#include "exp/run_report.h"
#include "net/synthetic_bandwidth.h"
#include "obs/bench_options.h"
#include "obs/trace_buffer.h"
#include "system/etrain_system.h"

namespace {

using namespace etrain;

struct BuildOptions {
  int train_count = 3;
  bool with_cargo = true;
  core::EtrainConfig scheduler{.theta = 0.2, .k = 20};
  std::optional<Duration> shared_deadline;
  Duration horizon = 7200.0;
  std::uint64_t seed = 42;
  /// Observability hooks for this run (kept null in the parallel sweeps;
  /// the --trace/--timeline run attaches a buffer + registry here).
  obs::Observers observers;
};

experiments::RunMetrics run_system(const BuildOptions& opt) {
  system::EtrainSystem::Config cfg;
  cfg.horizon = opt.horizon;
  cfg.model = radio::PowerModel::PaperUmts3G();
  cfg.service.scheduler = opt.scheduler;
  cfg.observers = opt.observers;
  cfg.attach_power_monitor = true;  // the Fig. 9 lab setup
  system::EtrainSystem sys(cfg, net::wuhan_trace());
  const auto trains = apps::default_train_specs();
  for (int i = 0; i < opt.train_count; ++i) {
    sys.add_train_app(trains[i], 5.0 * i);
  }
  if (opt.with_cargo) {
    Rng rng(opt.seed);
    auto cargo = apps::default_cargo_specs();
    for (std::size_t i = 0; i < cargo.size(); ++i) {
      if (opt.shared_deadline.has_value()) {
        cargo[i].deadline = *opt.shared_deadline;
      }
      Rng stream = rng.fork();
      auto packets = apps::generate_arrivals(
          cargo[i], static_cast<int>(i), opt.horizon, stream,
          static_cast<core::PacketId>(i) << 20);
      sys.add_cargo_app(static_cast<int>(i), *cargo[i].profile,
                        std::move(packets));
    }
  }
  return sys.run();
}

void fig10a() {
  print_banner("Fig. 10(a): impact of the number of train apps");
  // 7 independent full-system runs — NULL (cargo only) plus a
  // heartbeat-only and a full run per train count — fan out together.
  std::vector<BuildOptions> configs;
  BuildOptions null_opt;
  null_opt.train_count = 0;
  configs.push_back(null_opt);  // configs[0]: NULL, no trains
  for (int trains = 1; trains <= 3; ++trains) {
    BuildOptions hb_only;
    hb_only.train_count = trains;
    hb_only.with_cargo = false;
    configs.push_back(hb_only);  // configs[2*trains - 1]
    BuildOptions full;
    full.train_count = trains;
    configs.push_back(full);  // configs[2*trains]
  }
  const auto runs = parallel_map(
      configs, [](const BuildOptions& opt) { return run_system(opt); });

  const auto& null_run = runs[0];
  const Joules null_energy = null_run.network_energy();
  Table table({"setting", "heartbeat-only_J (red)", "cargo additional_J (blue)",
               "cargo saving vs NULL", "total_J", "total saving", "delay_s"});
  table.add_row({"NULL (no trains)", "0.0", Table::num(null_energy, 1), "-",
                 Table::num(null_energy, 1), "-",
                 Table::num(null_run.normalized_delay, 1)});
  for (int trains = 1; trains <= 3; ++trains) {
    const auto& hb_run = runs[2 * trains - 1];
    const Joules hb_energy = hb_run.network_energy();
    const auto& full_run = runs[2 * trains];
    const Joules additional = full_run.network_energy() - hb_energy;
    // "Total" compares against what the same workload would cost without
    // eTrain: NULL cargo energy plus the inevitable heartbeats.
    const Joules without = null_energy + hb_energy;
    table.add_row(
        {std::to_string(trains) + " train(s)", Table::num(hb_energy, 1),
         Table::num(additional, 1),
         Table::num(100.0 * (1.0 - additional / null_energy), 1) + " %",
         Table::num(full_run.network_energy(), 1),
         Table::num(100.0 * (1.0 - full_run.network_energy() / without), 1) +
             " %",
         Table::num(full_run.normalized_delay, 1)});
  }
  table.print();
  std::printf(
      "paper: ~45 %% cargo-energy saving regardless of train count; 12-33 %% "
      "of total; delay halves from 1 train to 3.\n");
}

void fig10b() {
  print_banner("Fig. 10(b): impact of the cost bound Theta (3 trains)");
  Table table({"theta", "total_J", "delay_s", "violation"});
  const std::vector<double> thetas = {0.1, 0.2, 0.3, 0.4, 0.5};
  const auto runs = parallel_map(thetas, [](double theta) {
    BuildOptions opt;
    opt.scheduler = {.theta = theta, .k = 20};
    return run_system(opt);
  });
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const auto& m = runs[i];
    table.add_row({Table::num(thetas[i], 1),
                   Table::num(m.network_energy(), 1),
                   Table::num(m.normalized_delay, 1),
                   Table::num(m.violation_ratio, 3)});
  }
  const double e_first = runs.front().network_energy();
  const double d_first = runs.front().normalized_delay;
  const double e_last = runs.back().network_energy();
  const double d_last = runs.back().normalized_delay;
  table.print();
  std::printf(
      "theta 0.1 -> 0.5: energy %.0f -> %.0f J (%.0f %%), delay %.0f -> %.0f "
      "s.  paper: ~1200 -> ~850 J (~30 %% down), 48 -> 62 s (~30 %% up).\n",
      e_first, e_last, 100.0 * (1.0 - e_last / e_first), d_first, d_last);
}

void fig10c() {
  print_banner("Fig. 10(c): impact of a shared deadline (3 trains)");
  Table table({"deadline_s", "total_J", "delay_s", "violation"});
  const std::vector<double> deadlines = {10.0, 30.0, 60.0,
                                         90.0, 120.0, 180.0};
  const auto runs = parallel_map(deadlines, [](double deadline) {
    BuildOptions opt;
    opt.shared_deadline = deadline;
    return run_system(opt);
  });
  for (std::size_t i = 0; i < deadlines.size(); ++i) {
    const auto& m = runs[i];
    table.add_row({Table::num(deadlines[i], 0),
                   Table::num(m.network_energy(), 1),
                   Table::num(m.normalized_delay, 1),
                   Table::num(m.violation_ratio, 3)});
  }
  table.print();
  std::printf(
      "paper: a larger deadline lets packets wait for more trains, yielding "
      "an energy-delay tradeoff similar to Theta's.\n");
}

void fig9_measurement_check() {
  print_banner(
      "Fig. 9 methodology check: Monsoon-sampled vs. analytic energy");
  BuildOptions opt;
  const auto m = run_system(opt);
  std::printf(
      "analytic meter: %s; Monsoon integral (0.1 s / 3.7 V samples): %s — "
      "difference %.2f %%\n",
      format_joules(m.energy.total_energy()).c_str(),
      format_joules(m.monsoon_energy.value()).c_str(),
      100.0 * std::abs(m.monsoon_energy.value() - m.energy.total_energy()) /
          m.energy.total_energy());
}

// One fully observed default run (3 trains, cargo, Theta = 0.2): DES
// EventFire, scheduler gates/selections, RRC transitions, heartbeat starts
// and TailCharge records all land in one buffer, exported per the flags.
void traced_run(const obs::BenchOptions& opts) {
  print_banner("traced run: default configuration, full observability");
  obs::TraceBuffer buffer;
  obs::Registry registry;
  BuildOptions opt;
  opt.observers = obs::Observers{&buffer, &registry};
  const auto m = run_system(opt);

  obs::RunSummary summary;
  summary.tail_energy_joules = m.energy.tail_energy();
  summary.network_energy_joules = m.network_energy();
  summary.transmissions = m.log.size();
  obs::export_traced_run(opts, buffer, m.log, radio::PowerModel::PaperUmts3G(),
                         m.energy.horizon, summary);

  if (opts.reporting()) {
    obs::RunReport report;
    report.bench = "fig10_controlled";
    report.add_provenance("system", "des_android_substrate");
    report.add_provenance("device_preset",
                          radio::PowerModel::PaperUmts3G().name);
    report.add_provenance("policy_spec", "etrain:theta=0.2,k=20");
    report.add_provenance("horizon_s", "7200");
    report.add_provenance("trains", "3");
    report.add_provenance("workload_seed", "42");
    experiments::fill_run_sections(report, radio::PowerModel::PaperUmts3G(),
                                   radio::PowerModel::WifiPsm(), m);
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  std::printf(
      "traced run: %s network energy, %llu transmissions, %llu scheduler "
      "slots, %llu flush selections\n",
      format_joules(m.network_energy()).c_str(),
      static_cast<unsigned long long>(m.log.size()),
      static_cast<unsigned long long>(m.observed.counter("scheduler.slots")),
      static_cast<unsigned long long>(
          m.observed.counter("service.flush_selections")));
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Fig. 10 — controlled experiments on the "
      "full system (%zu jobs) ===\n",
      default_jobs());
  fig9_measurement_check();
  if (!opts.quick) {
    fig10a();
    fig10b();
    fig10c();
  }
  if (opts.tracing() || opts.reporting()) traced_run(opts);
  return 0;
}
