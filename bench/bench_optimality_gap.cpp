// Optimality gap (extension): how close does the online Algorithm 1 get to
// the exact offline optimum of formulation (1)-(5)?
//
// The offline problem is NP-hard, so exact answers exist only for small
// instances: a 20-minute window, the 3 default trains, and a handful of
// packets. For each random instance we report
//   * the exact branch-and-bound optimum,
//   * the offline greedy heuristic,
//   * the online eTrain schedule (simulated, no future knowledge), scored
//     by the same evaluator.
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "core/offline_solver.h"
#include "exp/slotted_sim.h"
#include "obs/bench_options.h"
#include "obs/report.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

struct Instance {
  core::OfflineProblem problem;
  Scenario scenario;
};

Instance make_instance(std::uint64_t seed, int packet_count) {
  Instance inst;
  const Duration horizon = 1200.0;

  inst.problem.heartbeat_times.clear();
  const auto trains =
      apps::build_train_schedule(apps::default_train_specs(), horizon);
  for (const auto& e : trains) inst.problem.heartbeat_times.push_back(e.time);
  inst.problem.heartbeat_bytes = 100;
  inst.problem.horizon = horizon;
  inst.problem.model = radio::PowerModel::PaperUmts3G();
  inst.problem.bandwidth = 120.0e3;

  Rng rng(seed);
  for (int i = 0; i < packet_count; ++i) {
    core::Packet p;
    p.id = i;
    p.app = 0;
    p.arrival = rng.uniform(0.0, horizon - 400.0);
    p.deadline = rng.uniform(60.0, 240.0);
    p.bytes = static_cast<Bytes>(rng.truncated_normal(3000.0, 1500.0, 500.0));
    inst.problem.packets.push_back(
        core::QueuedPacket{p, &core::weibo_cost_profile()});
  }
  std::sort(inst.problem.packets.begin(), inst.problem.packets.end(),
            [](const core::QueuedPacket& a, const core::QueuedPacket& b) {
              return a.packet.arrival < b.packet.arrival;
            });
  for (std::size_t i = 0; i < inst.problem.packets.size(); ++i) {
    inst.problem.packets[i].packet.id = static_cast<core::PacketId>(i);
  }

  // Mirror the instance as a Scenario for the online run: constant
  // bandwidth so the offline evaluator and the simulator agree exactly.
  inst.scenario.horizon = horizon;
  inst.scenario.model = inst.problem.model;
  inst.scenario.trace = net::BandwidthTrace::constant(inst.problem.bandwidth,
                                                      60);
  inst.scenario.trains = trains;
  for (const auto& qp : inst.problem.packets) {
    inst.scenario.packets.push_back(qp.packet);
  }
  inst.scenario.profiles = {&core::weibo_cost_profile()};
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain extension: online vs. exact offline optimum ===\n");
  Table table({"instance", "packets", "offline exact_J", "offline greedy_J",
               "online eTrain_J", "gap", "nodes"});
  RunningStats gaps;
  for (int trial = 0; trial < 10; ++trial) {
    const int packets = 3 + trial % 5;
    const auto inst = make_instance(1000 + trial, packets);

    const auto exact = core::solve_offline_exact(inst.problem);
    const auto greedy = core::solve_offline_greedy(inst.problem);

    core::EtrainScheduler policy({.theta = 0.2, .k = 20});
    const auto online = run_slotted(inst.scenario, policy);
    // Score the online schedule with the same offline evaluator.
    std::vector<TimePoint> departures(inst.problem.packets.size(), 0.0);
    for (const auto& o : online.outcomes) {
      departures[static_cast<std::size_t>(o.id)] = o.sent;
    }
    const auto online_scored =
        core::evaluate_offline_schedule(inst.problem, departures);

    const double gap =
        exact.tail_energy > 0.0
            ? online_scored.tail_energy / exact.tail_energy
            : 1.0;
    gaps.add(gap);
    table.add_row({Table::integer(trial), Table::integer(packets),
                   Table::num(exact.tail_energy, 2),
                   Table::num(greedy.tail_energy, 2),
                   Table::num(online_scored.tail_energy, 2),
                   Table::num(gap, 3) + "x",
                   Table::integer(static_cast<long long>(
                       exact.nodes_explored))});
  }
  table.print();
  std::printf(
      "online-vs-optimal tail energy ratio: mean %.3fx, worst %.3fx over %zu "
      "instances — the channel-oblivious online rule is near-optimal when "
      "trains are the dominant structure.\n",
      gaps.mean(), gaps.max(), gaps.count());

  if (opts.reporting()) {
    obs::RunReport report;
    report.bench = "optimality_gap";
    report.add_provenance("policy_spec", "etrain:theta=0.2,k=20");
    report.add_provenance("instances", "10");
    report.add_provenance("instance_horizon_s", "1200");
    report.add_result("mean_gap", gaps.mean());
    report.add_result("worst_gap", gaps.max());
    report.add_result("instances", static_cast<double>(gaps.count()));
    obs::finalize_run_report(opts.report_path, std::move(report));
  }
  return 0;
}
