// Fig. 7: parameter analysis of eTrain's online scheduler on the 2-hour
// trace-driven simulation (lambda = 0.08, synthetic Wuhan bandwidth trace,
// the paper's simulation radio parameters).
//
//   (a) sweeping the cost bound Theta from 0 to 3 (step 0.2) at k = 20:
//       energy drops from ~1000 J to ~600 J (~40 %) while the normalized
//       delay grows from ~18 s to ~70 s;
//   (b) the E-D panel for k in {2, 4, 8, 16}: growing k dominates; the gain
//       from 2 -> 8 is large (~460 J at D = 40 s) and from 8 -> 16 tiny
//       (~30 J) — diminishing returns justify k = infinity in deployment.
#include <cstdio>

#include "baselines/registry.h"
#include "common/parallel.h"
#include "common/table.h"
#include "core/etrain_scheduler.h"
#include "exp/figure_export.h"
#include "exp/scenario_builder.h"
#include "exp/sweeps.h"
#include "traced_run.h"

namespace {

using namespace etrain;
using namespace etrain::experiments;

Scenario standard_scenario() {
  return ScenarioBuilder()
      .lambda(0.08)
      .model(radio::PowerModel::PaperSimulation())
      .build();
}

void fig7a(const Scenario& scenario) {
  print_banner("Fig. 7(a): impact of the cost bound Theta (k = 20)");
  Table table({"theta", "energy_J", "delay_s", "violation"});
  const auto frontier =
      sweep(scenario, baselines::sweep_factory("etrain", "theta"),
            linspace_step(0.0, 3.0, 0.2));
  for (const auto& p : frontier) {
    table.add_row({Table::num(p.param, 1), Table::num(p.energy, 1),
                   Table::num(p.delay, 1), Table::num(p.violation, 3)});
  }
  const EDPoint first = frontier.front();
  const EDPoint last = frontier.back();
  table.print();
  export_frontier(ensure_results_dir(), "fig07a_theta_sweep", frontier);
  std::printf(
      "theta 0 -> 3: energy %.0f -> %.0f J (%.0f %% reduction), delay %.0f "
      "-> %.0f s.  paper: ~1000 -> ~600 J (~40 %%), 18 -> 70 s.\n",
      first.energy, last.energy, 100.0 * (1.0 - last.energy / first.energy),
      first.delay, last.delay);
}

void fig7b(const Scenario& scenario) {
  print_banner("Fig. 7(b): E-D panel for k in {2, 4, 8, 16} (Theta swept)");
  Table table({"k", "theta", "energy_J", "delay_s", "violation"});
  std::vector<std::pair<int, std::vector<EDPoint>>> frontiers;
  for (const int k : {2, 4, 8, 16}) {
    auto frontier = sweep(
        scenario,
        [k](double theta) {
          return baselines::make_policy("etrain:theta=" +
                                        std::to_string(theta) +
                                        ",k=" + std::to_string(k));
        },
        linspace_step(0.0, 3.0, 0.5));
    for (const auto& p : frontier) {
      table.add_row({Table::integer(k), Table::num(p.param, 1),
                     Table::num(p.energy, 1), Table::num(p.delay, 1),
                     Table::num(p.violation, 3)});
    }
    export_frontier(ensure_results_dir(),
                    "fig07b_k" + std::to_string(k), frontier);
    frontiers.emplace_back(k, std::move(frontier));
  }
  table.print();

  print_banner("Fig. 7(b) digest: energy at normalized delay = 40 s");
  Table digest({"k", "energy_J@D=40s"});
  double e2 = 0, e8 = 0, e16 = 0;
  for (const auto& [k, frontier] : frontiers) {
    const auto at40 = frontier_at_delay(frontier, 40.0);
    digest.add_row({Table::integer(k), Table::num(at40.energy, 1)});
    if (k == 2) e2 = at40.energy;
    if (k == 8) e8 = at40.energy;
    if (k == 16) e16 = at40.energy;
  }
  digest.print();
  std::printf(
      "k 2 -> 8 saves %.0f J at D = 40 s; k 8 -> 16 saves %.0f J.  paper: "
      "~460 J and ~30 J — diminishing returns, so k = inf in deployment.\n",
      e2 - e8, e8 - e16);
}

}  // namespace

int main(int argc, char** argv) {
  const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
  std::printf(
      "=== eTrain reproduction: Fig. 7 — scheduler parameter analysis ===\n");
  const Scenario scenario = standard_scenario();
  std::printf("workload: %zu cargo packets, %zu heartbeats over %.0f s "
              "(%zu jobs)\n",
              scenario.packets.size(), scenario.trains.size(),
              scenario.horizon, default_jobs());
  if (!opts.quick) {
    fig7a(scenario);
    fig7b(scenario);
  }
  obs::RunReport base;
  base.bench = "fig07_parameters";
  base.add_provenance("policy_spec", "etrain:theta=1,k=20");
  benchutil::maybe_export_traced_run(
      opts, scenario,
      core::EtrainConfig{.theta = 1.0, .k = 20, .drip_defer_window = 60.0},
      base.bench, std::move(base));
  return 0;
}
