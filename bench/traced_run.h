// Shared --trace/--timeline/--report handling for the slotted-simulation
// benches (Figs. 7, 8, 11, the ablation study, faults, multi-interface...).
//
// The sweeps themselves stay untraced (tracing inside parallel_map would
// need one buffer per task and nobody reads thousands of near-identical
// traces); instead, when the flags ask for it, the bench performs ONE
// representative eTrain run with a TraceBuffer + Registry attached and
// exports that run's Chrome trace, power timeline and/or run report. The
// trace and report come from the same run, so report_check's --trace
// cross-validation compares like with like.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "core/etrain_scheduler.h"
#include "exp/run_report.h"
#include "exp/scenario.h"
#include "exp/slotted_sim.h"
#include "obs/bench_options.h"
#include "obs/trace_buffer.h"

namespace etrain::benchutil {

/// When opts asks for artifacts, runs `scenario` once under an eTrain
/// scheduler configured with `config`, with full observability attached,
/// and exports the requested files. No-op otherwise.
inline void maybe_export_traced_run(const obs::BenchOptions& opts,
                                    const experiments::Scenario& scenario,
                                    const core::EtrainConfig& config,
                                    const std::string& bench_name = "",
                                    obs::RunReport base = {}) {
  if (!opts.tracing() && !opts.reporting()) return;
  obs::TraceBuffer buffer;
  obs::Registry registry;
  core::EtrainScheduler policy(config);
  policy.attach_observability(&buffer, &registry);
  const auto metrics = experiments::run_slotted(
      scenario, policy, obs::Observers{&buffer, &registry});

  obs::RunSummary summary;
  summary.tail_energy_joules =
      metrics.energy.tail_energy() + metrics.wifi_energy.tail_energy();
  summary.network_energy_joules = metrics.network_energy();
  summary.transmissions = metrics.log.size() + metrics.wifi_log.size();
  obs::export_traced_run(opts, buffer, metrics.log, scenario.model,
                         metrics.energy.horizon, summary);

  if (opts.reporting()) {
    obs::RunReport report = std::move(base);
    if (report.bench.empty()) {
      report.bench = bench_name.empty() ? "traced_run" : bench_name;
    }
    experiments::describe_scenario(report, scenario);
    experiments::fill_run_sections(report, scenario, metrics);
    obs::finalize_run_report(opts.report_path, std::move(report));
  }

  const auto& snap = metrics.observed;
  std::printf(
      "traced run: %llu slots, gate open %llu (heartbeat %llu / drip %llu), "
      "piggybacked %llu, dripped %llu packets\n",
      static_cast<unsigned long long>(snap.counter("scheduler.slots")),
      static_cast<unsigned long long>(snap.counter("scheduler.gate_opens")),
      static_cast<unsigned long long>(snap.counter("scheduler.gate_heartbeat")),
      static_cast<unsigned long long>(snap.counter("scheduler.gate_drip")),
      static_cast<unsigned long long>(
          snap.counter("scheduler.packets_piggybacked")),
      static_cast<unsigned long long>(
          snap.counter("scheduler.packets_dripped")));
}

}  // namespace etrain::benchutil
