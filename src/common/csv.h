// Minimal CSV reading/writing.
//
// Used for: bandwidth traces (time,bytes_per_second), user behaviour traces
// (user_id,behavior,time,bytes), and the data series the bench binaries emit
// so plots can be regenerated outside this repo. Only the dialect we produce
// is supported: comma separation, no quoting (fields never contain commas),
// '#' comment lines, optional header row.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace etrain {

/// One parsed CSV row; fields are untyped strings.
using CsvRow = std::vector<std::string>;

/// Parses one CSV line into fields. Leading/trailing whitespace of each
/// field is trimmed.
CsvRow parse_csv_line(std::string_view line);

/// Reads a CSV file, skipping blank lines and lines starting with '#'.
/// When `skip_header` is true, drops the first non-comment row.
/// Throws std::runtime_error when the file cannot be opened.
std::vector<CsvRow> read_csv_file(const std::string& path, bool skip_header);

/// Incremental CSV writer.
class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_comment(std::string_view text);
  void write_row(const std::vector<std::string>& fields);

 private:
  void* file_;  // FILE*, kept opaque to avoid <cstdio> in the header
};

}  // namespace etrain
