// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component (packet arrivals, packet sizes, bandwidth
// fluctuations, user traces) draws from an `Rng` seeded explicitly by the
// scenario. Two runs with the same seed produce bit-identical traces, which
// the tests rely on and which makes every figure in EXPERIMENTS.md
// regenerable.
#pragma once

#include <cstdint>
#include <random>

#include "common/time.h"

namespace etrain {

/// A seedable pseudo-random generator with the distributions this project
/// needs. Wraps std::mt19937_64; the wrapper exists so call sites never
/// instantiate ad-hoc distribution objects with subtly different parameter
/// conventions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Exponential variate with the given mean (NOT rate). Used for Poisson
  /// inter-arrival times; the paper generates cargo arrivals "according to
  /// independent Poisson processes".
  double exponential_mean(double mean);

  /// Normal variate.
  double normal(double mean, double stddev);

  /// Truncated normal: redraws until the variate is >= min. The paper draws
  /// packet sizes "from truncated Normal Distribution with mean and minimum"
  /// given per app; this matches that one-sided truncation. Falls back to
  /// `min` after a bounded number of rejections so adversarial parameters
  /// (mean far below min) cannot loop forever.
  double truncated_normal(double mean, double stddev, double min);

  /// Poisson-distributed count with the given mean.
  std::int64_t poisson(double mean);

  /// Derives an independent child generator; convenient for giving each app
  /// its own stream so adding one app does not perturb another's trace.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace etrain
