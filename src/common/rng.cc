#include "common/rng.h"

#include <algorithm>
#include <cassert>

namespace etrain {

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  assert(p >= 0.0 && p <= 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

double Rng::exponential_mean(double mean) {
  assert(mean > 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  assert(stddev >= 0.0);
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::truncated_normal(double mean, double stddev, double min) {
  constexpr int kMaxRejections = 1000;
  for (int i = 0; i < kMaxRejections; ++i) {
    const double v = normal(mean, stddev);
    if (v >= min) return v;
  }
  return min;
}

std::int64_t Rng::poisson(double mean) {
  assert(mean >= 0.0);
  if (mean == 0.0) return 0;
  std::poisson_distribution<std::int64_t> dist(mean);
  return dist(engine_);
}

Rng Rng::fork() {
  // Draw two words from this engine to seed the child; splitting via the
  // parent stream keeps forks deterministic in creation order.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace etrain
