// Console table rendering for the benchmark harness.
//
// Every bench binary reproduces a table or figure from the paper as rows of
// text; this helper keeps their output aligned and uniform, e.g.:
//
//   +--------+-----------+---------+
//   | theta  | energy_J  | delay_s |
//   +--------+-----------+---------+
//   | 0.0    | 1013.2    | 18.4    |
//   ...
#pragma once

#include <string>
#include <vector>

namespace etrain {

/// Accumulates rows and renders an ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);

  /// Renders the full table (with borders) as a string.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used by bench binaries to separate figures:
///   === Fig. 7(a): impact of the cost bound Theta ===
void print_banner(const std::string& title);

}  // namespace etrain
