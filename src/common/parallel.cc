#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace etrain {

namespace {

std::atomic<std::size_t> g_jobs_override{0};

std::size_t parse_jobs_value(const std::string& text, const char* what) {
  std::size_t pos = 0;
  unsigned long value = 0;
  try {
    value = std::stoul(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || text.empty() || value == 0) {
    throw std::invalid_argument(std::string(what) + ": expected a positive " +
                                "integer, got '" + text + "'");
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  // Mix the index through the finalizer before xor-ing so that nearby
  // (base, index) pairs land far apart, then mix again: two avalanche
  // rounds decorrelate even base seeds that differ in a single bit.
  return splitmix64(base_seed ^ splitmix64(task_index));
}

std::size_t default_jobs() {
  const std::size_t override = g_jobs_override.load(std::memory_order_relaxed);
  if (override != 0) return override;
  if (const char* env = std::getenv("ETRAIN_JOBS")) {
    return parse_jobs_value(env, "ETRAIN_JOBS");
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

void set_default_jobs(std::size_t jobs) {
  g_jobs_override.store(jobs, std::memory_order_relaxed);
}

std::size_t parse_jobs_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc) {
        throw std::invalid_argument("--jobs: missing value");
      }
      return parse_jobs_value(argv[i + 1], "--jobs");
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      return parse_jobs_value(arg.substr(7), "--jobs");
    }
    if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
      return parse_jobs_value(arg.substr(2), "-j");
    }
  }
  return 0;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::logic_error("ThreadPool::submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace etrain
