// Parallel experiment execution with deterministic replay.
//
// Every evaluation artifact in this repo — the E–D frontier sweeps, the
// multi-seed replicate() runs, the bench_* drivers — is a set of
// *independent* (scenario, policy, knob, seed) simulations, so they are
// embarrassingly parallel. This module provides the one primitive they all
// share:
//
//   parallel_map(items, fn)  — apply fn to every item on a small fixed-size
//                              thread pool and return the results *in input
//                              order*, rethrowing the lowest-index exception
//                              if any task failed.
//
// Determinism is a feature (see docs/determinism.md): nothing here may make
// results depend on thread scheduling. Each task writes only its own result
// slot, items are never chunked or reordered, and tasks that need their own
// randomness derive it as Rng(task_seed(base_seed, index)) — a pure
// splitmix64 mix of the base seed and the task index — so serial
// (ETRAIN_JOBS=1) and parallel runs are byte-identical.
//
// Concurrency degree, in priority order:
//   1. the explicit `jobs` argument to parallel_map, when non-zero;
//   2. set_default_jobs(n) (the --jobs flag helper calls this);
//   3. the ETRAIN_JOBS environment variable;
//   4. std::thread::hardware_concurrency().
// With an effective degree of 1 (or a single item) parallel_map runs inline
// on the calling thread — no pool, no synchronization — which is the
// debugging escape hatch: ETRAIN_JOBS=1 makes any run single-threaded.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

// Header-only, std-only — include does not invert the layering (same rule
// that lets radio include obs/trace.h). Charges every pooled task to the
// profiler so run reports can show where sweep wall-time went.
#include "obs/profile.h"

namespace etrain {

/// The splitmix64 finalizer (Steele et al.): a bijective avalanche mix.
/// Used to derive statistically independent seeds from correlated inputs
/// (base seed, small task indices).
std::uint64_t splitmix64(std::uint64_t x);

/// Deterministic per-task seed: a pure function of the base seed and the
/// task index, independent of thread count and scheduling. Tasks inside a
/// parallel_map that need randomness must seed from this (never from a
/// shared generator, whose draw order would depend on scheduling).
std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index);

/// Effective parallelism for parallel_map calls that do not pass an explicit
/// `jobs`: set_default_jobs() override, else ETRAIN_JOBS, else
/// hardware_concurrency(). Always >= 1.
std::size_t default_jobs();

/// Process-wide override of default_jobs(); 0 restores automatic selection
/// (ETRAIN_JOBS / hardware_concurrency).
void set_default_jobs(std::size_t jobs);

/// Scans argv for `--jobs N` / `--jobs=N` / `-jN` and returns the value, or
/// 0 (= automatic) when absent. Benches call
/// `set_default_jobs(parse_jobs_flag(argc, argv))` first thing in main().
/// Throws std::invalid_argument on a malformed value.
std::size_t parse_jobs_flag(int argc, char** argv);

/// A minimal fixed-size thread pool: one shared FIFO queue, no work
/// stealing. Tasks must not throw (parallel_map catches per task before
/// submitting); an escaping exception would terminate the process.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue — every submitted task still runs — then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks on task execution.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< signals workers: work or shutdown
  std::condition_variable idle_cv_;  ///< signals wait_idle: all done
  std::size_t running_ = 0;          ///< tasks currently executing
  bool stopping_ = false;
};

namespace detail {

/// Calls fn(item, index) when the callable accepts the index, fn(item)
/// otherwise — so simple maps stay simple while seed-deriving tasks can see
/// their own index.
template <typename Fn, typename Item>
decltype(auto) invoke_map(Fn& fn, const Item& item, std::size_t index) {
  if constexpr (std::is_invocable_v<Fn&, const Item&, std::size_t>) {
    return fn(item, index);
  } else {
    return fn(item);
  }
}

}  // namespace detail

/// Applies `fn` to every element of `items` with up to `jobs` concurrent
/// tasks (0 = default_jobs()) and returns the results in input order.
///
/// - The result type must be default-constructible (every experiment result
///   struct in this repo is).
/// - `fn` is shared by all workers: it must be safe to call concurrently.
/// - If any invocation throws, the exception thrown by the *lowest index*
///   is rethrown after all tasks finish — deterministic regardless of
///   completion order.
template <typename Item, typename Fn>
auto parallel_map(const std::vector<Item>& items, Fn&& fn,
                  std::size_t jobs = 0)
    -> std::vector<std::decay_t<decltype(detail::invoke_map(
        fn, items.front(), std::size_t{0}))>> {
  using Result = std::decay_t<decltype(detail::invoke_map(
      fn, items.front(), std::size_t{0}))>;
  if (jobs == 0) jobs = default_jobs();

  std::vector<Result> results(items.size());
  if (jobs <= 1 || items.size() <= 1) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      OBS_PROFILE_SCOPE("parallel_map.task");
      results[i] = detail::invoke_map(fn, items[i], i);
    }
    return results;
  }

  std::vector<std::exception_ptr> errors(items.size());
  {
    ThreadPool pool(std::min(jobs, items.size()));
    for (std::size_t i = 0; i < items.size(); ++i) {
      pool.submit([&, i] {
        OBS_PROFILE_SCOPE("parallel_map.task");
        try {
          results[i] = detail::invoke_map(fn, items[i], i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace etrain
