#include "common/spec.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace etrain::common {

ParsedSpec parse_spec(const std::string& spec, const std::string& domain,
                      bool allow_flags) {
  ParsedSpec out;
  const auto colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (out.name.empty()) {
    throw std::invalid_argument(domain + " spec '" + spec + "': missing " +
                                domain + " name");
  }
  if (colon == std::string::npos) return out;

  const std::string tail = spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= tail.size()) {
    const std::size_t comma = tail.find(',', pos);
    const std::string item =
        tail.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? tail.size() + 1 : comma + 1;
    if (item.empty()) {
      throw std::invalid_argument(domain + " spec '" + spec +
                                  "': empty knob assignment");
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos && allow_flags) {
      if (std::find(out.flags.begin(), out.flags.end(), item) !=
          out.flags.end()) {
        throw std::invalid_argument(domain + " spec '" + spec +
                                    "': duplicate flag '" + item + "'");
      }
      out.flags.push_back(item);
      continue;
    }
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      throw std::invalid_argument(domain + " spec '" + spec + "': knob '" +
                                  item + "' is not of the form key=value");
    }
    const std::string key = item.substr(0, eq);
    const std::string value_text = item.substr(eq + 1);
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      throw std::invalid_argument(domain + " spec '" + spec + "': knob '" +
                                  key + "' has non-numeric value '" +
                                  value_text + "'");
    }
    if (!out.knobs.emplace(key, value).second) {
      throw std::invalid_argument(domain + " spec '" + spec +
                                  "': duplicate knob '" + key + "'");
    }
  }
  return out;
}

bool valid_spec_name(const std::string& name) {
  return !name.empty() && name.find(':') == std::string::npos &&
         name.find(',') == std::string::npos &&
         name.find('=') == std::string::npos;
}

}  // namespace etrain::common
