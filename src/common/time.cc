#include "common/time.h"

#include <cstdio>

namespace etrain {

std::string format_time(TimePoint t) {
  if (!std::isfinite(t)) return t > 0 ? "+inf" : "-inf";
  const bool negative = t < 0;
  double abs_t = std::fabs(t);
  const auto total_ms = static_cast<long long>(std::llround(abs_t * 1000.0));
  const long long ms = total_ms % 1000;
  const long long total_s = total_ms / 1000;
  const long long s = total_s % 60;
  const long long m = (total_s / 60) % 60;
  const long long h = total_s / 3600;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%lld:%02lld:%02lld.%03lld",
                negative ? "-" : "", h, m, s, ms);
  return buf;
}

std::string format_joules(Joules j) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f J", j);
  return buf;
}

}  // namespace etrain
