#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace etrain {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  assert(alpha > 0.0 && alpha <= 1.0);
}

void Ewma::add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double percentile(std::vector<double> samples, double p) {
  assert(p >= 0.0 && p <= 100.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(std::floor(rank));
  const auto hi_idx = std::min(lo_idx + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo_idx);
  return samples[lo_idx] * (1.0 - frac) + samples[hi_idx] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::mode_midpoint() const {
  const auto it = std::max_element(counts_.begin(), counts_.end());
  const auto idx = static_cast<double>(std::distance(counts_.begin(), it));
  return lo_ + (idx + 0.5) * width_;
}

}  // namespace etrain
