// Shared spec-string grammar for the construction registries.
//
// Both core::PolicyRegistry ("etrain:theta=2,k=3") and radio::ModelRegistry
// ("3g:paper", "lte_cdrx:drx_short=0.02,inactivity=10") name an entry and
// then override knobs. The grammar is parsed in exactly one place so both
// registries reject malformed specs with the same loud messages:
//
//   spec  := name [":" item ("," item)*]
//   item  := key "=" value          numeric knob override
//          | flag                   bare token (only when flags are allowed)
//
// The `domain` string ("policy" / "radio") only flavours the error text, so
// a typo'd policy spec still reads "policy spec '...': ..." exactly as it
// did before the parser was shared.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace etrain::common {

/// The decomposed form of one spec string.
struct ParsedSpec {
  std::string name;
  /// key=value knob overrides, in spec order collapsed to a map (duplicates
  /// are a parse error, so the map loses nothing).
  std::map<std::string, double> knobs;
  /// Bare flag tokens in spec order (empty unless `allow_flags`).
  std::vector<std::string> flags;
};

/// Parses `spec` under the grammar above. `domain` names the registry in
/// error messages ("policy", "radio"). With `allow_flags` false a bare
/// token is rejected as "not of the form key=value" (the PolicyRegistry
/// contract); with it true bare tokens collect into `flags` (the
/// ModelRegistry presets: "3g:paper"). Throws std::invalid_argument on
/// empty names, empty items, non-numeric values, and duplicate knobs or
/// flags.
ParsedSpec parse_spec(const std::string& spec, const std::string& domain,
                      bool allow_flags);

/// True when `name` is usable as a registry entry name: non-empty and free
/// of the grammar's meta characters (':', ',', '=').
bool valid_spec_name(const std::string& name);

}  // namespace etrain::common
