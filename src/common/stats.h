// Lightweight statistics helpers used by metric collection and by the
// synthetic trace generators' self-checks.
#pragma once

#include <cstddef>
#include <vector>

namespace etrain {

/// Online mean / variance / extrema accumulator (Welford's algorithm).
/// Numerically stable over millions of samples, O(1) memory.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average, the estimator PerES/eTime use for
/// "current" bandwidth. alpha in (0, 1]; larger alpha = more reactive.
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double x);
  bool empty() const { return !initialized_; }
  /// Current estimate; `fallback` when no sample has been added yet.
  double value_or(double fallback) const {
    return initialized_ ? value_ : fallback;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Exact percentile of a sample set (linear interpolation between ranks).
/// p in [0, 100]. Returns 0 for an empty sample.
double percentile(std::vector<double> samples, double p);

/// Fixed-width histogram over [lo, hi); values outside are clamped into the
/// first/last bucket. Used by trace-sanity tests and by the timing figures.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  std::size_t total() const { return total_; }
  /// Midpoint value of the bucket with the most samples (the "mode").
  double mode_midpoint() const;
  double bucket_width() const { return width_; }
  double lo() const { return lo_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace etrain
