#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace etrain {

namespace {

std::string trim(std::string_view s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return std::string(s.substr(begin, end - begin + 1));
}

}  // namespace

CsvRow parse_csv_line(std::string_view line) {
  CsvRow row;
  std::size_t start = 0;
  while (true) {
    const auto comma = line.find(',', start);
    if (comma == std::string_view::npos) {
      row.push_back(trim(line.substr(start)));
      break;
    }
    row.push_back(trim(line.substr(start, comma - start)));
    start = comma + 1;
  }
  return row;
}

std::vector<CsvRow> read_csv_file(const std::string& path, bool skip_header) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  std::vector<CsvRow> rows;
  std::string line;
  bool header_pending = skip_header;
  while (std::getline(in, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    rows.push_back(parse_csv_line(trimmed));
  }
  return rows;
}

CsvWriter::CsvWriter(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open CSV file for writing: " + path);
  }
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void CsvWriter::write_comment(std::string_view text) {
  std::fprintf(static_cast<std::FILE*>(file_), "# %.*s\n",
               static_cast<int>(text.size()), text.data());
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  auto* f = static_cast<std::FILE*>(file_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(f, "%s%s", i == 0 ? "" : ",", fields[i].c_str());
  }
  std::fputc('\n', f);
}

}  // namespace etrain
