// Simulation time primitives.
//
// The simulator runs in continuous time measured in seconds since the start
// of the simulation. We deliberately use `double` seconds rather than
// std::chrono integral ticks: the energy model integrates piecewise-linear
// power curves over arbitrary real-valued intervals, and the bandwidth trace
// is sampled at 1 Hz but interpolated continuously. Strongly typed wrappers
// keep call sites readable and prevent unit mistakes (seconds vs. joules vs.
// watts) without the friction of a full units library.
#pragma once

#include <cassert>
#include <cmath>
#include <limits>
#include <string>

namespace etrain {

/// A point in simulated time, in seconds since simulation start.
using TimePoint = double;

/// A span of simulated time, in seconds.
using Duration = double;

/// Energy in joules.
using Joules = double;

/// Power in watts.
using Watts = double;

/// Data size in bytes. Application-layer packets can be large (cloud sync),
/// so use a 64-bit count.
using Bytes = std::int64_t;

/// Bandwidth in bytes per second.
using BytesPerSecond = double;

inline constexpr TimePoint kTimeZero = 0.0;
inline constexpr TimePoint kTimeInfinity =
    std::numeric_limits<TimePoint>::infinity();

/// Converts minutes to seconds.
constexpr Duration minutes(double m) { return m * 60.0; }

/// Converts hours to seconds.
constexpr Duration hours(double h) { return h * 3600.0; }

/// Converts milliwatts to watts.
constexpr Watts milliwatts(double mw) { return mw / 1000.0; }

/// Converts kilobytes (10^3 bytes, as used by the paper's workload
/// description) to bytes.
constexpr Bytes kilobytes(double kb) {
  return static_cast<Bytes>(kb * 1000.0);
}

/// Returns true when |a - b| <= eps. Default eps is far below any physically
/// meaningful interval in this system (radio timers are >= 0.1 s).
inline bool time_approx_equal(TimePoint a, TimePoint b, double eps = 1e-6) {
  return std::fabs(a - b) <= eps;
}

/// Formats a time point as "H:MM:SS.mmm" for logs and tables.
std::string format_time(TimePoint t);

/// Formats an energy value as "x.xx J".
std::string format_joules(Joules j);

}  // namespace etrain
