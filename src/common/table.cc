#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace etrain {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto rule = [&] {
    out << '+';
    for (const auto w : widths) out << std::string(w + 2, '-') << '+';
    out << '\n';
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
  return out.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

void print_banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace etrain
