// The live gateway daemon core: a single-threaded, level-triggered epoll
// event loop serving thousands of TCP clients that speak the wire protocol
// of system/protocol.h (HELLO/HEARTBEAT/CARGO -> ACK), one ClientSession
// (HeartbeatMonitor + scheduler + modeled RRC uplink) per connection.
//
// Threading model: open()/run()/build_report() belong to one thread.
// request_stop() is the only cross-thread (and async-signal-safe) entry —
// it writes one byte to a self-pipe the loop polls. SIGINT/SIGTERM can be
// routed to it with install_signal_handlers().
//
// Shutdown is graceful: the loop stops accepting, flushes every live
// session's waiting queues through the modeled uplink (sending final
// ACKs best-effort), folds each session's transmission log into the
// gateway-wide energy ledger and meter, and — when `report_path` is set —
// writes a RunReport manifest with the `gateway` section report_check
// validates (docs/gateway.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/policy_registry.h"
#include "gateway/session.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/stats_server.h"
#include "obs/trace_buffer.h"
#include "sim/clock.h"

namespace etrain::gateway {

struct GatewayConfig {
  SessionConfig session;
  /// Clock seconds per real second for the gateway's WallClock (> 0).
  /// Load tests compress time; production runs at 1.
  double time_scale = 1.0;
  /// TCP port to listen on; 0 binds an ephemeral port (open() returns it).
  int port = 0;
  int listen_backlog = 4096;
  /// When non-empty, run() writes a RunReport manifest here on shutdown.
  std::string report_path;
  /// Bench name stamped into the report.
  std::string bench_name = "gateway";

  /// Live telemetry plane (docs/live_telemetry.md). -1 disables the
  /// stats listener; 0 binds an ephemeral port (Gateway::stats_port()
  /// reports it); open() throws — loudly — when the bind fails.
  int stats_port = -1;
  /// Tick-lag watchdog budget, REAL seconds: the loop is unhealthy when
  /// the earliest pending alarm is overdue by more than this. A trip
  /// dumps the flight recorder (once per unhealthy episode).
  double watchdog_budget_s = 5.0;
  /// Flight-recorder ring capacity, events (always on; ~40 B each).
  std::size_t flight_capacity = std::size_t{1} << 16;
  /// Where SIGUSR1 / watchdog trips dump the flight recorder
  /// (Chrome trace_event JSON).
  std::string flight_path = "gateway.flight.json";
  /// Row cap of the /sessions endpoint (top-N by queue depth).
  std::size_t sessions_top_n = 20;
};

/// Loop-wide totals. Client partition: accepted == disconnected +
/// at_shutdown once run() returns. Packet partition: enqueued ==
/// piggybacked + dripped + flushed (sessions are always flushed before
/// they fold, so nothing is left waiting).
struct GatewayStats {
  std::uint64_t clients_accepted = 0;
  std::uint64_t clients_disconnected = 0;
  std::uint64_t clients_at_shutdown = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t packets_enqueued = 0;
  std::uint64_t packets_piggybacked = 0;
  std::uint64_t packets_dripped = 0;
  std::uint64_t packets_flushed = 0;
  std::uint64_t transmissions = 0;
  /// Sum of per-session measure_energy network totals — the meter the
  /// report's ledger must re-bill.
  Joules meter_total_J = 0.0;
};

class Gateway {
 public:
  Gateway(const core::PolicyRegistry& registry, GatewayConfig config);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds + listens and creates the epoll/self-pipe plumbing. Returns the
  /// bound port. Throws std::runtime_error on any socket failure.
  int open();
  int port() const { return port_; }

  /// Serves until request_stop(); then performs the graceful shutdown
  /// described above (including the report when configured).
  void run();

  /// Stops the loop from any thread or signal handler (one pipe write).
  void request_stop();

  /// Routes SIGINT/SIGTERM to request_stop() for this instance, saving the
  /// previous dispositions. At most one Gateway may have handlers
  /// installed at a time.
  void install_signal_handlers();
  /// Restores the saved dispositions (idempotent; also run by ~Gateway).
  void restore_signal_handlers();

  const GatewayStats& stats() const { return stats_; }
  const obs::EnergyLedger& ledger() const { return ledger_; }
  sim::WallClock& clock() { return clock_; }
  obs::Registry& metrics() { return metrics_; }

  /// Bound port of the stats listener; -1 when disabled.
  int stats_port() const {
    return stats_server_.is_open() ? stats_server_.port() : -1;
  }
  /// The always-on flight recorder ring (docs/live_telemetry.md).
  const obs::TraceBuffer& flight_recorder() const { return flight_; }
  /// Healthy -> unhealthy watchdog transitions so far.
  std::uint64_t watchdog_trips() const { return watchdog_trips_; }
  /// Writes the flight recorder to `config.flight_path` as a Chrome
  /// trace_event file. Run on SIGUSR1 and on every watchdog trip; callable
  /// directly from the loop thread (tests do).
  void dump_flight_recorder();

  /// The shutdown manifest (also what run() writes to `report_path`).
  /// Meaningful after run() returned.
  obs::RunReport build_report() const;

 private:
  struct Connection;

  void accept_ready();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  /// Parses buffered frames; false = drop the connection (protocol error).
  bool dispatch_frames(Connection& conn);
  void queue_ack(Connection& conn, const ScheduledPacket& packet);
  /// Flushes the session, folds its energy, closes the socket.
  void close_connection(int fd, bool at_shutdown);
  void fold_session(ClientSession& session);
  void update_write_interest(Connection& conn);
  int wait_timeout_ms() const;

  /// Tick-lag of the loop in REAL seconds: how overdue the earliest
  /// pending alarm is (0 when idle or on time).
  double tick_lag_s() const;
  /// Evaluates the watchdog after each epoll wake: trips (dump + counter)
  /// on the healthy -> unhealthy edge, recovers with hysteresis at half
  /// the budget.
  void poll_watchdog();
  std::string render_metrics();
  obs::StatsHealth render_health();
  std::string render_sessions();

  const core::PolicyRegistry& registry_;
  GatewayConfig config_;
  sim::WallClock clock_;
  obs::Registry metrics_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int pipe_read_fd_ = -1;
  int pipe_write_fd_ = -1;
  int port_ = 0;
  bool stop_ = false;
  bool signals_installed_ = false;

  std::map<int, std::unique_ptr<Connection>> connections_;

  GatewayStats stats_;
  obs::EnergyLedger ledger_;

  /// The live telemetry plane: listener + flight recorder + watchdog.
  /// All of it only *reads* loop state — never feeds back into scheduling.
  obs::StatsServer stats_server_;
  obs::TraceBuffer flight_;
  bool watchdog_unhealthy_ = false;
  std::uint64_t watchdog_trips_ = 0;
  std::uint64_t flight_dumps_ = 0;

  /// Live counters (bumped as frames arrive, not at session fold) backing
  /// /metrics mid-run. Equal to the folded GatewayStats once every
  /// session closed. They live in their own registry so the RunReport's
  /// metrics section stays exactly what it was before the stats plane
  /// existed (the report-comparison contract).
  obs::Registry live_;
  obs::Counter* ctr_accepted_ = nullptr;
  obs::Counter* ctr_heartbeats_ = nullptr;
  obs::Counter* ctr_enqueued_ = nullptr;
  obs::Counter* ctr_scheduled_ = nullptr;
  obs::Counter* ctr_errors_ = nullptr;
};

}  // namespace etrain::gateway
