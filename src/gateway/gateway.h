// The live gateway daemon: N worker shards (gateway/shard.h), each a
// single-threaded epoll loop with its own scaled WallClock and session
// map, serving TCP clients that speak the wire protocol of
// system/protocol.h (HELLO/HEARTBEAT/CARGO -> ACK).
//
// The Gateway is the orchestrator. open() binds the listeners — one
// SO_REUSEPORT listener per shard when the kernel allows it, otherwise a
// single listener on shard 0 that deals accepted fds round-robin through
// the shards' hand-off mailboxes — and run() spawns one thread per extra
// shard, serves shard 0 on the calling thread, joins, and folds the
// shards' contributions into one GatewayStats + EnergyLedger + merged
// metrics snapshot (gateway/fold.h). With --shards 1 the fold preserves
// session close order, so the report is byte-identical to the historical
// single-loop gateway; with more shards it is a pure function of the
// session records, independent of thread interleaving.
//
// Threading model: open()/run()/build_report() belong to one thread.
// request_stop() is cross-thread (and async-signal-safe): one pipe byte
// per shard. SIGINT/SIGTERM/SIGUSR1 can be fanned out to every shard with
// install_signal_handlers().
//
// The stats plane (docs/live_telemetry.md) is served from shard 0's loop;
// its handlers aggregate shard 0's fresh state with the snapshots every
// other shard publishes after each epoll wake. /metrics keeps the
// unsharded family names as cross-shard aggregates and adds
// shard-labeled families; /healthz trips when any shard blows its
// tick-lag budget — or stops publishing long enough to look wedged.
//
// Shutdown is graceful: every shard stops accepting, flushes its live
// sessions' waiting queues through the modeled uplink (final ACKs
// best-effort), and keeps one fold record per session; the fold then
// bills them all, and — when `report_path` is set — run() writes a
// RunReport manifest with the `gateway` section report_check validates
// (docs/gateway.md).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_registry.h"
#include "gateway/fold.h"
#include "gateway/shard.h"
#include "obs/report.h"
#include "obs/stats_server.h"
#include "sim/clock.h"

namespace etrain::gateway {

class Gateway {
 public:
  /// Validates config (1 <= shards <= kMaxShards, throws
  /// std::invalid_argument otherwise) and constructs the shards.
  Gateway(const core::PolicyRegistry& registry, GatewayConfig config);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds + listens (per-shard SO_REUSEPORT listeners, or the hand-off
  /// fallback) and creates each shard's epoll/self-pipe plumbing. Returns
  /// the bound port. Throws std::runtime_error on any socket failure.
  int open();
  int port() const { return port_; }

  int shard_count() const { return config_.shards; }
  /// True when connections are dealt from shard 0's single listener
  /// instead of per-shard SO_REUSEPORT listeners. Meaningful after open().
  bool handoff_mode() const { return handoff_; }

  /// Serves until request_stop(); then performs the graceful shutdown and
  /// fold described above (including the report when configured).
  void run();

  /// Stops every shard from any thread or signal handler (pipe writes).
  void request_stop();

  /// Routes SIGINT/SIGTERM (stop) and SIGUSR1 (flight dump) to every
  /// shard's self-pipe, saving the previous dispositions. At most one
  /// Gateway may have handlers installed at a time.
  void install_signal_handlers();
  /// Restores the saved dispositions (idempotent; also run by ~Gateway).
  void restore_signal_handlers();

  /// The folded gateway-wide totals. Meaningful after run() returned.
  const GatewayStats& stats() const { return stats_; }
  const obs::EnergyLedger& ledger() const { return ledger_; }
  /// Per-session digests in fold order — which shard owned each session
  /// and what it contributed. Meaningful after run() returned.
  const std::vector<SessionDigest>& session_digests() const {
    return session_digests_;
  }
  /// Shard 0's clock (each shard owns its own; they tick independently).
  sim::WallClock& clock() { return shards_[0]->clock(); }

  /// Bound port of the stats listener; -1 when disabled.
  int stats_port() const {
    return stats_server_.is_open() ? stats_server_.port() : -1;
  }
  /// Healthy -> unhealthy watchdog transitions across all shards,
  /// summed at fold time. Meaningful after run() returned.
  std::uint64_t watchdog_trips() const { return watchdog_trips_total_; }

  /// The shutdown manifest (also what run() writes to `report_path`).
  /// Meaningful after run() returned.
  obs::RunReport build_report() const;

 private:
  /// The stats-plane handlers (run on shard 0's loop thread): shard 0
  /// contributes a fresh view, every other shard its published snapshot.
  std::vector<ShardSnapshot> shard_views();
  std::string render_metrics();
  obs::StatsHealth render_health();
  std::string render_sessions();

  const core::PolicyRegistry& registry_;
  GatewayConfig config_;
  std::vector<std::unique_ptr<GatewayShard>> shards_;

  int port_ = 0;
  bool handoff_ = false;
  bool opened_ = false;
  bool signals_installed_ = false;

  /// The stats listener, served by shard 0's loop.
  obs::StatsServer stats_server_;

  /// Fold results, filled when run() returns.
  GatewayStats stats_;
  obs::EnergyLedger ledger_;
  obs::MetricsSnapshot report_metrics_;
  std::vector<SessionDigest> session_digests_;
  std::uint64_t watchdog_trips_total_ = 0;
  std::uint64_t flight_dumps_total_ = 0;
};

}  // namespace etrain::gateway
