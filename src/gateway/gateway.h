// The live gateway daemon core: a single-threaded, level-triggered epoll
// event loop serving thousands of TCP clients that speak the wire protocol
// of system/protocol.h (HELLO/HEARTBEAT/CARGO -> ACK), one ClientSession
// (HeartbeatMonitor + scheduler + modeled RRC uplink) per connection.
//
// Threading model: open()/run()/build_report() belong to one thread.
// request_stop() is the only cross-thread (and async-signal-safe) entry —
// it writes one byte to a self-pipe the loop polls. SIGINT/SIGTERM can be
// routed to it with install_signal_handlers().
//
// Shutdown is graceful: the loop stops accepting, flushes every live
// session's waiting queues through the modeled uplink (sending final
// ACKs best-effort), folds each session's transmission log into the
// gateway-wide energy ledger and meter, and — when `report_path` is set —
// writes a RunReport manifest with the `gateway` section report_check
// validates (docs/gateway.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/policy_registry.h"
#include "gateway/session.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "sim/clock.h"

namespace etrain::gateway {

struct GatewayConfig {
  SessionConfig session;
  /// Clock seconds per real second for the gateway's WallClock (> 0).
  /// Load tests compress time; production runs at 1.
  double time_scale = 1.0;
  /// TCP port to listen on; 0 binds an ephemeral port (open() returns it).
  int port = 0;
  int listen_backlog = 4096;
  /// When non-empty, run() writes a RunReport manifest here on shutdown.
  std::string report_path;
  /// Bench name stamped into the report.
  std::string bench_name = "gateway";
};

/// Loop-wide totals. Client partition: accepted == disconnected +
/// at_shutdown once run() returns. Packet partition: enqueued ==
/// piggybacked + dripped + flushed (sessions are always flushed before
/// they fold, so nothing is left waiting).
struct GatewayStats {
  std::uint64_t clients_accepted = 0;
  std::uint64_t clients_disconnected = 0;
  std::uint64_t clients_at_shutdown = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t packets_enqueued = 0;
  std::uint64_t packets_piggybacked = 0;
  std::uint64_t packets_dripped = 0;
  std::uint64_t packets_flushed = 0;
  std::uint64_t transmissions = 0;
  /// Sum of per-session measure_energy network totals — the meter the
  /// report's ledger must re-bill.
  Joules meter_total_J = 0.0;
};

class Gateway {
 public:
  Gateway(const core::PolicyRegistry& registry, GatewayConfig config);
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds + listens and creates the epoll/self-pipe plumbing. Returns the
  /// bound port. Throws std::runtime_error on any socket failure.
  int open();
  int port() const { return port_; }

  /// Serves until request_stop(); then performs the graceful shutdown
  /// described above (including the report when configured).
  void run();

  /// Stops the loop from any thread or signal handler (one pipe write).
  void request_stop();

  /// Routes SIGINT/SIGTERM to request_stop() for this instance, saving the
  /// previous dispositions. At most one Gateway may have handlers
  /// installed at a time.
  void install_signal_handlers();
  /// Restores the saved dispositions (idempotent; also run by ~Gateway).
  void restore_signal_handlers();

  const GatewayStats& stats() const { return stats_; }
  const obs::EnergyLedger& ledger() const { return ledger_; }
  sim::WallClock& clock() { return clock_; }
  obs::Registry& metrics() { return metrics_; }

  /// The shutdown manifest (also what run() writes to `report_path`).
  /// Meaningful after run() returned.
  obs::RunReport build_report() const;

 private:
  struct Connection;

  void accept_ready();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  /// Parses buffered frames; false = drop the connection (protocol error).
  bool dispatch_frames(Connection& conn);
  void queue_ack(Connection& conn, const ScheduledPacket& packet);
  /// Flushes the session, folds its energy, closes the socket.
  void close_connection(int fd, bool at_shutdown);
  void fold_session(ClientSession& session);
  void update_write_interest(Connection& conn);
  int wait_timeout_ms() const;

  const core::PolicyRegistry& registry_;
  GatewayConfig config_;
  sim::WallClock clock_;
  obs::Registry metrics_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int pipe_read_fd_ = -1;
  int pipe_write_fd_ = -1;
  int port_ = 0;
  bool stop_ = false;
  bool signals_installed_ = false;

  std::map<int, std::unique_ptr<Connection>> connections_;

  GatewayStats stats_;
  obs::EnergyLedger ledger_;
};

}  // namespace etrain::gateway
