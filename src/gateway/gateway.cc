#include "gateway/gateway.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/exporters.h"
#include "obs/prom.h"
#include "radio/energy_meter.h"

namespace etrain::gateway {

namespace {

/// The active gateway's self-pipe write end, for the signal handler. Only
/// one Gateway installs handlers at a time (install_signal_handlers
/// enforces it), so a single slot suffices. sig_atomic_t-free: an int
/// store/load is a single word on every platform we build for, and the
/// handler only reads it.
volatile int g_signal_write_fd = -1;
struct sigaction g_old_sigint;
struct sigaction g_old_sigterm;
struct sigaction g_old_sigusr1;

/// Self-pipe bytes: 1 = stop the loop, 2 = dump the flight recorder.
constexpr char kPipeStop = 1;
constexpr char kPipeFlightDump = 2;

void signal_to_pipe(int sig) {
  const int fd = g_signal_write_fd;
  if (fd < 0) return;
  const char byte = sig == SIGUSR1 ? kPipeFlightDump : kPipeStop;
  // Best-effort; EAGAIN means a stop is already pending. Errno must be
  // preserved for the interrupted code.
  const int saved = errno;
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  errno = saved;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("gateway: fcntl(O_NONBLOCK) failed");
  }
}

/// Upper bounds for the enqueue->transmit latency histogram, in clock
/// seconds: sub-second drips up to multi-cycle waits.
std::vector<double> latency_bounds() {
  return {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0,
          30.0, 45.0, 60.0, 90.0, 120.0, 180.0, 300.0, 600.0};
}

}  // namespace

/// Per-connection state. Address-stable (held by unique_ptr) because the
/// session's transmit callback captures a pointer to it.
struct Gateway::Connection {
  int fd = -1;
  system::wire::FrameReader reader;
  std::unique_ptr<ClientSession> session;
  /// Outbound ACK bytes not yet accepted by the kernel.
  std::string outbuf;
  std::size_t out_off = 0;
  bool want_write = false;

  bool has_backlog() const { return out_off < outbuf.size(); }
};

Gateway::Gateway(const core::PolicyRegistry& registry, GatewayConfig config)
    : registry_(registry),
      config_(std::move(config)),
      clock_(config_.time_scale),
      flight_(config_.flight_capacity) {}

Gateway::~Gateway() {
  restore_signal_handlers();
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    ::close(fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (pipe_read_fd_ >= 0) ::close(pipe_read_fd_);
  if (pipe_write_fd_ >= 0) ::close(pipe_write_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

int Gateway::open() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw std::runtime_error("gateway: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw std::runtime_error("gateway: bind() failed");
  }
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    throw std::runtime_error("gateway: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    throw std::runtime_error("gateway: getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    throw std::runtime_error("gateway: pipe() failed");
  }
  pipe_read_fd_ = pipe_fds[0];
  pipe_write_fd_ = pipe_fds[1];
  set_nonblocking(pipe_read_fd_);
  set_nonblocking(pipe_write_fd_);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("gateway: epoll_create1() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = pipe_read_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, pipe_read_fd_, &ev);

  // Touch the metrics so the report always carries the same shape.
  metrics_.histogram("gateway.latency_s", latency_bounds());

  // Live counters for the stats plane (separate registry; see gateway.h).
  ctr_accepted_ = &live_.counter("gateway.clients_accepted");
  ctr_heartbeats_ = &live_.counter("gateway.heartbeats");
  ctr_enqueued_ = &live_.counter("gateway.packets_enqueued");
  ctr_scheduled_ = &live_.counter("gateway.packets_scheduled");
  ctr_errors_ = &live_.counter("gateway.protocol_errors");

  if (config_.stats_port >= 0) {
    obs::StatsHandlers handlers;
    handlers.metrics_text = [this] { return render_metrics(); };
    handlers.health = [this] { return render_health(); };
    handlers.sessions_json = [this] { return render_sessions(); };
    stats_server_.open(config_.stats_port, std::move(handlers));
    stats_server_.register_with(epoll_fd_);
  }
  return port_;
}

void Gateway::request_stop() {
  if (pipe_write_fd_ < 0) {
    stop_ = true;
    return;
  }
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(pipe_write_fd_, &byte, 1);
}

void Gateway::install_signal_handlers() {
  if (signals_installed_) return;
  if (g_signal_write_fd >= 0) {
    throw std::runtime_error(
        "gateway: another Gateway already owns the signal handlers");
  }
  g_signal_write_fd = pipe_write_fd_;
  struct sigaction sa{};
  sa.sa_handler = signal_to_pipe;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, &g_old_sigint);
  ::sigaction(SIGTERM, &sa, &g_old_sigterm);
  ::sigaction(SIGUSR1, &sa, &g_old_sigusr1);
  signals_installed_ = true;
}

void Gateway::restore_signal_handlers() {
  if (!signals_installed_) return;
  ::sigaction(SIGINT, &g_old_sigint, nullptr);
  ::sigaction(SIGTERM, &g_old_sigterm, nullptr);
  ::sigaction(SIGUSR1, &g_old_sigusr1, nullptr);
  g_signal_write_fd = -1;
  signals_installed_ = false;
}

int Gateway::wait_timeout_ms() const {
  const std::optional<TimePoint> next = clock_.next_alarm();
  if (!next.has_value()) return 1000;  // idle heartbeat of the loop itself
  const double wait_s = clock_.real_seconds_until(*next);
  if (wait_s <= 0.0) return 0;
  // Round up so we never spin-wake just before the deadline; cap so a far
  // alarm cannot make the loop unresponsive to anything epoll misses.
  return static_cast<int>(std::min(1000.0, std::ceil(wait_s * 1000.0)));
}

void Gateway::run() {
  if (epoll_fd_ < 0) {
    throw std::runtime_error("gateway: run() before open()");
  }
  epoll_event events[128];
  while (!stop_) {
    const int n =
        ::epoll_wait(epoll_fd_, events, 128, wait_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("gateway: epoll_wait() failed");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == pipe_read_fd_) {
        char drain[64];
        ssize_t got;
        while ((got = ::read(pipe_read_fd_, drain, sizeof(drain))) > 0) {
          for (ssize_t j = 0; j < got; ++j) {
            if (drain[j] == kPipeFlightDump) {
              dump_flight_recorder();
            } else {
              stop_ = true;
            }
          }
        }
      } else if (fd == listen_fd_) {
        accept_ready();
      } else if (stats_server_.owns(fd)) {
        stats_server_.handle_event(fd, mask);
      } else {
        const auto it = connections_.find(fd);
        if (it == connections_.end()) continue;  // closed earlier this batch
        Connection& conn = *it->second;
        if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(fd, /*at_shutdown=*/false);
          continue;
        }
        if ((mask & EPOLLOUT) != 0) handle_writable(conn);
        if (connections_.find(fd) == connections_.end()) continue;
        if ((mask & EPOLLIN) != 0) handle_readable(conn);
      }
    }
    // Fire due session ticks after the socket work so a tick sees every
    // frame that arrived before its deadline.
    clock_.run_due();
    poll_watchdog();
  }
  stats_server_.close_all();

  // Graceful shutdown: flush every live session, fold its energy, close.
  const std::vector<int> live = [this] {
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    return fds;
  }();
  for (const int fd : live) close_connection(fd, /*at_shutdown=*/true);

  if (!config_.report_path.empty()) {
    obs::finalize_run_report(config_.report_path, build_report());
  }
}

void Gateway::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    ++stats_.clients_accepted;
    if (ctr_accepted_ != nullptr) ctr_accepted_->increment();
    connections_.emplace(fd, std::move(conn));
  }
}

void Gateway::handle_readable(Connection& conn) {
  const int fd = conn.fd;
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      if (!dispatch_frames(conn)) {
        ++stats_.protocol_errors;
        if (ctr_errors_ != nullptr) ctr_errors_->increment();
        flight_.record(obs::TraceEvent::tx_failure(
            clock_.now(), /*kind=*/0, /*entity=*/fd, /*attempt=*/1,
            /*airtime=*/0.0));
        close_connection(fd, /*at_shutdown=*/false);
        return;
      }
      // A BYE inside the batch closed (and freed) the connection.
      if (connections_.find(fd) == connections_.end()) return;
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;  // drained
      continue;
    }
    if (n == 0) {  // orderly EOF without BYE: treat as disconnect
      close_connection(fd, /*at_shutdown=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(fd, /*at_shutdown=*/false);
    return;
  }
}

bool Gateway::dispatch_frames(Connection& conn) {
  using system::wire::FrameReader;
  system::wire::Frame frame;
  while (true) {
    const FrameReader::Status status = conn.reader.next(frame);
    if (status == FrameReader::Status::kNeedMore) return true;
    if (status == FrameReader::Status::kError) return false;
    switch (frame.type) {
      case system::wire::FrameType::kHello: {
        if (conn.session != nullptr) return false;  // double HELLO
        system::wire::HelloFrame hello;
        if (!system::wire::decode_hello(frame.payload, hello)) return false;
        Connection* conn_ptr = &conn;
        try {
          conn.session = std::make_unique<ClientSession>(
              hello, registry_, config_.session, clock_,
              [this, conn_ptr](const ScheduledPacket& packet) {
                queue_ack(*conn_ptr, packet);
              });
        } catch (const std::invalid_argument&) {
          return false;  // bad registration (no apps / duplicates)
        }
        break;
      }
      case system::wire::FrameType::kHeartbeat: {
        if (conn.session == nullptr) return false;
        system::wire::HeartbeatFrame hb;
        if (!system::wire::decode_heartbeat(frame.payload, hb)) return false;
        if (!conn.session->on_heartbeat(hb.train_app, clock_.now())) {
          return false;
        }
        if (ctr_heartbeats_ != nullptr) ctr_heartbeats_->increment();
        flight_.record(obs::TraceEvent::heartbeat_tx(
            clock_.now(), static_cast<std::int32_t>(hb.train_app),
            static_cast<std::int64_t>(config_.session.heartbeat_bytes)));
        break;
      }
      case system::wire::FrameType::kCargo: {
        if (conn.session == nullptr) return false;
        system::wire::CargoFrame cargo;
        if (!system::wire::decode_cargo(frame.payload, cargo)) return false;
        if (!conn.session->on_cargo(cargo, clock_.now())) return false;
        if (ctr_enqueued_ != nullptr) ctr_enqueued_->increment();
        flight_.record(obs::TraceEvent::slot_begin(
            clock_.now(),
            static_cast<std::int32_t>(conn.session->waiting()),
            static_cast<double>(cargo.bytes)));
        break;
      }
      case system::wire::FrameType::kBye:
        if (!frame.payload.empty()) return false;
        close_connection(conn.fd, /*at_shutdown=*/false);
        return true;  // conn is gone; stop dispatching
      case system::wire::FrameType::kAck:
        return false;  // clients never send ACK
    }
  }
}

void Gateway::queue_ack(Connection& conn, const ScheduledPacket& packet) {
  metrics_.histogram("gateway.latency_s", latency_bounds())
      .add(packet.latency());
  if (ctr_scheduled_ != nullptr) ctr_scheduled_->increment();
  flight_.record(obs::TraceEvent::packet_select(
      packet.transmitted, static_cast<std::int32_t>(packet.wire_app),
      static_cast<std::int64_t>(packet.packet_id), packet.latency(),
      static_cast<double>(packet.bytes)));
  system::wire::AckFrame ack;
  ack.packet_id = packet.packet_id;
  ack.latency_s = packet.latency();
  ack.boarded = packet.piggybacked ? 1 : 0;
  const bool was_idle = !conn.has_backlog();
  conn.outbuf += system::wire::encode_ack(ack);
  if (was_idle) {
    // Opportunistic immediate write; EPOLLOUT only for the remainder.
    handle_writable(conn);
  } else {
    update_write_interest(conn);
  }
}

void Gateway::handle_writable(Connection& conn) {
  while (conn.has_backlog()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer is gone; the read side will observe it too, but don't spin.
    conn.outbuf.clear();
    conn.out_off = 0;
    break;
  }
  if (!conn.has_backlog()) {
    conn.outbuf.clear();
    conn.out_off = 0;
  }
  update_write_interest(conn);
}

void Gateway::update_write_interest(Connection& conn) {
  const bool want = conn.has_backlog();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Gateway::close_connection(int fd, bool at_shutdown) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.session != nullptr) {
    // Flush queued cargo through the modeled uplink (final ACKs are
    // queued by the transmit callback), push what the kernel will take,
    // then fold the session's radio bill into the gateway ledger.
    conn.session->flush(clock_.now());
    handle_writable(conn);
    fold_session(*conn.session);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  if (at_shutdown) {
    ++stats_.clients_at_shutdown;
  } else {
    ++stats_.clients_disconnected;
  }
}

void Gateway::fold_session(ClientSession& session) {
  const SessionCounters& counters = session.counters();
  stats_.heartbeats += counters.heartbeats;
  stats_.packets_enqueued += counters.enqueued;
  stats_.packets_piggybacked += counters.piggybacked;
  stats_.packets_dripped += counters.dripped;
  stats_.packets_flushed += counters.flushed;
  stats_.transmissions += session.log().size();
  if (session.log().empty()) return;
  const Duration horizon = session.energy_horizon(clock_.now());
  stats_.meter_total_J +=
      radio::measure_energy(session.log(), config_.session.model, horizon)
          .network_energy();
  obs::append_ledger(ledger_, "cellular", session.log(),
                     config_.session.model, horizon);
}

double Gateway::tick_lag_s() const {
  const std::optional<TimePoint> next = clock_.next_alarm();
  if (!next.has_value()) return 0.0;  // idle loops are never late
  const double lag_clock = clock_.now() - *next;
  return lag_clock > 0.0 ? lag_clock / config_.time_scale : 0.0;
}

void Gateway::poll_watchdog() {
  const double lag = tick_lag_s();
  if (!watchdog_unhealthy_) {
    if (lag > config_.watchdog_budget_s) {
      watchdog_unhealthy_ = true;
      ++watchdog_trips_;
      dump_flight_recorder();  // capture the run-up to the stall
    }
  } else if (lag <= config_.watchdog_budget_s * 0.5) {
    watchdog_unhealthy_ = false;  // hysteresis: recover at half budget
  }
}

void Gateway::dump_flight_recorder() {
  ++flight_dumps_;
  try {
    obs::write_chrome_trace_file(config_.flight_path, flight_.events());
  } catch (const std::runtime_error&) {
    // Diagnostics only — an unwritable path must never take the loop down.
  }
}

std::string Gateway::render_metrics() {
  // The report registry plus the live counters, one exposition document.
  obs::MetricsSnapshot snap = metrics_.snapshot();
  const obs::MetricsSnapshot live = live_.snapshot();
  snap.counters.insert(snap.counters.end(), live.counters.begin(),
                       live.counters.end());

  const TimePoint now = clock_.now();
  std::vector<obs::PromGauge> gauges;
  gauges.push_back({"up", 1.0, {}, "the stats plane answered this scrape"});
  gauges.push_back({"gateway.connections",
                    static_cast<double>(connections_.size()),
                    {},
                    "open client sockets (including pre-HELLO ones)"});

  // Per-session gauges: one pass over the live sessions.
  double live_sessions = 0.0;
  double queued_cargo = 0.0;
  double stale_max = 0.0;
  double stale_sum = 0.0;
  double stale_n = 0.0;
  double rrc[3] = {0.0, 0.0, 0.0};  // idle, fach, dch
  for (const auto& [fd, conn] : connections_) {
    (void)fd;
    if (conn->session == nullptr) continue;
    live_sessions += 1.0;
    queued_cargo += static_cast<double>(conn->session->waiting());
    const radio::RrcState state =
        obs::state_at(conn->session->log(), config_.session.model, now);
    rrc[static_cast<int>(state)] += 1.0;
    const std::optional<TimePoint> beat =
        conn->session->monitor().most_recent_beat();
    if (beat.has_value()) {
      const double staleness = std::max(0.0, now - *beat);
      stale_max = std::max(stale_max, staleness);
      stale_sum += staleness;
      stale_n += 1.0;
    }
  }
  gauges.push_back({"gateway.live_sessions", live_sessions, {},
                    "sessions past HELLO"});
  gauges.push_back({"gateway.queued_cargo", queued_cargo, {},
                    "cargo packets waiting across all sessions"});
  const char* state_names[3] = {"idle", "fach", "dch"};
  for (int s = 0; s < 3; ++s) {
    gauges.push_back({"gateway.rrc_sessions",
                      rrc[s],
                      {{"state", state_names[s]}},
                      "sessions by modeled RRC state right now"});
  }
  gauges.push_back(
      {"gateway.heartbeat_staleness_max_seconds", stale_max, {},
       "largest clock-seconds gap since any session's last observed beat"});
  gauges.push_back(
      {"gateway.heartbeat_staleness_mean_seconds",
       stale_n > 0.0 ? stale_sum / stale_n : 0.0,
       {},
       "mean clock-seconds since the last observed beat (beat-holders only)"});

  gauges.push_back({"gateway.uptime_clock_seconds", now, {},
                    "clock seconds since the gateway started"});
  gauges.push_back({"gateway.tick_lag_seconds", tick_lag_s(), {},
                    "how overdue the earliest pending alarm is, real seconds"});
  gauges.push_back({"gateway.watchdog_budget_seconds",
                    config_.watchdog_budget_s,
                    {},
                    "tick-lag level that trips the watchdog"});
  gauges.push_back({"gateway.watchdog_trips",
                    static_cast<double>(watchdog_trips_),
                    {},
                    "healthy to unhealthy watchdog transitions"});
  gauges.push_back({"gateway.flight_events",
                    static_cast<double>(flight_.size()),
                    {},
                    "events currently held by the flight recorder ring"});
  gauges.push_back({"gateway.flight_dropped",
                    static_cast<double>(flight_.dropped()),
                    {},
                    "flight-recorder events overwritten by ring wrap"});
  gauges.push_back({"gateway.stats_requests",
                    static_cast<double>(stats_server_.requests_served()),
                    {},
                    "stats-plane HTTP requests answered (this one included)"});
  return obs::encode_prometheus(snap, gauges);
}

obs::StatsHealth Gateway::render_health() {
  const double lag = tick_lag_s();
  obs::StatsHealth health;
  health.healthy = !watchdog_unhealthy_;
  char detail[256];
  std::snprintf(detail, sizeof(detail),
                "{\"tick_lag_s\":%.6f,\"budget_s\":%.6f,"
                "\"watchdog_trips\":%llu,\"sessions\":%zu}",
                lag, config_.watchdog_budget_s,
                static_cast<unsigned long long>(watchdog_trips_),
                connections_.size());
  health.detail = detail;
  return health;
}

std::string Gateway::render_sessions() {
  // Top-N live sessions by queue depth (ties: lower client id first) —
  // bounded output no matter how many clients are connected.
  struct Row {
    std::uint64_t client_id;
    std::size_t waiting;
    double staleness;
    radio::RrcState state;
  };
  const TimePoint now = clock_.now();
  std::vector<Row> rows;
  rows.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) {
    (void)fd;
    if (conn->session == nullptr) continue;
    const std::optional<TimePoint> beat =
        conn->session->monitor().most_recent_beat();
    rows.push_back(Row{
        conn->session->client_id(), conn->session->waiting(),
        beat.has_value() ? std::max(0.0, now - *beat) : -1.0,
        obs::state_at(conn->session->log(), config_.session.model, now)});
  }
  const std::size_t top_n = std::min(rows.size(), config_.sessions_top_n);
  std::partial_sort(rows.begin(), rows.begin() + top_n, rows.end(),
                    [](const Row& a, const Row& b) {
                      if (a.waiting != b.waiting) return a.waiting > b.waiting;
                      return a.client_id < b.client_id;
                    });

  std::string out = "{\"live_sessions\":" + std::to_string(rows.size()) +
                    ",\"top_n\":" + std::to_string(top_n) +
                    ",\"sessions\":[";
  for (std::size_t i = 0; i < top_n; ++i) {
    char row[192];
    std::snprintf(row, sizeof(row),
                  "%s{\"client_id\":%llu,\"waiting\":%zu,"
                  "\"staleness_s\":%.3f,\"rrc\":\"%s\"}",
                  i > 0 ? "," : "",
                  static_cast<unsigned long long>(rows[i].client_id),
                  rows[i].waiting, rows[i].staleness,
                  radio::to_string(rows[i].state).c_str());
    out += row;
  }
  out += "]}\n";
  return out;
}

obs::RunReport Gateway::build_report() const {
  obs::RunReport report;
  report.bench = config_.bench_name;
  report.add_provenance("policy", config_.session.policy_spec);
  report.add_provenance("power_model", config_.session.model.name);
  report.add_provenance("radio", config_.session.radio_spec);
  report.add_provenance("time_scale", std::to_string(config_.time_scale));
  report.add_provenance("tick_period_s",
                        std::to_string(config_.session.tick_period));
  report.add_provenance("bandwidth_Bps",
                        std::to_string(config_.session.bandwidth));

  report.add_result("clients_accepted",
                    static_cast<double>(stats_.clients_accepted));
  report.add_result("heartbeats", static_cast<double>(stats_.heartbeats));
  report.add_result("packets_enqueued",
                    static_cast<double>(stats_.packets_enqueued));
  report.add_result("transmissions",
                    static_cast<double>(stats_.transmissions));

  obs::GatewaySection section;
  section.clients_accepted = stats_.clients_accepted;
  section.clients_disconnected = stats_.clients_disconnected;
  section.clients_at_shutdown = stats_.clients_at_shutdown;
  section.protocol_errors = stats_.protocol_errors;
  section.heartbeats = stats_.heartbeats;
  section.packets_enqueued = stats_.packets_enqueued;
  section.packets_piggybacked = stats_.packets_piggybacked;
  section.packets_dripped = stats_.packets_dripped;
  section.packets_flushed = stats_.packets_flushed;
  section.transmissions = stats_.transmissions;
  section.client_meter_total_J = stats_.meter_total_J;
  report.gateway = section;

  report.ledger = ledger_;
  report.metrics = metrics_.snapshot();
  report.add_environment("port", static_cast<double>(port_));
  report.add_environment("time_scale", config_.time_scale);
  // Stats-plane telemetry rides in the non-compared environment section so
  // the compared report stays byte-identical whether or not anyone scraped.
  report.add_environment("stats_requests",
                         static_cast<double>(stats_server_.requests_served()));
  report.add_environment("watchdog_trips",
                         static_cast<double>(watchdog_trips_));
  report.add_environment("flight_dumps",
                         static_cast<double>(flight_dumps_));
  return report;
}

}  // namespace etrain::gateway
