#include "gateway/gateway.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "radio/energy_meter.h"

namespace etrain::gateway {

namespace {

/// The active gateway's self-pipe write end, for the signal handler. Only
/// one Gateway installs handlers at a time (install_signal_handlers
/// enforces it), so a single slot suffices. sig_atomic_t-free: an int
/// store/load is a single word on every platform we build for, and the
/// handler only reads it.
volatile int g_signal_write_fd = -1;
struct sigaction g_old_sigint;
struct sigaction g_old_sigterm;

void signal_to_pipe(int) {
  const int fd = g_signal_write_fd;
  if (fd < 0) return;
  const char byte = 1;
  // Best-effort; EAGAIN means a stop is already pending. Errno must be
  // preserved for the interrupted code.
  const int saved = errno;
  [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  errno = saved;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("gateway: fcntl(O_NONBLOCK) failed");
  }
}

/// Upper bounds for the enqueue->transmit latency histogram, in clock
/// seconds: sub-second drips up to multi-cycle waits.
std::vector<double> latency_bounds() {
  return {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0,
          30.0, 45.0, 60.0, 90.0, 120.0, 180.0, 300.0, 600.0};
}

}  // namespace

/// Per-connection state. Address-stable (held by unique_ptr) because the
/// session's transmit callback captures a pointer to it.
struct Gateway::Connection {
  int fd = -1;
  system::wire::FrameReader reader;
  std::unique_ptr<ClientSession> session;
  /// Outbound ACK bytes not yet accepted by the kernel.
  std::string outbuf;
  std::size_t out_off = 0;
  bool want_write = false;

  bool has_backlog() const { return out_off < outbuf.size(); }
};

Gateway::Gateway(const core::PolicyRegistry& registry, GatewayConfig config)
    : registry_(registry),
      config_(std::move(config)),
      clock_(config_.time_scale) {}

Gateway::~Gateway() {
  restore_signal_handlers();
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    ::close(fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (pipe_read_fd_ >= 0) ::close(pipe_read_fd_);
  if (pipe_write_fd_ >= 0) ::close(pipe_write_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

int Gateway::open() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw std::runtime_error("gateway: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw std::runtime_error("gateway: bind() failed");
  }
  if (::listen(listen_fd_, config_.listen_backlog) < 0) {
    throw std::runtime_error("gateway: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    throw std::runtime_error("gateway: getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    throw std::runtime_error("gateway: pipe() failed");
  }
  pipe_read_fd_ = pipe_fds[0];
  pipe_write_fd_ = pipe_fds[1];
  set_nonblocking(pipe_read_fd_);
  set_nonblocking(pipe_write_fd_);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("gateway: epoll_create1() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = pipe_read_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, pipe_read_fd_, &ev);

  // Touch the metrics so the report always carries the same shape.
  metrics_.histogram("gateway.latency_s", latency_bounds());
  return port_;
}

void Gateway::request_stop() {
  if (pipe_write_fd_ < 0) {
    stop_ = true;
    return;
  }
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(pipe_write_fd_, &byte, 1);
}

void Gateway::install_signal_handlers() {
  if (signals_installed_) return;
  if (g_signal_write_fd >= 0) {
    throw std::runtime_error(
        "gateway: another Gateway already owns the signal handlers");
  }
  g_signal_write_fd = pipe_write_fd_;
  struct sigaction sa{};
  sa.sa_handler = signal_to_pipe;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, &g_old_sigint);
  ::sigaction(SIGTERM, &sa, &g_old_sigterm);
  signals_installed_ = true;
}

void Gateway::restore_signal_handlers() {
  if (!signals_installed_) return;
  ::sigaction(SIGINT, &g_old_sigint, nullptr);
  ::sigaction(SIGTERM, &g_old_sigterm, nullptr);
  g_signal_write_fd = -1;
  signals_installed_ = false;
}

int Gateway::wait_timeout_ms() const {
  const std::optional<TimePoint> next = clock_.next_alarm();
  if (!next.has_value()) return 1000;  // idle heartbeat of the loop itself
  const double wait_s = clock_.real_seconds_until(*next);
  if (wait_s <= 0.0) return 0;
  // Round up so we never spin-wake just before the deadline; cap so a far
  // alarm cannot make the loop unresponsive to anything epoll misses.
  return static_cast<int>(std::min(1000.0, std::ceil(wait_s * 1000.0)));
}

void Gateway::run() {
  if (epoll_fd_ < 0) {
    throw std::runtime_error("gateway: run() before open()");
  }
  epoll_event events[128];
  while (!stop_) {
    const int n =
        ::epoll_wait(epoll_fd_, events, 128, wait_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("gateway: epoll_wait() failed");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == pipe_read_fd_) {
        char drain[64];
        while (::read(pipe_read_fd_, drain, sizeof(drain)) > 0) {
        }
        stop_ = true;
      } else if (fd == listen_fd_) {
        accept_ready();
      } else {
        const auto it = connections_.find(fd);
        if (it == connections_.end()) continue;  // closed earlier this batch
        Connection& conn = *it->second;
        if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(fd, /*at_shutdown=*/false);
          continue;
        }
        if ((mask & EPOLLOUT) != 0) handle_writable(conn);
        if (connections_.find(fd) == connections_.end()) continue;
        if ((mask & EPOLLIN) != 0) handle_readable(conn);
      }
    }
    // Fire due session ticks after the socket work so a tick sees every
    // frame that arrived before its deadline.
    clock_.run_due();
  }

  // Graceful shutdown: flush every live session, fold its energy, close.
  const std::vector<int> live = [this] {
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    return fds;
  }();
  for (const int fd : live) close_connection(fd, /*at_shutdown=*/true);

  if (!config_.report_path.empty()) {
    obs::finalize_run_report(config_.report_path, build_report());
  }
}

void Gateway::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    ++stats_.clients_accepted;
    connections_.emplace(fd, std::move(conn));
  }
}

void Gateway::handle_readable(Connection& conn) {
  const int fd = conn.fd;
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      if (!dispatch_frames(conn)) {
        ++stats_.protocol_errors;
        close_connection(fd, /*at_shutdown=*/false);
        return;
      }
      // A BYE inside the batch closed (and freed) the connection.
      if (connections_.find(fd) == connections_.end()) return;
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;  // drained
      continue;
    }
    if (n == 0) {  // orderly EOF without BYE: treat as disconnect
      close_connection(fd, /*at_shutdown=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(fd, /*at_shutdown=*/false);
    return;
  }
}

bool Gateway::dispatch_frames(Connection& conn) {
  using system::wire::FrameReader;
  system::wire::Frame frame;
  while (true) {
    const FrameReader::Status status = conn.reader.next(frame);
    if (status == FrameReader::Status::kNeedMore) return true;
    if (status == FrameReader::Status::kError) return false;
    switch (frame.type) {
      case system::wire::FrameType::kHello: {
        if (conn.session != nullptr) return false;  // double HELLO
        system::wire::HelloFrame hello;
        if (!system::wire::decode_hello(frame.payload, hello)) return false;
        Connection* conn_ptr = &conn;
        try {
          conn.session = std::make_unique<ClientSession>(
              hello, registry_, config_.session, clock_,
              [this, conn_ptr](const ScheduledPacket& packet) {
                queue_ack(*conn_ptr, packet);
              });
        } catch (const std::invalid_argument&) {
          return false;  // bad registration (no apps / duplicates)
        }
        break;
      }
      case system::wire::FrameType::kHeartbeat: {
        if (conn.session == nullptr) return false;
        system::wire::HeartbeatFrame hb;
        if (!system::wire::decode_heartbeat(frame.payload, hb)) return false;
        if (!conn.session->on_heartbeat(hb.train_app, clock_.now())) {
          return false;
        }
        break;
      }
      case system::wire::FrameType::kCargo: {
        if (conn.session == nullptr) return false;
        system::wire::CargoFrame cargo;
        if (!system::wire::decode_cargo(frame.payload, cargo)) return false;
        if (!conn.session->on_cargo(cargo, clock_.now())) return false;
        break;
      }
      case system::wire::FrameType::kBye:
        if (!frame.payload.empty()) return false;
        close_connection(conn.fd, /*at_shutdown=*/false);
        return true;  // conn is gone; stop dispatching
      case system::wire::FrameType::kAck:
        return false;  // clients never send ACK
    }
  }
}

void Gateway::queue_ack(Connection& conn, const ScheduledPacket& packet) {
  metrics_.histogram("gateway.latency_s", latency_bounds())
      .add(packet.latency());
  system::wire::AckFrame ack;
  ack.packet_id = packet.packet_id;
  ack.latency_s = packet.latency();
  ack.boarded = packet.piggybacked ? 1 : 0;
  const bool was_idle = !conn.has_backlog();
  conn.outbuf += system::wire::encode_ack(ack);
  if (was_idle) {
    // Opportunistic immediate write; EPOLLOUT only for the remainder.
    handle_writable(conn);
  } else {
    update_write_interest(conn);
  }
}

void Gateway::handle_writable(Connection& conn) {
  while (conn.has_backlog()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer is gone; the read side will observe it too, but don't spin.
    conn.outbuf.clear();
    conn.out_off = 0;
    break;
  }
  if (!conn.has_backlog()) {
    conn.outbuf.clear();
    conn.out_off = 0;
  }
  update_write_interest(conn);
}

void Gateway::update_write_interest(Connection& conn) {
  const bool want = conn.has_backlog();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Gateway::close_connection(int fd, bool at_shutdown) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.session != nullptr) {
    // Flush queued cargo through the modeled uplink (final ACKs are
    // queued by the transmit callback), push what the kernel will take,
    // then fold the session's radio bill into the gateway ledger.
    conn.session->flush(clock_.now());
    handle_writable(conn);
    fold_session(*conn.session);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  if (at_shutdown) {
    ++stats_.clients_at_shutdown;
  } else {
    ++stats_.clients_disconnected;
  }
}

void Gateway::fold_session(ClientSession& session) {
  const SessionCounters& counters = session.counters();
  stats_.heartbeats += counters.heartbeats;
  stats_.packets_enqueued += counters.enqueued;
  stats_.packets_piggybacked += counters.piggybacked;
  stats_.packets_dripped += counters.dripped;
  stats_.packets_flushed += counters.flushed;
  stats_.transmissions += session.log().size();
  if (session.log().empty()) return;
  const Duration horizon = session.energy_horizon(clock_.now());
  stats_.meter_total_J +=
      radio::measure_energy(session.log(), config_.session.model, horizon)
          .network_energy();
  obs::append_ledger(ledger_, "cellular", session.log(),
                     config_.session.model, horizon);
}

obs::RunReport Gateway::build_report() const {
  obs::RunReport report;
  report.bench = config_.bench_name;
  report.add_provenance("policy", config_.session.policy_spec);
  report.add_provenance("power_model", config_.session.model.name);
  report.add_provenance("radio", config_.session.radio_spec);
  report.add_provenance("time_scale", std::to_string(config_.time_scale));
  report.add_provenance("tick_period_s",
                        std::to_string(config_.session.tick_period));
  report.add_provenance("bandwidth_Bps",
                        std::to_string(config_.session.bandwidth));

  report.add_result("clients_accepted",
                    static_cast<double>(stats_.clients_accepted));
  report.add_result("heartbeats", static_cast<double>(stats_.heartbeats));
  report.add_result("packets_enqueued",
                    static_cast<double>(stats_.packets_enqueued));
  report.add_result("transmissions",
                    static_cast<double>(stats_.transmissions));

  obs::GatewaySection section;
  section.clients_accepted = stats_.clients_accepted;
  section.clients_disconnected = stats_.clients_disconnected;
  section.clients_at_shutdown = stats_.clients_at_shutdown;
  section.protocol_errors = stats_.protocol_errors;
  section.heartbeats = stats_.heartbeats;
  section.packets_enqueued = stats_.packets_enqueued;
  section.packets_piggybacked = stats_.packets_piggybacked;
  section.packets_dripped = stats_.packets_dripped;
  section.packets_flushed = stats_.packets_flushed;
  section.transmissions = stats_.transmissions;
  section.client_meter_total_J = stats_.meter_total_J;
  report.gateway = section;

  report.ledger = ledger_;
  report.metrics = metrics_.snapshot();
  report.add_environment("port", static_cast<double>(port_));
  report.add_environment("time_scale", config_.time_scale);
  return report;
}

}  // namespace etrain::gateway
