#include "gateway/gateway.h"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/prom.h"

namespace etrain::gateway {

namespace {

/// The active gateway's self-pipe write ends, one per shard, for the
/// signal handler. Only one Gateway installs handlers at a time
/// (install_signal_handlers enforces it). The count is published last —
/// the handler reads it first and never walks past it.
int g_signal_fds[kMaxShards];
volatile int g_signal_fd_count = -1;
struct sigaction g_old_sigint;
struct sigaction g_old_sigterm;
struct sigaction g_old_sigusr1;

void signal_to_pipes(int sig) {
  const int count = g_signal_fd_count;
  if (count <= 0) return;
  const char byte = sig == SIGUSR1 ? kPipeFlightDump : kPipeStop;
  // Best-effort; EAGAIN means a stop is already pending. Errno must be
  // preserved for the interrupted code.
  const int saved = errno;
  for (int i = 0; i < count; ++i) {
    [[maybe_unused]] const ssize_t n = ::write(g_signal_fds[i], &byte, 1);
  }
  errno = saved;
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Binds + listens a nonblocking loopback listener on `port` (0 =
/// ephemeral; `*bound_port` reports the result). With `reuseport`,
/// returns -1 instead of throwing when the SO_REUSEPORT bind cannot be
/// had — the kAuto caller falls back to hand-off; hard failures that no
/// mode can recover from still throw.
int open_listener(int port, int backlog, bool reuseport, int* bound_port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("gateway: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) < 0) {
    ::close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    if (reuseport) return -1;
    throw std::runtime_error("gateway: bind() failed");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    throw std::runtime_error("gateway: listen() failed");
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      ::close(fd);
      throw std::runtime_error("gateway: getsockname() failed");
    }
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

}  // namespace

Gateway::Gateway(const core::PolicyRegistry& registry, GatewayConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (config_.shards < 1 || config_.shards > kMaxShards) {
    throw std::invalid_argument("gateway: shards must be in [1, " +
                                std::to_string(kMaxShards) + "]");
  }
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<GatewayShard>(registry_, config_, i,
                                                     config_.shards));
  }
}

Gateway::~Gateway() { restore_signal_handlers(); }

int Gateway::open() {
  const bool want_reuseport =
      config_.shards > 1 &&
      config_.accept_mode != GatewayConfig::AcceptMode::kHandoff;

  std::vector<int> listeners(static_cast<std::size_t>(config_.shards), -1);
  listeners[0] = open_listener(config_.port, config_.listen_backlog,
                               want_reuseport, &port_);
  bool reuseport = want_reuseport;
  if (want_reuseport && listeners[0] < 0) {
    if (config_.accept_mode == GatewayConfig::AcceptMode::kReusePort) {
      throw std::runtime_error("gateway: SO_REUSEPORT unavailable");
    }
    reuseport = false;
    listeners[0] =
        open_listener(config_.port, config_.listen_backlog, false, &port_);
  }
  if (reuseport) {
    for (int i = 1; i < config_.shards; ++i) {
      const int fd =
          open_listener(port_, config_.listen_backlog, true, nullptr);
      if (fd < 0) {
        if (config_.accept_mode == GatewayConfig::AcceptMode::kReusePort) {
          throw std::runtime_error(
              "gateway: SO_REUSEPORT sibling bind failed");
        }
        for (int j = 1; j < i; ++j) {
          ::close(listeners[static_cast<std::size_t>(j)]);
          listeners[static_cast<std::size_t>(j)] = -1;
        }
        reuseport = false;
        break;
      }
      listeners[static_cast<std::size_t>(i)] = fd;
    }
  }
  handoff_ = config_.shards > 1 && !reuseport;

  for (int i = 0; i < config_.shards; ++i) {
    shards_[static_cast<std::size_t>(i)]->open(
        listeners[static_cast<std::size_t>(i)]);
  }
  if (handoff_) {
    std::vector<GatewayShard*> peers;
    peers.reserve(shards_.size());
    for (const auto& shard : shards_) peers.push_back(shard.get());
    shards_[0]->set_handoff_peers(std::move(peers));
  }

  if (config_.stats_port >= 0) {
    obs::StatsHandlers handlers;
    handlers.metrics_text = [this] { return render_metrics(); };
    handlers.health = [this] { return render_health(); };
    handlers.sessions_json = [this] { return render_sessions(); };
    stats_server_.open(config_.stats_port, std::move(handlers));
    stats_server_.register_with(shards_[0]->epoll_fd());
    shards_[0]->attach_stats(&stats_server_);
  }
  opened_ = true;
  return port_;
}

void Gateway::request_stop() {
  for (const auto& shard : shards_) shard->request_stop();
}

void Gateway::install_signal_handlers() {
  if (signals_installed_) return;
  if (g_signal_fd_count >= 0) {
    throw std::runtime_error(
        "gateway: another Gateway already owns the signal handlers");
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    g_signal_fds[i] = shards_[i]->pipe_write_fd();
  }
  g_signal_fd_count = static_cast<int>(shards_.size());
  struct sigaction sa{};
  sa.sa_handler = signal_to_pipes;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, &g_old_sigint);
  ::sigaction(SIGTERM, &sa, &g_old_sigterm);
  ::sigaction(SIGUSR1, &sa, &g_old_sigusr1);
  signals_installed_ = true;
}

void Gateway::restore_signal_handlers() {
  if (!signals_installed_) return;
  ::sigaction(SIGINT, &g_old_sigint, nullptr);
  ::sigaction(SIGTERM, &g_old_sigterm, nullptr);
  ::sigaction(SIGUSR1, &g_old_sigusr1, nullptr);
  g_signal_fd_count = -1;
  signals_installed_ = false;
}

void Gateway::run() {
  if (!opened_) {
    throw std::runtime_error("gateway: run() before open()");
  }
  std::vector<std::thread> workers;
  workers.reserve(shards_.size() - 1);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    GatewayShard* shard = shards_[i].get();
    workers.emplace_back([shard] { shard->run(); });
  }
  try {
    shards_[0]->run();
  } catch (...) {
    for (std::size_t i = 1; i < shards_.size(); ++i) {
      shards_[i]->request_stop();
    }
    for (auto& worker : workers) worker.join();
    throw;
  }
  // Shard 0 saw the stop; make sure every worker does too, then join —
  // the join is the happens-before edge the fold relies on.
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    shards_[i]->request_stop();
  }
  for (auto& worker : workers) worker.join();

  std::vector<ShardContribution> contributions;
  contributions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    contributions.push_back(shard->take_contribution());
  }
  GatewayFold fold =
      fold_shards(std::move(contributions), config_.session.model);
  stats_ = fold.stats;
  ledger_ = std::move(fold.ledger);
  report_metrics_ = std::move(fold.metrics);
  session_digests_ = std::move(fold.sessions);
  watchdog_trips_total_ = 0;
  flight_dumps_total_ = 0;
  for (const auto& shard : shards_) {
    watchdog_trips_total_ += shard->watchdog_trips();
    flight_dumps_total_ += shard->flight_dumps();
  }

  if (!config_.report_path.empty()) {
    obs::finalize_run_report(config_.report_path, build_report());
  }
}

std::vector<ShardSnapshot> Gateway::shard_views() {
  std::vector<ShardSnapshot> views;
  views.reserve(shards_.size());
  views.push_back(shards_[0]->live_view());
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    views.push_back(shards_[i]->published_view());
  }
  return views;
}

std::string Gateway::render_metrics() {
  const std::vector<ShardSnapshot> views = shard_views();

  // The merged report registries (the latency histogram) plus the summed
  // live counters, one exposition document — same family names as the
  // unsharded gateway, now cross-shard aggregates.
  obs::MetricsSnapshot snap;
  for (const ShardSnapshot& view : views) {
    obs::merge_snapshot_into(snap, view.report_metrics);
  }
  std::uint64_t accepted = 0, heartbeats = 0, enqueued = 0, scheduled = 0,
                errors = 0;
  double connections = 0.0, live_sessions = 0.0, queued_cargo = 0.0;
  double rrc[3] = {0.0, 0.0, 0.0};
  double stale_max = 0.0, stale_sum = 0.0, stale_n = 0.0;
  double tick_lag = 0.0, trips = 0.0, flight_events = 0.0,
         flight_dropped = 0.0;
  for (const ShardSnapshot& view : views) {
    accepted += view.clients_accepted;
    heartbeats += view.heartbeats;
    enqueued += view.packets_enqueued;
    scheduled += view.packets_scheduled;
    errors += view.protocol_errors;
    connections += static_cast<double>(view.connections);
    live_sessions += view.live_sessions;
    queued_cargo += view.queued_cargo;
    for (int s = 0; s < 3; ++s) rrc[s] += view.rrc_sessions[s];
    stale_max = std::max(stale_max, view.stale_max);
    stale_sum += view.stale_sum;
    stale_n += view.stale_n;
    tick_lag = std::max(tick_lag, view.tick_lag_s);
    trips += static_cast<double>(view.watchdog_trips);
    flight_events += static_cast<double>(view.flight_events);
    flight_dropped += static_cast<double>(view.flight_dropped);
  }
  snap.counters.push_back({"gateway.clients_accepted", accepted});
  snap.counters.push_back({"gateway.heartbeats", heartbeats});
  snap.counters.push_back({"gateway.packets_enqueued", enqueued});
  snap.counters.push_back({"gateway.packets_scheduled", scheduled});
  snap.counters.push_back({"gateway.protocol_errors", errors});

  std::vector<obs::PromGauge> gauges;
  gauges.push_back({"up", 1.0, {}, "the stats plane answered this scrape"});
  gauges.push_back({"gateway.connections",
                    connections,
                    {},
                    "open client sockets (including pre-HELLO ones)"});
  gauges.push_back({"gateway.live_sessions", live_sessions, {},
                    "sessions past HELLO"});
  gauges.push_back({"gateway.queued_cargo", queued_cargo, {},
                    "cargo packets waiting across all sessions"});
  const char* state_names[3] = {"idle", "fach", "dch"};
  for (int s = 0; s < 3; ++s) {
    gauges.push_back({"gateway.rrc_sessions",
                      rrc[s],
                      {{"state", state_names[s]}},
                      "sessions by modeled RRC state right now"});
  }
  gauges.push_back(
      {"gateway.heartbeat_staleness_max_seconds", stale_max, {},
       "largest clock-seconds gap since any session's last observed beat"});
  gauges.push_back(
      {"gateway.heartbeat_staleness_mean_seconds",
       stale_n > 0.0 ? stale_sum / stale_n : 0.0,
       {},
       "mean clock-seconds since the last observed beat (beat-holders only)"});
  gauges.push_back({"gateway.uptime_clock_seconds", views[0].now, {},
                    "clock seconds since the gateway started (shard 0)"});
  gauges.push_back({"gateway.tick_lag_seconds", tick_lag, {},
                    "worst shard's overdue earliest alarm, real seconds"});
  gauges.push_back({"gateway.watchdog_budget_seconds",
                    config_.watchdog_budget_s,
                    {},
                    "tick-lag level that trips the watchdog"});
  gauges.push_back({"gateway.watchdog_trips",
                    trips,
                    {},
                    "healthy to unhealthy watchdog transitions"});
  gauges.push_back({"gateway.flight_events",
                    flight_events,
                    {},
                    "events currently held by the flight recorder rings"});
  gauges.push_back({"gateway.flight_dropped",
                    flight_dropped,
                    {},
                    "flight-recorder events overwritten by ring wrap"});
  gauges.push_back({"gateway.stats_requests",
                    static_cast<double>(stats_server_.requests_served()),
                    {},
                    "stats-plane HTTP requests answered (this one included)"});

  // The sharded view: one labeled sample per shard per family, emitted at
  // every shard count (a 1-shard gateway exposes shard="0").
  gauges.push_back({"gateway.shards",
                    static_cast<double>(shards_.size()),
                    {},
                    "worker shards serving this gateway"});
  // Family-major order: the encoder folds same-named gauges into one
  // TYPE declaration only when they are consecutive, so each family
  // lists all its shards before the next family starts.
  const auto shard_family = [&](const std::string& name, const char* help,
                                auto value_of) {
    for (std::size_t i = 0; i < views.size(); ++i) {
      gauges.push_back({name,
                        value_of(views[i]),
                        {{"shard", std::to_string(i)}},
                        help});
    }
  };
  shard_family("gateway.shard_connections",
               "open client sockets on one shard",
               [](const ShardSnapshot& v) {
                 return static_cast<double>(v.connections);
               });
  shard_family("gateway.shard_live_sessions",
               "sessions past HELLO on one shard",
               [](const ShardSnapshot& v) { return v.live_sessions; });
  shard_family("gateway.shard_queued_cargo",
               "cargo packets waiting on one shard",
               [](const ShardSnapshot& v) { return v.queued_cargo; });
  shard_family("gateway.shard_clients_accepted",
               "connections accepted by one shard",
               [](const ShardSnapshot& v) {
                 return static_cast<double>(v.clients_accepted);
               });
  shard_family("gateway.shard_packets_scheduled",
               "packets scheduled by one shard",
               [](const ShardSnapshot& v) {
                 return static_cast<double>(v.packets_scheduled);
               });
  shard_family("gateway.shard_tick_lag_seconds",
               "one shard's overdue earliest alarm, real seconds",
               [](const ShardSnapshot& v) { return v.tick_lag_s; });
  shard_family("gateway.shard_uptime_clock_seconds",
               "one shard's clock reading",
               [](const ShardSnapshot& v) { return v.now; });
  shard_family("gateway.shard_watchdog_trips",
               "one shard's watchdog trips",
               [](const ShardSnapshot& v) {
                 return static_cast<double>(v.watchdog_trips);
               });
  return obs::encode_prometheus(snap, gauges);
}

obs::StatsHealth Gateway::render_health() {
  const std::vector<ShardSnapshot> views = shard_views();
  const double wall = steady_seconds();
  // A wedged shard cannot report its own tick lag — treat a snapshot that
  // has not been republished within the budget (plus the loop's 1 s idle
  // heartbeat and slack) as unhealthy. Shard 0's view is always fresh;
  // shards that never started publishing are still warming up.
  const double stale_budget_s = config_.watchdog_budget_s + 2.0;

  obs::StatsHealth health;
  health.healthy = true;
  double max_lag = 0.0;
  std::uint64_t trips = 0;
  std::size_t sessions = 0;
  std::string shard_detail = "[";
  for (std::size_t i = 0; i < views.size(); ++i) {
    const ShardSnapshot& view = views[i];
    const bool wedged = i != 0 && view.started &&
                        wall - view.published_wall_s > stale_budget_s;
    const bool shard_healthy = !view.watchdog_unhealthy && !wedged;
    if (!shard_healthy) health.healthy = false;
    max_lag = std::max(max_lag, view.tick_lag_s);
    trips += view.watchdog_trips;
    sessions += view.connections;
    char entry[128];
    std::snprintf(entry, sizeof(entry),
                  "%s{\"shard\":%zu,\"tick_lag_s\":%.6f,\"sessions\":%zu,"
                  "\"healthy\":%s}",
                  i > 0 ? "," : "", i, view.tick_lag_s, view.connections,
                  shard_healthy ? "true" : "false");
    shard_detail += entry;
  }
  shard_detail += "]";

  char detail[256];
  std::snprintf(detail, sizeof(detail),
                "{\"tick_lag_s\":%.6f,\"budget_s\":%.6f,"
                "\"watchdog_trips\":%llu,\"sessions\":%zu,\"shards\":",
                max_lag, config_.watchdog_budget_s,
                static_cast<unsigned long long>(trips), sessions);
  health.detail = std::string(detail) + shard_detail + "}";
  return health;
}

std::string Gateway::render_sessions() {
  // Top-N live sessions by queue depth (ties: lower client id first)
  // across every shard's capped row list — bounded output no matter how
  // many clients are connected.
  const std::vector<ShardSnapshot> views = shard_views();
  double live_sessions = 0.0;
  std::vector<ShardSessionRow> rows;
  for (const ShardSnapshot& view : views) {
    live_sessions += view.live_sessions;
    rows.insert(rows.end(), view.top_sessions.begin(),
                view.top_sessions.end());
  }
  const std::size_t top_n = std::min(rows.size(), config_.sessions_top_n);
  std::partial_sort(rows.begin(), rows.begin() + top_n, rows.end(),
                    [](const ShardSessionRow& a, const ShardSessionRow& b) {
                      if (a.waiting != b.waiting) return a.waiting > b.waiting;
                      return a.client_id < b.client_id;
                    });

  std::string out =
      "{\"live_sessions\":" +
      std::to_string(static_cast<std::uint64_t>(live_sessions)) +
      ",\"top_n\":" + std::to_string(top_n) + ",\"sessions\":[";
  for (std::size_t i = 0; i < top_n; ++i) {
    char row[192];
    std::snprintf(row, sizeof(row),
                  "%s{\"client_id\":%llu,\"waiting\":%zu,"
                  "\"staleness_s\":%.3f,\"rrc\":\"%s\"}",
                  i > 0 ? "," : "",
                  static_cast<unsigned long long>(rows[i].client_id),
                  rows[i].waiting, rows[i].staleness,
                  radio::to_string(rows[i].rrc).c_str());
    out += row;
  }
  out += "]}\n";
  return out;
}

obs::RunReport Gateway::build_report() const {
  obs::RunReport report;
  report.bench = config_.bench_name;
  report.add_provenance("policy", config_.session.policy_spec);
  report.add_provenance("power_model", config_.session.model.name);
  report.add_provenance("radio", config_.session.radio_spec);
  report.add_provenance("time_scale", std::to_string(config_.time_scale));
  report.add_provenance("tick_period_s",
                        std::to_string(config_.session.tick_period));
  report.add_provenance("bandwidth_Bps",
                        std::to_string(config_.session.bandwidth));
  // Only a sharded gateway stamps its shard count into the compared
  // provenance — a --shards 1 report stays byte-identical to the
  // historical unsharded one.
  if (config_.shards > 1) {
    report.add_provenance("shards", std::to_string(config_.shards));
  }

  report.add_result("clients_accepted",
                    static_cast<double>(stats_.clients_accepted));
  report.add_result("heartbeats", static_cast<double>(stats_.heartbeats));
  report.add_result("packets_enqueued",
                    static_cast<double>(stats_.packets_enqueued));
  report.add_result("transmissions",
                    static_cast<double>(stats_.transmissions));

  obs::GatewaySection section;
  section.clients_accepted = stats_.clients_accepted;
  section.clients_disconnected = stats_.clients_disconnected;
  section.clients_at_shutdown = stats_.clients_at_shutdown;
  section.protocol_errors = stats_.protocol_errors;
  section.heartbeats = stats_.heartbeats;
  section.packets_enqueued = stats_.packets_enqueued;
  section.packets_piggybacked = stats_.packets_piggybacked;
  section.packets_dripped = stats_.packets_dripped;
  section.packets_flushed = stats_.packets_flushed;
  section.transmissions = stats_.transmissions;
  section.client_meter_total_J = stats_.meter_total_J;
  report.gateway = section;

  report.ledger = ledger_;
  report.metrics = report_metrics_;
  report.add_environment("port", static_cast<double>(port_));
  report.add_environment("time_scale", config_.time_scale);
  // The environment section is never compared, so the shard count can ride
  // here unconditionally.
  report.add_environment("shards", static_cast<double>(config_.shards));
  // Stats-plane telemetry rides in the non-compared environment section so
  // the compared report stays byte-identical whether or not anyone scraped.
  report.add_environment("stats_requests",
                         static_cast<double>(stats_server_.requests_served()));
  report.add_environment("watchdog_trips",
                         static_cast<double>(watchdog_trips_total_));
  report.add_environment("flight_dumps",
                         static_cast<double>(flight_dumps_total_));
  return report;
}

}  // namespace etrain::gateway
