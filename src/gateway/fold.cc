#include "gateway/fold.h"

#include <algorithm>
#include <utility>

#include "radio/energy_meter.h"

namespace etrain::gateway {

namespace {

/// Replays one record into the fold — the exact arithmetic the pre-shard
/// gateway ran at session close time (gateway.cc's fold_session), in the
/// same statement order, so the accumulated meter and ledger are bit-equal.
void fold_record(GatewayFold& out, SessionFoldRecord& record, int shard,
                 const radio::PowerModel& model) {
  out.stats.heartbeats += record.counters.heartbeats;
  out.stats.packets_enqueued += record.counters.enqueued;
  out.stats.packets_piggybacked += record.counters.piggybacked;
  out.stats.packets_dripped += record.counters.dripped;
  out.stats.packets_flushed += record.counters.flushed;
  out.stats.transmissions += record.log.size();
  out.sessions.push_back(SessionDigest{shard, record.client_id,
                                       record.counters, record.log.size()});
  if (record.log.empty()) return;
  out.stats.meter_total_J +=
      radio::measure_energy(record.log, model, record.horizon)
          .network_energy();
  obs::append_ledger(out.ledger, "cellular", record.log, model,
                     record.horizon);
}

}  // namespace

GatewayFold fold_shards(std::vector<ShardContribution>&& shards,
                        const radio::PowerModel& model) {
  GatewayFold out;
  for (const ShardContribution& shard : shards) {
    out.stats.clients_accepted += shard.io.clients_accepted;
    out.stats.clients_disconnected += shard.io.clients_disconnected;
    out.stats.clients_at_shutdown += shard.io.clients_at_shutdown;
    out.stats.protocol_errors += shard.io.protocol_errors;
  }
  const bool canonical_order = shards.size() > 1;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    std::vector<SessionFoldRecord>& records = shards[s].records;
    if (canonical_order) {
      std::sort(records.begin(), records.end(),
                [](const SessionFoldRecord& a, const SessionFoldRecord& b) {
                  if (a.client_id != b.client_id) {
                    return a.client_id < b.client_id;
                  }
                  return a.seq < b.seq;
                });
    }
    for (SessionFoldRecord& record : records) {
      fold_record(out, record, static_cast<int>(s), model);
    }
  }
  for (const ShardContribution& shard : shards) {
    obs::merge_snapshot_into(out.metrics, shard.metrics);
  }
  return out;
}

}  // namespace etrain::gateway
