// The deterministic shutdown fold of the sharded gateway
// (docs/gateway.md#sharding).
//
// Each worker shard runs its own epoll loop and closes its sessions
// independently; instead of billing a session into shared state at close
// time, the shard keeps one SessionFoldRecord — the session's counters and
// its verbatim TransmissionLog — per closed session. Once every shard
// thread has joined, fold_shards() replays the records serially into one
// GatewayStats + EnergyLedger + merged MetricsSnapshot, in an order that
// is a pure function of the records:
//
//   * shards in shard-id order (outer);
//   * within a shard: with one shard, record (close) order — exactly the
//     accumulation order of the pre-shard single-loop gateway, which is
//     what keeps a --shards 1 report bit-identical to the pre-shard one;
//     with N > 1 shards, (client_id, accept-seq) order, so the fold is
//     independent of how the shard's close order happened to interleave.
//
// Deferring the billing from close time to the fold is energy-exact: a
// session's horizon is max(close time, log.last_end()) + tail_time, and
// any horizon >= last_end + tail_time bills the identical full tail — so
// the record carries the horizon computed at close and the fold reproduces
// the close-time arithmetic bit for bit (tests/gateway_shard_test.cpp pins
// this against a frozen copy of the pre-shard fold).
//
// This is the same parallel-execution / serial-fold discipline as
// exp::FleetHarness, so report_check's gateway invariants (exact client
// and packet partitions, ledger re-bills the summed session meters) hold
// at any shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "gateway/session.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "radio/power_model.h"
#include "radio/transmission_log.h"

namespace etrain::gateway {

/// Loop-wide totals. Client partition: accepted == disconnected +
/// at_shutdown once run() returns. Packet partition: enqueued ==
/// piggybacked + dripped + flushed (sessions are always flushed before
/// they fold, so nothing is left waiting).
struct GatewayStats {
  std::uint64_t clients_accepted = 0;
  std::uint64_t clients_disconnected = 0;
  std::uint64_t clients_at_shutdown = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t packets_enqueued = 0;
  std::uint64_t packets_piggybacked = 0;
  std::uint64_t packets_dripped = 0;
  std::uint64_t packets_flushed = 0;
  std::uint64_t transmissions = 0;
  /// Sum of per-session measure_energy network totals — the meter the
  /// report's ledger must re-bill.
  Joules meter_total_J = 0.0;
};

/// Everything the fold needs to re-bill one closed session. The log is
/// kept verbatim (never pre-aggregated into a mini-ledger) so the fold's
/// append_ledger call runs the exact per-transmission arithmetic the
/// close-time fold always ran — FP addition is order-dependent, and the
/// report byte-identity contract pins the order.
struct SessionFoldRecord {
  std::uint64_t client_id = 0;
  /// Accept sequence within the owning shard — the (client_id, seq) sort
  /// key's tie-break, so two sessions presenting the same id fold stably.
  std::uint64_t seq = 0;
  SessionCounters counters;
  radio::TransmissionLog log;
  /// Billing horizon computed at close time (covers the full tail).
  Duration horizon = 0.0;
};

/// One shard's complete contribution to the shutdown fold. `io` carries
/// only the connection-level counters (accepted / disconnected /
/// at_shutdown / protocol_errors); the session-level fields stay zero —
/// the records carry them.
struct ShardContribution {
  GatewayStats io;
  std::vector<SessionFoldRecord> records;
  obs::MetricsSnapshot metrics;
};

/// Per-session digest retained after the fold, in fold order — a few words
/// per session, enough for tests to pin session pinning (every client_id
/// folds on exactly one shard) and per-shard partitions.
struct SessionDigest {
  int shard = 0;
  std::uint64_t client_id = 0;
  SessionCounters counters;
  std::uint64_t transmissions = 0;
};

/// The folded gateway-wide state.
struct GatewayFold {
  GatewayStats stats;
  obs::EnergyLedger ledger;
  obs::MetricsSnapshot metrics;
  std::vector<SessionDigest> sessions;
};

/// Folds the shard contributions (consumed — the logs move) against the
/// shared radio `model`, in the order documented above.
GatewayFold fold_shards(std::vector<ShardContribution>&& shards,
                        const radio::PowerModel& model);

}  // namespace etrain::gateway
