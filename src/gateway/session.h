// One connected client inside the live gateway: the paper's on-device
// pipeline (HeartbeatMonitor -> EtrainScheduler -> serialized uplink with
// RRC-aware billing) re-instantiated per TCP connection, driven by wire
// frames instead of Android broadcasts and by a sim::Clock instead of the
// slotted harness.
//
// Determinism contract: a session's decisions depend ONLY on the explicit
// timestamps its callers pass (frame receipt times, quantized tick
// deadlines) — never on Clock::now() sampled mid-callback. Feed the same
// timed frame script through a VirtualClock run and a compressed-time
// WallClock run and the session emits the identical ScheduledPacket
// sequence (tests/sim_clock_test.cpp pins this).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "android/heartbeat_monitor.h"
#include "core/cost_profile.h"
#include "core/policy.h"
#include "core/policy_registry.h"
#include "core/queues.h"
#include "radio/power_model.h"
#include "radio/transmission_log.h"
#include "sim/clock.h"
#include "system/protocol.h"

namespace etrain::gateway {

/// Knobs shared by every session of one gateway instance.
struct SessionConfig {
  /// PolicyRegistry spec constructing each session's scheduler.
  std::string policy_spec = "etrain";
  /// Scheduler evaluation quantum while cargo waits, in clock seconds.
  /// Ticks land on multiples of this period (quantized), which is what
  /// keeps virtual and wall runs aligned.
  Duration tick_period = 1.0;
  /// How far ahead the monitor predicts heartbeats for the scheduler.
  Duration prediction_horizon = 600.0;
  /// Radio model billing each session's transmission log. Prefer
  /// set_radio() over assigning directly: it resolves a ModelRegistry spec
  /// and keeps `radio_spec` (the report provenance) in step.
  radio::PowerModel model = radio::PowerModel::PaperSimulation();
  /// The registry spec `model` came from (stamped into the report).
  std::string radio_spec = "3g:sim";
  /// Fixed modeled uplink rate (the live gateway has no bandwidth trace).
  BytesPerSecond bandwidth = 100e3;
  /// Modeled size of one heartbeat on the uplink.
  Bytes heartbeat_bytes = 150;

  /// Resolves `spec` through radio::builtin_model_registry() into `model`
  /// (and `radio_spec`). Throws std::invalid_argument on a bad spec.
  void set_radio(const std::string& spec);
};

/// One scheduler release, delivered to the owner (the daemon turns it into
/// an ACK frame; the bench's latency histogram feeds from it).
struct ScheduledPacket {
  std::uint64_t packet_id = 0;
  std::uint32_t wire_app = 0;  ///< the client's app id from the CARGO frame
  Bytes bytes = 0;
  TimePoint enqueued = 0.0;
  /// Start of the packet's radio occupancy (after uplink serialization).
  TimePoint transmitted = 0.0;
  /// Released during a heartbeat evaluation — it boarded the train.
  bool piggybacked = false;
  /// Forced out by flush() (shutdown/disconnect), not chosen by the policy.
  bool flushed = false;

  Duration latency() const { return transmitted - enqueued; }
};

/// Per-session packet counters. enqueued == piggybacked + dripped +
/// flushed + still-waiting; after flush() the partition is exact.
struct SessionCounters {
  std::uint64_t heartbeats = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t piggybacked = 0;
  std::uint64_t dripped = 0;
  std::uint64_t flushed = 0;
};

class ClientSession {
 public:
  using TransmitFn = std::function<void(const ScheduledPacket&)>;

  /// Builds the per-client pipeline from its HELLO registration. Throws
  /// std::invalid_argument on an invalid registration (no apps, duplicate
  /// app ids) or an invalid policy spec.
  ClientSession(const system::wire::HelloFrame& hello,
                const core::PolicyRegistry& registry,
                const SessionConfig& config, sim::Clock& clock,
                TransmitFn on_transmit);
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  std::uint64_t client_id() const { return client_id_; }

  /// A train app's heartbeat arrived at clock time `t`. Bills the
  /// heartbeat on the modeled uplink, updates the monitor, and runs a
  /// heartbeat-now scheduler evaluation (cargo boards here). Returns false
  /// for an unregistered train app (protocol error; nothing changes).
  bool on_heartbeat(std::uint32_t train_app, TimePoint t);

  /// A cargo packet arrived at clock time `t`. Enqueues it, evaluates the
  /// scheduler (no heartbeat), and keeps a quantized tick alarm armed
  /// while anything waits. Returns false for an unregistered cargo app.
  bool on_cargo(const system::wire::CargoFrame& frame, TimePoint t);

  /// Drains every waiting packet through the modeled uplink at time `t`
  /// (marked flushed) and disarms the tick alarm. Idempotent.
  void flush(TimePoint t);

  const SessionCounters& counters() const { return counters_; }
  const radio::TransmissionLog& log() const { return log_; }
  /// Moves the transmission log out for the shutdown fold (the session is
  /// closed afterwards — the shard keeps the log in its SessionFoldRecord
  /// instead of billing it at close time; see gateway/fold.h).
  radio::TransmissionLog release_log() { return std::move(log_); }
  std::size_t waiting() const { return queues_.total_size(); }

  /// The per-session monitor, read-only — the stats plane derives the
  /// heartbeat-prediction staleness gauge (seconds since the last
  /// observed beat, AoI-style) from it without touching session state.
  const android::HeartbeatMonitor& monitor() const { return monitor_; }

  /// Energy horizon for billing this session's log: the later of `t` and
  /// the last radio occupancy, plus a full tail.
  Duration energy_horizon(TimePoint t) const;

 private:
  /// Runs one scheduler evaluation at time `t` and transmits the selected
  /// packets. Then (re)arms the tick alarm iff packets still wait.
  void evaluate(TimePoint t, bool heartbeat_now);

  /// Serialized modeled uplink: bills one occupancy starting no earlier
  /// than `t`, with RRC promotion derived from the gap since the previous
  /// one. Returns the occupancy start.
  TimePoint transmit_on_uplink(TimePoint t, Bytes bytes, radio::TxKind kind,
                               int app_index, core::PacketId packet_id);

  void arm_tick(TimePoint after);
  void disarm_tick();

  std::uint64_t client_id_ = 0;
  const SessionConfig& config_;
  sim::Clock& clock_;
  TransmitFn on_transmit_;

  /// wire app id -> dense index (queues/monitor/ledger space).
  std::map<std::uint32_t, int> cargo_index_;
  std::map<std::uint32_t, int> train_index_;
  std::vector<std::uint32_t> cargo_wire_ids_;
  std::vector<const core::CostProfile*> profiles_;

  core::WaitingQueues queues_;
  std::unique_ptr<core::SchedulingPolicy> policy_;
  android::HeartbeatMonitor monitor_;
  radio::TransmissionLog log_;

  /// Uplink serialization state (mirrors the slotted harness's Uplink).
  TimePoint free_at_ = 0.0;
  TimePoint last_end_ = -1.0;

  std::optional<sim::AlarmId> tick_alarm_;
  /// Time non-decrease guard for monitor + log inputs.
  TimePoint last_input_ = 0.0;
  bool flushed_ = false;

  SessionCounters counters_;

  /// Reused evaluation buffers (no steady-state allocation).
  core::SlotContext ctx_;
  std::vector<core::Selection> selections_;
};

}  // namespace etrain::gateway
