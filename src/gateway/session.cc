#include "gateway/session.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "radio/model_registry.h"

namespace etrain::gateway {

void SessionConfig::set_radio(const std::string& spec) {
  const radio::RadioModel resolved = radio::make_radio_model(spec);
  model = resolved.power;
  radio_spec = resolved.spec;
}

namespace {

/// Profiles are immutable and stateless; every session shares these.
const core::CostProfile* profile_for(system::wire::ProfileCode code) {
  static const core::MailCostProfile mail;
  static const core::WeiboCostProfile weibo;
  static const core::CloudCostProfile cloud;
  switch (code) {
    case system::wire::ProfileCode::kMail: return &mail;
    case system::wire::ProfileCode::kWeibo: return &weibo;
    case system::wire::ProfileCode::kCloud: return &cloud;
  }
  return &mail;
}

}  // namespace

ClientSession::ClientSession(const system::wire::HelloFrame& hello,
                             const core::PolicyRegistry& registry,
                             const SessionConfig& config, sim::Clock& clock,
                             TransmitFn on_transmit)
    : client_id_(hello.client_id),
      config_(config),
      clock_(clock),
      on_transmit_(std::move(on_transmit)),
      queues_(static_cast<int>(hello.cargo_apps.size())) {
  if (hello.cargo_apps.empty() && hello.train_apps.empty()) {
    throw std::invalid_argument("ClientSession: HELLO registers no apps");
  }
  for (const system::wire::CargoAppSpec& spec : hello.cargo_apps) {
    const int index = static_cast<int>(cargo_index_.size());
    if (!cargo_index_.emplace(spec.app, index).second) {
      throw std::invalid_argument("ClientSession: duplicate cargo app id");
    }
    cargo_wire_ids_.push_back(spec.app);
    profiles_.push_back(profile_for(spec.profile));
  }
  for (const std::uint32_t app : hello.train_apps) {
    const int index = static_cast<int>(train_index_.size());
    if (!train_index_.emplace(app, index).second) {
      throw std::invalid_argument("ClientSession: duplicate train app id");
    }
  }
  policy_ = registry.make(config_.policy_spec);
  ctx_.slot_length = config_.tick_period;
  ctx_.bandwidth_estimate = config_.bandwidth;
  ctx_.bandwidth_long_term = config_.bandwidth;
}

ClientSession::~ClientSession() { disarm_tick(); }

bool ClientSession::on_heartbeat(std::uint32_t train_app, TimePoint t) {
  const auto it = train_index_.find(train_app);
  if (it == train_index_.end()) return false;
  t = std::max(t, last_input_);
  last_input_ = t;
  ++counters_.heartbeats;
  transmit_on_uplink(t, config_.heartbeat_bytes, radio::TxKind::kHeartbeat,
                     it->second, /*packet_id=*/-1);
  monitor_.on_heartbeat(it->second, t);
  evaluate(t, /*heartbeat_now=*/true);
  return true;
}

bool ClientSession::on_cargo(const system::wire::CargoFrame& frame,
                             TimePoint t) {
  const auto it = cargo_index_.find(frame.cargo_app);
  if (it == cargo_index_.end()) return false;
  t = std::max(t, last_input_);
  last_input_ = t;
  core::QueuedPacket qp;
  qp.packet.id = static_cast<core::PacketId>(frame.packet_id);
  qp.packet.app = it->second;
  qp.packet.bytes = static_cast<Bytes>(frame.bytes);
  qp.packet.arrival = t;
  qp.packet.deadline = std::max(frame.deadline_s, 1e-3);
  qp.profile = profiles_[static_cast<std::size_t>(it->second)];
  queues_.enqueue(qp);
  ++counters_.enqueued;
  evaluate(t, /*heartbeat_now=*/false);
  return true;
}

void ClientSession::evaluate(TimePoint t, bool heartbeat_now) {
  ctx_.slot_start = t;
  ctx_.heartbeat_now = heartbeat_now;
  monitor_.predict_departures(t, t + config_.prediction_horizon,
                              ctx_.upcoming_heartbeats);
  policy_->select_into(ctx_, queues_, selections_);
  for (const core::Selection& sel : selections_) {
    core::QueuedPacket qp = queues_.remove(sel.app, sel.packet);
    const TimePoint start =
        transmit_on_uplink(t, qp.packet.bytes, radio::TxKind::kData,
                           qp.packet.app, qp.packet.id);
    if (heartbeat_now) {
      ++counters_.piggybacked;
    } else {
      ++counters_.dripped;
    }
    ScheduledPacket out;
    out.packet_id = static_cast<std::uint64_t>(qp.packet.id);
    out.wire_app =
        cargo_wire_ids_[static_cast<std::size_t>(qp.packet.app)];
    out.bytes = qp.packet.bytes;
    out.enqueued = qp.packet.arrival;
    out.transmitted = start;
    out.piggybacked = heartbeat_now;
    if (on_transmit_) on_transmit_(out);
  }
  // Keep a quantized tick armed while anything waits: the scheduler gets
  // its next look at ceil(t / period) * period, an absolute grid point
  // identical in virtual and wall time.
  if (queues_.empty()) {
    disarm_tick();
  } else if (!tick_alarm_.has_value()) {
    arm_tick(t);
  }
}

TimePoint ClientSession::transmit_on_uplink(TimePoint t, Bytes bytes,
                                            radio::TxKind kind, int app_index,
                                            core::PacketId packet_id) {
  const TimePoint start = std::max(t, free_at_);
  // RRC promotion from the gap since the previous occupancy — the same
  // rules as the slotted harness's uplink (including any CDRX extra tail
  // phases), so append_ledger re-bills this log with identical arithmetic.
  const Duration setup =
      last_end_ < 0.0
          ? config_.model.idle_to_dch_delay
          : config_.model.promotion_delay_after_gap(start - last_end_);
  radio::Transmission tx;
  tx.start = start;
  tx.setup = setup;
  tx.duration = static_cast<double>(bytes) / config_.bandwidth;
  tx.bytes = bytes;
  tx.kind = kind;
  tx.app_id = app_index;
  tx.packet_id = packet_id;
  log_.add(tx);
  free_at_ = tx.end();
  last_end_ = tx.end();
  return start;
}

void ClientSession::flush(TimePoint t) {
  disarm_tick();
  if (flushed_) return;
  flushed_ = true;
  t = std::max(t, last_input_);
  last_input_ = t;
  for (core::QueuedPacket& qp : queues_.drain_all()) {
    const TimePoint start =
        transmit_on_uplink(t, qp.packet.bytes, radio::TxKind::kData,
                           qp.packet.app, qp.packet.id);
    ++counters_.flushed;
    ScheduledPacket out;
    out.packet_id = static_cast<std::uint64_t>(qp.packet.id);
    out.wire_app =
        cargo_wire_ids_[static_cast<std::size_t>(qp.packet.app)];
    out.bytes = qp.packet.bytes;
    out.enqueued = qp.packet.arrival;
    out.transmitted = start;
    out.flushed = true;
    if (on_transmit_) on_transmit_(out);
  }
}

Duration ClientSession::energy_horizon(TimePoint t) const {
  return std::max(t, log_.last_end()) + config_.model.tail_time();
}

void ClientSession::arm_tick(TimePoint after) {
  // Next grid point strictly after `after`.
  const double period = config_.tick_period;
  TimePoint next = std::ceil(after / period) * period;
  if (next <= after) next = next + period;
  tick_alarm_ = clock_.schedule_at(next, [this, next] {
    tick_alarm_.reset();
    if (flushed_) return;
    last_input_ = std::max(last_input_, next);
    evaluate(next, /*heartbeat_now=*/false);
  });
}

void ClientSession::disarm_tick() {
  if (tick_alarm_.has_value()) {
    clock_.cancel(*tick_alarm_);
    tick_alarm_.reset();
  }
}

}  // namespace etrain::gateway
