// In-process load generator for the live gateway: a seeded population of
// loopback TCP clients that speak the wire protocol, each with its own
// heartbeat rhythm and Poisson cargo arrivals, all scripted up-front from
// one Rng seed so runs are reproducible.
//
// Phases (run() does all three):
//   connect   every client connects and sends HELLO — timed, this is the
//             connections/sec figure;
//   drive     the pre-generated, time-sorted event script (HEARTBEAT and
//             CARGO frames) is paced against wall time x time_scale — the
//             same compression the gateway's WallClock uses — while ACKs
//             are drained and their latencies recorded;
//   drain     every client sends BYE and outstanding ACKs are collected
//             until the gateway closes the sockets (bounded wait).
//
// The generator is single-threaded and epoll-driven; run it on a different
// thread than the Gateway (bench_gateway does) or against an external
// daemon via `port`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace etrain::gateway {

struct LoadGenConfig {
  /// Loopback port of a listening gateway.
  int port = 0;
  int clients = 100;
  /// Clock seconds of scripted traffic per client.
  Duration duration = 120.0;
  /// Clock seconds per real second while driving; MUST match the gateway's
  /// time_scale or latencies and tick alignment are meaningless.
  double time_scale = 1.0;
  std::uint64_t seed = 42;
  /// Heartbeat period range, clock seconds (uniform per client).
  Duration heartbeat_period_min = 20.0;
  Duration heartbeat_period_max = 40.0;
  /// Mean cargo inter-arrival per client, clock seconds (Poisson).
  Duration cargo_interarrival_mean = 40.0;
  /// Cargo deadline range, clock seconds (uniform per packet).
  Duration deadline_min = 10.0;
  Duration deadline_max = 120.0;
  /// Wall-second cap on the final ACK drain.
  double drain_timeout_s = 10.0;
};

struct LoadGenResult {
  std::size_t clients_connected = 0;
  std::size_t heartbeats_sent = 0;
  std::size_t cargos_sent = 0;
  std::size_t acks_received = 0;
  std::size_t acks_boarded = 0;  ///< ACKs flagged piggybacked
  std::size_t protocol_errors = 0;
  /// Wall seconds of the connect+HELLO phase.
  double connect_seconds = 0.0;
  /// Wall seconds of the drive phase.
  double drive_seconds = 0.0;
  /// Enqueue->transmit latency of every ACK, clock seconds, in arrival
  /// order. Sort to take quantiles.
  std::vector<double> latencies;

  bool all_connected(const LoadGenConfig& config) const {
    return clients_connected == static_cast<std::size_t>(config.clients);
  }
};

/// Runs the three phases against the gateway on config.port. Throws
/// std::runtime_error when the connect phase cannot reach the gateway.
LoadGenResult run_load(const LoadGenConfig& config);

}  // namespace etrain::gateway
