#include "gateway/loadgen.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "system/protocol.h"

namespace etrain::gateway {

namespace {

using namespace system::wire;

/// One scripted frame send: clock time, owning client, encoded bytes.
struct Event {
  double t = 0.0;
  int client = 0;
  std::string bytes;
  bool heartbeat = false;
};

/// splitmix64-style per-client seed so adding a client never perturbs
/// another client's script.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t i) {
  std::uint64_t z = seed + (i + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

struct ClientState {
  int fd = -1;
  FrameReader reader;
  bool closed = false;
};

double wall_seconds_since(std::chrono::steady_clock::time_point origin) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin)
      .count();
}

void send_all(int fd, std::string_view bytes,
              const std::function<void()>& drain) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The gateway is busy ACKing us; make room by draining our side.
      drain();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer dropped us; the read side will record it
  }
}

}  // namespace

LoadGenResult run_load(const LoadGenConfig& config) {
  if (config.clients <= 0 || config.port <= 0) {
    throw std::runtime_error("loadgen: need clients > 0 and a real port");
  }
  LoadGenResult result;

  // -------------------------------------------------------------- script --
  std::vector<Event> events;
  std::vector<std::string> hellos(static_cast<std::size_t>(config.clients));
  for (int c = 0; c < config.clients; ++c) {
    Rng rng(mix_seed(config.seed, static_cast<std::uint64_t>(c)));

    HelloFrame hello;
    hello.client_id = static_cast<std::uint64_t>(c);
    const std::uint32_t train_app = 1;
    hello.train_apps.push_back(train_app);
    for (std::uint32_t a = 0; a < 2; ++a) {
      CargoAppSpec spec;
      spec.app = 100 + a;
      spec.profile = static_cast<ProfileCode>((c + static_cast<int>(a)) % 3);
      hello.cargo_apps.push_back(spec);
    }
    hellos[static_cast<std::size_t>(c)] = encode_hello(hello);

    const double period = rng.uniform(config.heartbeat_period_min,
                                      config.heartbeat_period_max);
    double t = rng.uniform(0.0, period);
    std::uint32_t seq = 0;
    while (t < config.duration) {
      HeartbeatFrame hb;
      hb.train_app = train_app;
      hb.seq = seq++;
      events.push_back(Event{t, c, encode_heartbeat(hb), true});
      t += period;
    }

    double arrival = rng.exponential_mean(config.cargo_interarrival_mean);
    std::uint64_t packet_seq = 0;
    while (arrival < config.duration) {
      CargoFrame cargo;
      cargo.cargo_app = 100 + static_cast<std::uint32_t>(rng.uniform_int(0, 1));
      cargo.packet_id =
          (static_cast<std::uint64_t>(c) << 20) | packet_seq++;
      cargo.bytes = static_cast<std::uint64_t>(rng.uniform_int(500, 50000));
      cargo.deadline_s =
          rng.uniform(config.deadline_min, config.deadline_max);
      events.push_back(Event{arrival, c, encode_cargo(cargo), false});
      arrival += rng.exponential_mean(config.cargo_interarrival_mean);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.t < b.t; });

  // ------------------------------------------------------------- connect --
  std::vector<ClientState> clients(static_cast<std::size_t>(config.clients));
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) throw std::runtime_error("loadgen: epoll_create1 failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config.port));

  const auto connect_start = std::chrono::steady_clock::now();
  for (int c = 0; c < config.clients; ++c) {
    ClientState& cs = clients[static_cast<std::size_t>(c)];
    cs.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (cs.fd < 0) {
      cs.closed = true;
      continue;
    }
    // Blocking connect: loopback completes as soon as the SYN lands in the
    // gateway's (deep) listen backlog, not when it accepts.
    if (::connect(cs.fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(cs.fd);
      cs.fd = -1;
      cs.closed = true;
      continue;
    }
    send_all(cs.fd, hellos[static_cast<std::size_t>(c)], [] {});
    const int flags = ::fcntl(cs.fd, F_GETFL, 0);
    ::fcntl(cs.fd, F_SETFL, flags | O_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(c);
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, cs.fd, &ev);
    ++result.clients_connected;
  }
  result.connect_seconds = wall_seconds_since(connect_start);
  if (result.clients_connected == 0) {
    ::close(epoll_fd);
    throw std::runtime_error("loadgen: no client could connect");
  }

  // ---------------------------------------------------------------- drive --
  std::size_t live = result.clients_connected;
  const auto on_ack = [&](const Frame& frame) {
    AckFrame ack;
    if (frame.type != FrameType::kAck ||
        !decode_ack(frame.payload, ack)) {
      ++result.protocol_errors;
      return;
    }
    ++result.acks_received;
    if (ack.boarded != 0) ++result.acks_boarded;
    result.latencies.push_back(ack.latency_s);
  };
  const auto close_client = [&](ClientState& cs) {
    if (cs.closed) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, cs.fd, nullptr);
    ::close(cs.fd);
    cs.fd = -1;
    cs.closed = true;
    --live;
  };
  const auto drain = [&](int timeout_ms) {
    epoll_event ready[128];
    const int n = ::epoll_wait(epoll_fd, ready, 128, timeout_ms);
    for (int i = 0; i < n; ++i) {
      ClientState& cs = clients[ready[i].data.u32];
      if (cs.closed) continue;
      char buf[65536];
      while (true) {
        const ssize_t r = ::recv(cs.fd, buf, sizeof(buf), 0);
        if (r > 0) {
          cs.reader.feed(
              std::string_view(buf, static_cast<std::size_t>(r)));
          Frame frame;
          while (cs.reader.next(frame) == FrameReader::Status::kFrame) {
            on_ack(frame);
          }
          if (cs.reader.errored()) {
            ++result.protocol_errors;
            close_client(cs);
            break;
          }
          if (static_cast<std::size_t>(r) < sizeof(buf)) break;
          continue;
        }
        if (r == 0) {
          close_client(cs);
          break;
        }
        if (errno == EINTR) continue;
        break;  // EAGAIN: drained
      }
    }
  };

  const auto drive_start = std::chrono::steady_clock::now();
  for (const Event& event : events) {
    ClientState& cs = clients[static_cast<std::size_t>(event.client)];
    if (cs.closed) continue;
    // Pace against wall time compressed by the gateway's own factor.
    for (;;) {
      const double clock_elapsed =
          wall_seconds_since(drive_start) * config.time_scale;
      if (clock_elapsed >= event.t) break;
      const double wait_wall_s =
          (event.t - clock_elapsed) / config.time_scale;
      drain(static_cast<int>(
          std::min(50.0, std::max(1.0, wait_wall_s * 1000.0))));
    }
    send_all(cs.fd, event.bytes, [&] { drain(0); });
    if (event.heartbeat) {
      ++result.heartbeats_sent;
    } else {
      ++result.cargos_sent;
    }
  }
  result.drive_seconds = wall_seconds_since(drive_start);

  // ---------------------------------------------------------------- drain --
  const std::string bye = encode_bye();
  for (ClientState& cs : clients) {
    if (!cs.closed) send_all(cs.fd, bye, [&] { drain(0); });
  }
  const auto drain_start = std::chrono::steady_clock::now();
  while (live > 0 &&
         wall_seconds_since(drain_start) < config.drain_timeout_s) {
    drain(50);
  }
  for (ClientState& cs : clients) close_client(cs);
  ::close(epoll_fd);
  return result;
}

}  // namespace etrain::gateway
