// One worker shard of the sharded gateway (docs/gateway.md#sharding): a
// single-threaded, level-triggered epoll event loop serving TCP clients
// that speak the wire protocol of system/protocol.h, one ClientSession
// (HeartbeatMonitor + scheduler + modeled RRC uplink) per connection.
//
// A shard owns its epoll fd, its own scaled WallClock, its session map,
// its metrics registries and its flight recorder — nothing on the frame
// hot path is shared, so ClientSession stays lock-free and byte-identical
// to the unsharded gateway. Connections land on a shard either through its
// own SO_REUSEPORT listener (the kernel pins the 4-tuple to one accept
// queue) or, in hand-off mode, through the mailbox: shard 0 accepts and
// deliver_fd() hands the raw fd over (threads share the fd table, so an
// int is enough), with a self-pipe byte waking the target loop. Either
// way a session lives and dies on one shard.
//
// Threading model: open() belongs to the owning thread (the Gateway);
// run() to the shard thread. Cross-thread entries are request_stop(),
// request_flight_dump(), deliver_fd() (all one mutex-free-or-tiny-critical
// pipe write) and published_view(), a mutex-guarded copy of the snapshot
// the loop publishes after every wake for the stats plane. Everything
// else — including take_contribution() — synchronizes via thread join.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/policy_registry.h"
#include "gateway/fold.h"
#include "gateway/session.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/trace_buffer.h"
#include "sim/clock.h"

namespace etrain::gateway {

/// Upper bound on worker shards — sized by the static signal-handler
/// fan-out table (gateway.cc), far above any sane core count.
inline constexpr int kMaxShards = 64;

/// Self-pipe control bytes: written by the shard's own cross-thread
/// entries, by Gateway's fan-out, and by the signal handler.
inline constexpr char kPipeStop = 1;
inline constexpr char kPipeFlightDump = 2;
inline constexpr char kPipeMailbox = 3;

struct GatewayConfig {
  SessionConfig session;
  /// Clock seconds per real second for every shard's WallClock (> 0).
  /// Load tests compress time; production runs at 1.
  double time_scale = 1.0;
  /// TCP port to listen on; 0 binds an ephemeral port (open() returns it).
  int port = 0;
  int listen_backlog = 4096;
  /// When non-empty, run() writes a RunReport manifest here on shutdown.
  std::string report_path;
  /// Bench name stamped into the report.
  std::string bench_name = "gateway";

  /// Worker shards (1..kMaxShards): each owns its own epoll loop, scaled
  /// WallClock and session map; a connection is pinned to one shard for
  /// life. 1 keeps the exact pre-shard single-loop behavior (and report
  /// bytes).
  int shards = 1;
  /// How connections land on shards when shards > 1. kAuto tries
  /// per-shard SO_REUSEPORT listeners and falls back to accept-and-hand-
  /// off from shard 0 when the socket option is unavailable; the explicit
  /// modes force one path (tests exercise both).
  enum class AcceptMode { kAuto, kReusePort, kHandoff };
  AcceptMode accept_mode = AcceptMode::kAuto;

  /// Live telemetry plane (docs/live_telemetry.md). -1 disables the
  /// stats listener; 0 binds an ephemeral port (Gateway::stats_port()
  /// reports it); open() throws — loudly — when the bind fails. The
  /// listener is served by shard 0's loop; other shards publish snapshot
  /// structs it aggregates.
  int stats_port = -1;
  /// Tick-lag watchdog budget, REAL seconds: a shard is unhealthy when
  /// its earliest pending alarm is overdue by more than this. A trip
  /// dumps that shard's flight recorder (once per unhealthy episode).
  double watchdog_budget_s = 5.0;
  /// Flight-recorder ring capacity per shard, events (always on; ~40 B
  /// each).
  std::size_t flight_capacity = std::size_t{1} << 16;
  /// Where SIGUSR1 / watchdog trips dump the flight recorder (Chrome
  /// trace_event JSON). With one shard the path is used verbatim; with N
  /// shards each dumps to <stem>.shard<i>.json.
  std::string flight_path = "gateway.flight.json";
  /// Row cap of the /sessions endpoint (top-N by queue depth).
  std::size_t sessions_top_n = 20;
};

/// One /sessions row in a shard's published view.
struct ShardSessionRow {
  std::uint64_t client_id = 0;
  std::size_t waiting = 0;
  double staleness = -1.0;  ///< clock seconds; -1 before any observed beat
  radio::RrcState rrc = radio::RrcState::kIdle;
};

/// The read-only view a shard publishes for the stats plane. Shard 0
/// computes its own view fresh inside the scrape handler (it runs on shard
/// 0's loop thread); every other shard publishes a copy under its mutex at
/// the end of each epoll wake — the cheap scalar half every wake, the
/// session-scan half at a bounded real-time interval.
struct ShardSnapshot {
  /// False until the shard's loop published for the first time — the
  /// health wedge check skips shards that have not started yet.
  bool started = false;
  /// std::chrono::steady_clock seconds of the last publish; the /healthz
  /// handler treats a long-stale snapshot as a wedged shard (a stuck loop
  /// cannot report its own tick lag).
  double published_wall_s = 0.0;

  // Cheap half — refreshed at the end of every epoll wake.
  std::uint64_t clients_accepted = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t packets_enqueued = 0;
  std::uint64_t packets_scheduled = 0;
  std::uint64_t protocol_errors = 0;
  std::size_t connections = 0;
  double now = 0.0;  ///< the shard clock's current reading
  double tick_lag_s = 0.0;
  bool watchdog_unhealthy = false;
  std::uint64_t watchdog_trips = 0;
  std::uint64_t flight_events = 0;
  std::uint64_t flight_dropped = 0;
  std::uint64_t flight_dumps = 0;

  // Session-scan half — one pass over the session map, refreshed at most
  // every ~100 real ms (kSessionScanInterval in shard.cc).
  double live_sessions = 0.0;
  double queued_cargo = 0.0;
  double rrc_sessions[3] = {0.0, 0.0, 0.0};  ///< idle, fach, dch
  double stale_max = 0.0;
  double stale_sum = 0.0;
  double stale_n = 0.0;
  std::vector<ShardSessionRow> top_sessions;  ///< capped at sessions_top_n

  /// The shard's report registry (the latency histogram), refreshed with
  /// the session-scan half; merged across shards for /metrics.
  obs::MetricsSnapshot report_metrics;
};

class GatewayShard {
 public:
  /// `config` must outlive the shard (the Gateway owns both).
  GatewayShard(const core::PolicyRegistry& registry,
               const GatewayConfig& config, int shard_id, int shard_count);
  ~GatewayShard();

  GatewayShard(const GatewayShard&) = delete;
  GatewayShard& operator=(const GatewayShard&) = delete;

  /// Creates the epoll/self-pipe plumbing and adopts `listen_fd` (already
  /// bound + listening + nonblocking; -1 = no listener, hand-off target).
  /// Throws std::runtime_error on any failure — including a failed
  /// epoll_ctl registration, which used to be silently ignored.
  void open(int listen_fd);

  int shard_id() const { return shard_id_; }
  int epoll_fd() const { return epoll_fd_; }
  int pipe_write_fd() const { return pipe_write_fd_; }

  /// Shard 0 only: the stats listener served from this shard's loop.
  void attach_stats(obs::StatsServer* stats) { stats_ = stats; }
  /// Shard 0 only, hand-off mode: the accept round-robin targets
  /// (including this shard itself).
  void set_handoff_peers(std::vector<GatewayShard*> peers) {
    handoff_peers_ = std::move(peers);
  }

  /// Serves until request_stop(), then gracefully closes every live
  /// session into fold records. Runs on the shard thread.
  void run();

  /// Stops the loop from any thread or signal handler (one pipe write).
  void request_stop();
  /// Asks the loop to dump its flight recorder (async, any thread).
  void request_flight_dump();
  /// Hand-off: adopt an accepted connection fd (any thread). The fd is
  /// parked in the mailbox and adopted at the loop's next wake; fds still
  /// parked at shutdown are closed unaccounted (they were never accepted
  /// into the stats partition).
  void deliver_fd(int fd);

  /// The latest published snapshot (mutex copy; any thread).
  ShardSnapshot published_view() const;
  /// A fresh view computed now. Loop-thread only — shard 0's scrape
  /// handlers use it so a 1-shard gateway scrapes exact, never-stale state
  /// (the pre-shard behavior).
  ShardSnapshot live_view();

  sim::WallClock& clock() { return clock_; }
  /// Tick-lag of this shard's loop in REAL seconds (loop thread only).
  double tick_lag_s() const;
  /// Post-join accessors for the report's environment section.
  std::uint64_t watchdog_trips() const { return watchdog_trips_; }
  std::uint64_t flight_dumps() const { return flight_dumps_; }

  /// This shard's fold input (consumed). Call after run() returned —
  /// thread join is the synchronization point.
  ShardContribution take_contribution();

 private:
  struct Connection;

  void accept_ready();
  /// Registers an accepted fd as a connection on THIS shard.
  void adopt_fd(int fd);
  void drain_mailbox(bool adopt);
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  /// Parses buffered frames; false = drop the connection (protocol error).
  bool dispatch_frames(Connection& conn);
  void queue_ack(Connection& conn, const ScheduledPacket& packet);
  /// Flushes the session, keeps its fold record, closes the socket.
  void close_connection(int fd, bool at_shutdown);
  void update_write_interest(Connection& conn);
  int wait_timeout_ms() const;
  void poll_watchdog();
  void dump_flight_recorder();
  /// Fills the session-scan half of `view` from the live session map.
  void scan_sessions(ShardSnapshot& view);
  void publish_snapshot();

  const core::PolicyRegistry& registry_;
  const GatewayConfig& config_;
  const int shard_id_;
  const int shard_count_;
  sim::WallClock clock_;
  obs::Registry metrics_;
  obs::TraceBuffer flight_;
  std::string flight_path_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int pipe_read_fd_ = -1;
  int pipe_write_fd_ = -1;
  bool stop_ = false;

  std::map<int, std::unique_ptr<Connection>> connections_;
  std::uint64_t accept_seq_ = 0;  ///< fold-record tie-break source
  /// Connection-level counters (session fields folded later).
  GatewayStats io_;
  std::vector<SessionFoldRecord> records_;

  obs::StatsServer* stats_ = nullptr;
  std::vector<GatewayShard*> handoff_peers_;
  std::uint64_t handoff_rr_ = 0;

  bool watchdog_unhealthy_ = false;
  std::uint64_t watchdog_trips_ = 0;
  std::uint64_t flight_dumps_ = 0;

  /// Hand-off mailbox: raw accepted fds awaiting adoption.
  std::mutex mailbox_mutex_;
  std::vector<int> mailbox_;

  /// The published snapshot (see ShardSnapshot). Only shards other than 0
  /// publish, and only when the stats plane is on.
  bool publish_ = false;
  mutable std::mutex snapshot_mutex_;
  ShardSnapshot snapshot_;
  double last_session_scan_wall_s_ = -1.0;

  /// Live counters (bumped as frames arrive, not at session fold) backing
  /// /metrics mid-run. Equal to the folded GatewayStats once every session
  /// closed. They live in their own registry so the RunReport's metrics
  /// section stays exactly what it was before the stats plane existed.
  obs::Registry live_;
  obs::Counter* ctr_accepted_ = nullptr;
  obs::Counter* ctr_heartbeats_ = nullptr;
  obs::Counter* ctr_enqueued_ = nullptr;
  obs::Counter* ctr_scheduled_ = nullptr;
  obs::Counter* ctr_errors_ = nullptr;
};

}  // namespace etrain::gateway
