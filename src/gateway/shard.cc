#include "gateway/shard.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/exporters.h"

namespace etrain::gateway {

namespace {

/// Real-second floor between two session-map scans for the published
/// snapshot — the cheap scalar half refreshes every wake, the O(sessions)
/// half at this bounded rate so publishing never dominates a busy loop.
constexpr double kSessionScanInterval = 0.1;

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("gateway: fcntl(O_NONBLOCK) failed");
  }
}

/// Upper bounds for the enqueue->transmit latency histogram, in clock
/// seconds: sub-second drips up to multi-cycle waits.
std::vector<double> latency_bounds() {
  return {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0,
          30.0, 45.0, 60.0, 90.0, 120.0, 180.0, 300.0, 600.0};
}

/// Where shard `shard_id` dumps its flight recorder. A 1-shard gateway
/// keeps the configured path verbatim (the pre-shard contract; SIGUSR1
/// tests depend on it); sharded gateways suffix the stem per shard so
/// dumps never clobber each other.
std::string flight_path_for(const std::string& path, int shard_id,
                            int shard_count) {
  if (shard_count <= 1) return path;
  const std::string suffix = ".shard" + std::to_string(shard_id);
  const std::string ext = ".json";
  if (path.size() >= ext.size() &&
      path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
    return path.substr(0, path.size() - ext.size()) + suffix + ext;
  }
  return path + suffix;
}

}  // namespace

/// Per-connection state. Address-stable (held by unique_ptr) because the
/// session's transmit callback captures a pointer to it.
struct GatewayShard::Connection {
  int fd = -1;
  system::wire::FrameReader reader;
  std::unique_ptr<ClientSession> session;
  /// Accept order on this shard — the session's fold-record tie-break.
  std::uint64_t accept_seq = 0;
  /// Outbound ACK bytes not yet accepted by the kernel.
  std::string outbuf;
  std::size_t out_off = 0;
  bool want_write = false;

  bool has_backlog() const { return out_off < outbuf.size(); }
};

GatewayShard::GatewayShard(const core::PolicyRegistry& registry,
                           const GatewayConfig& config, int shard_id,
                           int shard_count)
    : registry_(registry),
      config_(config),
      shard_id_(shard_id),
      shard_count_(shard_count),
      clock_(config.time_scale),
      flight_(config.flight_capacity),
      flight_path_(
          flight_path_for(config.flight_path, shard_id, shard_count)) {}

GatewayShard::~GatewayShard() {
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    ::close(fd);
  }
  connections_.clear();
  for (const int fd : mailbox_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (pipe_read_fd_ >= 0) ::close(pipe_read_fd_);
  if (pipe_write_fd_ >= 0) ::close(pipe_write_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void GatewayShard::open(int listen_fd) {
  listen_fd_ = listen_fd;

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    throw std::runtime_error("gateway: pipe() failed");
  }
  pipe_read_fd_ = pipe_fds[0];
  pipe_write_fd_ = pipe_fds[1];
  set_nonblocking(pipe_read_fd_);
  set_nonblocking(pipe_write_fd_);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw std::runtime_error("gateway: epoll_create1() failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (listen_fd_ >= 0) {
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
      throw std::runtime_error(
          "gateway: epoll_ctl(ADD, listener) failed: " +
          std::string(std::strerror(errno)));
    }
  }
  ev.data.fd = pipe_read_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, pipe_read_fd_, &ev) < 0) {
    throw std::runtime_error("gateway: epoll_ctl(ADD, self-pipe) failed: " +
                             std::string(std::strerror(errno)));
  }

  // Touch the metrics so the report always carries the same shape.
  metrics_.histogram("gateway.latency_s", latency_bounds());

  // Live counters for the stats plane (separate registry; see shard.h).
  ctr_accepted_ = &live_.counter("gateway.clients_accepted");
  ctr_heartbeats_ = &live_.counter("gateway.heartbeats");
  ctr_enqueued_ = &live_.counter("gateway.packets_enqueued");
  ctr_scheduled_ = &live_.counter("gateway.packets_scheduled");
  ctr_errors_ = &live_.counter("gateway.protocol_errors");

  // Shard 0 answers scrapes from its own fresh state; the others publish.
  publish_ = config_.stats_port >= 0 && shard_count_ > 1 && shard_id_ != 0;
}

void GatewayShard::request_stop() {
  if (pipe_write_fd_ < 0) {
    stop_ = true;
    return;
  }
  [[maybe_unused]] const ssize_t n =
      ::write(pipe_write_fd_, &kPipeStop, 1);
}

void GatewayShard::request_flight_dump() {
  if (pipe_write_fd_ < 0) return;
  [[maybe_unused]] const ssize_t n =
      ::write(pipe_write_fd_, &kPipeFlightDump, 1);
}

void GatewayShard::deliver_fd(int fd) {
  {
    std::lock_guard<std::mutex> lock(mailbox_mutex_);
    mailbox_.push_back(fd);
  }
  [[maybe_unused]] const ssize_t n =
      ::write(pipe_write_fd_, &kPipeMailbox, 1);
}

int GatewayShard::wait_timeout_ms() const {
  const std::optional<TimePoint> next = clock_.next_alarm();
  if (!next.has_value()) return 1000;  // idle heartbeat of the loop itself
  const double wait_s = clock_.real_seconds_until(*next);
  if (wait_s <= 0.0) return 0;
  // Round up so we never spin-wake just before the deadline; cap so a far
  // alarm cannot make the loop unresponsive to anything epoll misses.
  return static_cast<int>(std::min(1000.0, std::ceil(wait_s * 1000.0)));
}

void GatewayShard::run() {
  if (epoll_fd_ < 0) {
    throw std::runtime_error("gateway: run() before open()");
  }
  epoll_event events[128];
  while (!stop_) {
    const int n = ::epoll_wait(epoll_fd_, events, 128, wait_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("gateway: epoll_wait() failed");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == pipe_read_fd_) {
        char drain[64];
        ssize_t got;
        bool mailbox_ready = false;
        while ((got = ::read(pipe_read_fd_, drain, sizeof(drain))) > 0) {
          for (ssize_t j = 0; j < got; ++j) {
            if (drain[j] == kPipeFlightDump) {
              dump_flight_recorder();
            } else if (drain[j] == kPipeMailbox) {
              mailbox_ready = true;
            } else {
              stop_ = true;
            }
          }
        }
        if (mailbox_ready) drain_mailbox(/*adopt=*/true);
      } else if (fd == listen_fd_) {
        accept_ready();
      } else if (stats_ != nullptr && stats_->owns(fd)) {
        stats_->handle_event(fd, mask);
      } else {
        const auto it = connections_.find(fd);
        if (it == connections_.end()) continue;  // closed earlier this batch
        Connection& conn = *it->second;
        if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
          close_connection(fd, /*at_shutdown=*/false);
          continue;
        }
        if ((mask & EPOLLOUT) != 0) handle_writable(conn);
        if (connections_.find(fd) == connections_.end()) continue;
        if ((mask & EPOLLIN) != 0) handle_readable(conn);
      }
    }
    // Fire due session ticks after the socket work so a tick sees every
    // frame that arrived before its deadline.
    clock_.run_due();
    poll_watchdog();
    if (publish_) publish_snapshot();
  }
  if (stats_ != nullptr) stats_->close_all();

  // Fds still parked in the mailbox were never adopted (never counted as
  // accepted), so closing them silently keeps the client partition exact.
  drain_mailbox(/*adopt=*/false);

  // Graceful shutdown: flush every live session into its fold record.
  const std::vector<int> live = [this] {
    std::vector<int> fds;
    fds.reserve(connections_.size());
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
    return fds;
  }();
  for (const int fd : live) close_connection(fd, /*at_shutdown=*/true);
  if (publish_) publish_snapshot();
}

void GatewayShard::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    if (!handoff_peers_.empty()) {
      // Hand-off mode (shard 0 only): deal accepted fds round-robin.
      GatewayShard* target =
          handoff_peers_[handoff_rr_++ % handoff_peers_.size()];
      if (target != this) {
        target->deliver_fd(fd);
        continue;
      }
    }
    adopt_fd(fd);
  }
}

void GatewayShard::adopt_fd(int fd) {
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->accept_seq = accept_seq_++;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  ++io_.clients_accepted;
  if (ctr_accepted_ != nullptr) ctr_accepted_->increment();
  connections_.emplace(fd, std::move(conn));
}

void GatewayShard::drain_mailbox(bool adopt) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(mailbox_mutex_);
    fds.swap(mailbox_);
  }
  for (const int fd : fds) {
    if (adopt) {
      adopt_fd(fd);
    } else {
      ::close(fd);
    }
  }
}

void GatewayShard::handle_readable(Connection& conn) {
  const int fd = conn.fd;
  char buf[65536];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      if (!dispatch_frames(conn)) {
        ++io_.protocol_errors;
        if (ctr_errors_ != nullptr) ctr_errors_->increment();
        flight_.record(obs::TraceEvent::tx_failure(
            clock_.now(), /*kind=*/0, /*entity=*/fd, /*attempt=*/1,
            /*airtime=*/0.0));
        close_connection(fd, /*at_shutdown=*/false);
        return;
      }
      // A BYE inside the batch closed (and freed) the connection.
      if (connections_.find(fd) == connections_.end()) return;
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;  // drained
      continue;
    }
    if (n == 0) {  // orderly EOF without BYE: treat as disconnect
      close_connection(fd, /*at_shutdown=*/false);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(fd, /*at_shutdown=*/false);
    return;
  }
}

bool GatewayShard::dispatch_frames(Connection& conn) {
  using system::wire::FrameReader;
  system::wire::Frame frame;
  while (true) {
    const FrameReader::Status status = conn.reader.next(frame);
    if (status == FrameReader::Status::kNeedMore) return true;
    if (status == FrameReader::Status::kError) return false;
    switch (frame.type) {
      case system::wire::FrameType::kHello: {
        if (conn.session != nullptr) return false;  // double HELLO
        system::wire::HelloFrame hello;
        if (!system::wire::decode_hello(frame.payload, hello)) return false;
        Connection* conn_ptr = &conn;
        try {
          conn.session = std::make_unique<ClientSession>(
              hello, registry_, config_.session, clock_,
              [this, conn_ptr](const ScheduledPacket& packet) {
                queue_ack(*conn_ptr, packet);
              });
        } catch (const std::invalid_argument&) {
          return false;  // bad registration (no apps / duplicates)
        }
        break;
      }
      case system::wire::FrameType::kHeartbeat: {
        if (conn.session == nullptr) return false;
        system::wire::HeartbeatFrame hb;
        if (!system::wire::decode_heartbeat(frame.payload, hb)) return false;
        if (!conn.session->on_heartbeat(hb.train_app, clock_.now())) {
          return false;
        }
        if (ctr_heartbeats_ != nullptr) ctr_heartbeats_->increment();
        flight_.record(obs::TraceEvent::heartbeat_tx(
            clock_.now(), static_cast<std::int32_t>(hb.train_app),
            static_cast<std::int64_t>(config_.session.heartbeat_bytes)));
        break;
      }
      case system::wire::FrameType::kCargo: {
        if (conn.session == nullptr) return false;
        system::wire::CargoFrame cargo;
        if (!system::wire::decode_cargo(frame.payload, cargo)) return false;
        if (!conn.session->on_cargo(cargo, clock_.now())) return false;
        if (ctr_enqueued_ != nullptr) ctr_enqueued_->increment();
        flight_.record(obs::TraceEvent::slot_begin(
            clock_.now(),
            static_cast<std::int32_t>(conn.session->waiting()),
            static_cast<double>(cargo.bytes)));
        break;
      }
      case system::wire::FrameType::kBye:
        if (!frame.payload.empty()) return false;
        close_connection(conn.fd, /*at_shutdown=*/false);
        return true;  // conn is gone; stop dispatching
      case system::wire::FrameType::kAck:
        return false;  // clients never send ACK
    }
  }
}

void GatewayShard::queue_ack(Connection& conn,
                             const ScheduledPacket& packet) {
  metrics_.histogram("gateway.latency_s", latency_bounds())
      .add(packet.latency());
  if (ctr_scheduled_ != nullptr) ctr_scheduled_->increment();
  flight_.record(obs::TraceEvent::packet_select(
      packet.transmitted, static_cast<std::int32_t>(packet.wire_app),
      static_cast<std::int64_t>(packet.packet_id), packet.latency(),
      static_cast<double>(packet.bytes)));
  system::wire::AckFrame ack;
  ack.packet_id = packet.packet_id;
  ack.latency_s = packet.latency();
  ack.boarded = packet.piggybacked ? 1 : 0;
  const bool was_idle = !conn.has_backlog();
  conn.outbuf += system::wire::encode_ack(ack);
  if (was_idle) {
    // Opportunistic immediate write; EPOLLOUT only for the remainder.
    handle_writable(conn);
  } else {
    update_write_interest(conn);
  }
}

void GatewayShard::handle_writable(Connection& conn) {
  while (conn.has_backlog()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer is gone; the read side will observe it too, but don't spin.
    conn.outbuf.clear();
    conn.out_off = 0;
    break;
  }
  if (!conn.has_backlog()) {
    conn.outbuf.clear();
    conn.out_off = 0;
  }
  update_write_interest(conn);
}

void GatewayShard::update_write_interest(Connection& conn) {
  const bool want = conn.has_backlog();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void GatewayShard::close_connection(int fd, bool at_shutdown) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.session != nullptr) {
    // Flush queued cargo through the modeled uplink (final ACKs are
    // queued by the transmit callback), push what the kernel will take,
    // then keep the session's bill for the shutdown fold. The horizon is
    // computed here, at close time, so the deferred fold bills exactly
    // what the close-time fold would have (see gateway/fold.h).
    conn.session->flush(clock_.now());
    handle_writable(conn);
    SessionFoldRecord record;
    record.client_id = conn.session->client_id();
    record.seq = conn.accept_seq;
    record.counters = conn.session->counters();
    record.horizon = conn.session->energy_horizon(clock_.now());
    record.log = conn.session->release_log();
    records_.push_back(std::move(record));
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  if (at_shutdown) {
    ++io_.clients_at_shutdown;
  } else {
    ++io_.clients_disconnected;
  }
}

double GatewayShard::tick_lag_s() const {
  const std::optional<TimePoint> next = clock_.next_alarm();
  if (!next.has_value()) return 0.0;  // idle loops are never late
  const double lag_clock = clock_.now() - *next;
  return lag_clock > 0.0 ? lag_clock / config_.time_scale : 0.0;
}

void GatewayShard::poll_watchdog() {
  const double lag = tick_lag_s();
  if (!watchdog_unhealthy_) {
    if (lag > config_.watchdog_budget_s) {
      watchdog_unhealthy_ = true;
      ++watchdog_trips_;
      dump_flight_recorder();  // capture the run-up to the stall
    }
  } else if (lag <= config_.watchdog_budget_s * 0.5) {
    watchdog_unhealthy_ = false;  // hysteresis: recover at half budget
  }
}

void GatewayShard::dump_flight_recorder() {
  ++flight_dumps_;
  try {
    obs::write_chrome_trace_file(flight_path_, flight_.events());
  } catch (const std::runtime_error&) {
    // Diagnostics only — an unwritable path must never take the loop down.
  }
}

void GatewayShard::scan_sessions(ShardSnapshot& view) {
  const TimePoint now = clock_.now();
  view.live_sessions = 0.0;
  view.queued_cargo = 0.0;
  view.rrc_sessions[0] = view.rrc_sessions[1] = view.rrc_sessions[2] = 0.0;
  view.stale_max = 0.0;
  view.stale_sum = 0.0;
  view.stale_n = 0.0;
  view.top_sessions.clear();
  for (const auto& [fd, conn] : connections_) {
    (void)fd;
    if (conn->session == nullptr) continue;
    view.live_sessions += 1.0;
    view.queued_cargo += static_cast<double>(conn->session->waiting());
    const radio::RrcState state =
        obs::state_at(conn->session->log(), config_.session.model, now);
    view.rrc_sessions[static_cast<int>(state)] += 1.0;
    const std::optional<TimePoint> beat =
        conn->session->monitor().most_recent_beat();
    double staleness = -1.0;
    if (beat.has_value()) {
      staleness = std::max(0.0, now - *beat);
      view.stale_max = std::max(view.stale_max, staleness);
      view.stale_sum += staleness;
      view.stale_n += 1.0;
    }
    view.top_sessions.push_back(ShardSessionRow{
        conn->session->client_id(), conn->session->waiting(), staleness,
        state});
  }
  // Keep only the top-N rows by queue depth (ties: lower client id) — the
  // /sessions merge across shards re-sorts, so each shard's cap suffices.
  const std::size_t top_n =
      std::min(view.top_sessions.size(), config_.sessions_top_n);
  std::partial_sort(view.top_sessions.begin(),
                    view.top_sessions.begin() + top_n,
                    view.top_sessions.end(),
                    [](const ShardSessionRow& a, const ShardSessionRow& b) {
                      if (a.waiting != b.waiting) return a.waiting > b.waiting;
                      return a.client_id < b.client_id;
                    });
  view.top_sessions.resize(top_n);
  view.report_metrics = metrics_.snapshot();
}

ShardSnapshot GatewayShard::live_view() {
  ShardSnapshot view;
  view.started = true;
  view.published_wall_s = steady_seconds();
  view.clients_accepted = ctr_accepted_ ? ctr_accepted_->value() : 0;
  view.heartbeats = ctr_heartbeats_ ? ctr_heartbeats_->value() : 0;
  view.packets_enqueued = ctr_enqueued_ ? ctr_enqueued_->value() : 0;
  view.packets_scheduled = ctr_scheduled_ ? ctr_scheduled_->value() : 0;
  view.protocol_errors = ctr_errors_ ? ctr_errors_->value() : 0;
  view.connections = connections_.size();
  view.now = clock_.now();
  view.tick_lag_s = tick_lag_s();
  view.watchdog_unhealthy = watchdog_unhealthy_;
  view.watchdog_trips = watchdog_trips_;
  view.flight_events = flight_.size();
  view.flight_dropped = flight_.dropped();
  view.flight_dumps = flight_dumps_;
  scan_sessions(view);
  return view;
}

void GatewayShard::publish_snapshot() {
  const double wall = steady_seconds();
  const bool scan = last_session_scan_wall_s_ < 0.0 ||
                    wall - last_session_scan_wall_s_ >= kSessionScanInterval;
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_.started = true;
  snapshot_.published_wall_s = wall;
  snapshot_.clients_accepted = ctr_accepted_ ? ctr_accepted_->value() : 0;
  snapshot_.heartbeats = ctr_heartbeats_ ? ctr_heartbeats_->value() : 0;
  snapshot_.packets_enqueued = ctr_enqueued_ ? ctr_enqueued_->value() : 0;
  snapshot_.packets_scheduled =
      ctr_scheduled_ ? ctr_scheduled_->value() : 0;
  snapshot_.protocol_errors = ctr_errors_ ? ctr_errors_->value() : 0;
  snapshot_.connections = connections_.size();
  snapshot_.now = clock_.now();
  snapshot_.tick_lag_s = tick_lag_s();
  snapshot_.watchdog_unhealthy = watchdog_unhealthy_;
  snapshot_.watchdog_trips = watchdog_trips_;
  snapshot_.flight_events = flight_.size();
  snapshot_.flight_dropped = flight_.dropped();
  snapshot_.flight_dumps = flight_dumps_;
  if (scan) {
    scan_sessions(snapshot_);
    last_session_scan_wall_s_ = wall;
  }
}

ShardSnapshot GatewayShard::published_view() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

ShardContribution GatewayShard::take_contribution() {
  ShardContribution out;
  out.io = io_;
  out.records = std::move(records_);
  records_.clear();
  out.metrics = metrics_.snapshot();
  return out;
}

}  // namespace etrain::gateway
