#include "sim/clock.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

namespace etrain::sim {

WallClock::WallClock(double time_scale)
    : time_scale_(time_scale), origin_(std::chrono::steady_clock::now()) {
  if (!(time_scale > 0.0)) {
    throw std::invalid_argument("WallClock: time_scale must be > 0");
  }
}

TimePoint WallClock::raw_now() const {
  const auto elapsed = std::chrono::steady_clock::now() - origin_;
  return std::chrono::duration<double>(elapsed).count() * time_scale_;
}

TimePoint WallClock::now() const {
  watermark_ = std::max(watermark_, raw_now());
  return watermark_;
}

AlarmId WallClock::schedule_at(TimePoint when, std::function<void()> fn) {
  // Unlike the Simulator, a past deadline is legal here: real time moves
  // under our feet, so "schedule at T" where T just slipped by simply means
  // "due on the next run_due()". Ordering among the already-due alarms is
  // still (when, seq).
  const AlarmId id = next_id_++;
  pending_.emplace(id, std::move(fn));
  heap_.push_back(HeapEntry{when, next_seq_++, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return id;
}

bool WallClock::cancel(AlarmId id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  // The callback dies now; the heap entry stays as a corpse and is skipped
  // on pop. Sweep when corpses dominate, same policy as the Simulator.
  pending_.erase(it);
  // Keep the heap top live so next_alarm() stays O(1) — run_due() pops top
  // corpses too, so between public calls a non-empty heap has a live top.
  while (!heap_.empty() &&
         pending_.find(heap_.front().id) == pending_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
  if (heap_.size() >= 64 && pending_.size() * 2 < heap_.size()) {
    std::erase_if(heap_, [this](const HeapEntry& e) {
      return pending_.find(e.id) == pending_.end();
    });
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  }
  return true;
}

std::optional<TimePoint> WallClock::next_alarm() const {
  // cancel() and run_due() keep the top live, so this is O(1). A corpse at
  // the top (impossible under that invariant, but harmless) would only make
  // a loop wake early and clean it up in run_due().
  if (heap_.empty()) return std::nullopt;
  return heap_.front().when;
}

double WallClock::real_seconds_until(TimePoint when) const {
  const double clock_delta = when - raw_now();
  if (clock_delta <= 0.0) return 0.0;
  return clock_delta / time_scale_;
}

std::size_t WallClock::run_due() {
  return run_due(std::numeric_limits<double>::infinity());
}

std::size_t WallClock::run_due(TimePoint limit) {
  std::size_t fired_now = 0;
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    const auto it = pending_.find(top.id);
    if (it == pending_.end()) {
      // Cancelled corpse.
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      continue;
    }
    if (top.when > now() || top.when > limit) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapEntry e = heap_.back();
    heap_.pop_back();
    std::function<void()> fn = std::move(it->second);
    pending_.erase(it);
    // Callbacks observe now() >= their deadline even when the OS woke us
    // late for a whole batch: the watermark is already past `e.when`.
    watermark_ = std::max(watermark_, e.when);
    ++fired_;
    ++fired_now;
    fn();
  }
  return fired_now;
}

void WallClock::run_until(TimePoint horizon) {
  for (;;) {
    run_due(horizon);
    const std::optional<TimePoint> next = next_alarm();
    if (!next || *next > horizon) break;
    const double wait_s = real_seconds_until(*next);
    if (wait_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(wait_s));
    }
  }
  watermark_ = std::max(watermark_, std::min(horizon, raw_now()));
}

}  // namespace etrain::sim
