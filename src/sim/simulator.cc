#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace etrain::sim {

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const EventId id = next_id_++;
  heap_.push_back(Event{when, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto it = pending_ids_.find(id);
  if (it == pending_ids_.end()) return false;
  pending_ids_.erase(it);
  cancelled_ids_.insert(id);
  // Keep the heap from filling up with corpses: once cancelled entries are
  // the majority, sweep them out. Amortized O(1) per cancel — a sweep of n
  // entries only happens after >= n/2 cancels.
  if (cancelled_ids_.size() > heap_.size() / 2 && heap_.size() >= 64) {
    compact();
  }
  return true;
}

void Simulator::compact() {
  std::erase_if(heap_, [this](const Event& ev) {
    return cancelled_ids_.contains(ev.id);
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_ids_.clear();
}

void Simulator::run_until(TimePoint horizon) {
  while (!heap_.empty()) {
    if (heap_.front().when > horizon) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_ids_.erase(ev.id) > 0) continue;
    pending_ids_.erase(ev.id);
    assert(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ETRAIN_TRACE(trace_, obs::TraceEvent::event_fire(ev.when,
                                                     static_cast<std::int64_t>(
                                                         ev.id)));
    ev.fn();
  }
  if (now_ < horizon && horizon < kTimeInfinity) now_ = horizon;
}

void Simulator::run_to_exhaustion() { run_until(kTimeInfinity); }

}  // namespace etrain::sim
