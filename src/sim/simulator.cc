#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace etrain::sim {

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto it = pending_ids_.find(id);
  if (it == pending_ids_.end()) return false;
  pending_ids_.erase(it);
  cancelled_ids_.insert(id);
  return true;
}

void Simulator::run_until(TimePoint horizon) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > horizon) break;
    if (cancelled_ids_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    // Move the event out before popping; fn may schedule more events,
    // which mutates the queue.
    Event ev{top.when, top.seq, top.id, std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    pending_ids_.erase(ev.id);
    assert(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ev.fn();
  }
  if (now_ < horizon && horizon < kTimeInfinity) now_ = horizon;
}

void Simulator::run_to_exhaustion() { run_until(kTimeInfinity); }

}  // namespace etrain::sim
