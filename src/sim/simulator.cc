#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

namespace etrain::sim {

EventId Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (pool_.size() > std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error("Simulator: event pool exhausted");
    }
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  PoolSlot& s = pool_[slot];
  assert(s.state == PoolSlot::State::kFree);
  s.fn = std::move(fn);
  s.state = PoolSlot::State::kPending;
  heap_.push_back(HeapEntry{when, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++pending_count_;
  return pack(slot, s.gen);
}

EventId Simulator::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < 0) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= pool_.size()) return false;
  PoolSlot& s = pool_[slot];
  if (s.gen != gen || s.state != PoolSlot::State::kPending) return false;
  s.state = PoolSlot::State::kCancelled;
  // Destroy the callback now: whatever it captured (shared state, buffers)
  // is freed at cancel time, not when the corpse finally leaves the heap.
  s.fn = nullptr;
  --pending_count_;
  ++cancelled_count_;
  // Keep the heap from filling up with corpses: once cancelled entries
  // exceed the configured fraction, sweep them out. Amortized O(1) per
  // cancel — a sweep of n entries only happens after O(n) cancels.
  if (heap_.size() >= options_.compaction_min_heap &&
      static_cast<double>(cancelled_count_) >
          static_cast<double>(heap_.size()) * options_.compaction_fraction) {
    compact();
  }
  return true;
}

void Simulator::release_slot(std::uint32_t slot) {
  PoolSlot& s = pool_[slot];
  s.fn = nullptr;
  s.state = PoolSlot::State::kFree;
  ++s.gen;  // ids minted for the old occupant are now stale
  free_slots_.push_back(slot);
}

void Simulator::compact() {
  std::erase_if(heap_, [this](const HeapEntry& ev) {
    if (pool_[ev.slot].state != PoolSlot::State::kCancelled) return false;
    release_slot(ev.slot);
    return true;
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_count_ = 0;
}

std::optional<TimePoint> Simulator::next_event_time() const {
  // The heap top may be a cancelled corpse, so scan for the earliest live
  // entry. O(heap) — callers poll this once per wait, not per event.
  std::optional<TimePoint> best;
  for (const HeapEntry& ev : heap_) {
    const PoolSlot& s = pool_[ev.slot];
    if (s.gen != ev.gen || s.state != PoolSlot::State::kPending) continue;
    if (!best || ev.when < *best) best = ev.when;
  }
  return best;
}

void Simulator::run_until(TimePoint horizon) {
  while (!heap_.empty()) {
    if (heap_.front().when > horizon) break;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const HeapEntry ev = heap_.back();
    heap_.pop_back();
    PoolSlot& s = pool_[ev.slot];
    assert(s.gen == ev.gen);
    if (s.state == PoolSlot::State::kCancelled) {
      release_slot(ev.slot);
      --cancelled_count_;
      continue;
    }
    assert(s.state == PoolSlot::State::kPending);
    std::function<void()> fn = std::move(s.fn);
    release_slot(ev.slot);
    --pending_count_;
    assert(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ETRAIN_TRACE(trace_,
                 obs::TraceEvent::event_fire(
                     ev.when, static_cast<std::int64_t>(pack(ev.slot, ev.gen))));
    fn();
  }
  if (now_ < horizon && horizon < kTimeInfinity) now_ = horizon;
}

void Simulator::run_to_exhaustion() { run_until(kTimeInfinity); }

}  // namespace etrain::sim
