// The Clock seam: one alarm/now() contract served by two time sources.
//
// The scheduler core (EtrainScheduler, HeartbeatMonitor, the gateway's
// per-client session logic) only ever needs two things from time: a
// monotonic now() and "call me back at deadline T". Code written against
// Clock runs unchanged in
//
//   * virtual time  — VirtualClock adapts the discrete-event Simulator:
//     alarms are simulator events, now() is simulated time, and a whole
//     day of traffic replays in milliseconds with byte-identical results
//     (the existing benches keep their determinism contract untouched);
//   * real time     — WallClock reads the OS monotonic clock and keeps its
//     own (deadline, seq) alarm heap for an event loop to drive. A
//     `time_scale` factor compresses wall time: at scale S, one real
//     second advances the clock S seconds, so the same scenario constants
//     (heartbeat cycles, Theta windows, deadlines) work on compressed
//     load-generator streams and the clock-determinism test can replay a
//     virtual run against real sleeps in a fraction of the time.
//
// Alarm ordering is the Simulator's: (deadline, scheduling seq), FIFO among
// equal deadlines. WallClock::run_due() fires every due alarm in exactly
// that order even when a late wakeup finds several alarms expired, which is
// what makes virtual and wall runs of the same deadline-quantized logic
// produce identical event orders (tests/sim_clock_test.cpp pins this).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"

namespace etrain::sim {

/// Handle used to cancel a scheduled alarm (clock-specific namespace; only
/// ever pass it back to the clock that minted it).
using AlarmId = std::uint64_t;

/// Monotonic time + deadline alarms. Not thread-safe: a clock belongs to
/// the thread driving it (the simulation thread or the event-loop thread),
/// matching the Simulator's confinement rule.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in clock seconds. Monotonic non-decreasing.
  virtual TimePoint now() const = 0;

  /// Schedules `fn` to run at absolute clock time `when` (>= now()).
  /// Returns an id usable with cancel().
  virtual AlarmId schedule_at(TimePoint when, std::function<void()> fn) = 0;

  /// Schedules `fn` to run `delay` clock seconds from now (delay >= 0).
  AlarmId schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  /// Cancels a pending alarm. True when it was still pending (and is now
  /// guaranteed not to fire); false when it already fired, was already
  /// cancelled, or never existed.
  virtual bool cancel(AlarmId id) = 0;

  /// Deadline of the earliest pending alarm; nullopt when none. Event
  /// loops derive their poll timeout from this.
  virtual std::optional<TimePoint> next_alarm() const = 0;
};

/// Virtual time: adapts the discrete-event Simulator. Alarms are ordinary
/// simulator events, so anything else scheduled on the same simulator
/// interleaves with them in the usual (time, seq) order and the replay
/// stays deterministic.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(Simulator& simulator) : simulator_(simulator) {}

  TimePoint now() const override { return simulator_.now(); }
  AlarmId schedule_at(TimePoint when, std::function<void()> fn) override {
    return simulator_.schedule_at(when, std::move(fn));
  }
  bool cancel(AlarmId id) override { return simulator_.cancel(id); }
  std::optional<TimePoint> next_alarm() const override {
    return simulator_.next_event_time();
  }

  Simulator& simulator() { return simulator_; }

 private:
  Simulator& simulator_;
};

/// Real time: the OS monotonic clock, scaled, plus an alarm heap for an
/// event loop (or run_until) to drive. now() never goes backwards and
/// never runs ahead of the last fired alarm's deadline ordering.
class WallClock final : public Clock {
 public:
  /// `time_scale`: clock seconds per real second (> 0). 1.0 = real time;
  /// larger values compress wall time for load tests.
  explicit WallClock(double time_scale = 1.0);

  TimePoint now() const override;
  AlarmId schedule_at(TimePoint when, std::function<void()> fn) override;
  bool cancel(AlarmId id) override;
  std::optional<TimePoint> next_alarm() const override;

  double time_scale() const { return time_scale_; }

  /// Real (wall) seconds from the real now until clock time `when`
  /// reaches; 0 when `when` is already due. Event loops convert this to a
  /// poll timeout.
  double real_seconds_until(TimePoint when) const;

  /// Fires every alarm with deadline <= now(), in (deadline, seq) order.
  /// Callbacks may schedule or cancel alarms freely. Returns the number
  /// fired.
  std::size_t run_due();

  /// Like run_due(), but never fires past `limit` even when real time has
  /// already slipped beyond it — run_until() uses this so a loaded host
  /// cannot drag alarms from beyond the horizon into the run.
  std::size_t run_due(TimePoint limit);

  /// Drives the clock without an event loop: sleeps until each alarm and
  /// fires it, until no pending alarm has deadline <= `horizon`. Returns
  /// when the alarm queue is empty or only holds later alarms; now() is
  /// then at least min(horizon, last fired deadline).
  void run_until(TimePoint horizon);

  /// Alarms fired so far (diagnostics / tests).
  std::uint64_t alarms_fired() const { return fired_; }
  /// Alarms currently pending.
  std::size_t pending_alarms() const { return pending_.size(); }

 private:
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among equal deadlines
    AlarmId id;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Raw scaled monotonic reading, before the monotonicity clamp.
  TimePoint raw_now() const;

  double time_scale_;
  std::chrono::steady_clock::time_point origin_;
  /// Alarm bodies by id; an id absent here but still in the heap is a
  /// cancelled corpse, skipped on pop.
  std::unordered_map<AlarmId, std::function<void()>> pending_;
  std::vector<HeapEntry> heap_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  /// Furthest time ever observed/fired — now() is clamped up to this so
  /// callbacks firing late still see a monotone clock.
  mutable TimePoint watermark_ = 0.0;
};

}  // namespace etrain::sim
