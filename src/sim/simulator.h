// Discrete-event simulation kernel.
//
// The full-system experiments (Fig. 10, Fig. 11) run eTrain's real wiring —
// AlarmManager alarms, Xposed hook triggers, broadcast deliveries, radio
// transmissions — as events on this kernel. Events fire in (time, sequence)
// order: ties at the same simulated instant execute in scheduling order,
// which makes every run deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "obs/trace.h"

namespace etrain::sim {

/// Handle used to cancel a scheduled event.
using EventId = std::uint64_t;

/// The simulation executive. Not thread-safe: the entire simulation runs on
/// one thread, as is standard for sequential DES.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. 0 before any event has run.
  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (must be >= now()).
  /// Returns an id usable with cancel().
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns true when the event was still pending
  /// (and is now guaranteed not to fire); false when it already ran, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  /// Runs events until the queue empties or simulated time would exceed
  /// `horizon`. Events scheduled exactly at `horizon` still run. On return,
  /// now() == min(horizon, time of last event) — run_until never moves the
  /// clock past the horizon, so repeated calls with growing horizons work.
  void run_until(TimePoint horizon);

  /// Runs all pending events to exhaustion. Only safe when the event graph
  /// is known to terminate (tests); periodic sources never terminate.
  void run_to_exhaustion();

  /// Number of events executed so far (diagnostics / tests).
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (excluding cancelled ones still in
  /// the heap awaiting lazy removal).
  std::size_t pending_events() const {
    return heap_.size() - cancelled_ids_.size();
  }

  /// Raw heap occupancy, *including* cancelled-but-unpopped entries —
  /// strictly bookkeeping-facing (the compaction regression test asserts
  /// cancelled entries cannot pile up unboundedly). Always >=
  /// pending_events().
  std::size_t queue_depth() const { return heap_.size(); }

  /// Attaches a trace sink (nullptr detaches). Each dispatched event emits
  /// an EventFire record; cancelled events never fire and never emit.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Rebuilds the heap without the cancelled entries. Called by cancel()
  /// once cancelled entries dominate the heap, keeping memory and
  /// pop-side skip work bounded by the number of *live* events.
  void compact();

  TimePoint now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  // A binary heap managed with std::push_heap/std::pop_heap (not a
  // std::priority_queue) so compact() can filter the underlying storage
  // in place.
  std::vector<Event> heap_;
  // Lazy cancellation: ids are dropped when they reach the top of the heap
  // or when compact() sweeps them out.
  std::unordered_set<EventId> cancelled_ids_;
  std::unordered_set<EventId> pending_ids_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace etrain::sim
