// Discrete-event simulation kernel.
//
// The full-system experiments (Fig. 10, Fig. 11) run eTrain's real wiring —
// AlarmManager alarms, Xposed hook triggers, broadcast deliveries, radio
// transmissions — as events on this kernel. Events fire in (time, sequence)
// order: ties at the same simulated instant execute in scheduling order,
// which makes every run deterministic.
//
// Storage is a slot pool + index heap: the heap orders lightweight
// trivially-copyable entries while the std::function bodies live in pooled
// slots recycled through a free list. Sift operations never move a
// std::function, cancel() destroys the callback (and whatever it captured)
// eagerly, and pending/cancelled bookkeeping is O(1) per event with no
// hash sets on the hot path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/time.h"
#include "obs/trace.h"

namespace etrain::sim {

/// Handle used to cancel a scheduled event. Packs (generation << 32) |
/// pool slot; a recycled slot bumps its generation, so stale handles from
/// an earlier occupant of the same slot can never cancel the new one.
using EventId = std::uint64_t;

/// Kernel tuning knobs.
struct SimulatorOptions {
  /// cancel() sweeps cancelled entries out of the heap once they exceed
  /// `compaction_fraction` of its occupancy — but never while the heap is
  /// smaller than `compaction_min_heap`, so tiny simulations skip the
  /// sweep machinery entirely. The defaults reproduce the kernel's
  /// historical behavior (sweep when corpses form the majority of a heap
  /// of at least 64). Raising the fraction trades memory for fewer
  /// sweeps; the compaction regression test pins the resulting bound on
  /// queue_depth() under cancel churn.
  std::size_t compaction_min_heap = 64;
  double compaction_fraction = 0.5;
};

/// The simulation executive. Not thread-safe: the entire simulation runs on
/// one thread, as is standard for sequential DES.
class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(SimulatorOptions options) : options_(options) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const SimulatorOptions& options() const { return options_; }

  /// Current simulated time. 0 before any event has run.
  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (must be >= now()).
  /// Returns an id usable with cancel().
  EventId schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns true when the event was still pending
  /// (and is now guaranteed not to fire); false when it already ran, was
  /// already cancelled, or never existed. The callback and everything it
  /// captured are destroyed before cancel() returns.
  bool cancel(EventId id);

  /// Runs events until the queue empties or simulated time would exceed
  /// `horizon`. Events scheduled exactly at `horizon` still run. On return,
  /// now() == min(horizon, time of last event) — run_until never moves the
  /// clock past the horizon, so repeated calls with growing horizons work.
  void run_until(TimePoint horizon);

  /// Runs all pending events to exhaustion. Only safe when the event graph
  /// is known to terminate (tests); periodic sources never terminate.
  void run_to_exhaustion();

  /// Time of the earliest pending event (cancelled corpses excluded);
  /// nullopt when nothing is pending. The Clock seam exposes this as
  /// next_alarm() so event loops can compute wait deadlines.
  std::optional<TimePoint> next_event_time() const;

  /// Number of events executed so far (diagnostics / tests).
  std::uint64_t events_executed() const { return executed_; }

  /// Number of events currently pending (excluding cancelled ones still in
  /// the heap awaiting lazy removal).
  std::size_t pending_events() const { return pending_count_; }

  /// Raw heap occupancy, *including* cancelled-but-unpopped entries —
  /// strictly bookkeeping-facing (the compaction regression test asserts
  /// cancelled entries cannot pile up unboundedly). Always >=
  /// pending_events().
  std::size_t queue_depth() const { return heap_.size(); }

  /// Attaches a trace sink (nullptr detaches). Each dispatched event emits
  /// an EventFire record; cancelled events never fire and never emit.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

 private:
  /// A pooled event body. `gen` is bumped every time the slot is released,
  /// invalidating any EventId minted for a previous occupant.
  struct PoolSlot {
    enum class State : std::uint8_t { kFree, kPending, kCancelled };
    std::function<void()> fn;
    std::uint32_t gen = 0;
    State state = State::kFree;
  };

  /// What the heap actually sorts: 24 trivially-copyable bytes. Sifting
  /// never touches the std::function in the pool.
  struct HeapEntry {
    TimePoint when;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  static EventId pack(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  /// Returns the slot to the free list and invalidates outstanding ids.
  void release_slot(std::uint32_t slot);

  /// Rebuilds the heap without the cancelled entries. Called by cancel()
  /// once cancelled entries dominate the heap (per options_), keeping
  /// memory and pop-side skip work bounded by the number of *live* events.
  void compact();

  SimulatorOptions options_;
  TimePoint now_ = kTimeZero;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_count_ = 0;
  std::size_t cancelled_count_ = 0;  // corpses still in the heap
  // A binary heap managed with std::push_heap/std::pop_heap (not a
  // std::priority_queue) so compact() can filter the underlying storage
  // in place.
  std::vector<HeapEntry> heap_;
  std::vector<PoolSlot> pool_;
  std::vector<std::uint32_t> free_slots_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace etrain::sim
