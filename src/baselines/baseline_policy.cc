#include "baselines/baseline_policy.h"

namespace etrain::baselines {

std::vector<core::Selection> BaselinePolicy::select(
    const core::SlotContext& /*ctx*/, const core::WaitingQueues& queues) {
  std::vector<core::Selection> all;
  for (int app = 0; app < queues.app_count(); ++app) {
    for (const auto& p : queues.queue(app)) {
      all.push_back(core::Selection{app, p.packet.id});
    }
  }
  return all;
}

}  // namespace etrain::baselines
