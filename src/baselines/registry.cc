#include "baselines/registry.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "baselines/baseline_policy.h"
#include "baselines/etime_policy.h"
#include "baselines/oracle_policy.h"
#include "baselines/peres_policy.h"
#include "baselines/select_policy.h"
#include "baselines/tailender_policy.h"
#include "core/etrain_scheduler.h"

namespace etrain::baselines {

namespace {

/// The k knob is a count with "unlimited" as a special case: 0 (or any
/// non-positive / non-finite value) means unlimited, matching the paper's
/// final "k <- inf" configuration.
std::size_t parse_k(double value) {
  if (!(value > 0.0) || !std::isfinite(value) ||
      value >= static_cast<double>(std::numeric_limits<std::size_t>::max())) {
    return core::EtrainConfig::unlimited_k();
  }
  return static_cast<std::size_t>(value);
}

core::EtrainConfig etrain_config(const core::PolicyParams& p) {
  core::EtrainConfig config;
  config.theta = p.get("theta", config.theta);
  if (p.has("k")) config.k = parse_k(p.get("k", 0.0));
  config.drip_defer_window =
      p.get("drip_defer_window", config.drip_defer_window);
  config.channel_aware = p.get("channel_aware", 0.0) != 0.0;
  config.channel_threshold =
      p.get("channel_threshold", config.channel_threshold);
  config.panic_factor = p.get("panic_factor", config.panic_factor);
  return config;
}

core::PolicyRegistry build_registry() {
  core::PolicyRegistry r;
  r.register_policy(
      "etrain",
      "knobs: theta, k (0 = unlimited), drip_defer_window, channel_aware, "
      "channel_threshold, panic_factor",
      [](const core::PolicyParams& p) {
        return std::make_unique<core::EtrainScheduler>(etrain_config(p));
      });
  r.register_policy("baseline", "knobs: none (immediate transmission)",
                    [](const core::PolicyParams&) {
                      return std::make_unique<BaselinePolicy>();
                    });
  r.register_policy(
      "peres", "knobs: omega, v_initial, gain, v_min, v_max",
      [](const core::PolicyParams& p) {
        PerESConfig config;
        config.omega = p.get("omega", config.omega);
        config.v_initial = p.get("v_initial", config.v_initial);
        config.gain = p.get("gain", config.gain);
        config.v_min = p.get("v_min", config.v_min);
        config.v_max = p.get("v_max", config.v_max);
        return std::make_unique<PerESPolicy>(config);
      });
  r.register_policy(
      "etime", "knobs: v, slot_length, backlog_scale",
      [](const core::PolicyParams& p) {
        ETimeConfig config;
        config.v = p.get("v", config.v);
        config.slot_length = p.get("slot_length", config.slot_length);
        config.backlog_scale = static_cast<Bytes>(
            p.get("backlog_scale", static_cast<double>(config.backlog_scale)));
        return std::make_unique<ETimePolicy>(config);
      });
  r.register_policy("tailender", "knobs: guard",
                    [](const core::PolicyParams& p) {
                      TailEnderConfig config;
                      config.guard = p.get("guard", config.guard);
                      return std::make_unique<TailEnderPolicy>(config);
                    });
  r.register_policy("oracle", "knobs: none (offline clairvoyant bound)",
                    [](const core::PolicyParams&) {
                      return std::make_unique<OraclePolicy>();
                    });
  r.register_policy("baseline+wifi",
                    "knobs: none (Wi-Fi preferred, else immediate cellular; "
                    "alias for select:wifi)",
                    [](const core::PolicyParams&) {
                      return std::make_unique<SelectPolicy>(
                          std::vector<std::string>{"wifi"},
                          std::make_unique<BaselinePolicy>(), "Baseline+WiFi");
                    });
  r.register_policy(
      "etrain+wifi",
      "knobs: theta, k (0 = unlimited), drip_defer_window, channel_aware, "
      "channel_threshold, panic_factor (alias for select:wifi;fallback="
      "etrain)",
      [](const core::PolicyParams& p) {
        return std::make_unique<SelectPolicy>(
            std::vector<std::string>{"wifi"},
            std::make_unique<core::EtrainScheduler>(etrain_config(p)),
            "eTrain+WiFi");
      });
  r.register_policy_raw(
      "select",
      "select:IF1>IF2;fallback=SPEC — flush every waiting packet over the "
      "first available named interface, else delegate to SPEC (default "
      "baseline)",
      [](const std::string& tail, const core::PolicyRegistry& registry) {
        return make_select_policy(tail, registry);
      });
  return r;
}

}  // namespace

const core::PolicyRegistry& builtin_registry() {
  static const core::PolicyRegistry registry = build_registry();
  return registry;
}

std::unique_ptr<core::SchedulingPolicy> make_policy(const std::string& spec) {
  return builtin_registry().make(spec);
}

std::function<std::unique_ptr<core::SchedulingPolicy>(double)> sweep_factory(
    const std::string& name, const std::string& knob) {
  if (!builtin_registry().contains(name)) {
    builtin_registry().make(name);  // throws with the known-policy list
  }
  return [name, knob](double value) {
    std::ostringstream spec;
    spec.precision(17);
    spec << name << ':' << knob << '=' << value;
    return make_policy(spec.str());
  };
}

}  // namespace etrain::baselines
