// TailEnder-style scheduler (Balasubramanian et al., IMC 2009) — the classic
// tail-energy batching algorithm from the related work ([5]). Included as an
// extra baseline/ablation: it batches by deadline only and is oblivious to
// heartbeats, so against heartbeat-heavy workloads it leaves the train
// tails unused.
//
// Rule: defer every packet as long as its deadline allows; transmit the
// whole backlog whenever some queued packet's deadline is about to expire
// (within one slot). This minimizes the number of radio wake-ups subject to
// never missing a deadline.
#pragma once

#include "core/policy.h"

namespace etrain::baselines {

struct TailEnderConfig {
  /// Safety margin: flush when a deadline falls within this many seconds.
  Duration guard = 1.0;
};

class TailEnderPolicy final : public core::SchedulingPolicy {
 public:
  explicit TailEnderPolicy(TailEnderConfig config = {});

  std::vector<core::Selection> select(
      const core::SlotContext& ctx,
      const core::WaitingQueues& queues) override;
  std::string name() const override { return "TailEnder"; }

 private:
  TailEnderConfig config_;
};

}  // namespace etrain::baselines
