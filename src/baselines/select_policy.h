// Composable per-packet interface selection.
//
// SelectPolicy routes by interface *name*: it holds an ordered preference
// list ("wifi", "lora", ...) plus a fallback scheduling policy for the
// cellular uplink. Each slot it flushes every waiting packet over the
// first preferred interface that is currently available, and otherwise
// delegates the decision to the fallback — so offloading composes with any
// registered policy:
//
//   "select:wifi"                              Wi-Fi preferred, else baseline
//   "select:wifi;fallback=etrain:theta=2"      offloading + piggybacking
//   "select:lora;fallback=etrain"              cargo rides LoRa heartbeats
//   "select:wifi>lora;fallback=etrain"         ordered preferences
//
// The legacy "baseline+wifi" / "etrain+wifi" registry entries are thin
// configurations of this class (same display names, same behaviour).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/policy_registry.h"

namespace etrain::baselines {

class SelectPolicy final : public core::SchedulingPolicy {
 public:
  /// `preferences`: interface names in priority order (must be non-empty).
  /// `fallback`: the policy consulted when none is available (owns it).
  /// `display_name`: optional fixed name() override for legacy entries.
  SelectPolicy(std::vector<std::string> preferences,
               std::unique_ptr<core::SchedulingPolicy> fallback,
               std::string display_name = "");

  std::vector<core::Selection> select(
      const core::SlotContext& ctx,
      const core::WaitingQueues& queues) override;
  std::string name() const override;
  Duration preferred_slot_length() const override;
  void reset() override;
  /// Resolves the preference names against the run's interface layout;
  /// throws std::invalid_argument for a name the run does not provide.
  /// Without a bind call only the built-in "cellular"/"wifi" slots
  /// resolve.
  void bind_interfaces(const std::vector<std::string>& names) override;

 private:
  std::vector<std::string> preferences_;
  std::vector<int> slots_;  ///< parallel to preferences_; -1 = unresolved
  std::unique_ptr<core::SchedulingPolicy> fallback_;
  std::string display_name_;
};

/// Parses the raw tail of a "select:..." spec — "IF1>IF2;fallback=SPEC"
/// (fallback defaults to "baseline"; nested fallback specs are resolved
/// through `registry`). Throws std::invalid_argument with loud messages on
/// malformed tails.
std::unique_ptr<core::SchedulingPolicy> make_select_policy(
    const std::string& tail, const core::PolicyRegistry& registry);

}  // namespace etrain::baselines
