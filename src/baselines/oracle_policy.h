// Clairvoyant lower-bound heuristic for the offline problem (Sec. III-C).
//
// The offline tail-energy minimization is a Knapsack-style NP-hard problem;
// this oracle realizes the schedule an omniscient scheduler would pick in
// the common regime (packet transmission times << heartbeat cycles):
//   * every packet rides the first heartbeat departing after its arrival,
//     unless its deadline expires earlier;
//   * a packet whose deadline expires before the next train leaves exactly
//     at its deadline (a per-packet flush, dragging along nothing).
//
// Used by the tests as a near-optimal yardstick: eTrain (with k = inf and
// moderate Theta) must land within a modest factor of this bound, and no
// policy can beat it by much on tail energy without violating deadlines.
#pragma once

#include "core/policy.h"

namespace etrain::baselines {

class OraclePolicy final : public core::SchedulingPolicy {
 public:
  std::vector<core::Selection> select(
      const core::SlotContext& ctx,
      const core::WaitingQueues& queues) override;
  std::string name() const override { return "Oracle"; }
};

}  // namespace etrain::baselines
