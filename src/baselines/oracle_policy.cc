#include "baselines/oracle_policy.h"

namespace etrain::baselines {

std::vector<core::Selection> OraclePolicy::select(
    const core::SlotContext& ctx, const core::WaitingQueues& queues) {
  std::vector<core::Selection> chosen;
  if (queues.empty()) return chosen;

  const TimePoint slot_end = ctx.slot_start + ctx.slot_length;
  const TimePoint next_train = ctx.next_heartbeat();

  for (int app = 0; app < queues.app_count(); ++app) {
    for (const auto& p : queues.queue(app)) {
      const TimePoint expiry = p.packet.arrival + p.packet.deadline;
      const bool deadline_now = expiry <= slot_end;
      // Ride the departing train, or flush if no train arrives in time.
      if (ctx.heartbeat_now || deadline_now ||
          (next_train > expiry && deadline_now)) {
        chosen.push_back(core::Selection{app, p.packet.id});
      }
    }
  }
  return chosen;
}

}  // namespace etrain::baselines
