// eTime-style scheduler (Shu et al., INFOCOM 2013), re-implemented from the
// paper's description for the Fig. 8 comparison.
//
// eTime is a Lyapunov-designed scheduler that times bulk transfers to
// moments when the wireless channel is good. Characteristics the comparison
// relies on (Sec. VI-A "Benchmark"):
//   * it depends on an instantaneous bandwidth/channel-quality estimate and
//     transmits when the estimated channel is good relative to its average;
//   * it operates on 60-second slots ("we set the length of a time slot in
//     eTime to be 60 seconds as suggested in [16]");
//   * it trades energy for delay through the Lyapunov parameter V;
//   * it is NOT deadline-aware — backlog is measured in queued bytes, not
//     in delay cost.
//
// Decision rule (drift-plus-penalty): transmit the whole backlog in slot t
// iff  backlog_weight(t) * channel_quality(t) >= V, where channel_quality
// is the estimated bandwidth normalized by the long-term average and
// backlog_weight grows with both queued bytes and queueing time. Higher V
// demands a better channel/bigger backlog before spending a radio wake-up.
#pragma once

#include "core/policy.h"

namespace etrain::baselines {

struct ETimeConfig {
  /// Lyapunov energy/delay tradeoff knob. The E-D panel sweeps this.
  double v = 1.0;
  /// Slot length; 60 s per the paper's configuration of eTime.
  Duration slot_length = 60.0;
  /// Backlog normalization: queued bytes that count as weight 1.0.
  Bytes backlog_scale = 20'000;
};

class ETimePolicy final : public core::SchedulingPolicy {
 public:
  explicit ETimePolicy(ETimeConfig config);

  std::vector<core::Selection> select(
      const core::SlotContext& ctx,
      const core::WaitingQueues& queues) override;
  std::string name() const override { return "eTime"; }
  Duration preferred_slot_length() const override {
    return config_.slot_length;
  }

 private:
  ETimeConfig config_;
};

}  // namespace etrain::baselines
