#include "baselines/multi_interface_policy.h"

namespace etrain::baselines {

namespace {

/// Flush everything over Wi-Fi.
std::vector<core::Selection> wifi_flush(const core::WaitingQueues& queues) {
  std::vector<core::Selection> all;
  for (int app = 0; app < queues.app_count(); ++app) {
    for (const auto& p : queues.queue(app)) {
      all.push_back(core::Selection{app, p.packet.id, /*via_wifi=*/true});
    }
  }
  return all;
}

}  // namespace

std::vector<core::Selection> MultiInterfaceBaseline::select(
    const core::SlotContext& ctx, const core::WaitingQueues& queues) {
  if (queues.empty()) return {};
  if (ctx.wifi_available) return wifi_flush(queues);
  // No Wi-Fi: a stock stack sends over cellular right away.
  std::vector<core::Selection> all;
  for (int app = 0; app < queues.app_count(); ++app) {
    for (const auto& p : queues.queue(app)) {
      all.push_back(core::Selection{app, p.packet.id});
    }
  }
  return all;
}

MultiInterfaceEtrain::MultiInterfaceEtrain(core::EtrainConfig config)
    : cellular_(config) {}

std::vector<core::Selection> MultiInterfaceEtrain::select(
    const core::SlotContext& ctx, const core::WaitingQueues& queues) {
  if (queues.empty()) return {};
  // Associated Wi-Fi makes transmission nearly free: drain everything now
  // rather than wait for a cellular train.
  if (ctx.wifi_available) return wifi_flush(queues);
  return cellular_.select(ctx, queues);
}

}  // namespace etrain::baselines
