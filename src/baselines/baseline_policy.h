// The paper's default comparison point: "no energy-saving scheduling
// intelligence is imposed and all data is scheduled for transmission
// immediately after arrival".
#pragma once

#include "core/policy.h"

namespace etrain::baselines {

class BaselinePolicy final : public core::SchedulingPolicy {
 public:
  std::vector<core::Selection> select(
      const core::SlotContext& ctx,
      const core::WaitingQueues& queues) override;
  std::string name() const override { return "Baseline"; }
};

}  // namespace etrain::baselines
