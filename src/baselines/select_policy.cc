#include "baselines/select_policy.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace etrain::baselines {

namespace {

/// Flush everything over one interface slot, app-major in queue order.
std::vector<core::Selection> flush_all(const core::WaitingQueues& queues,
                                       int interface) {
  std::vector<core::Selection> all;
  for (int app = 0; app < queues.app_count(); ++app) {
    for (const auto& p : queues.queue(app)) {
      all.push_back(core::Selection{app, p.packet.id, interface});
    }
  }
  return all;
}

std::vector<int> resolve(const std::vector<std::string>& preferences,
                         const std::vector<std::string>& names,
                         bool throw_on_unknown) {
  std::vector<int> slots;
  slots.reserve(preferences.size());
  for (const std::string& pref : preferences) {
    const auto it = std::find(names.begin(), names.end(), pref);
    if (it == names.end()) {
      if (throw_on_unknown) {
        std::string known;
        for (const auto& n : names) known += known.empty() ? n : ", " + n;
        throw std::invalid_argument("SelectPolicy: interface '" + pref +
                                    "' is not part of this run (have: " +
                                    known + ")");
      }
      slots.push_back(-1);
      continue;
    }
    slots.push_back(static_cast<int>(it - names.begin()));
  }
  return slots;
}

}  // namespace

SelectPolicy::SelectPolicy(std::vector<std::string> preferences,
                           std::unique_ptr<core::SchedulingPolicy> fallback,
                           std::string display_name)
    : preferences_(std::move(preferences)),
      fallback_(std::move(fallback)),
      display_name_(std::move(display_name)) {
  if (preferences_.empty()) {
    throw std::invalid_argument(
        "SelectPolicy: empty interface preference list");
  }
  if (fallback_ == nullptr) {
    throw std::invalid_argument("SelectPolicy: null fallback policy");
  }
  // Until the harness announces the layout, only the built-in slots
  // resolve; unknown names stay unresolved (never available) rather than
  // throwing, because extras are unknowable before bind_interfaces.
  slots_ = resolve(preferences_, {"cellular", "wifi"},
                   /*throw_on_unknown=*/false);
}

std::vector<core::Selection> SelectPolicy::select(
    const core::SlotContext& ctx, const core::WaitingQueues& queues) {
  if (queues.empty()) return {};
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const int slot = slots_[i];
    if (slot <= core::kInterfaceCellular) continue;  // unresolved / cellular
    if (ctx.interface_available(slot)) return flush_all(queues, slot);
  }
  return fallback_->select(ctx, queues);
}

std::string SelectPolicy::name() const {
  if (!display_name_.empty()) return display_name_;
  std::string prefs;
  for (const auto& p : preferences_) prefs += prefs.empty() ? p : ">" + p;
  return "Select[" + prefs + "; fallback=" + fallback_->name() + "]";
}

Duration SelectPolicy::preferred_slot_length() const {
  return fallback_->preferred_slot_length();
}

void SelectPolicy::reset() { fallback_->reset(); }

void SelectPolicy::bind_interfaces(const std::vector<std::string>& names) {
  slots_ = resolve(preferences_, names, /*throw_on_unknown=*/true);
  fallback_->bind_interfaces(names);
}

std::unique_ptr<core::SchedulingPolicy> make_select_policy(
    const std::string& tail, const core::PolicyRegistry& registry) {
  if (tail.empty()) {
    throw std::invalid_argument(
        "policy spec 'select': missing interface preference list "
        "(want select:IF1>IF2;fallback=SPEC)");
  }
  std::vector<std::string> segments;
  std::size_t pos = 0;
  while (pos <= tail.size()) {
    const std::size_t semi = tail.find(';', pos);
    const std::size_t end = semi == std::string::npos ? tail.size() : semi;
    segments.push_back(tail.substr(pos, end - pos));
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  std::vector<std::string> preferences;
  std::size_t ppos = 0;
  const std::string& prefs = segments.front();
  while (ppos <= prefs.size()) {
    const std::size_t gt = prefs.find('>', ppos);
    const std::size_t end = gt == std::string::npos ? prefs.size() : gt;
    const std::string name = prefs.substr(ppos, end - ppos);
    if (name.empty()) {
      throw std::invalid_argument("policy spec 'select:" + tail +
                                  "': empty interface name in '" + prefs +
                                  "'");
    }
    preferences.push_back(name);
    if (gt == std::string::npos) break;
    ppos = gt + 1;
  }
  std::string fallback_spec = "baseline";
  bool have_fallback = false;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    const std::string& seg = segments[i];
    constexpr const char* kPrefix = "fallback=";
    if (seg.rfind(kPrefix, 0) != 0) {
      throw std::invalid_argument("policy spec 'select:" + tail +
                                  "': unknown option '" + seg +
                                  "' (only fallback=SPEC is supported)");
    }
    if (have_fallback) {
      throw std::invalid_argument("policy spec 'select:" + tail +
                                  "': duplicate fallback option");
    }
    fallback_spec = seg.substr(std::string(kPrefix).size());
    if (fallback_spec.empty()) {
      throw std::invalid_argument("policy spec 'select:" + tail +
                                  "': empty fallback spec");
    }
    have_fallback = true;
  }
  return std::make_unique<SelectPolicy>(std::move(preferences),
                                        registry.make(fallback_spec));
}

}  // namespace etrain::baselines
