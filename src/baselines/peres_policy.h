// PerES-style scheduler (Zhang et al. [15]), re-implemented from the paper's
// description for the Fig. 8 comparison.
//
// Characteristics the comparison relies on (Sec. VI-A "Benchmark"):
//   * Lyapunov framework with per-packet delay-cost profiles — PerES "is
//     deadline-aware as eTrain does";
//   * relies on accurate estimation of instantaneous wireless bandwidth and
//     tries to transmit when the channel is good;
//   * uses a *dynamic* V that "would converge dynamically according to
//     users' performance cost bound Omega": V adapts each slot so the
//     long-run delay cost tracks Omega;
//   * runs on 1-second slots like eTrain.
//
// Decision rule: in each slot compute the queues' instantaneous cost P(t)
// and the channel quality q(t) = B_est(t)/B_avg. Transmit the whole backlog
// when  P(t) * q(t) >= V(t); V(t) is raised while the realized cost stays
// below Omega (be patient, save energy) and lowered when cost exceeds Omega
// (user suffering — drain). Unlike eTrain, transmission timing keys off the
// channel estimate rather than heartbeat tails, so PerES pays a fresh tail
// for most of its (channel-good) wake-ups.
#pragma once

#include "core/policy.h"

namespace etrain::baselines {

struct PerESConfig {
  /// User performance cost bound Omega; the E-D panel sweeps this.
  double omega = 0.5;
  /// Initial V and adaptation gain.
  double v_initial = 1.0;
  double gain = 0.05;
  /// V is clamped to [v_min, v_max] to keep adaptation stable.
  double v_min = 0.05;
  double v_max = 50.0;
};

class PerESPolicy final : public core::SchedulingPolicy {
 public:
  explicit PerESPolicy(PerESConfig config);

  std::vector<core::Selection> select(
      const core::SlotContext& ctx,
      const core::WaitingQueues& queues) override;
  std::string name() const override { return "PerES"; }
  void reset() override;

  /// Current adapted V (exposed for tests).
  double v() const { return v_; }

 private:
  PerESConfig config_;
  double v_;
};

}  // namespace etrain::baselines
