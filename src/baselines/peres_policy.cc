#include "baselines/peres_policy.h"

#include <algorithm>
#include <stdexcept>

namespace etrain::baselines {

PerESPolicy::PerESPolicy(PerESConfig config)
    : config_(config), v_(config.v_initial) {
  if (config_.omega < 0.0 || config_.v_initial <= 0.0 ||
      config_.gain <= 0.0 || config_.v_min <= 0.0 ||
      config_.v_max < config_.v_min) {
    throw std::invalid_argument("PerESPolicy: invalid configuration");
  }
}

void PerESPolicy::reset() { v_ = config_.v_initial; }

std::vector<core::Selection> PerESPolicy::select(
    const core::SlotContext& ctx, const core::WaitingQueues& queues) {
  std::vector<core::Selection> chosen;

  const double cost = queues.instantaneous_cost(ctx.slot_start);

  // Dynamic-V convergence: track the cost bound Omega. While the user's
  // realized cost is below the bound, raise V (demand a better channel /
  // larger backlog -> save more energy); when the bound is violated, drop V
  // to drain aggressively.
  v_ += config_.gain * (config_.omega - cost);
  v_ = std::clamp(v_, config_.v_min, config_.v_max);

  if (queues.empty()) return chosen;

  const double channel =
      ctx.bandwidth_long_term > 0.0
          ? ctx.bandwidth_estimate / ctx.bandwidth_long_term
          : 1.0;

  // Per-queue drain test: like eTime, PerES keeps one virtual queue per
  // application and each drains independently when its own delay cost,
  // scaled by the estimated channel quality, clears the (shared, adapted)
  // V. Running on 1 s slots it reacts faster than eTime, firing smaller,
  // more scattered bursts — deadline-friendlier but tail-hungrier.
  for (int app = 0; app < queues.app_count(); ++app) {
    const auto& q = queues.queue(app);
    if (q.empty()) continue;
    const double app_cost = queues.app_cost(app, ctx.slot_start);
    if (app_cost * channel < v_) continue;
    for (const auto& p : q) {
      chosen.push_back(core::Selection{app, p.packet.id});
    }
  }
  return chosen;
}

}  // namespace etrain::baselines
