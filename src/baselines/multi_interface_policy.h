// Multi-interface policies (extension).
//
// The paper restricts its eTime reimplementation to the cellular interface
// ("multi-interface selection in [16] is limited to the cellular network
// interface only"). This module lifts that restriction: when Wi-Fi is
// associated, sending is nearly free (short PSM tail, no DCH), so any
// sensible policy offloads. Two variants:
//
//   * MultiInterfaceBaseline — Wi-Fi when available, otherwise immediate
//     cellular: what a stock "Wi-Fi preferred" Android stack does.
//   * MultiInterfaceEtrain — Wi-Fi when available; otherwise defer to
//     heartbeat trains exactly like eTrain. Shows that piggybacking and
//     offloading compose.
#pragma once

#include "core/etrain_scheduler.h"
#include "core/policy.h"

namespace etrain::baselines {

class MultiInterfaceBaseline final : public core::SchedulingPolicy {
 public:
  std::vector<core::Selection> select(
      const core::SlotContext& ctx,
      const core::WaitingQueues& queues) override;
  std::string name() const override { return "Baseline+WiFi"; }
};

class MultiInterfaceEtrain final : public core::SchedulingPolicy {
 public:
  explicit MultiInterfaceEtrain(core::EtrainConfig config);

  std::vector<core::Selection> select(
      const core::SlotContext& ctx,
      const core::WaitingQueues& queues) override;
  std::string name() const override { return "eTrain+WiFi"; }
  void reset() override { cellular_.reset(); }

 private:
  core::EtrainScheduler cellular_;
};

}  // namespace etrain::baselines
