#include "baselines/etime_policy.h"

#include <algorithm>
#include <stdexcept>

namespace etrain::baselines {

ETimePolicy::ETimePolicy(ETimeConfig config) : config_(config) {
  if (config_.v < 0.0 || config_.slot_length <= 0.0 ||
      config_.backlog_scale <= 0) {
    throw std::invalid_argument("ETimePolicy: invalid configuration");
  }
}

std::vector<core::Selection> ETimePolicy::select(
    const core::SlotContext& ctx, const core::WaitingQueues& queues) {
  std::vector<core::Selection> chosen;
  if (queues.empty()) return chosen;

  const double channel =
      ctx.bandwidth_long_term > 0.0
          ? ctx.bandwidth_estimate / ctx.bandwidth_long_term
          : 1.0;

  // eTime maintains one virtual queue per application; each queue runs its
  // own drift-plus-penalty test and drains independently when its backlog
  // justifies the (estimated) channel. Queues therefore fire at different
  // times — aggregation across apps only happens by coincidence, which is
  // precisely the structural disadvantage eTrain's heartbeat-synchronized
  // batching exploits.
  for (int app = 0; app < queues.app_count(); ++app) {
    const auto& q = queues.queue(app);
    if (q.empty()) continue;
    // Byte backlog plus a queueing-age term: virtual queues grow each slot
    // a packet waits, so old backlog eventually forces a transmission even
    // on a poor channel (stability guarantee).
    Bytes bytes = 0;
    for (const auto& p : q) bytes += p.packet.bytes;
    double backlog = static_cast<double>(bytes) /
                     static_cast<double>(config_.backlog_scale);
    const Duration age =
        std::max(0.0, ctx.slot_start - queues.oldest_arrival(app));
    backlog += age / config_.slot_length;  // one weight unit per slot aged

    if (backlog * channel < config_.v) continue;  // wait for a better slot

    for (const auto& p : q) {
      chosen.push_back(core::Selection{app, p.packet.id});
    }
  }
  return chosen;
}

}  // namespace etrain::baselines
