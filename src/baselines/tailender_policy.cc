#include "baselines/tailender_policy.h"

#include <stdexcept>

namespace etrain::baselines {

TailEnderPolicy::TailEnderPolicy(TailEnderConfig config) : config_(config) {
  if (config_.guard < 0.0) {
    throw std::invalid_argument("TailEnderPolicy: negative guard");
  }
}

std::vector<core::Selection> TailEnderPolicy::select(
    const core::SlotContext& ctx, const core::WaitingQueues& queues) {
  std::vector<core::Selection> chosen;
  if (queues.empty()) return chosen;

  // Flush everything as soon as any packet's deadline is imminent — the
  // aggregate ride-along is where TailEnder's saving comes from.
  bool deadline_imminent = false;
  for (int app = 0; app < queues.app_count() && !deadline_imminent; ++app) {
    for (const auto& p : queues.queue(app)) {
      const TimePoint expiry = p.packet.arrival + p.packet.deadline;
      if (expiry <= ctx.slot_start + ctx.slot_length + config_.guard) {
        deadline_imminent = true;
        break;
      }
    }
  }
  if (!deadline_imminent) return chosen;

  for (int app = 0; app < queues.app_count(); ++app) {
    for (const auto& p : queues.queue(app)) {
      chosen.push_back(core::Selection{app, p.packet.id});
    }
  }
  return chosen;
}

}  // namespace etrain::baselines
