// The process-wide PolicyRegistry with every built-in policy registered.
//
// Entry points (benches, the CLI, tests) construct policies through this
// registry instead of hand-rolled name switches, so the spec grammar —
// "etrain:theta=2,k=3", "peres:omega=0.8", "etime:v=1" — works uniformly
// everywhere and new policies become available to every tool by adding
// one registration here.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/policy_registry.h"

namespace etrain::baselines {

/// The registry, populated on first use. Thread-safe initialization;
/// callers must not mutate it (register extra policies on a copy instead).
const core::PolicyRegistry& builtin_registry();

/// Shorthand for builtin_registry().make(spec).
std::unique_ptr<core::SchedulingPolicy> make_policy(const std::string& spec);

/// Adapter for one-knob sweeps (the figure benches sweep theta / omega /
/// v): returns a factory that builds `name` with `knob` bound to the
/// sweep value, e.g. sweep_factory("etrain", "theta")(2.0).
std::function<std::unique_ptr<core::SchedulingPolicy>(double)> sweep_factory(
    const std::string& name, const std::string& knob);

}  // namespace etrain::baselines
