#include "net/radio_link.h"

#include <stdexcept>
#include <utility>

namespace etrain::net {

namespace {

/// Zero-duration record carrying a request's identity, used when a request
/// is cancelled before (or between) attempts — there is no airtime to bill.
radio::Transmission placeholder_tx(const RadioLink::Request& request,
                                   TimePoint now, int attempt) {
  radio::Transmission tx;
  tx.start = now;
  tx.bytes = request.bytes;
  tx.kind = request.kind;
  tx.app_id = request.app_id;
  tx.packet_id = request.packet_id;
  tx.attempt = attempt;
  return tx;
}

}  // namespace

RadioLink::RadioLink(sim::Simulator& simulator,
                     const radio::PowerModel& model,
                     const BandwidthTrace& trace,
                     const BandwidthTrace* downlink)
    : simulator_(simulator),
      model_(model),
      trace_(trace),
      downlink_(downlink),
      rrc_(model) {}

void RadioLink::set_fault_plan(FaultPlan plan) {
  if (transmitting_ || !pending_.empty() || !backoff_.empty()) {
    throw std::logic_error(
        "RadioLink::set_fault_plan: link already has traffic");
  }
  plan.validate();
  plan_ = std::move(plan);
}

void RadioLink::attach_metrics(obs::Registry* registry) {
  if (registry == nullptr) {
    failures_counter_ = retries_counter_ = cancelled_counter_ =
        outage_counter_ = nullptr;
    return;
  }
  failures_counter_ = &registry->counter("link.tx_failures");
  retries_counter_ = &registry->counter("link.tx_retries");
  cancelled_counter_ = &registry->counter("link.tx_cancelled");
  outage_counter_ = &registry->counter("link.outage_deferrals");
}

void RadioLink::submit(Request request) {
  if (torn_down_) {
    throw std::logic_error("RadioLink::submit after teardown");
  }
  Active active;
  active.entity =
      request.packet_id >= 0 ? request.packet_id : next_sequence_--;
  active.request = std::move(request);
  pending_.push_back(std::move(active));
  if (!transmitting_) start_next();
}

void RadioLink::start_next() {
  if (pending_.empty() || transmitting_ || torn_down_) return;
  Active active = std::move(pending_.front());
  pending_.pop_front();
  begin_attempt(std::move(active));
}

void RadioLink::begin_attempt(Active active) {
  const TimePoint now = simulator_.now();

  // Coverage gap: the attempt cannot start; hold the link until service
  // returns. No airtime is burned while searching for coverage.
  if (plan_.affects_link() && plan_.in_outage(now)) {
    const TimePoint resume = plan_.outage_end_after(now);
    ETRAIN_TRACE(trace_sink_,
                 obs::TraceEvent::outage_defer(
                     now, static_cast<std::int32_t>(active.request.kind),
                     active.entity, resume));
    if (outage_counter_ != nullptr) outage_counter_->increment();
    transmitting_ = true;
    inflight_ = std::move(active);
    inflight_tx_ = placeholder_tx(inflight_.request, now, inflight_.attempt);
    inflight_is_attempt_ = false;
    has_inflight_ = true;
    inflight_event_ = simulator_.schedule_at(resume, [this]() {
      has_inflight_ = false;
      transmitting_ = false;
      begin_attempt(std::move(inflight_));
    });
    return;
  }

  const Duration setup = rrc_.promotion_delay_at(now);
  const BandwidthTrace& trace =
      (active.request.direction == core::Direction::kDownlink &&
       downlink_ != nullptr)
          ? *downlink_
          : trace_;
  const Duration duration =
      trace.transfer_duration(active.request.bytes, now + setup);

  // Fault decision for this attempt, fixed at start time: an outage
  // beginning mid-flight truncates (and fails) the attempt at its onset; a
  // loss draw fails it after the full airtime. Either way the occupied
  // radio time is logged and billed — failure is wasted energy.
  Duration actual_setup = setup;
  Duration actual_duration = duration;
  bool failed = false;
  if (plan_.affects_link()) {
    const TimePoint cut = plan_.next_outage_start(now);
    if (cut < now + setup + duration) {
      failed = true;
      actual_setup = std::min(setup, cut - now);
      actual_duration = std::max(0.0, (cut - now) - setup);
    } else if (plan_.lose_transfer(active.entity, active.attempt)) {
      failed = true;
    }
  }

  transmitting_ = true;
  rrc_.on_transmission_start(now);
  if (active.request.kind == radio::TxKind::kHeartbeat) {
    ETRAIN_TRACE(trace_sink_,
                 obs::TraceEvent::heartbeat_tx(now, active.request.app_id,
                                               active.request.bytes));
  }

  radio::Transmission tx;
  tx.start = now;
  tx.setup = actual_setup;
  tx.duration = actual_duration;
  tx.bytes = active.request.bytes;
  tx.kind = active.request.kind;
  tx.app_id = active.request.app_id;
  tx.packet_id = active.request.packet_id;
  tx.failed = failed;
  tx.attempt = active.attempt;

  inflight_ = std::move(active);
  inflight_tx_ = tx;
  inflight_is_attempt_ = true;
  has_inflight_ = true;
  inflight_event_ =
      simulator_.schedule_after(actual_setup + actual_duration, [this]() {
        has_inflight_ = false;
        Active done = std::move(inflight_);
        const radio::Transmission tx_done = inflight_tx_;
        rrc_.on_transmission_end(simulator_.now());
        log_.add(tx_done);
        transmitting_ = false;
        finish_attempt(std::move(done), tx_done, tx_done.failed);
        start_next();
      });
}

void RadioLink::finish_attempt(Active active, radio::Transmission tx,
                               bool failed) {
  if (!failed) {
    complete(std::move(active), tx, TxOutcome::kSuccess);
    return;
  }
  const TimePoint now = simulator_.now();
  ETRAIN_TRACE(trace_sink_,
               obs::TraceEvent::tx_failure(
                   now, static_cast<std::int32_t>(tx.kind), active.entity,
                   active.attempt, tx.setup + tx.duration));
  if (failures_counter_ != nullptr) failures_counter_->increment();

  // Heartbeats are fire-and-forget (the next cycle's beat supersedes a
  // lost one); data retries until the budget is exhausted.
  if (active.request.kind == radio::TxKind::kHeartbeat ||
      active.attempt > plan_.max_retries) {
    complete(std::move(active), tx, TxOutcome::kFailed);
    return;
  }

  const Duration backoff = plan_.backoff_delay(active.attempt);
  active.attempt += 1;
  ETRAIN_TRACE(trace_sink_,
               obs::TraceEvent::tx_retry(
                   now, static_cast<std::int32_t>(tx.kind), active.entity,
                   active.attempt, backoff));
  if (retries_counter_ != nullptr) retries_counter_->increment();

  const std::uint64_t token = next_backoff_token_++;
  const sim::EventId id = simulator_.schedule_after(backoff, [this, token]() {
    const auto it = backoff_.find(token);
    Active ready = std::move(it->second.active);
    backoff_.erase(it);
    pending_.push_back(std::move(ready));
    if (!transmitting_) start_next();
  });
  backoff_.emplace(token, BackoffEntry{id, std::move(active)});
}

void RadioLink::complete(Active active, const radio::Transmission& tx,
                         TxOutcome outcome) {
  if (outcome == TxOutcome::kCancelled && cancelled_counter_ != nullptr) {
    cancelled_counter_->increment();
  }
  if (active.request.on_complete) active.request.on_complete(tx, outcome);
}

void RadioLink::teardown() {
  if (torn_down_) return;
  torn_down_ = true;
  const TimePoint now = simulator_.now();

  if (has_inflight_) {
    simulator_.cancel(inflight_event_);
    has_inflight_ = false;
    transmitting_ = false;
    if (inflight_is_attempt_) {
      // The radio was mid-attempt; close the RRC bookkeeping at the
      // teardown instant. The aborted attempt is not logged: it never
      // reached a completion the meter could bill consistently.
      rrc_.on_transmission_end(now);
    }
    complete(std::move(inflight_), inflight_tx_, TxOutcome::kCancelled);
  }
  for (auto& [token, entry] : backoff_) {
    simulator_.cancel(entry.event);
    const radio::Transmission tx =
        placeholder_tx(entry.active.request, now, entry.active.attempt);
    complete(std::move(entry.active), tx, TxOutcome::kCancelled);
  }
  backoff_.clear();
  while (!pending_.empty()) {
    Active active = std::move(pending_.front());
    pending_.pop_front();
    const radio::Transmission tx =
        placeholder_tx(active.request, now, active.attempt);
    complete(std::move(active), tx, TxOutcome::kCancelled);
  }
}

}  // namespace etrain::net
