#include "net/radio_link.h"

#include <utility>

namespace etrain::net {

RadioLink::RadioLink(sim::Simulator& simulator,
                     const radio::PowerModel& model,
                     const BandwidthTrace& trace,
                     const BandwidthTrace* downlink)
    : simulator_(simulator),
      model_(model),
      trace_(trace),
      downlink_(downlink),
      rrc_(model) {}

void RadioLink::submit(Request request) {
  pending_.push_back(std::move(request));
  if (!transmitting_) start_next();
}

void RadioLink::start_next() {
  if (pending_.empty() || transmitting_) return;
  Request request = std::move(pending_.front());
  pending_.pop_front();

  const TimePoint now = simulator_.now();
  const Duration setup = rrc_.promotion_delay_at(now);
  const BandwidthTrace& trace =
      (request.direction == core::Direction::kDownlink && downlink_ != nullptr)
          ? *downlink_
          : trace_;
  const Duration duration =
      trace.transfer_duration(request.bytes, now + setup);

  transmitting_ = true;
  rrc_.on_transmission_start(now);
  if (request.kind == radio::TxKind::kHeartbeat) {
    ETRAIN_TRACE(trace_sink_, obs::TraceEvent::heartbeat_tx(
                                  now, request.app_id, request.bytes));
  }

  radio::Transmission tx;
  tx.start = now;
  tx.setup = setup;
  tx.duration = duration;
  tx.bytes = request.bytes;
  tx.kind = request.kind;
  tx.app_id = request.app_id;
  tx.packet_id = request.packet_id;

  simulator_.schedule_after(
      setup + duration,
      [this, tx, on_complete = std::move(request.on_complete)]() {
        rrc_.on_transmission_end(simulator_.now());
        log_.add(tx);
        transmitting_ = false;
        if (on_complete) on_complete(tx);
        start_next();
      });
}

}  // namespace etrain::net
