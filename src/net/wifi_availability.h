// Wi-Fi availability over time.
//
// Phones meet Wi-Fi in episodes — home, office, café — separated by
// cellular-only stretches. The multi-interface extension models this as a
// set of disjoint coverage intervals, with a generator producing realistic
// alternating on/off dwell times at a target coverage fraction.
#pragma once

#include <vector>

#include "common/rng.h"

namespace etrain::net {

/// One connected episode [start, end).
struct WifiEpisode {
  TimePoint start = 0.0;
  TimePoint end = 0.0;
};

class WifiAvailability {
 public:
  /// Episodes must be disjoint and sorted by start; throws otherwise.
  explicit WifiAvailability(std::vector<WifiEpisode> episodes);

  /// Never connected.
  static WifiAvailability none();
  /// Always connected over [0, horizon).
  static WifiAvailability always(Duration horizon);

  bool available(TimePoint t) const;

  /// Start of the next episode at or after t; +inf when none.
  TimePoint next_available(TimePoint t) const;

  /// End of the current episode if t is covered; t otherwise.
  TimePoint covered_until(TimePoint t) const;

  /// Fraction of [0, horizon) covered.
  double coverage(Duration horizon) const;

  const std::vector<WifiEpisode>& episodes() const { return episodes_; }

 private:
  std::vector<WifiEpisode> episodes_;
};

struct WifiPatternConfig {
  Duration horizon = 7200.0;
  /// Target fraction of time connected (0..1).
  double coverage = 0.5;
  /// Mean length of one connected episode.
  Duration episode_mean = 900.0;
};

/// Generates alternating connected/disconnected episodes whose long-run
/// coverage approximates the target.
WifiAvailability generate_wifi_pattern(const WifiPatternConfig& config,
                                       std::uint64_t seed);

}  // namespace etrain::net
