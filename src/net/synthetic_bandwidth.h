// Synthetic urban-mobility 3G uplink trace generator.
//
// Substitute for the paper's proprietary measurement: a 2-hour, 1 Hz uplink
// trace recorded on a bus ride through downtown Wuhan followed by a campus
// walk, uploading continuously to Amazon EC2 (Sec. VI-A). The generator
// reproduces the statistical features that matter to the schedulers under
// test:
//   * two mobility regimes — "bus" (fast-changing, handover dips) and
//     "walk" (steadier) — alternating with exponential dwell times;
//   * log-scale AR(1) shadowing within a regime (temporal correlation, so
//     bandwidth prediction is meaningful for PerES/eTime yet imperfect);
//   * occasional deep fades (coverage holes / handovers);
//   * rates in the 10–350 KB/s envelope typical of 2014-era TD-SCDMA/HSUPA
//     uplinks, mean around 120 KB/s.
#pragma once

#include "common/rng.h"
#include "net/bandwidth_trace.h"

namespace etrain::net {

struct SyntheticBandwidthConfig {
  Duration length = 7200.0;  ///< paper trace: 2 hours
  /// Mean dwell time in each mobility regime.
  Duration bus_dwell_mean = 420.0;
  Duration walk_dwell_mean = 600.0;
  /// Median uplink rate per regime (bytes/s).
  BytesPerSecond bus_median_rate = 100.0e3;
  BytesPerSecond walk_median_rate = 160.0e3;
  /// AR(1) coefficient of the log-rate shadowing process (per second).
  double shadowing_rho = 0.97;
  /// Stddev of the stationary log-rate shadowing (natural log units).
  double shadowing_sigma = 0.45;
  /// Per-second probability of entering a deep fade, and its mean length.
  double fade_probability = 0.004;
  Duration fade_mean_length = 6.0;
  BytesPerSecond fade_rate = 15.0e3;
  /// Hard envelope.
  BytesPerSecond floor_rate = 8.0e3;
  BytesPerSecond ceiling_rate = 350.0e3;
};

/// Generates a trace; identical (config, seed) pairs produce identical
/// traces.
BandwidthTrace generate_synthetic_trace(const SyntheticBandwidthConfig& config,
                                        std::uint64_t seed);

/// The default trace used by all paper-reproduction experiments ("the Wuhan
/// trace"): generate_synthetic_trace with default config and a fixed seed.
BandwidthTrace wuhan_trace();

}  // namespace etrain::net
