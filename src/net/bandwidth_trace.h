// Time-varying uplink bandwidth.
//
// The paper drives its simulations with a real 2-hour 3G uplink trace
// recorded at 1 Hz while riding a bus through downtown Wuhan and walking
// around a university campus (Sec. VI-A). We reproduce the format — one
// average-uplink-bandwidth sample per second — and generate an equivalent
// synthetic trace (see synthetic_bandwidth.h). All schedulers transmit
// through the same trace.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"

namespace etrain::net {

/// A 1 Hz-sampled uplink bandwidth trace. Sample i covers [i, i+1) seconds.
/// Queries beyond the trace wrap around, so short traces can drive long
/// simulations deterministically.
class BandwidthTrace {
 public:
  /// Constructs from samples; every sample must be > 0 (a zero-bandwidth
  /// second would stall the serialized link forever).
  explicit BandwidthTrace(std::vector<BytesPerSecond> samples);

  /// Uniform trace, handy for tests and closed-form checks.
  static BandwidthTrace constant(BytesPerSecond rate, std::size_t seconds);

  /// Loads a "time_s,bytes_per_second" CSV (header optional via flag).
  static BandwidthTrace load_csv(const std::string& path,
                                 bool skip_header = true);
  void save_csv(const std::string& path) const;

  /// Bandwidth in effect at absolute time t (>= 0), wrapping past the end.
  BytesPerSecond at(TimePoint t) const;

  /// Time needed to move `bytes` starting at `start`, integrating the
  /// piecewise-constant rate across second boundaries.
  Duration transfer_duration(Bytes bytes, TimePoint start) const;

  Duration length() const { return static_cast<double>(samples_.size()); }
  const std::vector<BytesPerSecond>& samples() const { return samples_; }
  BytesPerSecond mean() const;
  BytesPerSecond min() const;
  BytesPerSecond max() const;

 private:
  std::vector<BytesPerSecond> samples_;
};

}  // namespace etrain::net
