#include "net/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"  // splitmix64
#include "common/rng.h"

namespace etrain::net {

bool FaultPlan::in_outage(TimePoint t) const {
  // First episode with end > t; covered iff it also starts at/before t.
  const auto it = std::upper_bound(
      outages.begin(), outages.end(), t,
      [](TimePoint v, const OutageEpisode& e) { return v < e.end; });
  return it != outages.end() && it->start <= t;
}

TimePoint FaultPlan::outage_end_after(TimePoint t) const {
  const auto it = std::upper_bound(
      outages.begin(), outages.end(), t,
      [](TimePoint v, const OutageEpisode& e) { return v < e.end; });
  if (it != outages.end() && it->start <= t) return it->end;
  return t;
}

TimePoint FaultPlan::next_outage_start(TimePoint t) const {
  const auto it = std::upper_bound(
      outages.begin(), outages.end(), t,
      [](TimePoint v, const OutageEpisode& e) { return v < e.start; });
  return it == outages.end() ? kTimeInfinity : it->start;
}

double FaultPlan::uniform_draw(std::uint64_t stream, std::int64_t entity,
                               int attempt) const {
  // Three avalanche rounds decorrelate the structured inputs; the top 53
  // bits give a uniform double in [0, 1).
  std::uint64_t h = splitmix64(seed ^ (stream * 0x9e3779b97f4a7c15ULL));
  h = splitmix64(h ^ static_cast<std::uint64_t>(entity));
  h = splitmix64(h ^ static_cast<std::uint64_t>(attempt));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Duration FaultPlan::backoff_delay(int attempt) const {
  if (attempt < 1) attempt = 1;
  const double raw =
      backoff_base * std::pow(backoff_factor, static_cast<double>(attempt - 1));
  return std::max(0.0, std::min(raw, backoff_cap));
}

Duration FaultPlan::heartbeat_jitter(std::int64_t entity) const {
  if (heartbeat_jitter_sigma <= 0.0) return 0.0;
  // Box-Muller on two independent hashed uniforms; u1 is kept away from 0
  // so the log is finite.
  const double u1 =
      std::max(uniform_draw(kStreamHeartbeatJitter, entity, 1), 1e-12);
  const double u2 = uniform_draw(kStreamHeartbeatJitter, entity, 2);
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
  return heartbeat_jitter_sigma * z;
}

void FaultPlan::validate() const {
  const auto prob = [](double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                  " must be in [0, 1]");
    }
  };
  prob(loss_probability, "loss_probability");
  prob(heartbeat_drop_probability, "heartbeat_drop_probability");
  if (heartbeat_jitter_sigma < 0.0) {
    throw std::invalid_argument("FaultPlan: negative heartbeat_jitter_sigma");
  }
  if (max_retries < 0) {
    throw std::invalid_argument("FaultPlan: negative max_retries");
  }
  if (backoff_base < 0.0 || backoff_cap < 0.0 || backoff_factor < 1.0) {
    throw std::invalid_argument(
        "FaultPlan: backoff_base/cap must be >= 0 and backoff_factor >= 1");
  }
  TimePoint prev_end = -kTimeInfinity;
  for (const auto& e : outages) {
    if (e.end <= e.start) {
      throw std::invalid_argument("FaultPlan: empty or inverted outage");
    }
    if (e.start < prev_end) {
      throw std::invalid_argument(
          "FaultPlan: outages must be sorted and disjoint");
    }
    prev_end = e.end;
  }
}

std::vector<OutageEpisode> generate_outages(const OutagePatternConfig& config,
                                            std::uint64_t seed) {
  if (config.duty < 0.0 || config.duty >= 1.0) {
    throw std::invalid_argument("generate_outages: duty must be in [0, 1)");
  }
  if (config.episode_mean <= 0.0) {
    throw std::invalid_argument("generate_outages: non-positive episode_mean");
  }
  std::vector<OutageEpisode> out;
  if (config.duty == 0.0 || config.horizon <= 0.0) return out;

  // Alternating exponential dwells; mean covered dwell is set so the
  // long-run uncovered fraction matches the duty.
  const Duration covered_mean =
      config.episode_mean * (1.0 - config.duty) / config.duty;
  Rng rng(seed);
  TimePoint t = rng.exponential_mean(covered_mean);  // start in coverage
  while (t < config.horizon) {
    const Duration gap = std::max(1.0, rng.exponential_mean(config.episode_mean));
    const TimePoint end = std::min<TimePoint>(t + gap, config.horizon);
    out.push_back({t, end});
    t = end + std::max(1.0, rng.exponential_mean(covered_mean));
  }
  return out;
}

}  // namespace etrain::net
