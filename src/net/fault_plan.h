// Seeded fault injection for the transmission layer (robustness extension).
//
// The paper's evaluation assumes every transfer succeeds and every
// heartbeat departs on schedule; real IM deployments on cellular links see
// failed uplink transfers, coverage gaps and OS-jittered/killed heartbeats
// (Sec. III's premise). A FaultPlan describes that lossy world for one run:
//
//   * per-attempt transfer loss (the uplink TCP stream resets mid-flight),
//   * coverage outages (disjoint episodes during which the radio has no
//     service: transfers cannot start, and in-flight transfers die at the
//     outage boundary),
//   * heartbeat timing faults (Gaussian departure jitter and outright
//     drops — the OS killed the daemon or delayed its alarm),
//   * the capped-exponential-backoff retransmission policy both harnesses
//     (net::RadioLink and exp/slotted_sim) apply to failed transfers.
//
// Every stochastic decision is a pure hash of (seed, entity, attempt) —
// never a draw from shared mutable RNG state — so the same plan produces a
// byte-identical failure/retry sequence regardless of execution order,
// thread count (parallel_map) or which harness replays it. FaultPlan::none()
// (the default everywhere) disables every dimension; runs under it are
// bit-identical to the pre-fault-injection behaviour.
//
// docs/faults.md documents the model, the knobs and the API migration.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"

namespace etrain::net {

/// One coverage gap [start, end): the device has no cellular service.
struct OutageEpisode {
  TimePoint start = 0.0;
  TimePoint end = 0.0;
};

struct FaultPlan {
  /// Base seed for every hashed fault decision. Two plans with equal knobs
  /// and equal seeds produce identical fault sequences.
  std::uint64_t seed = 1;

  /// Probability that one transfer *attempt* fails in flight (applied
  /// per attempt, so a retried packet re-rolls). 0 = lossless.
  double loss_probability = 0.0;

  /// Disjoint, sorted coverage gaps. Transfers cannot start inside one and
  /// are truncated (failed) when one begins mid-flight.
  std::vector<OutageEpisode> outages;

  /// Gaussian sigma (seconds) perturbing each heartbeat departure — daemon
  /// scheduling noise, alarm batching, send-path latency. 0 = on schedule.
  double heartbeat_jitter_sigma = 0.0;

  /// Probability that one scheduled heartbeat never departs at all (the OS
  /// killed/deferred the daemon). Dropped beats burn no energy.
  double heartbeat_drop_probability = 0.0;

  /// Retransmission policy: a failed attempt n (1-based) is retried after
  /// min(backoff_base * backoff_factor^(n-1), backoff_cap) seconds, at most
  /// `max_retries` times before the transfer is reported failed.
  int max_retries = 4;
  Duration backoff_base = 2.0;
  double backoff_factor = 2.0;
  Duration backoff_cap = 60.0;

  /// The default everywhere: no faults, bit-identical to pre-fault runs.
  static FaultPlan none() { return FaultPlan{}; }

  /// Any fault dimension active?
  bool enabled() const { return affects_link() || affects_heartbeats(); }

  /// Transfer-level faults (loss or outages) active?
  bool affects_link() const {
    return loss_probability > 0.0 || !outages.empty();
  }

  /// Heartbeat timetable faults active?
  bool affects_heartbeats() const {
    return heartbeat_jitter_sigma > 0.0 || heartbeat_drop_probability > 0.0;
  }

  /// True when t falls inside a coverage gap.
  bool in_outage(TimePoint t) const;

  /// End of the episode covering t; t itself when t is covered by service.
  TimePoint outage_end_after(TimePoint t) const;

  /// Start of the first outage strictly after t; +inf when none.
  TimePoint next_outage_start(TimePoint t) const;

  /// Uniform [0,1) hash draw for (stream, entity, attempt). Streams keep
  /// decision kinds independent (see the Stream constants below).
  double uniform_draw(std::uint64_t stream, std::int64_t entity,
                      int attempt) const;

  /// Does transfer attempt `attempt` (1-based) of `entity` get lost?
  /// `entity` must be stable across replays: the packet id for cargo, a
  /// harness-assigned sequence number otherwise.
  bool lose_transfer(std::int64_t entity, int attempt) const {
    return loss_probability > 0.0 &&
           uniform_draw(kStreamLoss, entity, attempt) < loss_probability;
  }

  /// Backoff before retrying after failed attempt `attempt` (1-based):
  /// min(base * factor^(attempt-1), cap), never negative.
  Duration backoff_delay(int attempt) const;

  /// N(0, heartbeat_jitter_sigma) departure perturbation for heartbeat
  /// `entity` (a stable beat index), via Box-Muller on hashed uniforms.
  /// 0 when jitter is disabled.
  Duration heartbeat_jitter(std::int64_t entity) const;

  /// Does heartbeat `entity` get dropped (OS killed/deferred the daemon)?
  bool drops_heartbeat(std::int64_t entity) const {
    return heartbeat_drop_probability > 0.0 &&
           uniform_draw(kStreamHeartbeatDrop, entity, 1) <
               heartbeat_drop_probability;
  }

  /// Throws std::invalid_argument on malformed knobs (probabilities outside
  /// [0,1], unsorted/overlapping outages, negative backoff ...).
  void validate() const;

  /// Decision streams for uniform_draw.
  static constexpr std::uint64_t kStreamLoss = 0x10552001;
  static constexpr std::uint64_t kStreamHeartbeatDrop = 0xd209b33f;
  static constexpr std::uint64_t kStreamHeartbeatJitter = 0x31773e2a;
};

/// Seeded generator for realistic outage patterns: alternating covered /
/// uncovered dwell times whose long-run uncovered fraction approximates
/// `duty` (0 = no outages, 0.3 = out of coverage ~30 % of the time).
struct OutagePatternConfig {
  Duration horizon = 7200.0;
  /// Target fraction of [0, horizon) spent in outage (0..1).
  double duty = 0.1;
  /// Mean length of one outage episode, seconds.
  Duration episode_mean = 120.0;
};

std::vector<OutageEpisode> generate_outages(const OutagePatternConfig& config,
                                            std::uint64_t seed);

}  // namespace etrain::net
