#include "net/wifi_availability.h"

#include <algorithm>
#include <stdexcept>

namespace etrain::net {

WifiAvailability::WifiAvailability(std::vector<WifiEpisode> episodes)
    : episodes_(std::move(episodes)) {
  for (std::size_t i = 0; i < episodes_.size(); ++i) {
    if (episodes_[i].end <= episodes_[i].start) {
      throw std::invalid_argument("WifiAvailability: empty episode");
    }
    if (i > 0 && episodes_[i].start < episodes_[i - 1].end) {
      throw std::invalid_argument(
          "WifiAvailability: overlapping or unsorted episodes");
    }
  }
}

WifiAvailability WifiAvailability::none() { return WifiAvailability({}); }

WifiAvailability WifiAvailability::always(Duration horizon) {
  return WifiAvailability({WifiEpisode{0.0, horizon}});
}

bool WifiAvailability::available(TimePoint t) const {
  const auto it = std::upper_bound(
      episodes_.begin(), episodes_.end(), t,
      [](TimePoint v, const WifiEpisode& e) { return v < e.start; });
  if (it == episodes_.begin()) return false;
  return t < std::prev(it)->end;
}

TimePoint WifiAvailability::next_available(TimePoint t) const {
  if (available(t)) return t;
  for (const auto& e : episodes_) {
    if (e.start >= t) return e.start;
  }
  return kTimeInfinity;
}

TimePoint WifiAvailability::covered_until(TimePoint t) const {
  const auto it = std::upper_bound(
      episodes_.begin(), episodes_.end(), t,
      [](TimePoint v, const WifiEpisode& e) { return v < e.start; });
  if (it == episodes_.begin()) return t;
  const auto& e = *std::prev(it);
  return t < e.end ? e.end : t;
}

double WifiAvailability::coverage(Duration horizon) const {
  double covered = 0.0;
  for (const auto& e : episodes_) {
    covered += std::max(0.0, std::min(e.end, horizon) - e.start);
  }
  return horizon > 0.0 ? covered / horizon : 0.0;
}

WifiAvailability generate_wifi_pattern(const WifiPatternConfig& config,
                                       std::uint64_t seed) {
  if (config.coverage < 0.0 || config.coverage > 1.0) {
    throw std::invalid_argument("generate_wifi_pattern: coverage not in 0..1");
  }
  if (config.coverage == 0.0) return WifiAvailability::none();
  if (config.coverage == 1.0) {
    return WifiAvailability::always(config.horizon);
  }
  // Alternate on/off with exponential dwells tuned so that
  // on_mean / (on_mean + off_mean) = coverage.
  const Duration on_mean = config.episode_mean;
  const Duration off_mean = on_mean * (1.0 - config.coverage) /
                            config.coverage;
  Rng rng(seed);
  std::vector<WifiEpisode> episodes;
  // Start connected with probability = coverage.
  TimePoint t = rng.bernoulli(config.coverage)
                    ? 0.0
                    : rng.exponential_mean(off_mean);
  while (t < config.horizon) {
    const Duration on = rng.exponential_mean(on_mean);
    episodes.push_back(
        WifiEpisode{t, std::min(t + on, config.horizon)});
    t += on + rng.exponential_mean(off_mean);
  }
  return WifiAvailability(std::move(episodes));
}

}  // namespace etrain::net
