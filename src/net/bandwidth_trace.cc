#include "net/bandwidth_trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/csv.h"

namespace etrain::net {

BandwidthTrace::BandwidthTrace(std::vector<BytesPerSecond> samples)
    : samples_(std::move(samples)) {
  if (samples_.empty()) {
    throw std::invalid_argument("BandwidthTrace: empty sample set");
  }
  for (const auto s : samples_) {
    if (!(s > 0.0)) {
      throw std::invalid_argument("BandwidthTrace: non-positive sample");
    }
  }
}

BandwidthTrace BandwidthTrace::constant(BytesPerSecond rate,
                                        std::size_t seconds) {
  return BandwidthTrace(std::vector<BytesPerSecond>(seconds, rate));
}

BandwidthTrace BandwidthTrace::load_csv(const std::string& path,
                                        bool skip_header) {
  const auto rows = read_csv_file(path, skip_header);
  std::vector<BytesPerSecond> samples;
  samples.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.size() < 2) {
      throw std::runtime_error("BandwidthTrace: malformed row in " + path);
    }
    samples.push_back(std::stod(row[1]));
  }
  return BandwidthTrace(std::move(samples));
}

void BandwidthTrace::save_csv(const std::string& path) const {
  CsvWriter w(path);
  w.write_comment("uplink bandwidth trace, 1 Hz");
  w.write_row({"time_s", "bytes_per_second"});
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    w.write_row({std::to_string(i), std::to_string(samples_[i])});
  }
}

BytesPerSecond BandwidthTrace::at(TimePoint t) const {
  assert(t >= 0.0);
  const auto idx =
      static_cast<std::size_t>(std::floor(t)) % samples_.size();
  return samples_[idx];
}

Duration BandwidthTrace::transfer_duration(Bytes bytes,
                                           TimePoint start) const {
  if (bytes <= 0) return 0.0;
  double remaining = static_cast<double>(bytes);
  TimePoint t = start;
  // Walk second-aligned segments; each iteration consumes the rest of the
  // current one-second sample or finishes the transfer.
  while (true) {
    const BytesPerSecond rate = at(t);
    const TimePoint segment_end = std::floor(t) + 1.0;
    const Duration segment_len = segment_end - t;
    const double capacity = rate * segment_len;
    if (remaining <= capacity) {
      return (t + remaining / rate) - start;
    }
    remaining -= capacity;
    t = segment_end;
  }
}

BytesPerSecond BandwidthTrace::mean() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

BytesPerSecond BandwidthTrace::min() const {
  return *std::min_element(samples_.begin(), samples_.end());
}

BytesPerSecond BandwidthTrace::max() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

}  // namespace etrain::net
