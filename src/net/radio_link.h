// The serialized uplink used by the full-system (DES) simulation.
//
// Models constraint (3) of the paper's formulation: at most one heartbeat or
// data packet is in flight at any time. Requests submitted while the link is
// busy queue FIFO (the paper's Q_TX drains "whenever Q_TX is not empty and
// there is radio resource available"). Transfer duration follows the
// bandwidth trace; RRC promotions are inserted per the PowerModel.
//
// Fault injection (set_fault_plan): with an active FaultPlan, transfer
// attempts can be lost in flight or truncated by coverage outages. Failed
// data attempts still occupy the radio (the airtime is logged and billed —
// wasted energy), then requeue under the plan's capped exponential backoff
// until delivery or retry exhaustion. Heartbeats are fire-and-forget: a
// lost heartbeat burns its airtime and is reported kFailed without retries,
// matching how IM keep-alives behave (the next cycle's beat supersedes it).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "core/packet.h"
#include "net/bandwidth_trace.h"
#include "net/fault_plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "radio/rrc_machine.h"
#include "radio/transmission_log.h"
#include "sim/simulator.h"

namespace etrain::net {

/// Final disposition of one submitted request.
enum class TxOutcome {
  kSuccess,    ///< the last byte was acknowledged
  kFailed,     ///< every attempt failed (loss/outage, retries exhausted)
  kCancelled,  ///< the link was torn down while the request was pending
};

inline const char* to_string(TxOutcome o) {
  switch (o) {
    case TxOutcome::kSuccess: return "success";
    case TxOutcome::kFailed: return "failed";
    case TxOutcome::kCancelled: return "cancelled";
  }
  return "?";
}

class RadioLink {
 public:
  /// Completion callback. CONTRACT (tested by net_radio_link_test):
  /// invoked exactly once per submitted request —
  ///   * kSuccess: at the simulated instant the last byte is acknowledged;
  ///     the Transmission describes the successful attempt.
  ///   * kFailed: when the final permitted attempt fails; the Transmission
  ///     describes that last failed attempt (failed = true).
  ///   * kCancelled: synchronously from teardown(); the Transmission is the
  ///     in-flight attempt for the active request, or a zero-duration
  ///     placeholder carrying the request's ids for queued/backing-off ones.
  /// Intermediate failed attempts that will be retried do NOT invoke the
  /// callback; they only emit TxFailure/TxRetry trace events.
  using CompletionFn =
      std::function<void(const radio::Transmission&, TxOutcome)>;

  struct Request {
    Bytes bytes = 0;
    radio::TxKind kind = radio::TxKind::kData;
    int app_id = 0;
    std::int64_t packet_id = -1;
    core::Direction direction = core::Direction::kUplink;
    CompletionFn on_complete;  ///< optional
  };

  /// `downlink` may be null, in which case downloads use the uplink trace.
  RadioLink(sim::Simulator& simulator, const radio::PowerModel& model,
            const BandwidthTrace& trace,
            const BandwidthTrace* downlink = nullptr);

  RadioLink(const RadioLink&) = delete;
  RadioLink& operator=(const RadioLink&) = delete;

  /// Submits a transmission request at the current simulated time.
  void submit(Request request);

  /// Tears the link down: the in-flight attempt (if any) is abandoned, and
  /// its request plus every queued or backing-off request completes
  /// immediately with kCancelled. Further submissions throw. Idempotent.
  void teardown();

  /// Attaches fault injection. Must be called before the first submit();
  /// the plan is validated. FaultPlan::none() (the default) restores
  /// fault-free behaviour.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return plan_; }

  bool busy() const { return transmitting_; }
  std::size_t queued() const { return pending_.size(); }
  /// Requests waiting out a backoff delay before their next attempt.
  std::size_t backing_off() const { return backoff_.size(); }

  const radio::TransmissionLog& log() const { return log_; }
  const radio::RrcStateMachine& rrc() const { return rrc_; }

  /// Attaches a trace sink (nullptr detaches): heartbeat starts emit
  /// HeartbeatTx here, fault injection emits TxFailure / TxRetry /
  /// OutageDefer, and the owned RRC machine emits its RrcTransition events
  /// into the same sink.
  void set_trace_sink(obs::TraceSink* sink) {
    trace_sink_ = sink;
    rrc_.set_trace_sink(sink);
  }

  /// Attaches counters (nullptr detaches): link.tx_failures,
  /// link.tx_retries, link.tx_cancelled, link.outage_deferrals.
  void attach_metrics(obs::Registry* registry);

  /// Emits the RRC tail demotions that are final by time t (end of run).
  void flush_trace(TimePoint t) { rrc_.flush_tail_transitions(t); }

 private:
  struct Active {
    Request request;
    int attempt = 1;  ///< 1-based
    std::int64_t entity = 0;  ///< loss-draw key (packet id or sequence)
  };
  /// One request waiting out its backoff delay, keyed by a token its
  /// kernel wakeup captures; teardown() cancels the wakeup and completes
  /// the request with kCancelled.
  struct BackoffEntry {
    sim::EventId event = 0;
    Active active;
  };

  void start_next();
  void begin_attempt(Active active);
  void finish_attempt(Active active, radio::Transmission tx, bool failed);
  void complete(Active active, const radio::Transmission& tx,
                TxOutcome outcome);

  sim::Simulator& simulator_;
  radio::PowerModel model_;
  const BandwidthTrace& trace_;
  const BandwidthTrace* downlink_;
  radio::RrcStateMachine rrc_;
  radio::TransmissionLog log_;
  std::deque<Active> pending_;
  FaultPlan plan_ = FaultPlan::none();
  bool transmitting_ = false;
  bool torn_down_ = false;
  /// Sequence for id-less requests' loss draws; negative so it can never
  /// collide with real packet ids.
  std::int64_t next_sequence_ = -1000;
  /// In-flight bookkeeping so teardown() can cancel exactly once.
  sim::EventId inflight_event_ = 0;
  Active inflight_;
  radio::Transmission inflight_tx_;
  bool inflight_is_attempt_ = false;  ///< false during a coverage wait
  bool has_inflight_ = false;
  std::map<std::uint64_t, BackoffEntry> backoff_;
  std::uint64_t next_backoff_token_ = 0;
  obs::TraceSink* trace_sink_ = nullptr;
  obs::Counter* failures_counter_ = nullptr;
  obs::Counter* retries_counter_ = nullptr;
  obs::Counter* cancelled_counter_ = nullptr;
  obs::Counter* outage_counter_ = nullptr;
};

}  // namespace etrain::net
