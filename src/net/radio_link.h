// The serialized uplink used by the full-system (DES) simulation.
//
// Models constraint (3) of the paper's formulation: at most one heartbeat or
// data packet is in flight at any time. Requests submitted while the link is
// busy queue FIFO (the paper's Q_TX drains "whenever Q_TX is not empty and
// there is radio resource available"). Transfer duration follows the
// bandwidth trace; RRC promotions are inserted per the PowerModel.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "core/packet.h"
#include "net/bandwidth_trace.h"
#include "obs/trace.h"
#include "radio/rrc_machine.h"
#include "radio/transmission_log.h"
#include "sim/simulator.h"

namespace etrain::net {

class RadioLink {
 public:
  /// Completion callback: invoked at the simulated instant the last byte is
  /// acknowledged, with the full transmission record (start, setup,
  /// duration, ...).
  using CompletionFn = std::function<void(const radio::Transmission&)>;

  struct Request {
    Bytes bytes = 0;
    radio::TxKind kind = radio::TxKind::kData;
    int app_id = 0;
    std::int64_t packet_id = -1;
    core::Direction direction = core::Direction::kUplink;
    CompletionFn on_complete;  ///< optional
  };

  /// `downlink` may be null, in which case downloads use the uplink trace.
  RadioLink(sim::Simulator& simulator, const radio::PowerModel& model,
            const BandwidthTrace& trace,
            const BandwidthTrace* downlink = nullptr);

  RadioLink(const RadioLink&) = delete;
  RadioLink& operator=(const RadioLink&) = delete;

  /// Submits a transmission request at the current simulated time.
  void submit(Request request);

  bool busy() const { return transmitting_; }
  std::size_t queued() const { return pending_.size(); }

  const radio::TransmissionLog& log() const { return log_; }
  const radio::RrcStateMachine& rrc() const { return rrc_; }

  /// Attaches a trace sink (nullptr detaches): heartbeat starts emit
  /// HeartbeatTx here, and the owned RRC machine emits its RrcTransition
  /// events into the same sink.
  void set_trace_sink(obs::TraceSink* sink) {
    trace_sink_ = sink;
    rrc_.set_trace_sink(sink);
  }

  /// Emits the RRC tail demotions that are final by time t (end of run).
  void flush_trace(TimePoint t) { rrc_.flush_tail_transitions(t); }

 private:
  void start_next();

  sim::Simulator& simulator_;
  radio::PowerModel model_;
  const BandwidthTrace& trace_;
  const BandwidthTrace* downlink_;
  radio::RrcStateMachine rrc_;
  radio::TransmissionLog log_;
  std::deque<Request> pending_;
  bool transmitting_ = false;
  obs::TraceSink* trace_sink_ = nullptr;
};

}  // namespace etrain::net
