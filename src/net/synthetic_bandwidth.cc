#include "net/synthetic_bandwidth.h"

#include <algorithm>
#include <cmath>

namespace etrain::net {

namespace {

enum class Regime { kBus, kWalk };

}  // namespace

BandwidthTrace generate_synthetic_trace(const SyntheticBandwidthConfig& config,
                                        std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(config.length);
  std::vector<BytesPerSecond> samples;
  samples.reserve(n);

  Regime regime = Regime::kBus;  // the paper's trace starts on the bus
  double regime_left = rng.exponential_mean(config.bus_dwell_mean);
  // Start shadowing at its stationary distribution.
  double shadow = rng.normal(0.0, config.shadowing_sigma);
  const double innovation_sigma =
      config.shadowing_sigma *
      std::sqrt(1.0 - config.shadowing_rho * config.shadowing_rho);
  double fade_left = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    // Regime switching.
    regime_left -= 1.0;
    if (regime_left <= 0.0) {
      regime = (regime == Regime::kBus) ? Regime::kWalk : Regime::kBus;
      regime_left = rng.exponential_mean(regime == Regime::kBus
                                             ? config.bus_dwell_mean
                                             : config.walk_dwell_mean);
    }
    // Shadowing AR(1) on the log scale. The bus regime sees roughly twice
    // the variability (handovers, obstructions passing by).
    const double regime_scale = (regime == Regime::kBus) ? 1.6 : 1.0;
    shadow = config.shadowing_rho * shadow +
             rng.normal(0.0, innovation_sigma * regime_scale);

    // Deep fades.
    if (fade_left <= 0.0 && rng.bernoulli(config.fade_probability)) {
      fade_left = rng.exponential_mean(config.fade_mean_length);
    }

    const BytesPerSecond median = (regime == Regime::kBus)
                                      ? config.bus_median_rate
                                      : config.walk_median_rate;
    BytesPerSecond rate = median * std::exp(shadow);
    if (fade_left > 0.0) {
      rate = std::min(rate, config.fade_rate);
      fade_left -= 1.0;
    }
    rate = std::clamp(rate, config.floor_rate, config.ceiling_rate);
    samples.push_back(rate);
  }
  return BandwidthTrace(std::move(samples));
}

BandwidthTrace wuhan_trace() {
  // Fixed seed: every bench binary and test sees the identical trace, the
  // same way every experiment in the paper replays the same recording.
  return generate_synthetic_trace(SyntheticBandwidthConfig{}, 20141208);
}

}  // namespace etrain::net
