// Application-layer data units ("packets" in the paper's terminology):
// a text message, an e-mail, a news update, a cloud-sync chunk. One packet
// may span many transport-layer segments but is transmitted as a unit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/time.h"

namespace etrain::core {

/// Identifies a cargo app within a scenario (index into the cargo app list).
using CargoAppId = int;

/// Globally unique packet id within one simulation run.
using PacketId = std::int64_t;

/// Transfer direction. Uploads dominate the paper's evaluation, but cargo
/// apps may also "want to download some data (mainly for prefetching
/// purpose)" (Sec. V-4); downloads ride heartbeat tails exactly the same
/// way, just against the downlink's (usually higher) bandwidth.
enum class Direction {
  kUplink,
  kDownlink,
};

/// A delay-tolerant data packet awaiting transmission.
struct Packet {
  PacketId id = -1;
  CargoAppId app = 0;
  Bytes bytes = 0;
  Direction direction = Direction::kUplink;
  /// Arrival time t_a(u): when the cargo app generated the packet.
  TimePoint arrival = 0.0;
  /// User-specified deadline (relative, seconds after arrival). The delay
  /// cost profile interprets it; it is not a hard constraint.
  Duration deadline = 60.0;

  /// Delay experienced if the packet starts transmission at time t.
  Duration delay_if_sent_at(TimePoint t) const { return t - arrival; }
};

}  // namespace etrain::core
