#include "core/offline_solver.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "radio/energy_meter.h"
#include "radio/transmission_log.h"

namespace etrain::core {

namespace {

struct Event {
  TimePoint nominal = 0.0;
  Bytes bytes = 0;
  bool heartbeat = false;
  int packet_index = -1;
};

/// Serializes events and returns (tail energy, per-packet actual starts).
std::pair<Joules, std::vector<TimePoint>> score(
    const OfflineProblem& problem, const std::vector<TimePoint>& departures) {
  std::vector<Event> events;
  events.reserve(problem.heartbeat_times.size() + departures.size());
  for (const TimePoint t : problem.heartbeat_times) {
    events.push_back(Event{t, problem.heartbeat_bytes, true, -1});
  }
  for (std::size_t i = 0; i < departures.size(); ++i) {
    events.push_back(Event{departures[i], problem.packets[i].packet.bytes,
                           false, static_cast<int>(i)});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.nominal != b.nominal) return a.nominal < b.nominal;
                     return a.heartbeat && !b.heartbeat;
                   });

  radio::TransmissionLog log;
  std::vector<TimePoint> starts(departures.size(), 0.0);
  TimePoint free_at = 0.0;
  for (const Event& e : events) {
    radio::Transmission tx;
    tx.start = std::max(e.nominal, free_at);
    tx.duration = static_cast<double>(e.bytes) / problem.bandwidth;
    tx.bytes = e.bytes;
    tx.kind = e.heartbeat ? radio::TxKind::kHeartbeat : radio::TxKind::kData;
    tx.packet_id = e.packet_index;
    log.add(tx);
    free_at = tx.end();
    if (e.packet_index >= 0) {
      starts[static_cast<std::size_t>(e.packet_index)] = tx.start;
    }
  }
  const Duration energy_horizon =
      std::max(problem.horizon, log.last_end()) + problem.model.tail_time();
  const auto report = radio::measure_energy(log, problem.model,
                                            energy_horizon);
  return {report.tail_energy(), std::move(starts)};
}

double delay_cost(const OfflineProblem& problem,
                  const std::vector<TimePoint>& starts) {
  double total = 0.0;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const QueuedPacket& p = problem.packets[i];
    total += p.profile->cost(starts[i] - p.packet.arrival, p.packet.deadline);
  }
  return total;
}

}  // namespace

std::vector<TimePoint> candidate_departures(const OfflineProblem& problem,
                                            const QueuedPacket& packet) {
  std::vector<TimePoint> candidates;
  const TimePoint arrival = packet.packet.arrival;
  const TimePoint expiry = arrival + packet.packet.deadline;
  candidates.push_back(arrival);
  for (const TimePoint hb : problem.heartbeat_times) {
    if (hb > arrival && hb <= expiry) candidates.push_back(hb);
  }
  if (expiry <= problem.horizon) candidates.push_back(expiry);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  return candidates;
}

OfflineSolution evaluate_offline_schedule(const OfflineProblem& problem,
                                          std::vector<TimePoint> departures) {
  if (departures.size() != problem.packets.size()) {
    throw std::invalid_argument(
        "evaluate_offline_schedule: departure count mismatch");
  }
  for (std::size_t i = 0; i < departures.size(); ++i) {
    if (departures[i] < problem.packets[i].packet.arrival - 1e-9) {
      throw std::invalid_argument(
          "evaluate_offline_schedule: departure before arrival");
    }
  }
  OfflineSolution solution;
  auto [energy, starts] = score(problem, departures);
  solution.tail_energy = energy;
  solution.total_delay_cost = delay_cost(problem, starts);
  solution.departures = std::move(departures);
  return solution;
}

OfflineSolution solve_offline_exact(const OfflineProblem& problem,
                                    std::uint64_t max_nodes) {
  const std::size_t n = problem.packets.size();
  std::vector<std::vector<TimePoint>> candidates(n);
  std::uint64_t leaves = 1;
  for (std::size_t i = 0; i < n; ++i) {
    candidates[i] = candidate_departures(problem, problem.packets[i]);
    if (leaves > max_nodes / std::max<std::size_t>(candidates[i].size(), 1)) {
      throw std::invalid_argument(
          "solve_offline_exact: instance too large for exact search");
    }
    leaves *= candidates[i].size();
  }

  OfflineSolution best;
  best.tail_energy = kTimeInfinity;
  std::vector<TimePoint> assignment(n, 0.0);
  std::uint64_t nodes = 0;

  // DFS over the candidate grid. Evaluation happens at the leaves; the
  // delay-cost budget prunes internal nodes (cost only grows as more
  // packets are delayed, and each packet's minimum cost is at its first
  // candidate).
  const std::function<void(std::size_t, double)> dfs =
      [&](std::size_t index, double cost_so_far) {
        ++nodes;
        if (cost_so_far > problem.delay_cost_budget + 1e-12) return;
        if (index == n) {
          auto [energy, starts] = score(problem, assignment);
          const double cost = delay_cost(problem, starts);
          if (cost > problem.delay_cost_budget + 1e-9) return;
          if (energy < best.tail_energy - 1e-12) {
            best.tail_energy = energy;
            best.departures = assignment;
            best.total_delay_cost = cost;
          }
          return;
        }
        const QueuedPacket& p = problem.packets[index];
        for (const TimePoint t : candidates[index]) {
          assignment[index] = t;
          const double marginal =
              p.profile->cost(t - p.packet.arrival, p.packet.deadline);
          dfs(index + 1, cost_so_far + marginal);
        }
      };
  dfs(0, 0.0);

  if (best.departures.empty() && n > 0) {
    throw std::runtime_error(
        "solve_offline_exact: no schedule satisfies the delay-cost budget");
  }
  best.optimal = true;
  best.nodes_explored = nodes;
  if (n == 0) {
    best = evaluate_offline_schedule(problem, {});
    best.optimal = true;
    best.nodes_explored = nodes;
  }
  return best;
}

OfflineSolution solve_offline_greedy(const OfflineProblem& problem) {
  std::vector<TimePoint> departures;
  departures.reserve(problem.packets.size());
  for (const QueuedPacket& p : problem.packets) {
    const TimePoint arrival = p.packet.arrival;
    const TimePoint expiry = arrival + p.packet.deadline;
    TimePoint chosen = std::min(expiry, problem.horizon);
    for (const TimePoint hb : problem.heartbeat_times) {
      if (hb >= arrival && hb <= expiry) {
        chosen = hb;  // the first train in the window
        break;
      }
    }
    departures.push_back(std::max(chosen, arrival));
  }
  OfflineSolution solution =
      evaluate_offline_schedule(problem, std::move(departures));
  solution.optimal = false;
  return solution;
}

}  // namespace etrain::core
