#include "core/policy_registry.h"

#include <cstdlib>
#include <stdexcept>

namespace etrain::core {

double PolicyParams::get(const std::string& key, double fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool PolicyParams::has(const std::string& key) const {
  consumed_.insert(key);
  return values_.count(key) > 0;
}

std::vector<std::string> PolicyParams::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) == 0) out.push_back(key);
  }
  return out;
}

void PolicyRegistry::register_policy(const std::string& name,
                                     const std::string& help,
                                     Factory factory) {
  if (name.empty() || name.find(':') != std::string::npos ||
      name.find(',') != std::string::npos ||
      name.find('=') != std::string::npos) {
    throw std::invalid_argument("PolicyRegistry: invalid policy name '" +
                                name + "'");
  }
  if (!factory) {
    throw std::invalid_argument("PolicyRegistry: null factory for '" + name +
                                "'");
  }
  if (!entries_.emplace(name, Entry{help, std::move(factory)}).second) {
    throw std::invalid_argument("PolicyRegistry: duplicate policy '" + name +
                                "'");
  }
}

bool PolicyRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const std::string& PolicyRegistry::help(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("PolicyRegistry: unknown policy '" + name +
                                "'");
  }
  return it->second.help;
}

std::string PolicyRegistry::parse_spec(const std::string& spec,
                                       PolicyParams* params) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  if (name.empty()) {
    throw std::invalid_argument("policy spec '" + spec +
                                "': missing policy name");
  }
  std::map<std::string, double> values;
  if (colon != std::string::npos) {
    std::string tail = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= tail.size()) {
      const std::size_t comma = tail.find(',', pos);
      const std::string item =
          tail.substr(pos, comma == std::string::npos ? comma : comma - pos);
      pos = comma == std::string::npos ? tail.size() + 1 : comma + 1;
      if (item.empty()) {
        throw std::invalid_argument("policy spec '" + spec +
                                    "': empty knob assignment");
      }
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
        throw std::invalid_argument("policy spec '" + spec + "': knob '" +
                                    item + "' is not of the form key=value");
      }
      const std::string key = item.substr(0, eq);
      const std::string value_text = item.substr(eq + 1);
      char* end = nullptr;
      const double value = std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        throw std::invalid_argument("policy spec '" + spec + "': knob '" +
                                    key + "' has non-numeric value '" +
                                    value_text + "'");
      }
      if (!values.emplace(key, value).second) {
        throw std::invalid_argument("policy spec '" + spec +
                                    "': duplicate knob '" + key + "'");
      }
    }
  }
  if (params != nullptr) *params = PolicyParams(std::move(values));
  return name;
}

std::unique_ptr<SchedulingPolicy> PolicyRegistry::make(
    const std::string& spec) const {
  PolicyParams params;
  const std::string name = parse_spec(spec, &params);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& n : names()) {
      known += known.empty() ? n : ", " + n;
    }
    throw std::invalid_argument("unknown policy '" + name + "' (known: " +
                                known + ")");
  }
  auto policy = it->second.factory(params);
  const auto leftover = params.unconsumed();
  if (!leftover.empty()) {
    std::string text;
    for (const auto& k : leftover) text += text.empty() ? k : ", " + k;
    throw std::invalid_argument("policy '" + name + "': unknown knob(s) " +
                                text + " — " + it->second.help);
  }
  return policy;
}

}  // namespace etrain::core
