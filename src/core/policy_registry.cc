#include "core/policy_registry.h"

#include <stdexcept>

#include "common/spec.h"

namespace etrain::core {

double PolicyParams::get(const std::string& key, double fallback) const {
  consumed_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool PolicyParams::has(const std::string& key) const {
  consumed_.insert(key);
  return values_.count(key) > 0;
}

std::vector<std::string> PolicyParams::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) == 0) out.push_back(key);
  }
  return out;
}

void PolicyRegistry::insert_entry(const std::string& name, Entry entry) {
  if (!common::valid_spec_name(name)) {
    throw std::invalid_argument("PolicyRegistry: invalid policy name '" +
                                name + "'");
  }
  if (!entry.factory && !entry.raw_factory) {
    throw std::invalid_argument("PolicyRegistry: null factory for '" + name +
                                "'");
  }
  if (!entries_.emplace(name, std::move(entry)).second) {
    throw std::invalid_argument("PolicyRegistry: duplicate policy '" + name +
                                "'");
  }
}

void PolicyRegistry::register_policy(const std::string& name,
                                     const std::string& help,
                                     Factory factory) {
  insert_entry(name, Entry{help, std::move(factory), nullptr});
}

void PolicyRegistry::register_policy_raw(const std::string& name,
                                         const std::string& help,
                                         RawFactory factory) {
  insert_entry(name, Entry{help, nullptr, std::move(factory)});
}

bool PolicyRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> PolicyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const std::string& PolicyRegistry::help(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("PolicyRegistry: unknown policy '" + name +
                                "'");
  }
  return it->second.help;
}

std::string PolicyRegistry::parse_spec(const std::string& spec,
                                       PolicyParams* params) {
  common::ParsedSpec parsed =
      common::parse_spec(spec, "policy", /*allow_flags=*/false);
  if (params != nullptr) *params = PolicyParams(std::move(parsed.knobs));
  return parsed.name;
}

std::unique_ptr<SchedulingPolicy> PolicyRegistry::make(
    const std::string& spec) const {
  // Raw-tail entries own everything after "name:" — the tail is not a knob
  // list (the select layer nests full policy specs in it), so the name is
  // resolved before the grammar is applied.
  const auto colon = spec.find(':');
  const std::string raw_name = spec.substr(0, colon);
  if (raw_name.empty()) {
    throw std::invalid_argument("policy spec '" + spec +
                                "': missing policy name");
  }
  if (const auto raw_it = entries_.find(raw_name);
      raw_it != entries_.end() && raw_it->second.raw_factory) {
    const std::string tail =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    return raw_it->second.raw_factory(tail, *this);
  }

  PolicyParams params;
  const std::string name = parse_spec(spec, &params);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& n : names()) {
      known += known.empty() ? n : ", " + n;
    }
    throw std::invalid_argument("unknown policy '" + name + "' (known: " +
                                known + ")");
  }
  auto policy = it->second.factory(params);
  const auto leftover = params.unconsumed();
  if (!leftover.empty()) {
    std::string text;
    for (const auto& k : leftover) text += text.empty() ? k : ", " + k;
    throw std::invalid_argument("policy '" + name + "': unknown knob(s) " +
                                text + " — " + it->second.help);
  }
  return policy;
}

}  // namespace etrain::core
