#include "core/etrain_scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace etrain::core {

EtrainScheduler::EtrainScheduler(EtrainConfig config) : config_(config) {
  if (config_.theta < 0.0) {
    throw std::invalid_argument("EtrainScheduler: negative theta");
  }
  if (config_.k == 0) {
    throw std::invalid_argument("EtrainScheduler: k must be >= 1");
  }
}

void EtrainScheduler::attach_observability(obs::TraceSink* trace,
                                           obs::Registry* registry) {
  trace_ = trace;
  counting_ = registry != nullptr;
  if (registry == nullptr) {
    stats_ = Stats{};
    return;
  }
  stats_.slots = &registry->counter("scheduler.slots");
  stats_.gate_opens = &registry->counter("scheduler.gate_opens");
  stats_.gate_heartbeat = &registry->counter("scheduler.gate_heartbeat");
  stats_.gate_drip = &registry->counter("scheduler.gate_drip");
  stats_.drip_deferrals = &registry->counter("scheduler.drip_deferrals");
  stats_.channel_holds = &registry->counter("scheduler.channel_holds");
  stats_.packets_piggybacked =
      &registry->counter("scheduler.packets_piggybacked");
  stats_.packets_dripped = &registry->counter("scheduler.packets_dripped");
  stats_.queue_cost = &registry->histogram(
      "scheduler.queue_cost",
      {0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0});
}

std::vector<Selection> EtrainScheduler::select(const SlotContext& ctx,
                                               const WaitingQueues& queues) {
  std::vector<Selection> chosen;
  if (queues.empty()) return chosen;

  const TimePoint t = ctx.slot_start;
  const TimePoint next_slot = t + ctx.slot_length;

  // Line 1: P(t) from Eq. (6).
  const double total_cost = queues.instantaneous_cost(t);
  if (counting_) {
    stats_.slots->increment();
    stats_.queue_cost->add(total_cost);
  }

  // Line 3: gate on the cost bound or a departing train.
  if (total_cost < config_.theta && !ctx.heartbeat_now) return chosen;

  // Deferral to an imminent train: when the gate opened on cost alone but a
  // heartbeat departs soon, waiting is cheaper — the packets ride that tail
  // for free instead of paying a fresh one now.
  if (!ctx.heartbeat_now && config_.drip_defer_window > 0.0) {
    const TimePoint next_train = ctx.next_heartbeat();
    if (next_train - t <= config_.drip_defer_window) {
      if (counting_) stats_.drip_deferrals->increment();
      return chosen;
    }
  }

  // Channel-aware drips (future-work variant): a forced off-train send
  // prefers a good channel, since its transmission time — unlike a
  // piggybacked one — buys no shared tail.
  if (!ctx.heartbeat_now && config_.channel_aware &&
      total_cost < config_.panic_factor * config_.theta &&
      ctx.bandwidth_long_term > 0.0 &&
      ctx.bandwidth_estimate <
          config_.channel_threshold * ctx.bandwidth_long_term) {
    if (counting_) stats_.channel_holds->increment();
    return chosen;
  }

  ETRAIN_TRACE(trace_, obs::TraceEvent::gate_open(t, ctx.heartbeat_now,
                                                  total_cost, config_.theta));
  if (counting_) {
    stats_.gate_opens->increment();
    (ctx.heartbeat_now ? stats_.gate_heartbeat : stats_.gate_drip)
        ->increment();
  }

  // Lines 4-8: K(t) modulation.
  const std::size_t k_limit = ctx.heartbeat_now ? config_.k : 1;

  // Greedy subgradient iterations (lines 9-13). Track, per app, the
  // speculative cost already claimed by Q*_i(t, r).
  const int apps = queues.app_count();
  std::vector<double> selected_cost(apps, 0.0);  // sum over Q*_i of varphi_q
  std::vector<double> queue_spec_cost(apps, 0.0);  // \bar P_i(t)
  for (int i = 0; i < apps; ++i) {
    queue_spec_cost[i] = queues.app_speculative_cost(i, next_slot);
  }
  std::unordered_set<PacketId> taken;

  while (chosen.size() < k_limit && chosen.size() < queues.total_size()) {
    double best_gain = -std::numeric_limits<double>::infinity();
    int best_app = -1;
    PacketId best_packet = -1;
    for (int i = 0; i < apps; ++i) {
      const double remaining = queue_spec_cost[i] - selected_cost[i];
      for (const QueuedPacket& p : queues.queue(i)) {
        if (taken.contains(p.packet.id)) continue;
        const double phi = p.speculative_cost(next_slot);
        // Off-train slots are a relief valve, not a free ride: a packet
        // whose speculative cost is still zero (e.g. Mail before its
        // deadline) gains nothing from leaving now and would pay a fresh
        // tail, so it keeps waiting for the next train. On heartbeat slots
        // the tail is already paid and everything may board.
        if (!ctx.heartbeat_now && phi <= 0.0) continue;
        // Eq. (9): marginal improvement of the drift objective.
        const double gain = remaining * phi - phi * phi / 2.0;
        // Deterministic tie-break on (gain, older arrival, id).
        if (gain > best_gain + 1e-12 ||
            (gain > best_gain - 1e-12 && best_packet >= 0 &&
             p.packet.id < best_packet)) {
          best_gain = gain;
          best_app = i;
          best_packet = p.packet.id;
        }
      }
    }
    if (best_app < 0) break;
    const auto& q = queues.queue(best_app);
    const auto it =
        std::find_if(q.begin(), q.end(), [best_packet](const QueuedPacket& p) {
          return p.packet.id == best_packet;
        });
    selected_cost[best_app] += it->speculative_cost(next_slot);
    taken.insert(best_packet);
    chosen.push_back(Selection{best_app, best_packet});
    ETRAIN_TRACE(trace_, obs::TraceEvent::packet_select(
                             t, best_app, best_packet, best_gain,
                             it->speculative_cost(next_slot)));
  }
  if (counting_ && !chosen.empty()) {
    (ctx.heartbeat_now ? stats_.packets_piggybacked : stats_.packets_dripped)
        ->increment(chosen.size());
  }
  return chosen;
}

}  // namespace etrain::core
