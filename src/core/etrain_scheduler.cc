#include "core/etrain_scheduler.h"

#include <stdexcept>

namespace etrain::core {

EtrainScheduler::EtrainScheduler(EtrainConfig config) : config_(config) {
  if (config_.theta < 0.0) {
    throw std::invalid_argument("EtrainScheduler: negative theta");
  }
  if (config_.k == 0) {
    throw std::invalid_argument("EtrainScheduler: k must be >= 1");
  }
}

void EtrainScheduler::attach_observability(obs::TraceSink* trace,
                                           obs::Registry* registry) {
  trace_ = trace;
  counting_ = registry != nullptr;
  if (registry == nullptr) {
    stats_ = Stats{};
    return;
  }
  stats_.slots = &registry->counter("scheduler.slots");
  stats_.gate_opens = &registry->counter("scheduler.gate_opens");
  stats_.gate_heartbeat = &registry->counter("scheduler.gate_heartbeat");
  stats_.gate_drip = &registry->counter("scheduler.gate_drip");
  stats_.drip_deferrals = &registry->counter("scheduler.drip_deferrals");
  stats_.channel_holds = &registry->counter("scheduler.channel_holds");
  stats_.packets_piggybacked =
      &registry->counter("scheduler.packets_piggybacked");
  stats_.packets_dripped = &registry->counter("scheduler.packets_dripped");
  stats_.queue_cost = &registry->histogram(
      "scheduler.queue_cost",
      {0.01, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0});
}

std::vector<Selection> EtrainScheduler::select(const SlotContext& ctx,
                                               const WaitingQueues& queues) {
  std::vector<Selection> chosen;
  select_into(ctx, queues, chosen);
  return chosen;
}

void EtrainScheduler::select_into(const SlotContext& ctx,
                                  const WaitingQueues& queues,
                                  std::vector<Selection>& out) {
  out.clear();
  if (queues.empty()) return;

  const TimePoint t = ctx.slot_start;
  const TimePoint next_slot = t + ctx.slot_length;

  // Line 1: P(t) from Eq. (6).
  const double total_cost = queues.instantaneous_cost(t);
  if (counting_) {
    stats_.slots->increment();
    stats_.queue_cost->add(total_cost);
  }

  // Line 3: gate on the cost bound or a departing train.
  if (total_cost < config_.theta && !ctx.heartbeat_now) return;

  // Deferral to an imminent train: when the gate opened on cost alone but a
  // heartbeat departs soon, waiting is cheaper — the packets ride that tail
  // for free instead of paying a fresh one now.
  if (!ctx.heartbeat_now && config_.drip_defer_window > 0.0) {
    const TimePoint next_train = ctx.next_heartbeat();
    if (next_train - t <= config_.drip_defer_window) {
      if (counting_) stats_.drip_deferrals->increment();
      return;
    }
  }

  // Channel-aware drips (future-work variant): a forced off-train send
  // prefers a good channel, since its transmission time — unlike a
  // piggybacked one — buys no shared tail.
  if (!ctx.heartbeat_now && config_.channel_aware &&
      total_cost < config_.panic_factor * config_.theta &&
      ctx.bandwidth_long_term > 0.0 &&
      ctx.bandwidth_estimate <
          config_.channel_threshold * ctx.bandwidth_long_term) {
    if (counting_) stats_.channel_holds->increment();
    return;
  }

  ETRAIN_TRACE(trace_, obs::TraceEvent::gate_open(t, ctx.heartbeat_now,
                                                  total_cost, config_.theta));
  if (counting_) {
    stats_.gate_opens->increment();
    (ctx.heartbeat_now ? stats_.gate_heartbeat : stats_.gate_drip)
        ->increment();
  }

  // Lines 4-8: K(t) modulation.
  const std::size_t k_limit = ctx.heartbeat_now ? config_.k : 1;

  // Snapshot every packet's speculative cost once for this slot. The array
  // is filled in app-major FIFO order — the exact order the naive
  // formulation both summed \bar P_i(t) and scanned candidates — so the
  // float accumulation, and therefore every epsilon tie-break downstream,
  // is bit-identical to the reference loop.
  const int apps = queues.app_count();
  candidates_.clear();
  app_begin_.resize(apps + 1);
  selected_cost_.assign(apps, 0.0);
  queue_spec_cost_.resize(apps);
  for (int i = 0; i < apps; ++i) {
    app_begin_[i] = candidates_.size();
    double sum = 0.0;  // \bar P_i(t), accumulated like app_speculative_cost
    for (const QueuedPacket& p : queues.queue(i)) {
      const double phi = p.speculative_cost(next_slot);
      sum += phi;
      candidates_.push_back(
          Candidate{phi, p.packet.arrival, p.packet.id, false});
    }
    queue_spec_cost_[i] = sum;
  }
  app_begin_[apps] = candidates_.size();

  // Greedy subgradient iterations (lines 9-13): index-based scans over the
  // candidate array; per-app remaining cost maintained incrementally.
  const std::size_t total = candidates_.size();
  std::size_t picked = 0;
  while (picked < k_limit && picked < total) {
    double best_gain = -std::numeric_limits<double>::infinity();
    int best_app = -1;
    std::ptrdiff_t best_idx = -1;
    for (int i = 0; i < apps; ++i) {
      const double remaining = queue_spec_cost_[i] - selected_cost_[i];
      const std::size_t end = app_begin_[i + 1];
      for (std::size_t c = app_begin_[i]; c < end; ++c) {
        const Candidate& cand = candidates_[c];
        if (cand.taken) continue;
        const double phi = cand.phi;
        // Off-train slots are a relief valve, not a free ride: a packet
        // whose speculative cost is still zero (e.g. Mail before its
        // deadline) gains nothing from leaving now and would pay a fresh
        // tail, so it keeps waiting for the next train. On heartbeat slots
        // the tail is already paid and everything may board.
        if (!ctx.heartbeat_now && phi <= 0.0) continue;
        // Eq. (9): marginal improvement of the drift objective.
        const double gain = remaining * phi - phi * phi / 2.0;
        // Deterministic ordering: gain descending, then arrival ascending,
        // then id ascending. Gains within 1e-12 of the incumbent count as
        // tied and fall through to the arrival/id keys.
        if (gain > best_gain + 1e-12 ||
            (best_idx >= 0 && gain > best_gain - 1e-12 &&
             (cand.arrival < candidates_[best_idx].arrival ||
              (cand.arrival == candidates_[best_idx].arrival &&
               cand.id < candidates_[best_idx].id)))) {
          best_gain = gain;
          best_app = i;
          best_idx = static_cast<std::ptrdiff_t>(c);
        }
      }
    }
    if (best_app < 0) break;
    Candidate& won = candidates_[best_idx];
    won.taken = true;
    selected_cost_[best_app] += won.phi;
    ++picked;
    out.push_back(Selection{best_app, won.id});
    ETRAIN_TRACE(trace_, obs::TraceEvent::packet_select(t, best_app, won.id,
                                                        best_gain, won.phi));
  }
  if (counting_ && picked > 0) {
    (ctx.heartbeat_now ? stats_.packets_piggybacked : stats_.packets_dripped)
        ->increment(picked);
  }
}

}  // namespace etrain::core
