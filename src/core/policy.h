// The scheduling-policy contract all algorithms under evaluation implement.
//
// The slotted simulator (and the full Android-substrate system) calls
// select() once per slot. The policy examines the waiting queues and the
// slot context, and returns the subset Q*(t) to inject into the FIFO
// transmission queue. Policies never touch heartbeats: per the paper, "all
// three scheduling algorithms only make scheduling decisions for data
// packets and do not interfere original heartbeat transmission".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/queues.h"

namespace etrain::core {

/// Interface slot indices shared by Selection / SlotContext / the
/// harnesses. 0 is always the cellular uplink, 1 the (optional) Wi-Fi
/// link; 2+ are the scenario's extra interfaces in declaration order (the
/// harness announces their names via bind_interfaces).
inline constexpr int kInterfaceCellular = 0;
inline constexpr int kInterfaceWifi = 1;
inline constexpr int kInterfaceExtraBase = 2;

/// A packet chosen for immediate transmission.
struct Selection {
  CargoAppId app = 0;
  PacketId packet = -1;
  /// Interface slot to route this packet over (kInterfaceCellular by
  /// default). A selection naming an interface that is absent or
  /// unavailable this slot falls back to the cellular uplink.
  int interface = kInterfaceCellular;
};

/// Everything a policy may observe at the start of a slot.
struct SlotContext {
  /// Slot start time t.
  TimePoint slot_start = 0.0;
  /// Slot length (1 s for eTrain/PerES, 60 s for eTime per the paper).
  Duration slot_length = 1.0;

  /// True when at least one train-app heartbeat departs in this slot
  /// (t = t_s(h) for some h in H).
  bool heartbeat_now = false;

  /// Predicted departure times of upcoming heartbeats (absolute, sorted
  /// ascending). Produced by the HeartbeatMonitor; empty when no train app
  /// is running.
  std::vector<TimePoint> upcoming_heartbeats;

  /// Noisy short-term uplink bandwidth estimate (EWMA of imperfect
  /// measurements). eTrain deliberately ignores this — channel
  /// obliviousness is one of its design points; PerES/eTime rely on it.
  BytesPerSecond bandwidth_estimate = 0.0;

  /// Long-run average bandwidth estimate.
  BytesPerSecond bandwidth_long_term = 0.0;

  /// Multi-interface extension: true when a Wi-Fi network is associated
  /// this slot. Cellular-only scenarios always report false.
  bool wifi_available = false;

  /// Availability bitmask of the extra interfaces (bit i-kInterfaceExtraBase
  /// for interface slot i). An extra radio counts as available while it is
  /// "hot" — inside the tail of its own recent activity (e.g. a LoRa link
  /// heartbeat), when cargo can ride along for marginal energy.
  std::uint32_t extra_available = 0;

  /// Uniform availability check across interface slots.
  bool interface_available(int interface) const {
    if (interface == kInterfaceCellular) return true;
    if (interface == kInterfaceWifi) return wifi_available;
    const int bit = interface - kInterfaceExtraBase;
    if (bit < 0 || bit >= 32) return false;
    return (extra_available >> bit) & 1u;
  }

  /// Time of the next predicted heartbeat strictly after slot_start;
  /// +inf when unknown or no trains run.
  TimePoint next_heartbeat() const {
    for (const TimePoint t : upcoming_heartbeats) {
      if (t > slot_start) return t;
    }
    return kTimeInfinity;
  }
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Chooses Q*(t). Must only return packets currently present in `queues`,
  /// each at most once; the caller removes them.
  virtual std::vector<Selection> select(const SlotContext& ctx,
                                        const WaitingQueues& queues) = 0;

  /// Allocation-aware variant: fills `out` (cleared first) with the same
  /// Q*(t) select() would return. The slotted harness passes the same
  /// buffer every slot, so a policy that overrides this can run its
  /// steady-state hot path without touching the heap (EtrainScheduler
  /// does). The default adapts select() and inherits its allocations.
  virtual void select_into(const SlotContext& ctx, const WaitingQueues& queues,
                           std::vector<Selection>& out) {
    out = select(ctx, queues);
  }

  /// Display name for tables.
  virtual std::string name() const = 0;

  /// Slot length this policy is designed for; the harness honours it.
  virtual Duration preferred_slot_length() const { return 1.0; }

  /// Clears any cross-slot state before a fresh run.
  virtual void reset() {}

  /// Announces the run's interface layout: names[i] is the interface bound
  /// to Selection slot i (index 0 "cellular", 1 "wifi" when present, 2+ the
  /// scenario's extras). Called by the harness after reset(), before the
  /// first select(). Policies that route by interface *name* (SelectPolicy)
  /// resolve their preferences here and throw std::invalid_argument for a
  /// name the run does not provide; the default ignores the layout.
  virtual void bind_interfaces(const std::vector<std::string>& names) {
    (void)names;
  }
};

}  // namespace etrain::core
