// Per-cargo-app waiting queues Q_i and their cost aggregates (Sec. IV).
//
// Every packet a cargo app generates is first enqueued into its app's
// waiting queue. The scheduler inspects the queues each slot, computes the
// instantaneous delay cost P(t) and the speculative (next-slot) costs, and
// moves a selected subset Q*(t) into the FIFO transmission queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cost_profile.h"
#include "core/packet.h"

namespace etrain::core {

/// A packet waiting in Q_i together with its app's delay-cost profile.
struct QueuedPacket {
  Packet packet;
  const CostProfile* profile = nullptr;

  /// phi_u(t - t_a(u)): the packet's current delay cost at time t.
  double cost_at(TimePoint t) const {
    return profile->cost(t - packet.arrival, packet.deadline);
  }

  /// The "speculative cost" varphi_u(t): the cost the packet will have at
  /// the beginning of the next slot if it is NOT selected now.
  double speculative_cost(TimePoint next_slot_start) const {
    return profile->cost(next_slot_start - packet.arrival, packet.deadline);
  }
};

/// The set {Q_1 .. Q_M} of per-app waiting queues.
class WaitingQueues {
 public:
  explicit WaitingQueues(int app_count);

  int app_count() const { return static_cast<int>(queues_.size()); }

  /// Enqueues into Q_{p.packet.app}; app index must be in range.
  void enqueue(QueuedPacket p);

  const std::vector<QueuedPacket>& queue(CargoAppId app) const;

  bool empty() const;
  std::size_t total_size() const;
  Bytes total_bytes() const;

  /// P_i(t) = sum over Q_i of phi_u(t - t_a(u)).
  double app_cost(CargoAppId app, TimePoint t) const;

  /// P(t) = sum over all apps of P_i(t) (Eq. 6).
  ///
  /// Incrementally maintained: the gate check runs every slot while the
  /// queue contents change only on arrivals/selections, so the full sum
  /// (one virtual CostProfile::cost call per packet) is recomputed only at
  /// an *anchor* — a structural change or an affine breakpoint (deadline
  /// crossing, jump) — and in between P(t) is extrapolated in O(1) as
  /// anchor_sum + slope_sum * (t - anchor_t) via the profiles'
  /// affine_segment contract. Packets whose profile does not implement
  /// affine_segment disable the cache (every call recomputes). The
  /// extrapolated value may differ from the recomputed sum by float
  /// rounding only; core_queues_test pins the invariant at 1e-9.
  /// Not thread-safe (the cache is mutable state); each simulation replica
  /// owns its queues, which the parallel engine already guarantees.
  double instantaneous_cost(TimePoint t) const;

  /// Reference O(n) recomputation of P(t), bypassing the incremental
  /// cache — the oracle the invariant tests compare against.
  double recompute_instantaneous_cost(TimePoint t) const;

  /// \bar P_i(t) = sum over Q_i of the speculative costs varphi_u(t).
  double app_speculative_cost(CargoAppId app,
                              TimePoint next_slot_start) const;

  /// Removes and returns the packet with the given id from app's queue.
  /// Throws std::invalid_argument if absent.
  QueuedPacket remove(CargoAppId app, PacketId id);

  /// Drains every queue (order: app-major, FIFO within app).
  std::vector<QueuedPacket> drain_all();

  /// Oldest arrival among queued packets of an app (for FIFO heuristics);
  /// +inf when the queue is empty.
  TimePoint oldest_arrival(CargoAppId app) const;

 private:
  /// Incremental P(t) state. `version` ties the cache to the structural
  /// state of the queues; any enqueue/remove/drain invalidates by bumping
  /// version_. Valid while version matches, every packet's profile is
  /// affine on the window, and t lies in [anchor, valid_until).
  struct CostCache {
    std::uint64_t version = 0;
    TimePoint anchor = 0.0;
    double anchor_sum = 0.0;
    double slope_sum = 0.0;
    TimePoint valid_until = 0.0;
    bool affine = false;
  };

  std::vector<std::vector<QueuedPacket>> queues_;
  std::uint64_t version_ = 1;
  mutable CostCache cost_cache_;
};

}  // namespace etrain::core
