// Per-cargo-app waiting queues Q_i and their cost aggregates (Sec. IV).
//
// Every packet a cargo app generates is first enqueued into its app's
// waiting queue. The scheduler inspects the queues each slot, computes the
// instantaneous delay cost P(t) and the speculative (next-slot) costs, and
// moves a selected subset Q*(t) into the FIFO transmission queue.
#pragma once

#include <cstddef>
#include <vector>

#include "core/cost_profile.h"
#include "core/packet.h"

namespace etrain::core {

/// A packet waiting in Q_i together with its app's delay-cost profile.
struct QueuedPacket {
  Packet packet;
  const CostProfile* profile = nullptr;

  /// phi_u(t - t_a(u)): the packet's current delay cost at time t.
  double cost_at(TimePoint t) const {
    return profile->cost(t - packet.arrival, packet.deadline);
  }

  /// The "speculative cost" varphi_u(t): the cost the packet will have at
  /// the beginning of the next slot if it is NOT selected now.
  double speculative_cost(TimePoint next_slot_start) const {
    return profile->cost(next_slot_start - packet.arrival, packet.deadline);
  }
};

/// The set {Q_1 .. Q_M} of per-app waiting queues.
class WaitingQueues {
 public:
  explicit WaitingQueues(int app_count);

  int app_count() const { return static_cast<int>(queues_.size()); }

  /// Enqueues into Q_{p.packet.app}; app index must be in range.
  void enqueue(QueuedPacket p);

  const std::vector<QueuedPacket>& queue(CargoAppId app) const;

  bool empty() const;
  std::size_t total_size() const;
  Bytes total_bytes() const;

  /// P_i(t) = sum over Q_i of phi_u(t - t_a(u)).
  double app_cost(CargoAppId app, TimePoint t) const;

  /// P(t) = sum over all apps of P_i(t) (Eq. 6).
  double instantaneous_cost(TimePoint t) const;

  /// \bar P_i(t) = sum over Q_i of the speculative costs varphi_u(t).
  double app_speculative_cost(CargoAppId app,
                              TimePoint next_slot_start) const;

  /// Removes and returns the packet with the given id from app's queue.
  /// Throws std::invalid_argument if absent.
  QueuedPacket remove(CargoAppId app, PacketId id);

  /// Drains every queue (order: app-major, FIFO within app).
  std::vector<QueuedPacket> drain_all();

  /// Oldest arrival among queued packets of an app (for FIFO heuristics);
  /// +inf when the queue is empty.
  TimePoint oldest_arrival(CargoAppId app) const;

 private:
  std::vector<std::vector<QueuedPacket>> queues_;
};

}  // namespace etrain::core
