#include "core/cost_profile.h"

#include <algorithm>
#include <cassert>

namespace etrain::core {

double MailCostProfile::cost(Duration delay, Duration deadline) const {
  assert(deadline > 0.0);
  if (delay <= deadline) return 0.0;
  return delay / deadline - 1.0;
}

double WeiboCostProfile::cost(Duration delay, Duration deadline) const {
  assert(deadline > 0.0);
  if (delay <= 0.0) return 0.0;
  if (delay <= deadline) return delay / deadline;
  return 2.0;
}

double CloudCostProfile::cost(Duration delay, Duration deadline) const {
  assert(deadline > 0.0);
  if (delay <= 0.0) return 0.0;
  if (delay <= deadline) return delay / deadline;
  return 3.0 * (delay / deadline) - 2.0;
}

const CostProfile& mail_cost_profile() {
  static const MailCostProfile profile;
  return profile;
}

const CostProfile& weibo_cost_profile() {
  static const WeiboCostProfile profile;
  return profile;
}

const CostProfile& cloud_cost_profile() {
  static const CloudCostProfile profile;
  return profile;
}

const CostProfile* cost_profile_by_name(const std::string& name) {
  for (const CostProfile* p :
       {static_cast<const CostProfile*>(&mail_cost_profile()),
        static_cast<const CostProfile*>(&weibo_cost_profile()),
        static_cast<const CostProfile*>(&cloud_cost_profile())}) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

}  // namespace etrain::core
