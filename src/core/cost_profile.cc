#include "core/cost_profile.h"

#include <algorithm>
#include <cassert>

namespace etrain::core {

double MailCostProfile::cost(Duration delay, Duration deadline) const {
  assert(deadline > 0.0);
  if (delay <= deadline) return 0.0;
  return delay / deadline - 1.0;
}

bool MailCostProfile::affine_segment(Duration delay, Duration deadline,
                                     double* slope, Duration* span) const {
  assert(deadline > 0.0);
  if (delay < deadline) {
    *slope = 0.0;
    *span = deadline - delay;
  } else {
    // Continuous at the deadline: cost(deadline) = 0, then d/deadline - 1.
    *slope = 1.0 / deadline;
    *span = kTimeInfinity;
  }
  return true;
}

double WeiboCostProfile::cost(Duration delay, Duration deadline) const {
  assert(deadline > 0.0);
  if (delay <= 0.0) return 0.0;
  if (delay <= deadline) return delay / deadline;
  return 2.0;
}

bool WeiboCostProfile::affine_segment(Duration delay, Duration deadline,
                                      double* slope, Duration* span) const {
  assert(deadline > 0.0);
  if (delay < 0.0) {
    *slope = 0.0;
    *span = -delay;
  } else if (delay < deadline) {
    // The ramp, ending at the deadline JUMP (1 -> 2): the span must stop
    // there so the cache re-anchors on the far side.
    *slope = 1.0 / deadline;
    *span = deadline - delay;
  } else if (delay == deadline) {
    // On the discontinuity itself: cost here is 1 (the ramp endpoint) but
    // every later instant costs 2, so no right-open affine window starts
    // at this point. Refusing forces a recompute-per-query anchor until
    // the queue moves past it.
    return false;
  } else {
    *slope = 0.0;  // saturated at 2
    *span = kTimeInfinity;
  }
  return true;
}

double CloudCostProfile::cost(Duration delay, Duration deadline) const {
  assert(deadline > 0.0);
  if (delay <= 0.0) return 0.0;
  if (delay <= deadline) return delay / deadline;
  return 3.0 * (delay / deadline) - 2.0;
}

bool CloudCostProfile::affine_segment(Duration delay, Duration deadline,
                                      double* slope, Duration* span) const {
  assert(deadline > 0.0);
  if (delay < 0.0) {
    *slope = 0.0;
    *span = -delay;
  } else if (delay < deadline) {
    *slope = 1.0 / deadline;
    *span = deadline - delay;
  } else {
    // Continuous at the deadline (both branches give 1), slope triples.
    *slope = 3.0 / deadline;
    *span = kTimeInfinity;
  }
  return true;
}

const CostProfile& mail_cost_profile() {
  static const MailCostProfile profile;
  return profile;
}

const CostProfile& weibo_cost_profile() {
  static const WeiboCostProfile profile;
  return profile;
}

const CostProfile& cloud_cost_profile() {
  static const CloudCostProfile profile;
  return profile;
}

const CostProfile* cost_profile_by_name(const std::string& name) {
  for (const CostProfile* p :
       {static_cast<const CostProfile*>(&mail_cost_profile()),
        static_cast<const CostProfile*>(&weibo_cost_profile()),
        static_cast<const CostProfile*>(&cloud_cost_profile())}) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

}  // namespace etrain::core
