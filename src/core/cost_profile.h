// Delay-cost profile functions phi_u(d) (Sec. III-B, Fig. 6).
//
// A profile maps the delay d a packet has accumulated to a scalar user-
// dissatisfaction cost. The paper evaluates three representative shapes,
// all parameterized by the packet's deadline:
//
//   f1 (eTrain Mail):  0 before the deadline, then grows linearly:
//                      f1(d) = d/deadline - 1 for d >= deadline.
//   f2 (Luna Weibo):   d/deadline before the deadline, then a constant 2.
//   f3 (eTrain Cloud): d/deadline before the deadline, then much steeper:
//                      3*(d/deadline) - 2.
//
// Profiles are small immutable value objects shared by reference; cargo
// apps attach one to every packet they generate.
#pragma once

#include <memory>
#include <string>

#include "common/time.h"
#include "core/packet.h"

namespace etrain::core {

/// Interface for delay-cost profiles. Implementations must be monotone
/// nondecreasing in delay and return 0 for d <= 0 — properties the tests
/// verify for all shipped profiles.
class CostProfile {
 public:
  virtual ~CostProfile() = default;

  /// Cost of a packet with the given (relative) deadline at delay d.
  virtual double cost(Duration delay, Duration deadline) const = 0;

  /// Optional piecewise-affine contract powering WaitingQueues' incremental
  /// cost cache. When the cost is affine in delay on [delay, delay + span) —
  /// cost(delay + x) = cost(delay) + slope * x for 0 <= x < span — fill
  /// *slope and *span (span may be kTimeInfinity) and return true. The
  /// default returns false, which only disables incremental evaluation for
  /// packets carrying this profile, never correctness. Implementations must
  /// be conservative: end the span at (or before) the next breakpoint, jump
  /// or curvature change.
  virtual bool affine_segment(Duration delay, Duration deadline,
                              double* slope, Duration* span) const {
    (void)delay;
    (void)deadline;
    (void)slope;
    (void)span;
    return false;
  }

  /// Human-readable name for tables and logs.
  virtual std::string name() const = 0;
};

/// f1 — deadline-indifferent until violation, linear afterwards (Mail).
class MailCostProfile final : public CostProfile {
 public:
  double cost(Duration delay, Duration deadline) const override;
  bool affine_segment(Duration delay, Duration deadline, double* slope,
                      Duration* span) const override;
  std::string name() const override { return "f1-mail"; }
};

/// f2 — linear ramp to 1 at the deadline, then saturates at 2 (Weibo).
class WeiboCostProfile final : public CostProfile {
 public:
  double cost(Duration delay, Duration deadline) const override;
  bool affine_segment(Duration delay, Duration deadline, double* slope,
                      Duration* span) const override;
  std::string name() const override { return "f2-weibo"; }
};

/// f3 — linear ramp, then 3x slope after the deadline (Cloud).
class CloudCostProfile final : public CostProfile {
 public:
  double cost(Duration delay, Duration deadline) const override;
  bool affine_segment(Duration delay, Duration deadline, double* slope,
                      Duration* span) const override;
  std::string name() const override { return "f3-cloud"; }
};

/// Shared singletons (profiles are stateless).
const CostProfile& mail_cost_profile();
const CostProfile& weibo_cost_profile();
const CostProfile& cloud_cost_profile();

/// Resolves a profile by its name() — how cargo apps identify the profile
/// they register with the eTrain service over the broadcast protocol.
/// Returns nullptr for unknown names.
const CostProfile* cost_profile_by_name(const std::string& name);

}  // namespace etrain::core
