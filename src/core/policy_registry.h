// Unified policy construction: one string spec -> one SchedulingPolicy.
//
// Every CLI flag parser, figure bench and sweep used to hand-roll its own
// name -> constructor switch with its own subset of knobs. The registry
// replaces those: a policy is named once, with a factory that reads its
// knobs from a parsed parameter bag, and every entry point accepts the
// same spec grammar:
//
//   "etrain"                        defaults
//   "etrain:theta=2,k=3"            knob overrides
//   "peres:omega=0.8"               any registered policy, any knob
//
// Unknown policy names, malformed specs and unknown / unconsumed knobs
// all throw std::invalid_argument with a descriptive message — a typo'd
// knob fails loudly instead of being silently ignored.
//
// The registry itself is pure mechanism (core cannot depend on the
// baselines library); baselines::builtin_registry() returns a process-wide
// instance pre-populated with every built-in policy.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/policy.h"

namespace etrain::core {

/// Numeric knobs parsed from a spec's "k1=v1,k2=v2" tail. Factories read
/// knobs with get(); the registry rejects the spec if any knob was never
/// read (catching typos like "thta=2").
class PolicyParams {
 public:
  PolicyParams() = default;
  explicit PolicyParams(std::map<std::string, double> values)
      : values_(std::move(values)) {}

  /// The knob's value, or `fallback` when absent. Marks the knob consumed.
  double get(const std::string& key, double fallback) const;
  /// True when the spec set this knob. Marks it consumed.
  bool has(const std::string& key) const;

  /// Knobs present in the spec but never read by the factory.
  std::vector<std::string> unconsumed() const;
  bool empty() const { return values_.empty(); }

 private:
  std::map<std::string, double> values_;
  mutable std::set<std::string> consumed_;
};

class PolicyRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<SchedulingPolicy>(const PolicyParams&)>;

  /// Factory for policies whose spec tail is not a knob list: the raw text
  /// after "name:" is handed over verbatim (the composable "select:..."
  /// interface-selection layer embeds full policy specs in its tail).
  using RawFactory = std::function<std::unique_ptr<SchedulingPolicy>(
      const std::string& tail, const PolicyRegistry& registry)>;

  /// Registers a factory under `name` (lowercase by convention) with a
  /// one-line `help` text listing its knobs. Throws on duplicates.
  void register_policy(const std::string& name, const std::string& help,
                       Factory factory);

  /// Registers a raw-tail factory: make("name:ANYTHING") calls it with
  /// "ANYTHING" unparsed (plus the registry itself, so the factory can
  /// build nested policies). Shares the name space with register_policy.
  void register_policy_raw(const std::string& name, const std::string& help,
                           RawFactory factory);

  bool contains(const std::string& name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;
  /// The help line for `name`; throws on unknown names.
  const std::string& help(const std::string& name) const;

  /// Builds a policy from a spec ("name" or "name:knob=v,knob=v").
  /// Throws std::invalid_argument for unknown names, malformed specs and
  /// unknown (unconsumed) knobs.
  std::unique_ptr<SchedulingPolicy> make(const std::string& spec) const;

  /// Splits a spec into its name and parameter bag without building
  /// anything (exposed for flag parsers that need the name early).
  static std::string parse_spec(const std::string& spec, PolicyParams* params);

 private:
  struct Entry {
    std::string help;
    Factory factory;        ///< exactly one of factory / raw_factory is set
    RawFactory raw_factory;
  };
  std::map<std::string, Entry> entries_;

  void insert_entry(const std::string& name, Entry entry);
};

}  // namespace etrain::core
