// eTrain's online transmission strategy — Algorithm 1 of the paper.
//
// Lyapunov-drift greedy selection:
//   * compute the instantaneous cost P(t) of all waiting queues;
//   * if P(t) >= Theta, or a heartbeat departs this slot, open the gate:
//       K(t) = k on heartbeat slots (pile cargo onto the train's tail),
//       K(t) = 1 otherwise (relief valve so costs cannot grow unboundedly);
//   * greedily pick up to K(t) packets, each iteration choosing the
//     (app i, packet u) maximizing the subgradient of the drift objective
//       (\bar P_i(t) - sum_{q in Q*_i} varphi_q(t)) * varphi_u(t)
//         - varphi_u(t)^2 / 2                                     (Eq. 9).
//
// eTrain is deliberately channel-oblivious: select() never reads the
// bandwidth estimate (Sec. IV discusses why prediction is impractical).
#pragma once

#include <cstddef>
#include <limits>

#include "core/policy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace etrain::core {

struct EtrainConfig {
  /// Cost threshold Theta. Below it (and with no heartbeat) nothing is
  /// scheduled; larger Theta = more batching = less energy, more delay.
  double theta = 0.2;

  /// Batch limit k on heartbeat slots. The paper sets k = infinity in the
  /// final implementation ("we set k <- inf to arbitrarily save energy");
  /// use unlimited() for that.
  std::size_t k = 20;

  /// When the cost gate opens on a non-heartbeat slot but the monitor
  /// predicts a train departing within this window, the relief valve holds
  /// its fire and lets the packets board the imminent train instead.
  /// Sec. V-1 describes exactly this: the scheduler decides "which packets
  /// should be transmitted after next heartbeat". 0 reproduces the literal
  /// Algorithm 1 pseudo-code (drip immediately whenever P(t) >= Theta);
  /// the ablation bench quantifies the difference.
  Duration drip_defer_window = 60.0;

  /// Future-work extension (Sec. IV closes with "finding efficient ways
  /// for accurate channel prediction and making use of it is part of our
  /// future work"): when enabled, relief-valve drips additionally wait for
  /// a slot whose estimated bandwidth is at least `channel_threshold` times
  /// the long-term average — unless costs have exploded past
  /// `panic_factor * theta`, which always drains. Heartbeat flushes are
  /// unaffected (their tail is already paid). Off by default: the paper's
  /// eTrain is deliberately channel-oblivious.
  bool channel_aware = false;
  double channel_threshold = 1.0;
  double panic_factor = 3.0;

  static constexpr std::size_t unlimited_k() {
    return std::numeric_limits<std::size_t>::max();
  }
};

class EtrainScheduler final : public SchedulingPolicy {
 public:
  explicit EtrainScheduler(EtrainConfig config);

  std::vector<Selection> select(const SlotContext& ctx,
                                const WaitingQueues& queues) override;

  /// The real kernel. Per slot it evaluates each packet's speculative cost
  /// exactly once (cached in a per-slot candidate array), runs the greedy
  /// rounds as index-based scans over that array, and maintains the per-app
  /// remaining cost incrementally — all in reusable member buffers, so with
  /// a warm scheduler and a reused `out` the steady state performs zero
  /// heap allocations (core_select_equivalence_test counts them).
  /// Byte-identical to the naive full-rescan formulation, tie-breaks
  /// included (same test, randomized oracle comparison).
  void select_into(const SlotContext& ctx, const WaitingQueues& queues,
                   std::vector<Selection>& out) override;

  std::string name() const override { return "eTrain"; }

  const EtrainConfig& config() const { return config_; }

  /// Attaches observability (either pointer may be null; null/null
  /// detaches). With a trace sink, every gate opening emits GateOpen{P,
  /// Theta} and every greedy pick emits PacketSelect{app, pkt, Eq. 9
  /// score}. With a registry, the scheduler maintains:
  ///   scheduler.slots / .gate_opens / .gate_heartbeat / .gate_drip
  ///   scheduler.drip_deferrals / .channel_holds
  ///   scheduler.packets_piggybacked / .packets_dripped
  ///   scheduler.queue_cost (histogram of per-slot P(t))
  /// The untraced hot path pays only a few null checks (bench_micro's
  /// overhead guard enforces <2% vs. the frozen PR-1 loop).
  void attach_observability(obs::TraceSink* trace, obs::Registry* registry);

 private:
  EtrainConfig config_;
  obs::TraceSink* trace_ = nullptr;

  /// Pre-resolved registry slots (name lookups happen once, at attach).
  struct Stats {
    obs::Counter* slots = nullptr;
    obs::Counter* gate_opens = nullptr;
    obs::Counter* gate_heartbeat = nullptr;
    obs::Counter* gate_drip = nullptr;
    obs::Counter* drip_deferrals = nullptr;
    obs::Counter* channel_holds = nullptr;
    obs::Counter* packets_piggybacked = nullptr;
    obs::Counter* packets_dripped = nullptr;
    obs::Histogram* queue_cost = nullptr;
  };
  Stats stats_;
  bool counting_ = false;

  /// Per-slot snapshot of one waiting packet: its speculative cost
  /// varphi_u(t) evaluated once (the naive loop re-evaluated the virtual
  /// call every greedy round) plus the tie-break keys.
  struct Candidate {
    double phi = 0.0;
    TimePoint arrival = 0.0;
    PacketId id = -1;
    bool taken = false;
  };

  /// Reusable scratch — cleared, never shrunk, so a warm scheduler's
  /// select_into() performs no heap allocations.
  std::vector<Candidate> candidates_;       // app-major, FIFO within app
  std::vector<std::size_t> app_begin_;      // candidates_ range per app
  std::vector<double> selected_cost_;       // sum over Q*_i of varphi_q
  std::vector<double> queue_spec_cost_;     // \bar P_i(t)
};

}  // namespace etrain::core
