// Offline tail-energy minimization (the paper's formulation (1)-(5)).
//
// With perfect knowledge of packet arrivals and bandwidth, choosing the
// departure times S = {t_s(u)} to minimize total tail wastage subject to a
// delay-cost budget is a generalization of Knapsack and NP-hard
// (Sec. III-C). This module provides
//
//   * an *exact* branch-and-bound solver for small instances, used by the
//     tests to measure the online algorithm's optimality gap, and
//   * a candidate-time greedy heuristic that scales to full workloads.
//
// Both exploit the classical structure of tail-energy problems: an optimal
// schedule only ever transmits at a packet's arrival, at a heartbeat
// departure, or at a deadline expiry — between those instants, delaying
// further can only shrink some gap's tail or leave it unchanged. The search
// space is therefore the finite candidate grid rather than continuous time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/queues.h"
#include "radio/power_model.h"

namespace etrain::core {

struct OfflineProblem {
  /// Fixed heartbeat departure times (constraint (5)); sorted ascending.
  std::vector<TimePoint> heartbeat_times;
  Bytes heartbeat_bytes = 100;

  /// The cargo packets (arrival, deadline, bytes, profile).
  std::vector<QueuedPacket> packets;

  radio::PowerModel model = radio::PowerModel::PaperUmts3G();
  /// Offline formulation assumes known bandwidth; constant here.
  BytesPerSecond bandwidth = 100.0e3;
  Duration horizon = 0.0;

  /// Budget on the total delay cost (constraint (4)); infinity = unbounded.
  double delay_cost_budget = kTimeInfinity;
};

struct OfflineSolution {
  /// Departure time per packet, aligned with OfflineProblem::packets.
  std::vector<TimePoint> departures;
  /// Objective (1): total tail energy of heartbeats and packets.
  Joules tail_energy = 0.0;
  /// Achieved total delay cost (must be <= the budget).
  double total_delay_cost = 0.0;
  /// True when the solver proved optimality (exact solver only).
  bool optimal = false;
  /// Search effort (diagnostics).
  std::uint64_t nodes_explored = 0;
};

/// Evaluates a fixed assignment of departures: serializes all events,
/// returns the objective. Exposed for tests and for scoring online
/// schedules on the same footing. Throws if any departure precedes its
/// packet's arrival (constraint (2)).
OfflineSolution evaluate_offline_schedule(const OfflineProblem& problem,
                                          std::vector<TimePoint> departures);

/// Exact branch-and-bound over the candidate grid. Intended for small
/// instances; throws std::invalid_argument when the instance exceeds
/// `max_nodes` worth of search (defensive bound, default ~5e6).
OfflineSolution solve_offline_exact(const OfflineProblem& problem,
                                    std::uint64_t max_nodes = 5'000'000);

/// Greedy heuristic: each packet rides the first heartbeat after its
/// arrival whose wait respects the per-packet deadline, else departs at its
/// deadline (or immediately when the budget is already strained). Scales
/// linearly; used as an upper bound and as the Oracle policy's offline twin.
OfflineSolution solve_offline_greedy(const OfflineProblem& problem);

/// The candidate departure times the solvers consider for one packet.
std::vector<TimePoint> candidate_departures(const OfflineProblem& problem,
                                            const QueuedPacket& packet);

}  // namespace etrain::core
