#include "core/queues.h"

#include <algorithm>
#include <stdexcept>

namespace etrain::core {

WaitingQueues::WaitingQueues(int app_count) : queues_(app_count) {
  if (app_count < 0) {
    throw std::invalid_argument("WaitingQueues: negative app count");
  }
}

void WaitingQueues::enqueue(QueuedPacket p) {
  if (p.packet.app < 0 || p.packet.app >= app_count()) {
    throw std::invalid_argument("WaitingQueues: app id out of range");
  }
  if (p.profile == nullptr) {
    throw std::invalid_argument("WaitingQueues: packet without cost profile");
  }
  queues_[p.packet.app].push_back(std::move(p));
  ++version_;
}

const std::vector<QueuedPacket>& WaitingQueues::queue(CargoAppId app) const {
  return queues_.at(app);
}

bool WaitingQueues::empty() const {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const auto& q) { return q.empty(); });
}

std::size_t WaitingQueues::total_size() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

Bytes WaitingQueues::total_bytes() const {
  Bytes n = 0;
  for (const auto& q : queues_) {
    for (const auto& p : q) n += p.packet.bytes;
  }
  return n;
}

double WaitingQueues::app_cost(CargoAppId app, TimePoint t) const {
  double sum = 0.0;
  for (const auto& p : queues_.at(app)) sum += p.cost_at(t);
  return sum;
}

double WaitingQueues::recompute_instantaneous_cost(TimePoint t) const {
  double sum = 0.0;
  for (int app = 0; app < app_count(); ++app) sum += app_cost(app, t);
  return sum;
}

double WaitingQueues::instantaneous_cost(TimePoint t) const {
  // Hot O(1) path: still the same structural state, inside the affine
  // window -> extrapolate from the anchor.
  if (cost_cache_.version == version_ && cost_cache_.affine &&
      t >= cost_cache_.anchor && t < cost_cache_.valid_until) {
    return cost_cache_.anchor_sum +
           cost_cache_.slope_sum * (t - cost_cache_.anchor);
  }

  // Anchor: full recompute, plus one affine_segment probe per packet to
  // learn the window on which the sum stays a straight line.
  double sum = 0.0;
  double slope_sum = 0.0;
  TimePoint valid_until = kTimeInfinity;
  bool affine = true;
  for (const auto& q : queues_) {
    for (const auto& p : q) {
      const Duration delay = t - p.packet.arrival;
      sum += p.profile->cost(delay, p.packet.deadline);
      if (!affine) continue;
      double slope = 0.0;
      Duration span = 0.0;
      if (p.profile->affine_segment(delay, p.packet.deadline, &slope,
                                    &span) &&
          span > 0.0) {
        slope_sum += slope;
        valid_until = std::min(valid_until, t + span);
      } else {
        affine = false;
      }
    }
  }
  cost_cache_ = CostCache{version_, t, sum, slope_sum, valid_until, affine};
  return sum;
}

double WaitingQueues::app_speculative_cost(CargoAppId app,
                                           TimePoint next_slot_start) const {
  double sum = 0.0;
  for (const auto& p : queues_.at(app)) {
    sum += p.speculative_cost(next_slot_start);
  }
  return sum;
}

QueuedPacket WaitingQueues::remove(CargoAppId app, PacketId id) {
  auto& q = queues_.at(app);
  const auto it = std::find_if(q.begin(), q.end(), [id](const QueuedPacket& p) {
    return p.packet.id == id;
  });
  if (it == q.end()) {
    throw std::invalid_argument("WaitingQueues: packet not found");
  }
  QueuedPacket out = std::move(*it);
  q.erase(it);
  ++version_;
  return out;
}

std::vector<QueuedPacket> WaitingQueues::drain_all() {
  std::vector<QueuedPacket> out;
  out.reserve(total_size());
  for (auto& q : queues_) {
    for (auto& p : q) out.push_back(std::move(p));
    q.clear();
  }
  ++version_;
  return out;
}

TimePoint WaitingQueues::oldest_arrival(CargoAppId app) const {
  const auto& q = queues_.at(app);
  TimePoint oldest = kTimeInfinity;
  for (const auto& p : q) oldest = std::min(oldest, p.packet.arrival);
  return oldest;
}

}  // namespace etrain::core
