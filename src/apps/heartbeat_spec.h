// Heartbeat behaviour of real IM/SNS/news apps, as measured in Sec. II-B
// (Table 1, Fig. 1(b), Fig. 3).
//
// Two cycle disciplines exist in the wild:
//   * fixed cycle — WeChat 270 s, WhatsApp 240 s, QQ 300 s, RenRen 300 s on
//     Android; every app 1800 s on iOS (Apple forces APNS);
//   * doubling cycle — NetEase News starts at 60 s and doubles after every
//     6 heartbeats until capping at 480 s.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"

namespace etrain::apps {

enum class CycleDiscipline {
  kFixed,     ///< constant period
  kDoubling,  ///< period doubles every `doubling_every` beats up to a cap
};

/// Static description of one train app's heartbeat behaviour.
struct HeartbeatSpec {
  std::string app_name;
  CycleDiscipline discipline = CycleDiscipline::kFixed;
  /// Fixed cycle, or the initial cycle for the doubling discipline.
  Duration cycle = 300.0;
  /// Doubling discipline only: beats per period step and the cap.
  int doubling_every = 6;
  Duration cycle_cap = 480.0;
  /// Application-layer size of one heartbeat (request + response), bytes.
  Bytes heartbeat_bytes = 100;

  /// Cycle in effect before the (index)th heartbeat (0-based): the gap
  /// between beat index-1 and beat index. For fixed discipline this is
  /// `cycle` for all indices.
  Duration cycle_before_beat(int index) const;

  /// Departure time of the (index)th heartbeat given the first one fires at
  /// `first_beat` (index 0).
  TimePoint beat_time(int index, TimePoint first_beat) const;

  /// All departure times in [first_beat, horizon).
  std::vector<TimePoint> departures(TimePoint first_beat,
                                    TimePoint horizon) const;
};

/// The measured catalog (Table 1; sizes from Sec. VI-A: QQ 378 B, WeChat
/// 74 B, WhatsApp 66 B; others approximated from Fig. 3).
HeartbeatSpec wechat_spec();    // 270 s, 74 B
HeartbeatSpec whatsapp_spec();  // 240 s, 66 B
HeartbeatSpec qq_spec();        // 300 s, 378 B
HeartbeatSpec renren_spec();    // 300 s fixed
HeartbeatSpec netease_spec();   // 60 s doubling to 480 s
HeartbeatSpec apns_spec();      // iOS unified push, 1800 s

/// The paper's default 3-train set: QQ + WeChat + WhatsApp.
std::vector<HeartbeatSpec> default_train_specs();

/// Everything we measured, for the Table-1 bench.
std::vector<HeartbeatSpec> android_catalog();

/// Extended catalog (beyond the paper's Table 1): keep-alive cycles of
/// other always-online apps as reported in the measurement literature of
/// the era. Useful for scenarios with more than three trains.
HeartbeatSpec skype_spec();     // aggressive NAT keep-alive, 60 s
HeartbeatSpec facebook_spec();  // MQTT keep-alive, ~60 s foreground
HeartbeatSpec line_spec();      // 300 s
HeartbeatSpec push_email_spec();  // IMAP IDLE refresh, ~900 s
std::vector<HeartbeatSpec> extended_catalog();

}  // namespace etrain::apps
