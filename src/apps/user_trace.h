// Luna Weibo user behaviour traces (Sec. V-5, Sec. VI-D-4 / Fig. 11).
//
// The paper ships Luna (a third-party Weibo client) to 100+ users, records
// every behaviour as a 4-tuple (User ID, Behavior type, Time, Packet Size),
// and replays the traces in controlled experiments. Users are classified by
// activeness per "app use" (one continuous foreground session):
//   active   — more than 20 upload events per app use,
//   moderate — 10 to 20,
//   inactive — fewer than 10.
// Most uses last 5–10 minutes; longer traces are truncated to 10 minutes.
//
// We cannot ship the proprietary traces, so this module (a) defines the
// exact record/replay format, and (b) synthesizes statistically equivalent
// traces per activeness class.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/packet.h"

namespace etrain::apps {

enum class BehaviorType {
  kUpload,    ///< user posts content (cargo for eTrain)
  kRefresh,   ///< timeline pull-to-refresh (download request)
  kBrowse,    ///< scrolling fetches (image/profile downloads)
};

std::string to_string(BehaviorType b);
BehaviorType behavior_from_string(const std::string& s);

/// One trace record, exactly the 4-tuple stored on the paper's server.
struct UserEvent {
  int user_id = 0;
  BehaviorType behavior = BehaviorType::kUpload;
  TimePoint time = 0.0;  ///< seconds from the start of the app use
  Bytes bytes = 0;
};

enum class Activeness { kActive, kModerate, kInactive };

std::string to_string(Activeness a);

/// One user's recorded "app use" session.
struct UserTrace {
  int user_id = 0;
  std::vector<UserEvent> events;  ///< sorted by time

  std::size_t upload_count() const;
  /// Classification per the paper's thresholds (>20 / 10..20 / <10 uploads).
  Activeness classify() const;
  Duration length() const;

  /// Truncates to the paper's 10-minute cap.
  void truncate(Duration max_length = 600.0);
};

/// CSV round-trip ("user_id,behavior,time_s,bytes").
void save_traces_csv(const std::vector<UserTrace>& traces,
                     const std::string& path);
std::vector<UserTrace> load_traces_csv(const std::string& path);

/// Synthesizes one app-use trace of the given class. Upload counts land in
/// the class's defining range; events are spread over a 5–10 minute session;
/// sizes follow the Weibo cargo distribution (2 KB mean / 100 B min) with
/// occasional picture posts (~50 KB).
UserTrace synthesize_trace(Activeness klass, int user_id, Rng& rng);

/// Synthesizes a user population: `count` users per class.
std::vector<UserTrace> synthesize_population(int count_per_class, Rng& rng);

/// Converts the upload events of a trace into cargo packets for replay
/// (uploads are what eTrain schedules; refreshes/browses are interactive
/// and bypass the scheduler), offsetting times by `start` and tagging with
/// `app_id`.
std::vector<core::Packet> replay_uploads(const UserTrace& trace,
                                         core::CargoAppId app_id,
                                         TimePoint start,
                                         Duration deadline,
                                         core::PacketId first_id);

}  // namespace etrain::apps
