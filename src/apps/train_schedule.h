// Merged "train departure" timetable: the union H of all train apps'
// heartbeats (Sec. III-C), used by the slotted simulator and by the
// scheduler's prediction input.
#pragma once

#include <vector>

#include "apps/heartbeat_spec.h"
#include "common/rng.h"

namespace etrain::apps {

/// One heartbeat departure.
struct TrainEvent {
  TimePoint time = 0.0;
  int train = 0;  ///< index into the spec list
  Bytes bytes = 0;
  /// Interface slot the heartbeat departs on: 0 = the cellular uplink
  /// (every classic train app), 2+ = one of the scenario's extra radios
  /// (LoRa link heartbeats — the "second train source"). Never 1: Wi-Fi
  /// has no heartbeat traffic.
  int interface = 0;
};

/// Builds the merged, time-sorted departure list for [0, horizon). The
/// first beat of train i fires at first_beats[i] (defaults: staggered a few
/// seconds apart, as independently started daemons would be).
std::vector<TrainEvent> build_train_schedule(
    const std::vector<HeartbeatSpec>& specs,
    const std::vector<TimePoint>& first_beats, Duration horizon);

/// Convenience overload staggering first beats at 5 s intervals.
std::vector<TrainEvent> build_train_schedule(
    const std::vector<HeartbeatSpec>& specs, Duration horizon);

/// Jittered variant: each departure is perturbed by a uniform offset in
/// [-jitter, +jitter] (daemon scheduling noise, network send latency). The
/// heartbeat monitor's predictions must — and do — survive such jitter; the
/// robustness tests sweep it.
std::vector<TrainEvent> build_train_schedule_jittered(
    const std::vector<HeartbeatSpec>& specs, Duration horizon, Rng& rng,
    Duration jitter);

/// Extracts just the departure times (sorted, deduplicated within eps) —
/// the eTrain scheduler only needs times, not which train fires.
std::vector<TimePoint> departure_times(const std::vector<TrainEvent>& events);

}  // namespace etrain::apps
