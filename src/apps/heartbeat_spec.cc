#include "apps/heartbeat_spec.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace etrain::apps {

Duration HeartbeatSpec::cycle_before_beat(int index) const {
  if (index <= 0) return 0.0;
  if (discipline == CycleDiscipline::kFixed) return cycle;
  // Doubling: beats 1..doubling_every use `cycle`, the next doubling_every
  // use 2*cycle, and so on, capped at cycle_cap.
  assert(doubling_every > 0);
  const int step = (index - 1) / doubling_every;
  Duration c = cycle;
  for (int s = 0; s < step; ++s) {
    c = std::min(c * 2.0, cycle_cap);
    if (c >= cycle_cap) break;
  }
  return std::min(c, cycle_cap);
}

TimePoint HeartbeatSpec::beat_time(int index, TimePoint first_beat) const {
  if (index < 0) {
    throw std::invalid_argument("HeartbeatSpec: negative beat index");
  }
  if (discipline == CycleDiscipline::kFixed) {
    // t_s(h_{i,j}) = t_s(h_{i,0}) + cycle_i * j (Eq. 5).
    return first_beat + cycle * index;
  }
  TimePoint t = first_beat;
  for (int j = 1; j <= index; ++j) t += cycle_before_beat(j);
  return t;
}

std::vector<TimePoint> HeartbeatSpec::departures(TimePoint first_beat,
                                                 TimePoint horizon) const {
  std::vector<TimePoint> out;
  TimePoint t = first_beat;
  int index = 0;
  while (t < horizon) {
    out.push_back(t);
    ++index;
    t += cycle_before_beat(index);
  }
  return out;
}

HeartbeatSpec wechat_spec() {
  return HeartbeatSpec{.app_name = "WeChat",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 270.0,
                       .heartbeat_bytes = 74};
}

HeartbeatSpec whatsapp_spec() {
  return HeartbeatSpec{.app_name = "WhatsApp",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 240.0,
                       .heartbeat_bytes = 66};
}

HeartbeatSpec qq_spec() {
  return HeartbeatSpec{.app_name = "QQ",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 300.0,
                       .heartbeat_bytes = 378};
}

HeartbeatSpec renren_spec() {
  return HeartbeatSpec{.app_name = "RenRen",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 300.0,
                       .heartbeat_bytes = 120};
}

HeartbeatSpec netease_spec() {
  return HeartbeatSpec{.app_name = "NetEase",
                       .discipline = CycleDiscipline::kDoubling,
                       .cycle = 60.0,
                       .doubling_every = 6,
                       .cycle_cap = 480.0,
                       .heartbeat_bytes = 150};
}

HeartbeatSpec apns_spec() {
  return HeartbeatSpec{.app_name = "APNS(iOS)",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 1800.0,
                       .heartbeat_bytes = 90};
}

std::vector<HeartbeatSpec> default_train_specs() {
  return {qq_spec(), wechat_spec(), whatsapp_spec()};
}

std::vector<HeartbeatSpec> android_catalog() {
  return {wechat_spec(), whatsapp_spec(), qq_spec(), renren_spec(),
          netease_spec()};
}

HeartbeatSpec skype_spec() {
  return HeartbeatSpec{.app_name = "Skype",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 60.0,
                       .heartbeat_bytes = 44};
}

HeartbeatSpec facebook_spec() {
  return HeartbeatSpec{.app_name = "Facebook",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 60.0,
                       .heartbeat_bytes = 82};
}

HeartbeatSpec line_spec() {
  return HeartbeatSpec{.app_name = "Line",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 300.0,
                       .heartbeat_bytes = 96};
}

HeartbeatSpec push_email_spec() {
  return HeartbeatSpec{.app_name = "PushEmail(IMAP-IDLE)",
                       .discipline = CycleDiscipline::kFixed,
                       .cycle = 900.0,
                       .heartbeat_bytes = 120};
}

std::vector<HeartbeatSpec> extended_catalog() {
  auto specs = android_catalog();
  specs.push_back(skype_spec());
  specs.push_back(facebook_spec());
  specs.push_back(line_spec());
  specs.push_back(push_email_spec());
  return specs;
}

}  // namespace etrain::apps
