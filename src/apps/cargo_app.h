// Cargo apps: the delay-tolerant data sources eTrain schedules (Sec. V-5,
// Sec. VI-A "Synthesized packet trace").
//
// The paper builds three cargo apps — eTrain Mail, Luna Weibo, and eTrain
// Cloud — and synthesizes their traffic as independent Poisson arrival
// processes with truncated-normal packet sizes:
//
//   app    mean inter-arrival    size mean / min
//   Mail        50 s (at λ=.08)   5 KB / 1 KB
//   Weibo       20 s              2 KB / 100 B
//   Cloud      100 s            100 KB / 10 KB
//
// The 5:2:10 inter-arrival proportion is kept fixed while λ scales.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cost_profile.h"
#include "core/packet.h"

namespace etrain::apps {

/// Static description of one cargo app's workload.
struct CargoAppSpec {
  std::string name;
  /// Mean of the Poisson inter-arrival time, seconds.
  Duration mean_interarrival = 50.0;
  /// Truncated-normal packet size parameters (bytes).
  double size_mean = 5000.0;
  double size_stddev = 2500.0;
  double size_min = 1000.0;
  /// Relative deadline attached to every packet, seconds.
  Duration deadline = 60.0;
  /// Delay-cost profile the app registers with eTrain.
  const core::CostProfile* profile = &core::mail_cost_profile();
  /// Fraction of packets that are downloads (prefetches) rather than
  /// uploads. The paper's synthesized workload is upload-only (its
  /// bandwidth trace is an uplink recording), so the default is 0; the
  /// prefetching example exercises the download path.
  double download_fraction = 0.0;
};

/// The paper's three cargo apps at total arrival rate lambda = 0.08 pkt/s.
CargoAppSpec mail_spec();
CargoAppSpec weibo_spec();
CargoAppSpec cloud_spec();
std::vector<CargoAppSpec> default_cargo_specs();

/// The same three apps with inter-arrival times scaled so the total arrival
/// rate becomes `lambda` (paper sweeps 0.04 .. 0.12 in Fig. 8(b)); the
/// 5:2:10 proportion is preserved.
std::vector<CargoAppSpec> cargo_specs_for_lambda(double lambda);

/// Draws a complete packet-arrival trace for one app over [0, horizon).
/// Ids are assigned sequentially from `first_id`; `app_id` tags each packet.
std::vector<core::Packet> generate_arrivals(const CargoAppSpec& spec,
                                            core::CargoAppId app_id,
                                            Duration horizon, Rng& rng,
                                            core::PacketId first_id = 0);

/// Generates arrivals for a set of apps (each from a forked RNG stream) and
/// returns them merged, sorted by arrival time, with globally unique ids.
std::vector<core::Packet> generate_workload(
    const std::vector<CargoAppSpec>& specs, Duration horizon, Rng& rng);

}  // namespace etrain::apps
