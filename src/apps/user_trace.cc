#include "apps/user_trace.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "common/csv.h"

namespace etrain::apps {

std::string to_string(BehaviorType b) {
  switch (b) {
    case BehaviorType::kUpload: return "upload";
    case BehaviorType::kRefresh: return "refresh";
    case BehaviorType::kBrowse: return "browse";
  }
  return "?";
}

BehaviorType behavior_from_string(const std::string& s) {
  if (s == "upload") return BehaviorType::kUpload;
  if (s == "refresh") return BehaviorType::kRefresh;
  if (s == "browse") return BehaviorType::kBrowse;
  throw std::invalid_argument("unknown behavior type: " + s);
}

std::string to_string(Activeness a) {
  switch (a) {
    case Activeness::kActive: return "active";
    case Activeness::kModerate: return "moderate";
    case Activeness::kInactive: return "inactive";
  }
  return "?";
}

std::size_t UserTrace::upload_count() const {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(), [](const UserEvent& e) {
        return e.behavior == BehaviorType::kUpload;
      }));
}

Activeness UserTrace::classify() const {
  const std::size_t uploads = upload_count();
  if (uploads > 20) return Activeness::kActive;
  if (uploads >= 10) return Activeness::kModerate;
  return Activeness::kInactive;
}

Duration UserTrace::length() const {
  return events.empty() ? 0.0 : events.back().time;
}

void UserTrace::truncate(Duration max_length) {
  events.erase(std::remove_if(events.begin(), events.end(),
                              [max_length](const UserEvent& e) {
                                return e.time > max_length;
                              }),
               events.end());
}

void save_traces_csv(const std::vector<UserTrace>& traces,
                     const std::string& path) {
  CsvWriter w(path);
  w.write_comment("Luna Weibo user behaviour trace");
  w.write_row({"user_id", "behavior", "time_s", "bytes"});
  for (const auto& trace : traces) {
    for (const auto& e : trace.events) {
      w.write_row({std::to_string(e.user_id), to_string(e.behavior),
                   std::to_string(e.time), std::to_string(e.bytes)});
    }
  }
}

std::vector<UserTrace> load_traces_csv(const std::string& path) {
  const auto rows = read_csv_file(path, /*skip_header=*/true);
  std::map<int, UserTrace> by_user;
  for (const auto& row : rows) {
    if (row.size() < 4) {
      throw std::runtime_error("user trace: malformed row in " + path);
    }
    UserEvent e;
    e.user_id = std::stoi(row[0]);
    e.behavior = behavior_from_string(row[1]);
    e.time = std::stod(row[2]);
    e.bytes = std::stoll(row[3]);
    auto& trace = by_user[e.user_id];
    trace.user_id = e.user_id;
    trace.events.push_back(e);
  }
  std::vector<UserTrace> out;
  out.reserve(by_user.size());
  for (auto& [id, trace] : by_user) {
    std::sort(trace.events.begin(), trace.events.end(),
              [](const UserEvent& a, const UserEvent& b) {
                return a.time < b.time;
              });
    out.push_back(std::move(trace));
  }
  return out;
}

UserTrace synthesize_trace(Activeness klass, int user_id, Rng& rng) {
  UserTrace trace;
  trace.user_id = user_id;

  // Session length: "most users only spend 5 to 10 minutes".
  const Duration session = rng.uniform(minutes(5.0), minutes(10.0));

  // Upload counts per class thresholds.
  std::int64_t uploads = 0;
  switch (klass) {
    case Activeness::kActive:
      uploads = rng.uniform_int(21, 35);
      break;
    case Activeness::kModerate:
      uploads = rng.uniform_int(10, 20);
      break;
    case Activeness::kInactive:
      uploads = rng.uniform_int(1, 9);
      break;
  }

  for (std::int64_t i = 0; i < uploads; ++i) {
    UserEvent e;
    e.user_id = user_id;
    e.behavior = BehaviorType::kUpload;
    e.time = rng.uniform(0.0, session);
    // ~1 in 6 uploads carries a picture (~50 KB), the rest are short posts.
    e.bytes = rng.bernoulli(1.0 / 6.0)
                  ? static_cast<Bytes>(
                        rng.truncated_normal(50000.0, 15000.0, 10000.0))
                  : static_cast<Bytes>(
                        rng.truncated_normal(2000.0, 1000.0, 100.0));
    trace.events.push_back(e);
  }

  // Interleave interactive behaviour (refresh roughly every 45 s, plus
  // browse bursts); these do not become cargo but keep the format honest.
  for (TimePoint t = rng.uniform(5.0, 30.0); t < session;
       t += rng.exponential_mean(45.0)) {
    UserEvent e;
    e.user_id = user_id;
    e.behavior = BehaviorType::kRefresh;
    e.time = t;
    e.bytes = static_cast<Bytes>(rng.truncated_normal(15000.0, 8000.0, 2000.0));
    trace.events.push_back(e);
  }
  for (TimePoint t = rng.uniform(10.0, 60.0); t < session;
       t += rng.exponential_mean(90.0)) {
    UserEvent e;
    e.user_id = user_id;
    e.behavior = BehaviorType::kBrowse;
    e.time = t;
    e.bytes = static_cast<Bytes>(rng.truncated_normal(30000.0, 20000.0, 1000.0));
    trace.events.push_back(e);
  }

  std::sort(trace.events.begin(), trace.events.end(),
            [](const UserEvent& a, const UserEvent& b) {
              return a.time < b.time;
            });
  return trace;
}

std::vector<UserTrace> synthesize_population(int count_per_class, Rng& rng) {
  std::vector<UserTrace> out;
  int user_id = 0;
  for (const auto klass :
       {Activeness::kActive, Activeness::kModerate, Activeness::kInactive}) {
    for (int i = 0; i < count_per_class; ++i) {
      out.push_back(synthesize_trace(klass, user_id++, rng));
    }
  }
  return out;
}

std::vector<core::Packet> replay_uploads(const UserTrace& trace,
                                         core::CargoAppId app_id,
                                         TimePoint start, Duration deadline,
                                         core::PacketId first_id) {
  std::vector<core::Packet> out;
  core::PacketId next_id = first_id;
  for (const auto& e : trace.events) {
    if (e.behavior != BehaviorType::kUpload) continue;
    core::Packet p;
    p.id = next_id++;
    p.app = app_id;
    p.arrival = start + e.time;
    p.bytes = e.bytes;
    p.deadline = deadline;
    out.push_back(p);
  }
  return out;
}

}  // namespace etrain::apps
