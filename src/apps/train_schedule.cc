#include "apps/train_schedule.h"

#include <algorithm>
#include <stdexcept>

namespace etrain::apps {

std::vector<TrainEvent> build_train_schedule(
    const std::vector<HeartbeatSpec>& specs,
    const std::vector<TimePoint>& first_beats, Duration horizon) {
  if (specs.size() != first_beats.size()) {
    throw std::invalid_argument(
        "build_train_schedule: specs/first_beats size mismatch");
  }
  std::vector<TrainEvent> events;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (const TimePoint t : specs[i].departures(first_beats[i], horizon)) {
      events.push_back(TrainEvent{t, static_cast<int>(i),
                                  specs[i].heartbeat_bytes});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TrainEvent& a, const TrainEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.train < b.train;
            });
  return events;
}

std::vector<TrainEvent> build_train_schedule(
    const std::vector<HeartbeatSpec>& specs, Duration horizon) {
  std::vector<TimePoint> first_beats(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    first_beats[i] = 5.0 * static_cast<double>(i);
  }
  return build_train_schedule(specs, first_beats, horizon);
}

std::vector<TrainEvent> build_train_schedule_jittered(
    const std::vector<HeartbeatSpec>& specs, Duration horizon, Rng& rng,
    Duration jitter) {
  if (jitter < 0.0) {
    throw std::invalid_argument(
        "build_train_schedule_jittered: negative jitter");
  }
  auto events = build_train_schedule(specs, horizon);
  for (auto& e : events) {
    e.time = std::max(0.0, e.time + rng.uniform(-jitter, jitter));
  }
  std::sort(events.begin(), events.end(),
            [](const TrainEvent& a, const TrainEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.train < b.train;
            });
  return events;
}

std::vector<TimePoint> departure_times(const std::vector<TrainEvent>& events) {
  std::vector<TimePoint> times;
  times.reserve(events.size());
  for (const auto& e : events) {
    if (times.empty() || e.time > times.back() + 1e-9) {
      times.push_back(e.time);
    }
  }
  return times;
}

}  // namespace etrain::apps
