#include "apps/cargo_app.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace etrain::apps {

CargoAppSpec mail_spec() {
  return CargoAppSpec{.name = "eTrain Mail",
                      .mean_interarrival = 50.0,
                      .size_mean = 5000.0,
                      .size_stddev = 2500.0,
                      .size_min = 1000.0,
                      .deadline = 300.0,
                      .profile = &core::mail_cost_profile()};
}

CargoAppSpec weibo_spec() {
  return CargoAppSpec{.name = "Luna Weibo",
                      .mean_interarrival = 20.0,
                      .size_mean = 2000.0,
                      .size_stddev = 1000.0,
                      .size_min = 100.0,
                      .deadline = 120.0,
                      .profile = &core::weibo_cost_profile()};
}

CargoAppSpec cloud_spec() {
  return CargoAppSpec{.name = "eTrain Cloud",
                      .mean_interarrival = 100.0,
                      .size_mean = 100000.0,
                      .size_stddev = 50000.0,
                      .size_min = 10000.0,
                      .deadline = 600.0,
                      .profile = &core::cloud_cost_profile()};
}

std::vector<CargoAppSpec> default_cargo_specs() {
  return {mail_spec(), weibo_spec(), cloud_spec()};
}

std::vector<CargoAppSpec> cargo_specs_for_lambda(double lambda) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("cargo_specs_for_lambda: lambda must be > 0");
  }
  // Defaults sum to 1/50 + 1/20 + 1/100 = 0.08 pkt/s; scale inter-arrival
  // times inversely with lambda, preserving the 5:2:10 proportion.
  const double scale = 0.08 / lambda;
  auto specs = default_cargo_specs();
  for (auto& s : specs) s.mean_interarrival *= scale;
  return specs;
}

std::vector<core::Packet> generate_arrivals(const CargoAppSpec& spec,
                                            core::CargoAppId app_id,
                                            Duration horizon, Rng& rng,
                                            core::PacketId first_id) {
  if (spec.mean_interarrival <= 0.0 || horizon < 0.0) {
    throw std::invalid_argument("generate_arrivals: invalid parameters");
  }
  std::vector<core::Packet> out;
  core::PacketId next_id = first_id;
  TimePoint t = rng.exponential_mean(spec.mean_interarrival);
  while (t < horizon) {
    core::Packet p;
    p.id = next_id++;
    p.app = app_id;
    p.arrival = t;
    p.bytes = static_cast<Bytes>(std::llround(
        rng.truncated_normal(spec.size_mean, spec.size_stddev, spec.size_min)));
    p.deadline = spec.deadline;
    if (spec.download_fraction > 0.0 &&
        rng.bernoulli(spec.download_fraction)) {
      p.direction = core::Direction::kDownlink;
    }
    out.push_back(p);
    t += rng.exponential_mean(spec.mean_interarrival);
  }
  return out;
}

std::vector<core::Packet> generate_workload(
    const std::vector<CargoAppSpec>& specs, Duration horizon, Rng& rng) {
  std::vector<core::Packet> all;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Rng stream = rng.fork();
    auto packets = generate_arrivals(specs[i], static_cast<core::CargoAppId>(i),
                                     horizon, stream);
    all.insert(all.end(), packets.begin(), packets.end());
  }
  std::sort(all.begin(), all.end(),
            [](const core::Packet& a, const core::Packet& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return std::pair(a.app, a.id) < std::pair(b.app, b.id);
            });
  // Re-number so ids are unique and ordered by arrival (useful for
  // deterministic tie-breaking in schedulers).
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i].id = static_cast<core::PacketId>(i);
  }
  return all;
}

}  // namespace etrain::apps
