// Unified radio construction: one string spec -> one RadioModel.
//
// The PolicyRegistry's spec grammar, applied to radios. Every entry point
// that used to hard-code "the 3G PowerModel" (plus a special-cased Wi-Fi)
// now accepts the same strings:
//
//   "3g:paper"                       preset flag (sim / realistic /
//                                    fast_dormancy select the other blocks)
//   "3g:paper,dch_tail=6"            preset + numeric knob overrides
//   "lte_cdrx:drx_short=0.02,drx_long=1.28,inactivity=10"
//   "lora:sf=9,heartbeat_period=30"  LoRa-class link with radio heartbeats
//
// A RadioModel is more than a PowerModel: it carries the ledger/provenance
// interface name, the default link bandwidth, and — where the radio has
// one — the CDRX sleep ladder or the LoRa link-protocol parameters that
// the experiment harness wires into its per-interface channels.
//
// Unknown names, malformed specs and unknown knobs all throw
// std::invalid_argument with the registry's loud messages (shared grammar:
// common/spec.h). Like the PolicyRegistry, unknown-knob detection is
// consumption-based: a factory that never reads "thta" fails the spec.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "radio/cdrx.h"
#include "radio/power_model.h"

namespace etrain::radio {

/// Link-protocol parameters of a LoRa-class interface, modeled on the
/// LoRaSerial firmware's point-to-point mode: every data frame waits for
/// an ACK and retransmits after a fixed timeout when it is lost, and the
/// link emits its own periodic heartbeat datagrams (which the experiment
/// harness feeds into the train timetable as a second train source).
struct LoraLinkParams {
  /// Spreading factor; the effective data rate scales as sf / 2^sf.
  double spreading_factor = 9.0;
  /// ACK wait before a retransmission.
  Duration ack_timeout = 2.0;
  /// Retransmissions per frame before the link reports failure.
  int max_retries = 4;
  /// Link heartbeat period (0 disables radio heartbeats).
  Duration heartbeat_period = 0.0;
  Bytes heartbeat_bytes = 12;

  /// Effective payload rate for the spreading factor, bytes/second.
  /// Anchored at sf=9 ~ 1.1 kB/s and halving (minus the sf gain) per step,
  /// the familiar LoRa airtime scaling.
  BytesPerSecond data_rate() const;
};

/// A fully-constructed radio interface model.
struct RadioModel {
  /// The spec string this model was built from (canonical provenance).
  std::string spec;
  /// Ledger / provenance interface key ("cellular", "wifi", "lte",
  /// "lora"). Scenario builders may override for multi-instance setups.
  std::string interface_name = "cellular";
  /// The piecewise-linear energy model (EnergyMeter bills against this).
  PowerModel power;
  /// Default link bandwidth for interfaces that bring their own channel.
  BytesPerSecond bandwidth = 120.0e3;
  /// Present on lte_cdrx models: the sleep ladder `power` was compiled
  /// from (the online CdrxStateMachine consumes this).
  std::optional<CdrxParams> cdrx;
  /// Present on lora models: the ACK/retransmit link protocol.
  std::optional<LoraLinkParams> lora;
};

/// Knob bag handed to radio factories; same consumption-tracking contract
/// as core::PolicyParams (an unread knob fails the spec).
class RadioParams {
 public:
  RadioParams() = default;
  RadioParams(std::map<std::string, double> knobs,
              std::vector<std::string> flags)
      : knobs_(std::move(knobs)), flags_(std::move(flags)) {}

  double get(const std::string& key, double fallback) const;
  bool has(const std::string& key) const;
  /// The spec's flag tokens ("paper" in "3g:paper").
  const std::vector<std::string>& flags() const { return flags_; }

  std::vector<std::string> unconsumed() const;

 private:
  std::map<std::string, double> knobs_;
  std::vector<std::string> flags_;
  mutable std::vector<std::string> consumed_;
};

class ModelRegistry {
 public:
  using Factory = std::function<RadioModel(const RadioParams&)>;

  /// Registers a factory under `name` with a one-line help text listing
  /// its flags and knobs. Throws on duplicates / invalid names.
  void register_model(const std::string& name, const std::string& help,
                      Factory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;
  const std::string& help(const std::string& name) const;

  /// Builds a RadioModel from a spec ("name", "name:flag,knob=v"...).
  /// Throws std::invalid_argument for unknown names, malformed specs,
  /// unknown flags and unknown (unconsumed) knobs.
  RadioModel make(const std::string& spec) const;

 private:
  struct Entry {
    std::string help;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// The process-wide registry pre-populated with the built-in radios:
/// 3g (flags paper / sim / realistic / fast_dormancy), wifi, lte_drx
/// (the legacy three-state LTE approximation), lte_cdrx, lora.
const ModelRegistry& builtin_model_registry();

/// builtin_model_registry().make(spec).
RadioModel make_radio_model(const std::string& spec);

}  // namespace etrain::radio
