// Simulated Monsoon power monitor (Sec. VI-D / Fig. 9 of the paper).
//
// The paper's controlled experiments power the phone from a Monsoon monitor
// at a constant 3.7 V and sample the drawn current every 0.1 s; energy is
// integrated from the current trace. This class reproduces that measurement
// pipeline against the simulated radio: it samples power_at() on a fixed
// grid and integrates numerically, so the harness "measures" energy the same
// way the authors' lab did. The tests verify the sampled integral converges
// to the analytic EnergyMeter value.
#pragma once

#include <vector>

#include "radio/energy_meter.h"

namespace etrain::radio {

/// One sample of the simulated current trace.
struct PowerSample {
  TimePoint time = 0.0;
  Watts power = 0.0;
  /// Current at the monitor's supply voltage, in amperes (what the Monsoon
  /// software logs).
  double amps = 0.0;
};

class PowerMonitor {
 public:
  /// `sample_period`: 0.1 s in the paper. `supply_volts`: 3.7 V.
  explicit PowerMonitor(Duration sample_period = 0.1,
                        double supply_volts = 3.7);

  /// Samples the power of a finished run on [0, horizon).
  std::vector<PowerSample> sample(const TransmissionLog& log,
                                  const PowerModel& model,
                                  Duration horizon) const;

  /// Left-rectangle integration of a sampled trace — exactly how energy is
  /// recovered from a physical current log.
  Joules integrate(const std::vector<PowerSample>& trace) const;

  Duration sample_period() const { return sample_period_; }
  double supply_volts() const { return supply_volts_; }

 private:
  Duration sample_period_;
  double supply_volts_;
};

}  // namespace etrain::radio
