// Offline energy accounting: replays a TransmissionLog against a PowerModel
// and produces the full energy breakdown every figure in the evaluation is
// built from. This is the single meter all scheduling policies are billed
// by, so comparisons are apples-to-apples.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "obs/trace.h"
#include "radio/power_model.h"
#include "radio/transmission_log.h"

namespace etrain::radio {

/// Complete energy breakdown of one run over [0, horizon].
struct EnergyReport {
  Duration horizon = 0.0;

  /// idle_power * horizon — the cost of merely being on; identical across
  /// policies, excluded from "network energy" comparisons.
  Joules idle_baseline = 0.0;

  /// Energy of the data phases (tx_extra_power * duration).
  Joules tx_energy = 0.0;
  /// Energy of RRC promotions (DCH power during setup phases).
  Joules setup_energy = 0.0;
  /// Tail energy burned lingering in DCH after transmissions.
  Joules dch_tail_energy = 0.0;
  /// Tail energy burned lingering in FACH.
  Joules fach_tail_energy = 0.0;

  /// Per-kind attribution (index by TxKind). A tail is attributed to the
  /// transmission that produced it.
  std::array<Joules, 2> tx_energy_by_kind{};
  std::array<Joules, 2> tail_energy_by_kind{};

  std::size_t transmissions = 0;
  /// Gaps long enough that the radio demoted all the way to IDLE.
  std::size_t full_tails = 0;
  /// Gaps cut short by a follow-up transmission (energy partially saved —
  /// exactly what piggybacking manufactures).
  std::size_t truncated_tails = 0;
  /// Transmissions that paid an RRC promotion (setup > 0) — the signaling
  /// cost fast dormancy trades the tail for.
  std::size_t promotions = 0;
  /// Transmissions starting from a cold (IDLE) radio: the preceding gap, if
  /// any, outlasted the whole tail. Proxy for RNC signaling load even in
  /// models with zero promotion latency.
  std::size_t cold_starts = 0;

  Joules tail_energy() const { return dch_tail_energy + fach_tail_energy; }
  /// Everything above the idle baseline: the "network energy" the paper's
  /// bar charts show.
  Joules network_energy() const {
    return tx_energy + setup_energy + tail_energy();
  }
  Joules total_energy() const { return idle_baseline + network_energy(); }
};

/// Replays `log` against `model` over [0, horizon].
///
/// Requirements: log entries ordered and non-overlapping (TransmissionLog
/// enforces this) and horizon >= log.last_end(). The tail that follows the
/// final transmission is truncated at `horizon`.
///
/// When `trace` is non-null, every gap with a non-zero tail emits one
/// TailCharge event, timestamped at the transmission end that opened the
/// gap; the sum of their joules equals the report's tail_energy() (the
/// trace checker asserts this to 1e-9 J).
EnergyReport measure_energy(const TransmissionLog& log,
                            const PowerModel& model, Duration horizon,
                            obs::TraceSink* trace = nullptr);

/// Instantaneous total power at time `t` for a finished log — the quantity
/// the Monsoon power monitor samples. O(log n) lookup.
Watts power_at(const TransmissionLog& log, const PowerModel& model,
               TimePoint t);

/// Multi-line human-readable rendering of a report (used by the CLI and
/// examples).
std::string to_string(const EnergyReport& report);

}  // namespace etrain::radio
