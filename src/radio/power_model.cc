#include "radio/power_model.h"

#include "radio/model_registry.h"

namespace etrain::radio {

std::string to_string(RrcState s) {
  switch (s) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kFach: return "FACH";
    case RrcState::kDch: return "DCH";
  }
  return "?";
}

Joules PowerModel::tail_energy(Duration gap) const {
  if (gap <= 0.0) return 0.0;                      // (1) next tx overlaps
  if (gap <= dch_tail) {                           // (2) still in DCH
    return dch_extra_power * gap;
  }
  if (gap <= dch_tail + fach_tail) {               // (3) in FACH
    return dch_extra_power * dch_tail + fach_extra_power * (gap - dch_tail);
  }
  Joules energy = dch_extra_power * dch_tail + fach_extra_power * fach_tail;
  Duration boundary = dch_tail + fach_tail;
  for (const TailPhase& p : extra_tail) {          // (3b) in an extra phase
    if (gap <= boundary + p.length) {
      return energy + p.extra_power * (gap - boundary);
    }
    energy += p.extra_power * p.length;
    boundary += p.length;
  }
  return full_tail_energy();                       // (4) demoted to IDLE
}

Watts PowerModel::extra_power(RrcState s) const {
  switch (s) {
    case RrcState::kIdle: return 0.0;
    case RrcState::kFach: return fach_extra_power;
    case RrcState::kDch: return dch_extra_power;
  }
  return 0.0;
}

Duration PowerModel::promotion_delay_after_gap(Duration elapsed) const {
  if (elapsed < dch_tail) return 0.0;
  if (elapsed < dch_tail + fach_tail) return fach_to_dch_delay;
  Duration boundary = dch_tail + fach_tail;
  for (const TailPhase& p : extra_tail) {
    boundary += p.length;
    if (elapsed < boundary) return p.wake_delay;
  }
  return idle_to_dch_delay;
}

// The preset factories are thin wrappers over the ModelRegistry (the
// registry's spec strings are the public naming scheme; these stay for
// source compatibility). The raw parameter blocks live in
// model_registry.cc.

PowerModel PowerModel::PaperUmts3G() {
  return make_radio_model("3g:paper").power;
}

PowerModel PowerModel::PaperSimulation() {
  return make_radio_model("3g:sim").power;
}

PowerModel PowerModel::Realistic3G() {
  return make_radio_model("3g:realistic").power;
}

PowerModel PowerModel::FastDormancy3G() {
  return make_radio_model("3g:fast_dormancy").power;
}

PowerModel PowerModel::WifiPsm() { return make_radio_model("wifi").power; }

PowerModel PowerModel::LteDrx() { return make_radio_model("lte_drx").power; }

}  // namespace etrain::radio
