#include "radio/power_model.h"

#include <algorithm>

namespace etrain::radio {

std::string to_string(RrcState s) {
  switch (s) {
    case RrcState::kIdle: return "IDLE";
    case RrcState::kFach: return "FACH";
    case RrcState::kDch: return "DCH";
  }
  return "?";
}

Joules PowerModel::tail_energy(Duration gap) const {
  if (gap <= 0.0) return 0.0;                      // (1) next tx overlaps
  if (gap <= dch_tail) {                           // (2) still in DCH
    return dch_extra_power * gap;
  }
  if (gap <= tail_time()) {                        // (3) in FACH
    return dch_extra_power * dch_tail + fach_extra_power * (gap - dch_tail);
  }
  return full_tail_energy();                       // (4) demoted to IDLE
}

Watts PowerModel::extra_power(RrcState s) const {
  switch (s) {
    case RrcState::kIdle: return 0.0;
    case RrcState::kFach: return fach_extra_power;
    case RrcState::kDch: return dch_extra_power;
  }
  return 0.0;
}

PowerModel PowerModel::PaperUmts3G() {
  PowerModel m;
  m.name = "PaperUmts3G";
  return m;
}

PowerModel PowerModel::PaperSimulation() {
  PowerModel m;
  m.name = "PaperSimulation";
  m.dch_tail = 2.5;
  m.fach_tail = 7.5;
  return m;
}

PowerModel PowerModel::Realistic3G() {
  PowerModel m;
  m.name = "Realistic3G";
  m.idle_to_dch_delay = 2.0;
  m.fach_to_dch_delay = 1.5;
  return m;
}

PowerModel PowerModel::FastDormancy3G() {
  PowerModel m;
  m.name = "FastDormancy3G";
  m.dch_tail = 0.3;
  m.fach_tail = 0.2;
  m.idle_to_dch_delay = 2.0;
  m.fach_to_dch_delay = 1.5;
  return m;
}

PowerModel PowerModel::WifiPsm() {
  PowerModel m;
  m.name = "WifiPsm";
  m.idle_power = 0.0;  // doze overhead folded into the device baseline
  m.dch_extra_power = milliwatts(600.0);  // awake, post-exchange
  m.fach_extra_power = 0.0;
  m.tx_extra_power = milliwatts(800.0);
  m.dch_tail = 0.2;  // PSM timeout
  m.fach_tail = 0.0;
  m.idle_to_dch_delay = 0.05;  // doze wake-up / PS-poll
  m.fach_to_dch_delay = 0.0;
  return m;
}

PowerModel PowerModel::LteDrx() {
  PowerModel m;
  m.name = "LteDrx";
  m.idle_power = milliwatts(25.0);
  m.dch_extra_power = milliwatts(1000.0);   // CONNECTED, continuous reception
  m.fach_extra_power = milliwatts(400.0);   // short-DRX
  m.tx_extra_power = milliwatts(1500.0);
  m.dch_tail = 6.0;   // inactivity timer before short DRX
  m.fach_tail = 4.0;  // short DRX before RRC release
  m.idle_to_dch_delay = 0.26;
  m.fach_to_dch_delay = 0.1;
  return m;
}

}  // namespace etrain::radio
