#include "radio/cdrx.h"

#include <algorithm>
#include <stdexcept>

namespace etrain::radio {

std::string to_string(CdrxState s) {
  switch (s) {
    case CdrxState::kActive: return "ACTIVE";
    case CdrxState::kShortDrx: return "SHORT_DRX";
    case CdrxState::kLongDrx: return "LONG_DRX";
    case CdrxState::kIdle: return "IDLE";
  }
  return "?";
}

Watts CdrxParams::duty_extra_power(Duration cycle) const {
  const Duration on = std::min(on_duration, cycle);
  return (on * active_extra_power + (cycle - on) * sleep_extra_power) / cycle;
}

void CdrxParams::validate() const {
  if (!(inactivity > 0.0)) {
    throw std::invalid_argument("CdrxParams: inactivity must be positive");
  }
  if (!(on_duration > 0.0) || !(short_cycle > 0.0) || !(long_cycle > 0.0)) {
    throw std::invalid_argument(
        "CdrxParams: on_duration and cycle lengths must be positive");
  }
  if (on_duration > short_cycle || short_cycle > long_cycle) {
    throw std::invalid_argument(
        "CdrxParams: need on_duration <= short_cycle <= long_cycle");
  }
  if (short_window < 0.0 || long_window < 0.0) {
    throw std::invalid_argument("CdrxParams: windows must be non-negative");
  }
  if (active_extra_power < sleep_extra_power || sleep_extra_power < 0.0) {
    throw std::invalid_argument(
        "CdrxParams: need active power >= sleep power >= 0");
  }
  if (short_wake_delay < 0.0 || long_wake_delay < 0.0 ||
      idle_wake_delay < 0.0) {
    throw std::invalid_argument(
        "CdrxParams: wake delays must be non-negative");
  }
}

PowerModel CdrxParams::to_power_model() const {
  validate();
  PowerModel m;
  m.name = "LteCdrx";
  m.idle_power = idle_power;
  m.dch_extra_power = active_extra_power;
  m.fach_extra_power = duty_extra_power(short_cycle);
  m.tx_extra_power = tx_extra_power;
  m.dch_tail = inactivity;
  m.fach_tail = short_window;
  m.idle_to_dch_delay = idle_wake_delay;
  m.fach_to_dch_delay = short_wake_delay;
  if (long_window > 0.0) {
    m.extra_tail.push_back(TailPhase{long_window, duty_extra_power(long_cycle),
                                     long_wake_delay});
  }
  return m;
}

CdrxStateMachine::CdrxStateMachine(const CdrxParams& params)
    : params_(params) {
  params_.validate();
}

void CdrxStateMachine::check_monotone(TimePoint t) {
  if (t < last_event_) {
    throw std::invalid_argument("CdrxStateMachine: time went backwards");
  }
  last_event_ = t;
}

void CdrxStateMachine::on_transmission_start(TimePoint t) {
  check_monotone(t);
  if (tx_start_.has_value()) {
    throw std::logic_error("CdrxStateMachine: already transmitting");
  }
  tx_start_ = t;
}

void CdrxStateMachine::on_transmission_end(TimePoint t) {
  check_monotone(t);
  if (!tx_start_.has_value()) {
    throw std::logic_error("CdrxStateMachine: no transmission in flight");
  }
  tx_start_.reset();
  last_end_ = t;
}

CdrxState CdrxStateMachine::state_at(TimePoint t) const {
  if (t < last_event_) {
    throw std::invalid_argument("CdrxStateMachine: query before last event");
  }
  if (tx_start_.has_value()) return CdrxState::kActive;
  if (!last_end_.has_value()) return CdrxState::kIdle;
  const Duration elapsed = t - *last_end_;
  if (elapsed < params_.inactivity) return CdrxState::kActive;
  if (elapsed < params_.inactivity + params_.short_window) {
    return CdrxState::kShortDrx;
  }
  if (elapsed <
      params_.inactivity + params_.short_window + params_.long_window) {
    return CdrxState::kLongDrx;
  }
  return CdrxState::kIdle;
}

Watts CdrxStateMachine::power_at(TimePoint t) const {
  if (tx_start_.has_value() && t >= *tx_start_) {
    return params_.idle_power + params_.tx_extra_power;
  }
  switch (state_at(t)) {
    case CdrxState::kActive:
      return params_.idle_power + params_.active_extra_power;
    case CdrxState::kShortDrx:
      return params_.idle_power +
             params_.duty_extra_power(params_.short_cycle);
    case CdrxState::kLongDrx:
      return params_.idle_power + params_.duty_extra_power(params_.long_cycle);
    case CdrxState::kIdle:
      return params_.idle_power;
  }
  return params_.idle_power;
}

Duration CdrxStateMachine::promotion_delay_at(TimePoint t) const {
  switch (state_at(t)) {
    case CdrxState::kActive: return 0.0;
    case CdrxState::kShortDrx: return params_.short_wake_delay;
    case CdrxState::kLongDrx: return params_.long_wake_delay;
    case CdrxState::kIdle: return params_.idle_wake_delay;
  }
  return params_.idle_wake_delay;
}

}  // namespace etrain::radio
