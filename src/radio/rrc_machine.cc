#include "radio/rrc_machine.h"

namespace etrain::radio {

void RrcStateMachine::check_monotone(TimePoint t) const {
  if (t < last_event_ - 1e-9) {
    throw std::invalid_argument("RrcStateMachine: time moved backwards");
  }
}

void RrcStateMachine::trace_transition(TimePoint t, RrcState to) {
  if (to == traced_state_) return;
  ETRAIN_TRACE(trace_, obs::TraceEvent::rrc_transition(
                           t, static_cast<std::int32_t>(traced_state_),
                           static_cast<std::int64_t>(to)));
  traced_state_ = to;
}

void RrcStateMachine::flush_tail_transitions(TimePoint t) {
  if (trace_ == nullptr || tx_start_.has_value() || !last_end_.has_value()) {
    return;
  }
  // The demotion instants are fixed by the last transmission's end; emit
  // the ones already in the past at time t.
  const TimePoint fach_at = *last_end_ + model_.dch_tail;
  const TimePoint idle_at = *last_end_ + model_.tail_time();
  if (traced_state_ == RrcState::kDch && t >= fach_at) {
    trace_transition(fach_at, RrcState::kFach);
  }
  if (traced_state_ == RrcState::kFach && t >= idle_at) {
    trace_transition(idle_at, RrcState::kIdle);
  }
}

void RrcStateMachine::on_transmission_start(TimePoint t) {
  check_monotone(t);
  if (tx_start_.has_value()) {
    throw std::logic_error("RrcStateMachine: transmission already active");
  }
  // Retroactively announce the tail demotions that elapsed since the last
  // transmission, then the promotion this transmission causes.
  flush_tail_transitions(t);
  tx_start_ = t;
  last_event_ = t;
  trace_transition(t, RrcState::kDch);
}

void RrcStateMachine::on_transmission_end(TimePoint t) {
  check_monotone(t);
  if (!tx_start_.has_value()) {
    throw std::logic_error("RrcStateMachine: no transmission active");
  }
  if (t < *tx_start_) {
    throw std::invalid_argument("RrcStateMachine: end before start");
  }
  tx_start_.reset();
  last_end_ = t;
  last_event_ = t;
}

RrcState RrcStateMachine::state_at(TimePoint t) const {
  check_monotone(t);
  if (tx_start_.has_value()) return RrcState::kDch;
  if (!last_end_.has_value()) return RrcState::kIdle;
  const Duration elapsed = t - *last_end_;
  if (elapsed < model_.dch_tail) return RrcState::kDch;
  if (elapsed < model_.tail_time()) return RrcState::kFach;
  return RrcState::kIdle;
}

Duration RrcStateMachine::promotion_delay_at(TimePoint t) const {
  switch (state_at(t)) {
    case RrcState::kDch: return 0.0;
    case RrcState::kFach: return model_.fach_to_dch_delay;
    case RrcState::kIdle: return model_.idle_to_dch_delay;
  }
  return 0.0;
}

Watts RrcStateMachine::power_at(TimePoint t) const {
  if (tx_start_.has_value()) {
    return model_.idle_power + model_.tx_extra_power;
  }
  return model_.idle_power + model_.extra_power(state_at(t));
}

}  // namespace etrain::radio
