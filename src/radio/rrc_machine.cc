#include "radio/rrc_machine.h"

namespace etrain::radio {

void RrcStateMachine::check_monotone(TimePoint t) const {
  if (t < last_event_ - 1e-9) {
    throw std::invalid_argument("RrcStateMachine: time moved backwards");
  }
}

void RrcStateMachine::on_transmission_start(TimePoint t) {
  check_monotone(t);
  if (tx_start_.has_value()) {
    throw std::logic_error("RrcStateMachine: transmission already active");
  }
  tx_start_ = t;
  last_event_ = t;
}

void RrcStateMachine::on_transmission_end(TimePoint t) {
  check_monotone(t);
  if (!tx_start_.has_value()) {
    throw std::logic_error("RrcStateMachine: no transmission active");
  }
  if (t < *tx_start_) {
    throw std::invalid_argument("RrcStateMachine: end before start");
  }
  tx_start_.reset();
  last_end_ = t;
  last_event_ = t;
}

RrcState RrcStateMachine::state_at(TimePoint t) const {
  check_monotone(t);
  if (tx_start_.has_value()) return RrcState::kDch;
  if (!last_end_.has_value()) return RrcState::kIdle;
  const Duration elapsed = t - *last_end_;
  if (elapsed < model_.dch_tail) return RrcState::kDch;
  if (elapsed < model_.tail_time()) return RrcState::kFach;
  return RrcState::kIdle;
}

Duration RrcStateMachine::promotion_delay_at(TimePoint t) const {
  switch (state_at(t)) {
    case RrcState::kDch: return 0.0;
    case RrcState::kFach: return model_.fach_to_dch_delay;
    case RrcState::kIdle: return model_.idle_to_dch_delay;
  }
  return 0.0;
}

Watts RrcStateMachine::power_at(TimePoint t) const {
  if (tx_start_.has_value()) {
    return model_.idle_power + model_.tx_extra_power;
  }
  return model_.idle_power + model_.extra_power(state_at(t));
}

}  // namespace etrain::radio
