// 3G (UMTS) radio power model, Sec. II-C / Sec. III-A of the paper.
//
// The radio has three RRC states. A transmission promotes the interface to
// DCH; after the transmission ends the interface lingers in DCH for delta_dch
// seconds ("the tail"), demotes to FACH for another delta_fach seconds, and
// only then returns to IDLE. The paper measures, on a Samsung Galaxy S4 in a
// TD-SCDMA network:
//
//   p~_D (DCH power above idle)  = 700 mW
//   p~_F (FACH power above idle) = 450 mW
//   delta_D = 10 s, delta_F = 7.5 s
//
// giving a full-tail wastage of 0.7*10 + 0.45*7.5 = 10.375 J, matching the
// ~10.91 J per-heartbeat tail cost reported in Sec. II-D.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"

namespace etrain::radio {

/// RRC (Radio Resource Control) states of the 3G interface.
enum class RrcState {
  kIdle,  ///< low-power idle channel; no dedicated resources
  kFach,  ///< forward access channel; shared low-rate channel
  kDch,   ///< dedicated channel; full-rate, highest power
};

std::string to_string(RrcState s);

/// One additional tail phase after the FACH window. The classic 3G model
/// needs none; duty-cycled radios (LTE/5G CDRX long-DRX windows) compile
/// their extra sleep stages down to these. Energy-wise an extra phase bills
/// like a FACH extension: `extra_power` above idle for up to `length`
/// seconds, and a transmission starting inside the phase pays `wake_delay`
/// of promotion.
struct TailPhase {
  Duration length = 0.0;
  Watts extra_power = 0.0;
  Duration wake_delay = 0.0;
};

/// All tunable physical parameters of the radio. Immutable value type;
/// construct via the named factory presets below or designated initializers.
struct PowerModel {
  /// Preset name for provenance records (run reports, traces). The named
  /// factories below fill it; hand-built models keep "custom". Purely
  /// descriptive — no physics reads it.
  std::string name = "custom";

  /// Absolute baseline power of the device with the radio idle and the
  /// screen off (everything else in the paper is measured relative to this).
  Watts idle_power = milliwatts(20.0);

  /// Extra power (above idle) while camped on DCH but not actively
  /// transmitting — the "tail" power. Paper: 700 mW.
  Watts dch_extra_power = milliwatts(700.0);

  /// Extra power (above idle) while camped on FACH. Paper: 450 mW.
  Watts fach_extra_power = milliwatts(450.0);

  /// Extra power (above idle) while bits are actually in flight. The paper
  /// models transmission energy as proportional to transmission time; the
  /// constant of proportionality is this. Measured 3G uplink bursts sit
  /// above the DCH floor.
  Watts tx_extra_power = milliwatts(1200.0);

  /// DCH inactivity timer delta_D. Paper: 10 s.
  Duration dch_tail = 10.0;

  /// FACH inactivity timer delta_F. Paper: 7.5 s.
  Duration fach_tail = 7.5;

  /// RRC promotion latencies. The paper's analytical model omits them (its
  /// Eq. for E_tail has no promotion term), so the paper-faithful preset
  /// zeroes them; the realistic preset enables them for the ablation bench.
  /// During a promotion the radio burns DCH power but moves no data.
  Duration idle_to_dch_delay = 0.0;
  Duration fach_to_dch_delay = 0.0;

  /// Extra tail phases after the FACH window (empty for the 3G presets —
  /// every formula below reduces bit-for-bit to the classic two-phase model
  /// when this is empty). CDRX models put their long-DRX window here.
  std::vector<TailPhase> extra_tail;

  /// Combined length of the extra phases (0 when none).
  Duration extra_tail_time() const {
    Duration sum = 0.0;
    for (const TailPhase& p : extra_tail) sum += p.length;
    return sum;
  }

  /// Total tail time T_tail = delta_D + delta_F (+ any extra phases).
  Duration tail_time() const {
    return dch_tail + fach_tail + extra_tail_time();
  }

  /// Energy of one complete, uninterrupted tail.
  Joules full_tail_energy() const {
    Joules extra = 0.0;
    for (const TailPhase& p : extra_tail) extra += p.extra_power * p.length;
    return dch_extra_power * dch_tail + fach_extra_power * fach_tail + extra;
  }

  /// The paper's tail-energy wastage function E_tail(Delta): the extra
  /// energy burned in a gap of length `gap` between the end of one
  /// transmission and the start of the next (Sec. III-A, four cases).
  Joules tail_energy(Duration gap) const;

  /// Extra power (above idle) of the given state when not transmitting.
  Watts extra_power(RrcState s) const;

  /// RRC promotion latency a transmission pays when it starts `elapsed`
  /// seconds after the previous activity ended: zero inside the DCH
  /// window, fach_to_dch_delay in the FACH window, each extra phase's
  /// wake_delay inside it, idle_to_dch_delay past the whole tail. The
  /// slotted harness's Uplink and the gateway's ClientSession both derive
  /// their setup phases from this single function.
  Duration promotion_delay_after_gap(Duration elapsed) const;

  /// Paper-faithful Samsung Galaxy S4 TD-SCDMA parameters as *measured* on
  /// the device (Sec. II-C/II-D, Fig. 4): delta_D = 10 s, delta_F = 7.5 s,
  /// full tail 10.375 J ~ the reported 10.91 J per heartbeat. Used by the
  /// controlled-experiment reproductions (Figs. 1, 2, 4, 10, 11).
  static PowerModel PaperUmts3G();

  /// The paper's *simulation* parameter set (Sec. VI-A "other simulation
  /// settings"): "the duration of tail time delta_T = 10 s, and delta_F =
  /// 7.5 s" — i.e. a 10 s TOTAL tail with 2.5 s of DCH. Full tail 5.125 J.
  /// Used by the trace-driven simulation reproductions (Figs. 7, 8); the
  /// paper's absolute joule ranges in those figures only make sense with
  /// this set.
  static PowerModel PaperSimulation();

  /// Same radio with typical RRC promotion latencies enabled; used by the
  /// ablation study to show the model generalizes.
  static PowerModel Realistic3G();

  /// LTE-flavoured parameter set (continuous-reception tail + short DRX
  /// tail), demonstrating that the eTrain scheduler is radio-agnostic.
  static PowerModel LteDrx();

  /// Fast dormancy (related work, Sec. VII): the device releases the
  /// channel almost immediately after each transmission. Tails shrink to
  /// nearly nothing, but every transmission now starts from IDLE and pays
  /// the promotion latency and signaling — the alternative tail-energy cure
  /// the paper argues against. Used by the ablation bench.
  static PowerModel FastDormancy3G();

  /// Wi-Fi in power-save mode, expressed in the same state machine: "DCH"
  /// is the awake state after a frame exchange (short ~200 ms timeout
  /// before dozing), there is no FACH analogue, and waking from doze costs
  /// a brief high-power poll ("promotion"). idle_power is 0 because the
  /// device baseline is already billed by the cellular model when both
  /// radios coexist. Used by the multi-interface extension.
  static PowerModel WifiPsm();
};

}  // namespace etrain::radio
