#include "radio/transmission_log.h"

#include <stdexcept>

namespace etrain::radio {

void TransmissionLog::add(const Transmission& tx) {
  if (tx.duration < 0.0 || tx.setup < 0.0) {
    throw std::invalid_argument("Transmission with negative duration/setup");
  }
  if (!entries_.empty()) {
    const Transmission& prev = entries_.back();
    if (tx.start < prev.start) {
      throw std::invalid_argument("TransmissionLog entries out of order");
    }
    if (tx.start < prev.end() - 1e-9) {
      throw std::invalid_argument(
          "TransmissionLog entries overlap (radio is serialized)");
    }
  }
  entries_.push_back(tx);
}

TimePoint TransmissionLog::last_end() const {
  return entries_.empty() ? kTimeZero : entries_.back().end();
}

Bytes TransmissionLog::total_bytes() const {
  Bytes sum = 0;
  for (const auto& t : entries_) sum += t.bytes;
  return sum;
}

Bytes TransmissionLog::total_bytes(TxKind kind) const {
  Bytes sum = 0;
  for (const auto& t : entries_) {
    if (t.kind == kind) sum += t.bytes;
  }
  return sum;
}

std::size_t TransmissionLog::failed_count() const {
  std::size_t n = 0;
  for (const auto& t : entries_) {
    if (t.failed) ++n;
  }
  return n;
}

Duration TransmissionLog::failed_airtime() const {
  Duration sum = 0.0;
  for (const auto& t : entries_) {
    if (t.failed) sum += t.setup + t.duration;
  }
  return sum;
}

std::size_t TransmissionLog::count(TxKind kind) const {
  std::size_t n = 0;
  for (const auto& t : entries_) {
    if (t.kind == kind) ++n;
  }
  return n;
}

}  // namespace etrain::radio
