#include "radio/model_registry.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/spec.h"

namespace etrain::radio {

BytesPerSecond LoraLinkParams::data_rate() const {
  // Airtime doubles per spreading-factor step (minus the sf chips-per-
  // symbol gain); anchor the familiar mid-range SF9 at ~1.1 kB/s.
  return 1100.0 * (spreading_factor / 9.0) *
         std::pow(2.0, 9.0 - spreading_factor);
}

double RadioParams::get(const std::string& key, double fallback) const {
  if (std::find(consumed_.begin(), consumed_.end(), key) == consumed_.end()) {
    consumed_.push_back(key);
  }
  const auto it = knobs_.find(key);
  return it == knobs_.end() ? fallback : it->second;
}

bool RadioParams::has(const std::string& key) const {
  if (std::find(consumed_.begin(), consumed_.end(), key) == consumed_.end()) {
    consumed_.push_back(key);
  }
  return knobs_.count(key) > 0;
}

std::vector<std::string> RadioParams::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : knobs_) {
    if (std::find(consumed_.begin(), consumed_.end(), key) ==
        consumed_.end()) {
      out.push_back(key);
    }
  }
  return out;
}

void ModelRegistry::register_model(const std::string& name,
                                   const std::string& help, Factory factory) {
  if (!common::valid_spec_name(name)) {
    throw std::invalid_argument("ModelRegistry: invalid radio name '" + name +
                                "'");
  }
  if (!factory) {
    throw std::invalid_argument("ModelRegistry: null factory for '" + name +
                                "'");
  }
  if (!entries_.emplace(name, Entry{help, std::move(factory)}).second) {
    throw std::invalid_argument("ModelRegistry: duplicate radio '" + name +
                                "'");
  }
}

bool ModelRegistry::contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

const std::string& ModelRegistry::help(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::invalid_argument("ModelRegistry: unknown radio '" + name +
                                "'");
  }
  return it->second.help;
}

RadioModel ModelRegistry::make(const std::string& spec) const {
  common::ParsedSpec parsed =
      common::parse_spec(spec, "radio", /*allow_flags=*/true);
  const auto it = entries_.find(parsed.name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& n : names()) {
      known += known.empty() ? n : ", " + n;
    }
    throw std::invalid_argument("unknown radio '" + parsed.name +
                                "' (known: " + known + ")");
  }
  const RadioParams params(std::move(parsed.knobs), std::move(parsed.flags));
  RadioModel model = it->second.factory(params);
  const auto leftover = params.unconsumed();
  if (!leftover.empty()) {
    std::string text;
    for (const auto& k : leftover) text += text.empty() ? k : ", " + k;
    throw std::invalid_argument("radio '" + parsed.name +
                                "': unknown knob(s) " + text + " — " +
                                it->second.help);
  }
  model.spec = spec;
  return model;
}

namespace {

/// Exactly one (or zero -> `fallback`) flag out of `allowed`.
std::string single_flag(const RadioParams& params, const std::string& radio,
                        const std::vector<std::string>& allowed,
                        const std::string& fallback) {
  std::string chosen;
  for (const std::string& flag : params.flags()) {
    if (std::find(allowed.begin(), allowed.end(), flag) == allowed.end()) {
      std::string known;
      for (const auto& a : allowed) known += known.empty() ? a : ", " + a;
      throw std::invalid_argument("radio '" + radio + "': unknown flag '" +
                                  flag + "' (known: " +
                                  (known.empty() ? "none" : known) + ")");
    }
    if (!chosen.empty()) {
      throw std::invalid_argument("radio '" + radio +
                                  "': conflicting flags '" + chosen +
                                  "' and '" + flag + "'");
    }
    chosen = flag;
  }
  return chosen.empty() ? fallback : chosen;
}

/// Applies the shared PowerModel override knobs. Any override marks the
/// preset name with a '*' so provenance never claims stock parameters for
/// a tweaked radio.
void apply_power_overrides(PowerModel& m, const RadioParams& params) {
  // Fields are only written when the knob is present: presets must come out
  // bit-identical to their raw parameter blocks (a mW round-trip of an
  // untouched field would shift it by an ULP and break the byte-identity
  // contract on existing reports).
  bool touched = false;
  const auto power_knob = [&](const char* key, Watts& field) {
    if (!params.has(key)) return;
    field = milliwatts(params.get(key, 0.0));
    touched = true;
  };
  const auto time_knob = [&](const char* key, Duration& field) {
    if (!params.has(key)) return;
    field = params.get(key, 0.0);
    touched = true;
  };
  power_knob("idle_mw", m.idle_power);
  power_knob("dch_mw", m.dch_extra_power);
  power_knob("fach_mw", m.fach_extra_power);
  power_knob("tx_mw", m.tx_extra_power);
  time_knob("dch_tail", m.dch_tail);
  time_knob("fach_tail", m.fach_tail);
  time_knob("idle_to_dch", m.idle_to_dch_delay);
  time_knob("fach_to_dch", m.fach_to_dch_delay);
  if (touched) m.name += "*";
}

constexpr const char* kPowerKnobHelp =
    "idle_mw, dch_mw, fach_mw, tx_mw, dch_tail, fach_tail, idle_to_dch, "
    "fach_to_dch";

/// The raw 3G parameter blocks. PowerModel's named factories forward to
/// these via the registry, so the numbers live here and nowhere else.
PowerModel three_g_block(const std::string& preset) {
  PowerModel m;  // field defaults ARE the paper's measured S4 parameters
  if (preset == "paper") {
    m.name = "PaperUmts3G";
  } else if (preset == "sim") {
    m.name = "PaperSimulation";
    m.dch_tail = 2.5;
    m.fach_tail = 7.5;
  } else if (preset == "realistic") {
    m.name = "Realistic3G";
    m.idle_to_dch_delay = 2.0;
    m.fach_to_dch_delay = 1.5;
  } else {  // fast_dormancy
    m.name = "FastDormancy3G";
    m.dch_tail = 0.3;
    m.fach_tail = 0.2;
    m.idle_to_dch_delay = 2.0;
    m.fach_to_dch_delay = 1.5;
  }
  return m;
}

ModelRegistry build_registry() {
  ModelRegistry r;
  r.register_model(
      "3g",
      std::string("flags: paper (default), sim, realistic, fast_dormancy; "
                  "knobs: ") +
          kPowerKnobHelp,
      [](const RadioParams& p) {
        RadioModel model;
        model.interface_name = "cellular";
        model.power = three_g_block(single_flag(
            p, "3g", {"paper", "sim", "realistic", "fast_dormancy"},
            "paper"));
        apply_power_overrides(model.power, p);
        model.bandwidth = p.get("bandwidth", 120.0e3);
        return model;
      });
  r.register_model(
      "wifi", std::string("knobs: bandwidth, ") + kPowerKnobHelp,
      [](const RadioParams& p) {
        RadioModel model;
        model.interface_name = "wifi";
        PowerModel m;
        m.name = "WifiPsm";
        m.idle_power = 0.0;  // doze overhead folded into the device baseline
        m.dch_extra_power = milliwatts(600.0);  // awake, post-exchange
        m.fach_extra_power = 0.0;
        m.tx_extra_power = milliwatts(800.0);
        m.dch_tail = 0.2;  // PSM timeout
        m.fach_tail = 0.0;
        m.idle_to_dch_delay = 0.05;  // doze wake-up / PS-poll
        m.fach_to_dch_delay = 0.0;
        apply_power_overrides(m, p);
        model.power = m;
        model.bandwidth = p.get("bandwidth", 2.0e6);
        return model;
      });
  r.register_model(
      "lte_drx",
      std::string("legacy three-state LTE DRX approximation; knobs: "
                  "bandwidth, ") +
          kPowerKnobHelp,
      [](const RadioParams& p) {
        RadioModel model;
        model.interface_name = "lte";
        PowerModel m;
        m.name = "LteDrx";
        m.idle_power = milliwatts(25.0);
        m.dch_extra_power = milliwatts(1000.0);  // CONNECTED, continuous rx
        m.fach_extra_power = milliwatts(400.0);  // short-DRX
        m.tx_extra_power = milliwatts(1500.0);
        m.dch_tail = 6.0;   // inactivity timer before short DRX
        m.fach_tail = 4.0;  // short DRX before RRC release
        m.idle_to_dch_delay = 0.26;
        m.fach_to_dch_delay = 0.1;
        apply_power_overrides(m, p);
        model.power = m;
        model.bandwidth = p.get("bandwidth", 4.0e6);
        return model;
      });
  r.register_model(
      "lte_cdrx",
      "knobs: inactivity, on_duration, drx_short, short_window, drx_long, "
      "long_window, active_mw, sleep_mw, tx_mw, idle_mw, wake_short, "
      "wake_long, wake_idle, bandwidth",
      [](const RadioParams& p) {
        CdrxParams c;
        c.inactivity = p.get("inactivity", c.inactivity);
        c.on_duration = p.get("on_duration", c.on_duration);
        c.short_cycle = p.get("drx_short", c.short_cycle);
        c.short_window = p.get("short_window", c.short_window);
        c.long_cycle = p.get("drx_long", c.long_cycle);
        c.long_window = p.get("long_window", c.long_window);
        c.active_extra_power =
            milliwatts(p.get("active_mw", c.active_extra_power * 1000.0));
        c.sleep_extra_power =
            milliwatts(p.get("sleep_mw", c.sleep_extra_power * 1000.0));
        c.tx_extra_power =
            milliwatts(p.get("tx_mw", c.tx_extra_power * 1000.0));
        c.idle_power = milliwatts(p.get("idle_mw", c.idle_power * 1000.0));
        c.short_wake_delay = p.get("wake_short", c.short_wake_delay);
        c.long_wake_delay = p.get("wake_long", c.long_wake_delay);
        c.idle_wake_delay = p.get("wake_idle", c.idle_wake_delay);
        RadioModel model;
        model.interface_name = "lte";
        model.cdrx = c;
        model.power = c.to_power_model();  // validates
        model.bandwidth = p.get("bandwidth", 4.0e6);
        return model;
      });
  r.register_model(
      "lora",
      "knobs: sf, ack_timeout, max_retries, heartbeat_period, "
      "heartbeat_bytes, rx_window, rx_mw, tx_mw, wake",
      [](const RadioParams& p) {
        LoraLinkParams link;
        link.spreading_factor = p.get("sf", link.spreading_factor);
        if (link.spreading_factor < 5.0 || link.spreading_factor > 12.0) {
          throw std::invalid_argument(
              "radio 'lora': sf must be within [5, 12]");
        }
        link.ack_timeout = p.get("ack_timeout", link.ack_timeout);
        link.max_retries =
            static_cast<int>(p.get("max_retries", link.max_retries));
        link.heartbeat_period =
            p.get("heartbeat_period", link.heartbeat_period);
        link.heartbeat_bytes = static_cast<Bytes>(p.get(
            "heartbeat_bytes", static_cast<double>(link.heartbeat_bytes)));
        if (link.ack_timeout <= 0.0 || link.max_retries < 0 ||
            link.heartbeat_period < 0.0) {
          throw std::invalid_argument(
              "radio 'lora': ack_timeout must be positive, max_retries and "
              "heartbeat_period non-negative");
        }
        RadioModel model;
        model.interface_name = "lora";
        model.lora = link;
        PowerModel m;
        m.name = "LoRaP2P";
        m.idle_power = 0.0;  // second radio: baseline billed by cellular
        // The post-transmission RX window (ACK wait / RX1+RX2 slots) plays
        // the DCH-tail role; there is no FACH analogue.
        m.dch_extra_power = milliwatts(p.get("rx_mw", 80.0));
        m.fach_extra_power = 0.0;
        m.tx_extra_power = milliwatts(p.get("tx_mw", 400.0));
        m.dch_tail = p.get("rx_window", 1.0);
        m.fach_tail = 0.0;
        m.idle_to_dch_delay = p.get("wake", 0.05);  // wake + preamble
        m.fach_to_dch_delay = 0.0;
        model.power = m;
        model.bandwidth = link.data_rate();
        return model;
      });
  return r;
}

}  // namespace

const ModelRegistry& builtin_model_registry() {
  static const ModelRegistry registry = build_registry();
  return registry;
}

RadioModel make_radio_model(const std::string& spec) {
  return builtin_model_registry().make(spec);
}

}  // namespace etrain::radio
