// Online RRC state machine.
//
// Tracks the radio's state as transmissions start and finish, answering
// "what state is the interface in at time t?" and "how long until it can
// move data?" for the DES-driven full-system simulation. The offline
// counterpart (EnergyMeter) replays a finished TransmissionLog; both agree
// by construction and the tests cross-check them.
#pragma once

#include <optional>
#include <stdexcept>

#include "obs/trace.h"
#include "radio/power_model.h"

namespace etrain::radio {

class RrcStateMachine {
 public:
  explicit RrcStateMachine(const PowerModel& model) : model_(model) {}

  /// Marks the start of (the data phase of) a transmission at time t.
  /// Precondition: not already transmitting, t monotone.
  void on_transmission_start(TimePoint t);

  /// Marks the end of a transmission at time t (t >= matching start).
  void on_transmission_end(TimePoint t);

  bool transmitting() const { return tx_start_.has_value(); }

  /// State of the interface at time t, which must be >= the last recorded
  /// event. During an active transmission the state is DCH.
  RrcState state_at(TimePoint t) const;

  /// RRC promotion latency the radio needs before data can flow if a
  /// transmission is requested at time t. Zero when already in DCH
  /// (piggybacking inside the tail — exactly what eTrain exploits).
  Duration promotion_delay_at(TimePoint t) const;

  /// Instantaneous total power at time t (baseline + state/tx extra).
  Watts power_at(TimePoint t) const;

  /// Time of the end of the most recent transmission; nullopt if none yet.
  std::optional<TimePoint> last_activity_end() const { return last_end_; }

  const PowerModel& model() const { return model_; }

  /// Attaches a trace sink (nullptr detaches). Every state change emits an
  /// RrcTransition event: promotions at their exact instant, tail demotions
  /// (DCH->FACH->IDLE) retroactively — their timestamps are only known to
  /// be final once the next transmission arrives, or when
  /// flush_tail_transitions() is called at end of run.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Emits the tail demotions that have already happened by time t (end of
  /// run / end of metering window). Idempotent per demotion.
  void flush_tail_transitions(TimePoint t);

 private:
  PowerModel model_;
  std::optional<TimePoint> tx_start_;
  std::optional<TimePoint> last_end_;
  TimePoint last_event_ = kTimeZero;
  obs::TraceSink* trace_ = nullptr;
  /// The state most recently announced on the trace; demotions emitted by
  /// flush_tail_transitions advance it so they are never emitted twice.
  RrcState traced_state_ = RrcState::kIdle;

  void check_monotone(TimePoint t) const;
  void trace_transition(TimePoint t, RrcState to);
};

}  // namespace etrain::radio
