// Online RRC state machine.
//
// Tracks the radio's state as transmissions start and finish, answering
// "what state is the interface in at time t?" and "how long until it can
// move data?" for the DES-driven full-system simulation. The offline
// counterpart (EnergyMeter) replays a finished TransmissionLog; both agree
// by construction and the tests cross-check them.
#pragma once

#include <optional>
#include <stdexcept>

#include "radio/power_model.h"

namespace etrain::radio {

class RrcStateMachine {
 public:
  explicit RrcStateMachine(const PowerModel& model) : model_(model) {}

  /// Marks the start of (the data phase of) a transmission at time t.
  /// Precondition: not already transmitting, t monotone.
  void on_transmission_start(TimePoint t);

  /// Marks the end of a transmission at time t (t >= matching start).
  void on_transmission_end(TimePoint t);

  bool transmitting() const { return tx_start_.has_value(); }

  /// State of the interface at time t, which must be >= the last recorded
  /// event. During an active transmission the state is DCH.
  RrcState state_at(TimePoint t) const;

  /// RRC promotion latency the radio needs before data can flow if a
  /// transmission is requested at time t. Zero when already in DCH
  /// (piggybacking inside the tail — exactly what eTrain exploits).
  Duration promotion_delay_at(TimePoint t) const;

  /// Instantaneous total power at time t (baseline + state/tx extra).
  Watts power_at(TimePoint t) const;

  /// Time of the end of the most recent transmission; nullopt if none yet.
  std::optional<TimePoint> last_activity_end() const { return last_end_; }

  const PowerModel& model() const { return model_; }

 private:
  PowerModel model_;
  std::optional<TimePoint> tx_start_;
  std::optional<TimePoint> last_end_;
  TimePoint last_event_ = kTimeZero;

  void check_monotone(TimePoint t) const;
};

}  // namespace etrain::radio
