// Battery accounting: converts joules into the battery-percentage and
// standby-time language the paper speaks (Sec. II-D: "Given a battery
// capacity of 1700 mAh with voltage 3.7 V, if the battery life is 10 hours,
// the smartphone will spend at least 6% of its battery capacity on sending
// heartbeats of only one app").
#pragma once

#include "common/time.h"

namespace etrain::radio {

class Battery {
 public:
  /// Defaults: the paper's 1700 mAh @ 3.7 V pack (Galaxy S4 era).
  explicit Battery(double capacity_mah = 1700.0, double volts = 3.7);

  /// Total stored energy when full.
  Joules capacity_joules() const { return capacity_joules_; }

  /// Fraction of the full battery a given energy represents, in [0, ..].
  double fraction_of_capacity(Joules energy) const;

  /// The paper's Sec. II-D arithmetic: with a battery lifetime of
  /// `battery_life`, how much of the capacity does spending `rate` watts
  /// continuously for that lifetime consume?
  double fraction_for_power(Watts rate, Duration battery_life) const;

  /// How long the full battery would last at a constant drain.
  Duration lifetime_at(Watts rate) const;

  /// Standby-time equivalent of an energy amount at a reference standby
  /// power: "2000 J corresponds to roughly 10 hours of standby time".
  Duration standby_equivalent(Joules energy, Watts standby_power) const;

 private:
  double capacity_joules_;
};

}  // namespace etrain::radio
