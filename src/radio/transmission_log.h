// The record of what the radio actually did during a run.
//
// Every scheduler variant ultimately produces a TransmissionLog; all energy
// numbers in the evaluation are computed by replaying that log against a
// PowerModel (see EnergyMeter). Keeping accounting separate from scheduling
// guarantees all policies are billed by exactly the same meter.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace etrain::radio {

/// Why a transmission happened; used for the per-category energy breakdowns
/// in Fig. 1(a) and Fig. 10(a).
enum class TxKind {
  kHeartbeat,  ///< a train app's keep-alive
  kData,       ///< a cargo app's application-layer packet
};

/// One serialized use of the uplink. Intervals in a log must not overlap
/// (constraint (3) of the paper's formulation: at most one transmission at a
/// time); EnergyMeter validates this.
struct Transmission {
  TimePoint start = 0.0;
  /// RRC promotion time preceding the data phase. The radio burns DCH power
  /// but moves no data during setup. Zero in the paper-faithful model.
  Duration setup = 0.0;
  Duration duration = 0.0;
  Bytes bytes = 0;
  TxKind kind = TxKind::kData;
  /// Index of the originating app within its category (train or cargo).
  int app_id = 0;
  /// Unique packet identifier for joining with delay metrics; -1 for
  /// heartbeats.
  std::int64_t packet_id = -1;
  /// Fault injection: true when this interval is a *failed* attempt — the
  /// radio burned the airtime but delivered nothing. The energy meter bills
  /// failed attempts like any other occupancy (that is the point: loss
  /// wastes energy); delivery metrics must skip them.
  bool failed = false;
  /// 1-based attempt number under the retransmission policy (1 = first
  /// try; only ever > 1 when a FaultPlan is active).
  int attempt = 1;

  /// Start of the data phase.
  TimePoint data_start() const { return start + setup; }
  /// End of radio occupancy.
  TimePoint end() const { return start + setup + duration; }
};

/// Append-only, time-ordered log of transmissions.
class TransmissionLog {
 public:
  /// Appends a transmission. Starts must be non-decreasing and must not
  /// overlap the previous entry; throws std::invalid_argument otherwise.
  void add(const Transmission& tx);

  const std::vector<Transmission>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const Transmission& operator[](std::size_t i) const { return entries_[i]; }

  /// End time of the last transmission; 0 for an empty log.
  TimePoint last_end() const;

  /// Total bytes moved, optionally filtered by kind.
  Bytes total_bytes() const;
  Bytes total_bytes(TxKind kind) const;
  std::size_t count(TxKind kind) const;

  /// Failed attempts in the log (0 without fault injection).
  std::size_t failed_count() const;
  /// Airtime (setup + duration) of failed attempts — the paper's "wasted
  /// energy" story, in seconds of radio occupancy that moved no data.
  Duration failed_airtime() const;

 private:
  std::vector<Transmission> entries_;
};

}  // namespace etrain::radio
