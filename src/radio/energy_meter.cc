#include "radio/energy_meter.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace etrain::radio {

namespace {

/// Splits the tail energy of a gap into its DCH and FACH components.
struct TailSplit {
  Joules dch = 0.0;
  Joules fach = 0.0;
};

TailSplit split_tail(const PowerModel& model, Duration gap) {
  TailSplit split;
  if (gap <= 0.0) return split;
  const Duration dch_part = std::min(gap, model.dch_tail);
  split.dch = model.dch_extra_power * dch_part;
  const Duration fach_part =
      std::clamp(gap - model.dch_tail, 0.0, model.fach_tail);
  split.fach = model.fach_extra_power * fach_part;
  // Extra tail phases (CDRX long-DRX windows) bill like FACH extensions,
  // into the FACH bucket — the ledger keeps its two-way tail split.
  Duration boundary = model.dch_tail + model.fach_tail;
  for (const TailPhase& p : model.extra_tail) {
    if (gap <= boundary) break;
    split.fach += p.extra_power * std::min(gap - boundary, p.length);
    boundary += p.length;
  }
  return split;
}

}  // namespace

EnergyReport measure_energy(const TransmissionLog& log,
                            const PowerModel& model, Duration horizon,
                            obs::TraceSink* trace) {
  if (horizon < log.last_end() - 1e-9) {
    throw std::invalid_argument(
        "measure_energy: horizon ends before the last transmission");
  }
  EnergyReport report;
  report.horizon = horizon;
  report.idle_baseline = model.idle_power * horizon;
  report.transmissions = log.size();

  const auto& entries = log.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Transmission& tx = entries[i];
    if (tx.setup > 0.0) ++report.promotions;
    if (i == 0 ||
        tx.start - entries[i - 1].end() >= model.tail_time() - 1e-9) {
      ++report.cold_starts;
    }
    const Joules data_energy = model.tx_extra_power * tx.duration;
    report.tx_energy += data_energy;
    report.setup_energy += model.dch_extra_power * tx.setup;
    report.tx_energy_by_kind[static_cast<std::size_t>(tx.kind)] +=
        data_energy;

    // The gap between this transmission's end and the next activity (or the
    // horizon). The follow-up transmission includes its setup phase, during
    // which the radio is already at DCH power, so the gap ends at the next
    // entry's `start`, not its data_start().
    const TimePoint gap_end =
        (i + 1 < entries.size()) ? entries[i + 1].start : horizon;
    const Duration gap = std::max(0.0, gap_end - tx.end());
    const TailSplit split = split_tail(model, gap);
    report.dch_tail_energy += split.dch;
    report.fach_tail_energy += split.fach;
    report.tail_energy_by_kind[static_cast<std::size_t>(tx.kind)] +=
        split.dch + split.fach;
    if (split.dch + split.fach > 0.0) {
      ETRAIN_TRACE(trace, obs::TraceEvent::tail_charge(
                              tx.end(), static_cast<std::int32_t>(tx.kind),
                              split.dch + split.fach, gap));
    }
    if (gap >= model.tail_time()) {
      ++report.full_tails;
    } else if (gap > 0.0) {
      ++report.truncated_tails;
    }
  }
  return report;
}

Watts power_at(const TransmissionLog& log, const PowerModel& model,
               TimePoint t) {
  const auto& entries = log.entries();
  // Find the first entry starting after t; the entry before it (if any)
  // governs the state at t.
  const auto it = std::upper_bound(
      entries.begin(), entries.end(), t,
      [](TimePoint v, const Transmission& tx) { return v < tx.start; });
  if (it == entries.begin()) return model.idle_power;  // before any activity
  const Transmission& prev = *std::prev(it);
  if (t < prev.data_start()) {
    return model.idle_power + model.dch_extra_power;  // promotion phase
  }
  if (t < prev.end()) {
    return model.idle_power + model.tx_extra_power;  // data in flight
  }
  const Duration elapsed = t - prev.end();
  if (elapsed < model.dch_tail) {
    return model.idle_power + model.dch_extra_power;
  }
  if (elapsed < model.dch_tail + model.fach_tail) {
    return model.idle_power + model.fach_extra_power;
  }
  Duration boundary = model.dch_tail + model.fach_tail;
  for (const TailPhase& p : model.extra_tail) {
    boundary += p.length;
    if (elapsed < boundary) return model.idle_power + p.extra_power;
  }
  return model.idle_power;
}

std::string to_string(const EnergyReport& report) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "EnergyReport over %.1f s: network %.2f J (tx %.2f, setup %.2f, "
      "DCH tail %.2f, FACH tail %.2f), idle %.2f J, total %.2f J; "
      "%zu transmissions, %zu full tails, %zu truncated, %zu promotions, "
      "%zu cold starts",
      report.horizon, report.network_energy(), report.tx_energy,
      report.setup_energy, report.dch_tail_energy, report.fach_tail_energy,
      report.idle_baseline, report.total_energy(), report.transmissions,
      report.full_tails, report.truncated_tails, report.promotions,
      report.cold_starts);
  return buf;
}

}  // namespace etrain::radio
