// LTE/5G connected-mode DRX (CDRX), expressed in the paper's piecewise-
// linear tail formalism.
//
// After a transmission the radio holds continuous reception for the
// inactivity timer, then cycles through short DRX (brief on-durations every
// short cycle), then long DRX (same duty cycling at a longer period), and
// finally releases the RRC connection. Energy-wise each stage is a
// constant-average-power window — the duty-cycled stages at
//
//   P_avg(cycle) = (on * P_active + (cycle - on) * P_sleep) / cycle
//
// — so the whole ladder compiles down to a PowerModel: inactivity -> the
// DCH window, the short-DRX window -> FACH, the long-DRX window -> one
// extra TailPhase. The offline EnergyMeter then bills CDRX runs with zero
// new code.
//
// Two implementations of the same semantics exist on purpose:
// CdrxStateMachine answers online state/power/promotion queries straight
// from the CdrxParams, while to_power_model() + EnergyMeter replay a
// finished log. tests/radio_cdrx_test.cpp cross-checks them on random
// transmission logs, mirroring the 3G RrcStateMachine/EnergyMeter pair.
#pragma once

#include <optional>
#include <string>

#include "radio/power_model.h"

namespace etrain::radio {

/// CDRX sleep-ladder stages (the CDRX analogue of RrcState).
enum class CdrxState {
  kActive,    ///< continuous reception; inactivity timer running
  kShortDrx,  ///< short DRX cycles
  kLongDrx,   ///< long DRX cycles
  kIdle,      ///< RRC released
};

std::string to_string(CdrxState s);

/// All tunable CDRX parameters. Durations in seconds, powers in watts
/// (constructed from the registry's *_mw knobs).
struct CdrxParams {
  /// Inactivity timer: continuous reception after the last activity.
  Duration inactivity = 10.0;
  /// On-duration per DRX cycle (shared by short and long cycles).
  Duration on_duration = 0.01;
  /// Short DRX cycle length and the total short-DRX window.
  Duration short_cycle = 0.02;
  Duration short_window = 0.64;
  /// Long DRX cycle length and the total long-DRX window before release.
  Duration long_cycle = 1.28;
  Duration long_window = 10.24;

  /// Absolute idle (RRC released) baseline power.
  Watts idle_power = milliwatts(25.0);
  /// Power above idle in continuous reception / during an on-duration.
  Watts active_extra_power = milliwatts(1000.0);
  /// Power above idle while dozing between on-durations.
  Watts sleep_extra_power = milliwatts(10.0);
  /// Power above idle with data in flight.
  Watts tx_extra_power = milliwatts(1500.0);

  /// Promotion latencies: resuming from short DRX (wait for the next
  /// on-duration), from long DRX, and a full RRC setup from idle.
  Duration short_wake_delay = 0.01;
  Duration long_wake_delay = 0.05;
  Duration idle_wake_delay = 0.26;

  /// Duty-cycled average power (above idle) of a DRX stage with the given
  /// cycle length.
  Watts duty_extra_power(Duration cycle) const;

  /// Throws std::invalid_argument on inconsistent parameters (non-positive
  /// timers, on_duration longer than a cycle, short cycle longer than
  /// long).
  void validate() const;

  /// Compiles the ladder to an equivalent PowerModel (name "LteCdrx"):
  /// same piecewise-linear tail energy, same promotion delays via
  /// promotion_delay_after_gap.
  PowerModel to_power_model() const;
};

/// Online CDRX tracker: answers "what stage is the radio in at t", "what
/// does it draw", and "how long until data can flow" as transmissions
/// start and finish. The API mirrors RrcStateMachine.
class CdrxStateMachine {
 public:
  explicit CdrxStateMachine(const CdrxParams& params);

  /// Marks the start of (the data phase of) a transmission at time t.
  /// Precondition: not already transmitting, t monotone.
  void on_transmission_start(TimePoint t);
  /// Marks the end of a transmission at time t (t >= matching start).
  void on_transmission_end(TimePoint t);

  bool transmitting() const { return tx_start_.has_value(); }

  /// Stage at time t (>= the last recorded event); kActive while a
  /// transmission is in flight.
  CdrxState state_at(TimePoint t) const;

  /// Average total power at time t (idle baseline + stage/tx extra).
  Watts power_at(TimePoint t) const;

  /// Promotion latency before data can flow for a transmission requested
  /// at time t; zero in continuous reception.
  Duration promotion_delay_at(TimePoint t) const;

  std::optional<TimePoint> last_activity_end() const { return last_end_; }
  const CdrxParams& params() const { return params_; }

 private:
  CdrxParams params_;
  std::optional<TimePoint> tx_start_;
  std::optional<TimePoint> last_end_;
  TimePoint last_event_ = kTimeZero;

  void check_monotone(TimePoint t);
};

}  // namespace etrain::radio
