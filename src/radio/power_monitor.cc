#include "radio/power_monitor.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace etrain::radio {

PowerMonitor::PowerMonitor(Duration sample_period, double supply_volts)
    : sample_period_(sample_period), supply_volts_(supply_volts) {
  if (sample_period <= 0.0 || supply_volts <= 0.0) {
    throw std::invalid_argument("PowerMonitor: non-positive parameter");
  }
}

std::vector<PowerSample> PowerMonitor::sample(const TransmissionLog& log,
                                              const PowerModel& model,
                                              Duration horizon) const {
  std::vector<PowerSample> trace;
  const auto n = static_cast<std::size_t>(std::ceil(horizon / sample_period_));
  trace.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TimePoint t = static_cast<double>(i) * sample_period_;
    const Watts p = power_at(log, model, t);
    trace.push_back(PowerSample{t, p, p / supply_volts_});
  }
  return trace;
}

Joules PowerMonitor::integrate(const std::vector<PowerSample>& trace) const {
  Joules total = 0.0;
  for (const auto& s : trace) total += s.power * sample_period_;
  return total;
}

}  // namespace etrain::radio
