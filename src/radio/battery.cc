#include "radio/battery.h"

#include <stdexcept>

namespace etrain::radio {

Battery::Battery(double capacity_mah, double volts)
    : capacity_joules_(capacity_mah / 1000.0 * volts * 3600.0) {
  if (capacity_mah <= 0.0 || volts <= 0.0) {
    throw std::invalid_argument("Battery: non-positive parameters");
  }
}

double Battery::fraction_of_capacity(Joules energy) const {
  if (energy < 0.0) {
    throw std::invalid_argument("Battery: negative energy");
  }
  return energy / capacity_joules_;
}

double Battery::fraction_for_power(Watts rate, Duration battery_life) const {
  if (rate < 0.0 || battery_life < 0.0) {
    throw std::invalid_argument("Battery: negative rate or lifetime");
  }
  return fraction_of_capacity(rate * battery_life);
}

Duration Battery::lifetime_at(Watts rate) const {
  if (rate <= 0.0) {
    throw std::invalid_argument("Battery: non-positive drain");
  }
  return capacity_joules_ / rate;
}

Duration Battery::standby_equivalent(Joules energy,
                                     Watts standby_power) const {
  if (standby_power <= 0.0) {
    throw std::invalid_argument("Battery: non-positive standby power");
  }
  if (energy < 0.0) {
    throw std::invalid_argument("Battery: negative energy");
  }
  return energy / standby_power;
}

}  // namespace etrain::radio
