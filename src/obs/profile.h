// Scoped-span wall-clock profiler for the bench pipelines.
//
// OBS_PROFILE_SCOPE("phase") charges the wall-clock time of the enclosing
// lexical scope to a node in a hierarchical call tree: nesting scopes
// produces child nodes, re-entering a scope accumulates into the same node.
// The benches instrument their coarse phases (generate -> simulate ->
// export) and parallel_map charges every pooled task, so a run report can
// say where the wall time of a sweep went without a external profiler.
//
// Threading model: each thread owns its own live tree (thread_local), so
// record-side cost is two steady_clock reads plus a short child scan — no
// locks on any hot path. Worker trees are registered once with the global
// Profiler under a mutex and stay owned by it after the thread exits;
// profiler_snapshot() merges every thread's tree by scope name into one
// deterministic-ordered ProfileNode tree. Take snapshots only when no
// worker is actively recording (i.e. after parallel work has joined, which
// is when the benches emit their reports).
//
// Wall-clock durations are inherently non-reproducible, which is why the
// run report quarantines the profile tree in its non-compared section
// (docs/determinism.md). Building with -DETRAIN_OBS_DISABLED compiles
// every OBS_PROFILE_SCOPE to ((void)0) and profiler_snapshot() to nullopt.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace etrain::obs {

/// One aggregated scope of the merged profile tree. `seconds` is the total
/// wall time charged to the scope itself (children's time is included —
/// scopes nest lexically); `calls` counts scope entries. Children are
/// sorted by name so snapshots have a deterministic shape (their timing
/// values still are not — see the header comment).
struct ProfileNode {
  std::string name;
  double seconds = 0.0;
  std::uint64_t calls = 0;
  std::vector<ProfileNode> children;

  const ProfileNode* child(const std::string& child_name) const {
    for (const auto& c : children) {
      if (c.name == child_name) return &c;
    }
    return nullptr;
  }
};

#if !defined(ETRAIN_OBS_DISABLED)

namespace profile_detail {

/// A live, single-thread tree node. Name pointers are the string literals
/// passed to OBS_PROFILE_SCOPE, so they outlive everything.
struct LiveNode {
  const char* name = "";
  double seconds = 0.0;
  std::uint64_t calls = 0;
  std::vector<std::unique_ptr<LiveNode>> children;

  LiveNode* child(const char* child_name) {
    for (auto& c : children) {
      if (c->name == child_name || std::strcmp(c->name, child_name) == 0) {
        return c.get();
      }
    }
    children.push_back(std::make_unique<LiveNode>());
    children.back()->name = child_name;
    return children.back().get();
  }
};

}  // namespace profile_detail

/// Process-wide collector of per-thread live trees. Use through
/// OBS_PROFILE_SCOPE / profiler_snapshot() / profiler_reset() — the class
/// itself only exists so tests can poke it directly.
class Profiler {
 public:
  static Profiler& instance() {
    static Profiler profiler;
    return profiler;
  }

  /// Enters `name` under the calling thread's current scope and makes it
  /// current. Returns the node to charge at exit.
  profile_detail::LiveNode* enter(const char* name) {
    ThreadState& state = tls();
    if (state.root == nullptr || state.epoch != epoch_) {
      state.root = register_root();
      state.epoch = epoch_;
      state.current = state.root.get();
    }
    profile_detail::LiveNode* node = state.current->child(name);
    ++node->calls;
    state.current = node;
    return node;
  }

  /// Leaves `node`, charging `seconds` and restoring `parent` as current.
  /// A null parent means the scope was the thread's outermost — current
  /// returns to the thread root, not to null (the next top-level scope on
  /// this thread enters under the root again).
  void leave(profile_detail::LiveNode* node,
             profile_detail::LiveNode* parent, double seconds) {
    node->seconds += seconds;
    ThreadState& state = tls();
    state.current = parent != nullptr ? parent : state.root.get();
  }

  profile_detail::LiveNode* current() {
    ThreadState& state = tls();
    return state.root == nullptr || state.epoch != epoch_ ? nullptr
                                                          : state.current;
  }

  /// Merges every registered thread tree into one ProfileNode tree rooted
  /// at "run", children sorted by name. Call only while no other thread is
  /// recording.
  ProfileNode snapshot() const {
    ProfileNode root;
    root.name = "run";
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& live : roots_) {
      merge_children(root, *live);
    }
    sort_tree(root);
    return root;
  }

  /// Discards every recorded scope. Must not be called while any scope is
  /// open on any thread (the benches never reset; tests reset between
  /// cases on one thread).
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    roots_.clear();
    ++epoch_;
  }

 private:
  struct ThreadState {
    std::shared_ptr<profile_detail::LiveNode> root;
    profile_detail::LiveNode* current = nullptr;
    std::uint64_t epoch = 0;
  };

  static ThreadState& tls() {
    static thread_local ThreadState state;
    return state;
  }

  std::shared_ptr<profile_detail::LiveNode> register_root() {
    auto root = std::make_shared<profile_detail::LiveNode>();
    root->name = "run";
    std::lock_guard<std::mutex> lock(mutex_);
    roots_.push_back(root);
    return root;
  }

  static void merge_children(ProfileNode& into,
                             const profile_detail::LiveNode& from) {
    for (const auto& live_child : from.children) {
      ProfileNode* target = nullptr;
      for (auto& existing : into.children) {
        if (existing.name == live_child->name) {
          target = &existing;
          break;
        }
      }
      if (target == nullptr) {
        into.children.push_back(ProfileNode{live_child->name, 0.0, 0, {}});
        target = &into.children.back();
      }
      target->seconds += live_child->seconds;
      target->calls += live_child->calls;
      merge_children(*target, *live_child);
    }
  }

  static void sort_tree(ProfileNode& node) {
    std::sort(node.children.begin(), node.children.end(),
              [](const ProfileNode& a, const ProfileNode& b) {
                return a.name < b.name;
              });
    for (auto& c : node.children) sort_tree(c);
  }

  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<profile_detail::LiveNode>> roots_;
  std::uint64_t epoch_ = 1;
};

/// RAII guard behind OBS_PROFILE_SCOPE. `name` must be a string literal
/// (or otherwise outlive the profiler).
class ProfileScope {
 public:
  explicit ProfileScope(const char* name)
      : parent_(Profiler::instance().current()),
        node_(Profiler::instance().enter(name)),
        start_(std::chrono::steady_clock::now()) {}

  ~ProfileScope() {
    const auto end = std::chrono::steady_clock::now();
    Profiler::instance().leave(
        node_, parent_, std::chrono::duration<double>(end - start_).count());
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  profile_detail::LiveNode* parent_;  ///< current before entry (may be null)
  profile_detail::LiveNode* node_;
  std::chrono::steady_clock::time_point start_;
};

/// The merged profile tree, or nullopt when nothing was recorded.
inline std::optional<ProfileNode> profiler_snapshot() {
  ProfileNode root = Profiler::instance().snapshot();
  if (root.children.empty()) return std::nullopt;
  return root;
}

inline void profiler_reset() { Profiler::instance().reset(); }

#else  // ETRAIN_OBS_DISABLED

inline std::optional<ProfileNode> profiler_snapshot() { return std::nullopt; }
inline void profiler_reset() {}

#endif  // ETRAIN_OBS_DISABLED

}  // namespace etrain::obs

#define ETRAIN_OBS_PP_CAT2(a, b) a##b
#define ETRAIN_OBS_PP_CAT(a, b) ETRAIN_OBS_PP_CAT2(a, b)

// Charges the wall time of the enclosing scope to `name` in the calling
// thread's profile tree. Compiles out under ETRAIN_OBS_DISABLED.
#if defined(ETRAIN_OBS_DISABLED)
#define OBS_PROFILE_SCOPE(name) ((void)0)
#else
#define OBS_PROFILE_SCOPE(name)             \
  ::etrain::obs::ProfileScope ETRAIN_OBS_PP_CAT( \
      obs_profile_scope_, __LINE__)(name)
#endif
