// Counters and histograms for per-run metrics.
//
// Instrumented components register named Counters/Histograms in a Registry
// once (at attach time) and then bump them through stable pointers — the
// hot path never does a name lookup. After a run, Registry::snapshot()
// freezes everything into a MetricsSnapshot, which rides along inside
// RunMetrics so sweeps and benches can report piggyback rates, gate-open
// counts and queue-cost distributions next to the energy numbers.
//
// Header-only and allocation-stable (deque storage), so any layer may
// include it without linking etrain_obs. Like TraceSink, a Registry is
// confined to one run on one thread.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace etrain::obs {

/// Quantile estimation over fixed histogram buckets (shared by Histogram
/// and HistogramSnapshot). The q-th quantile is located by walking the
/// cumulative counts to the bucket containing rank q * count, then
/// interpolating linearly inside that bucket; the first bucket's lower
/// edge and the overflow bucket's upper edge are tightened to the exact
/// observed min/max, so single-bucket histograms still report exact
/// values. Returns 0 for an empty histogram.
inline double histogram_quantile(const std::vector<double>& bounds,
                                 const std::vector<std::uint64_t>& counts,
                                 std::uint64_t count, double min, double max,
                                 double q) {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Bucket i spans (bounds[i-1], bounds[i]]; clamp its edges to the
    // observed range (the overflow bucket i == bounds.size() has no upper
    // bound of its own).
    double lo = i == 0 ? min : std::max(min, bounds[i - 1]);
    double hi = i < bounds.size() ? std::min(max, bounds[i]) : max;
    if (hi < lo) hi = lo;
    const double fraction =
        (rank - before) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * fraction;
  }
  return max;
}

/// A monotonically increasing event count.
class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A fixed-bucket histogram over doubles. Bucket i counts samples with
/// value <= bounds[i] (first matching bucket); samples beyond the last
/// bound land in the implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds)
      : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {}

  void add(double value) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Estimated q-th quantile (0 <= q <= 1) by bucket interpolation; exact
  /// at q = 0 / q = 1 (observed min/max), 0 when empty.
  double quantile(double q) const {
    return histogram_quantile(bounds_, counts_, count_, min(), max(), q);
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
  /// Same estimator as Histogram::quantile, over the frozen buckets.
  double quantile(double q) const {
    return histogram_quantile(bounds, counts, count, min, max, q);
  }
};

/// The frozen contents of a Registry. Default-constructible and copyable so
/// it can live inside RunMetrics and flow through parallel_map.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }

  /// Value of a counter by name; 0 when absent.
  std::uint64_t counter(const std::string& name) const {
    for (const auto& c : counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  }

  const HistogramSnapshot* histogram(const std::string& name) const {
    for (const auto& h : histograms) {
      if (h.name == name) return &h;
    }
    return nullptr;
  }
};

/// Owns named counters and histograms. References returned by counter() /
/// histogram() stay valid for the registry's lifetime (deque storage never
/// reallocates elements).
class Registry {
 public:
  /// Returns the counter named `name`, creating it on first use.
  Counter& counter(const std::string& name) {
    for (auto& e : counters_) {
      if (e.name == name) return e.counter;
    }
    counters_.push_back(NamedCounter{name, Counter{}});
    return counters_.back().counter;
  }

  /// Returns the histogram named `name`, creating it with `upper_bounds` on
  /// first use (later calls ignore the bounds argument).
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds) {
    for (auto& e : histograms_) {
      if (e.name == name) return e.histogram;
    }
    histograms_.push_back(NamedHistogram{name, Histogram(std::move(upper_bounds))});
    return histograms_.back().histogram;
  }

  MetricsSnapshot snapshot() const {
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& e : counters_) {
      snap.counters.push_back(CounterSnapshot{e.name, e.counter.value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& e : histograms_) {
      const Histogram& h = e.histogram;
      snap.histograms.push_back(HistogramSnapshot{
          e.name, h.bounds(), h.counts(), h.count(), h.sum(), h.min(),
          h.max()});
    }
    return snap;
  }

 private:
  struct NamedCounter {
    std::string name;
    Counter counter;
  };
  struct NamedHistogram {
    std::string name;
    Histogram histogram;
  };
  std::deque<NamedCounter> counters_;
  std::deque<NamedHistogram> histograms_;
};

/// Merges `from` into `into` by metric name: counters add, histograms
/// (which must share bucket bounds) add their counts element-wise and
/// widen min/max; families absent from `into` are appended in `from`
/// order. Merging one snapshot into an empty one reproduces it exactly,
/// bit for bit — which is what keeps a 1-shard gateway report
/// byte-identical to the unsharded fold (docs/gateway.md). Throws
/// std::invalid_argument when two histograms of the same name disagree on
/// bounds.
inline void merge_snapshot_into(MetricsSnapshot& into,
                                const MetricsSnapshot& from) {
  for (const auto& counter : from.counters) {
    CounterSnapshot* existing = nullptr;
    for (auto& c : into.counters) {
      if (c.name == counter.name) {
        existing = &c;
        break;
      }
    }
    if (existing == nullptr) {
      into.counters.push_back(counter);
    } else {
      existing->value += counter.value;
    }
  }
  for (const auto& histogram : from.histograms) {
    HistogramSnapshot* existing = nullptr;
    for (auto& h : into.histograms) {
      if (h.name == histogram.name) {
        existing = &h;
        break;
      }
    }
    if (existing == nullptr) {
      into.histograms.push_back(histogram);
      continue;
    }
    if (existing->bounds != histogram.bounds) {
      throw std::invalid_argument(
          "merge_snapshot_into: histogram bounds differ for '" +
          histogram.name + "'");
    }
    for (std::size_t i = 0; i < existing->counts.size(); ++i) {
      existing->counts[i] += histogram.counts[i];
    }
    if (histogram.count > 0) {
      // Empty snapshots report min()/max() as 0.0 — only a non-empty side
      // may contribute to the observed range.
      existing->min = existing->count == 0
                          ? histogram.min
                          : std::min(existing->min, histogram.min);
      existing->max = existing->count == 0
                          ? histogram.max
                          : std::max(existing->max, histogram.max);
      existing->count += histogram.count;
      existing->sum += histogram.sum;
    }
  }
}

/// The observability hooks a run accepts: both optional, both may be null.
/// Passed by value (two pointers) through run_slotted / EtrainSystem.
struct Observers {
  TraceSink* trace = nullptr;
  Registry* metrics = nullptr;
};

}  // namespace etrain::obs
