// Tracing primitives: typed events, the sink interface, and the
// ETRAIN_TRACE recording macro.
//
// The paper's whole argument is *where energy goes over time* (the Fig. 3/4
// power timelines and the tail-energy accounting), so the instrumented
// layers — DES kernel, RRC machine, energy meter, Algorithm 1, slotted sim,
// system service — emit typed TraceEvents describing exactly that: when a
// gate opened, which packet boarded which heartbeat, which gap was billed
// how many joules of tail.
//
// Cost model, from cheapest to most expensive:
//   * compiled out        — building with -DETRAIN_OBS_DISABLED makes every
//                           ETRAIN_TRACE(...) expand to ((void)0); the
//                           argument expressions are never evaluated;
//   * null sink (default) — one pointer null-check per site; no payload is
//                           constructed (the macro short-circuits before
//                           evaluating the event expression);
//   * recording           — a TraceBuffer write: bump an index, copy a POD.
// bench_micro's tracing-overhead guard holds the null-sink path to <2% of
// the frozen PR-1 hot loop.
//
// Everything in this header is header-only on purpose: lower layers (sim,
// radio, core, net) include it without gaining a link dependency; only the
// exporters/checker live in the compiled etrain_obs library.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace etrain::obs {

/// Every kind of event the instrumented layers emit. The payload fields of
/// TraceEvent are interpreted per type; see the factory functions below for
/// the authoritative mapping (also documented in docs/observability.md).
enum class EventType : std::uint8_t {
  kSlotBegin,      ///< slotted sim: a slot with work started
  kGateOpen,       ///< Algorithm 1 line 3: P(t) >= Theta or heartbeat
  kPacketSelect,   ///< Algorithm 1 lines 9-13: one greedy pick (Eq. 9)
  kHeartbeatTx,    ///< a train app's keep-alive hit the uplink
  kRrcTransition,  ///< the radio changed RRC state
  kTailCharge,     ///< the energy meter billed one inter-tx gap's tail
  kEventFire,      ///< the DES kernel dispatched an event
  kTxFailure,      ///< a transfer attempt failed (loss or outage truncation)
  kTxRetry,        ///< a failed transfer re-queued after backoff
  kOutageDefer,    ///< a transfer start deferred to the end of an outage
};

inline const char* to_string(EventType t) {
  switch (t) {
    case EventType::kSlotBegin: return "SlotBegin";
    case EventType::kGateOpen: return "GateOpen";
    case EventType::kPacketSelect: return "PacketSelect";
    case EventType::kHeartbeatTx: return "HeartbeatTx";
    case EventType::kRrcTransition: return "RrcTransition";
    case EventType::kTailCharge: return "TailCharge";
    case EventType::kEventFire: return "EventFire";
    case EventType::kTxFailure: return "TxFailure";
    case EventType::kTxRetry: return "TxRetry";
    case EventType::kOutageDefer: return "OutageDefer";
  }
  return "?";
}

/// One recorded event. A flat POD (40 bytes) so a preallocated ring buffer
/// can hold millions without touching the allocator; the generic payload
/// fields (a, b, x, y) carry different meanings per EventType — always
/// construct through the factories so call sites stay self-documenting.
struct TraceEvent {
  TimePoint time = 0.0;
  EventType type = EventType::kSlotBegin;
  std::int32_t a = 0;
  std::int64_t b = -1;
  double x = 0.0;
  double y = 0.0;

  /// a = queued packets, x = instantaneous queue cost P(t).
  static TraceEvent slot_begin(TimePoint t, std::int32_t queued,
                               double cost) {
    return {t, EventType::kSlotBegin, queued, -1, cost, 0.0};
  }
  /// a = 1 when opened by a departing heartbeat (0 = cost drip),
  /// x = P(t), y = Theta.
  static TraceEvent gate_open(TimePoint t, bool heartbeat, double cost,
                              double theta) {
    return {t, EventType::kGateOpen, heartbeat ? 1 : 0, -1, cost, theta};
  }
  /// a = app id, b = packet id, x = Eq. 9 gain, y = phi_u (speculative
  /// cost of the picked packet).
  static TraceEvent packet_select(TimePoint t, std::int32_t app,
                                  std::int64_t packet, double gain,
                                  double phi) {
    return {t, EventType::kPacketSelect, app, packet, gain, phi};
  }
  /// a = train id, b = bytes.
  static TraceEvent heartbeat_tx(TimePoint t, std::int32_t train,
                                 std::int64_t bytes) {
    return {t, EventType::kHeartbeatTx, train, bytes, 0.0, 0.0};
  }
  /// a = from state, b = to state (radio::RrcState values).
  static TraceEvent rrc_transition(TimePoint t, std::int32_t from,
                                   std::int64_t to) {
    return {t, EventType::kRrcTransition, from, to, 0.0, 0.0};
  }
  /// a = TxKind of the transmission that produced the tail, x = joules
  /// billed for this gap, y = gap length in seconds. Summing x over all
  /// TailCharge events reproduces EnergyReport::tail_energy() exactly.
  static TraceEvent tail_charge(TimePoint t, std::int32_t kind,
                                double joules, double gap) {
    return {t, EventType::kTailCharge, kind, -1, joules, gap};
  }
  /// b = the kernel's EventId. Cancelled events never fire and never emit.
  static TraceEvent event_fire(TimePoint t, std::int64_t id) {
    return {t, EventType::kEventFire, 0, id, 0.0, 0.0};
  }
  /// a = TxKind, b = packet id (or request sequence for id-less requests),
  /// x = attempt number (1-based), y = airtime seconds billed to the
  /// failed attempt.
  static TraceEvent tx_failure(TimePoint t, std::int32_t kind,
                               std::int64_t entity, int attempt,
                               double airtime) {
    return {t, EventType::kTxFailure, kind, entity,
            static_cast<double>(attempt), airtime};
  }
  /// a = TxKind, b = packet id / request sequence, x = next attempt number
  /// (1-based), y = backoff delay in seconds.
  static TraceEvent tx_retry(TimePoint t, std::int32_t kind,
                             std::int64_t entity, int next_attempt,
                             double backoff) {
    return {t, EventType::kTxRetry, kind, entity,
            static_cast<double>(next_attempt), backoff};
  }
  /// a = TxKind, b = packet id / request sequence, x = time the transfer
  /// resumes (end of the outage), y = seconds of coverage wait.
  static TraceEvent outage_defer(TimePoint t, std::int32_t kind,
                                 std::int64_t entity, TimePoint until) {
    return {t, EventType::kOutageDefer, kind, entity, until, until - t};
  }
};

/// Where events go. Implementations must be cheap: record() sits on the DES
/// and scheduler hot paths. Sinks are deliberately not thread-safe — one
/// sink per run, runs confined to one thread; parallel_map fan-outs give
/// each task its own sink (see docs/observability.md).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Accepts and discards everything. Useful for measuring the cost of the
/// virtual dispatch itself; production code paths pass nullptr instead,
/// which short-circuits before the call.
class NullSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override {}
};

}  // namespace etrain::obs

// Records `event_expr` into `sink_ptr` when tracing is compiled in and the
// sink is non-null. The event expression is NOT evaluated when the sink is
// null, so payload computation is free on the untraced path.
#if defined(ETRAIN_OBS_DISABLED)
#define ETRAIN_TRACE(sink_ptr, event_expr) ((void)0)
#else
#define ETRAIN_TRACE(sink_ptr, event_expr)       \
  do {                                           \
    if ((sink_ptr) != nullptr) {                 \
      (sink_ptr)->record(event_expr);            \
    }                                            \
  } while (0)
#endif
