// A preallocated ring-buffer TraceSink.
//
// The buffer allocates its full capacity up front and never touches the
// allocator again: record() is an index bump plus a 40-byte POD copy, so it
// is safe on the DES and scheduler hot paths. When more events arrive than
// fit, the oldest are overwritten (a trace's recent past is worth more than
// its distant past); overflowed() reports whether that happened and
// dropped() how many events were lost.
//
// Thread-confinement contract: a TraceBuffer serves exactly one simulation
// run on one thread. Fan-outs over parallel_map give each task its own
// buffer (tasks own their slot, nothing is shared), which keeps recording
// lock-free and replay deterministic — see obs_trace_buffer_test for the
// canonical per-task pattern.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace.h"

namespace etrain::obs {

class TraceBuffer final : public TraceSink {
 public:
  /// Preallocates room for `capacity` events (at least 1). The default of
  /// 2^20 events (~40 MB) comfortably holds a two-hour full-system run,
  /// which emits well under 10^6 events.
  explicit TraceBuffer(std::size_t capacity = std::size_t{1} << 20)
      : events_(capacity < 1 ? 1 : capacity) {}

  void record(const TraceEvent& event) override {
    events_[next_] = event;
    next_ = (next_ + 1) % events_.size();
    ++recorded_;
  }

  std::size_t capacity() const { return events_.size(); }
  /// Events currently held (min(recorded, capacity)).
  std::size_t size() const {
    return recorded_ < events_.size() ? recorded_ : events_.size();
  }
  /// Total record() calls, including overwritten ones.
  std::uint64_t total_recorded() const { return recorded_; }
  bool overflowed() const { return recorded_ > events_.size(); }
  std::uint64_t dropped() const {
    return overflowed() ? recorded_ - events_.size() : 0;
  }

  /// The retained events in recording order (oldest first). Copies; call
  /// once per run, after the run.
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(size());
    if (!overflowed()) {
      out.insert(out.end(), events_.begin(), events_.begin() + next_);
    } else {
      out.insert(out.end(), events_.begin() + next_, events_.end());
      out.insert(out.end(), events_.begin(), events_.begin() + next_);
    }
    return out;
  }

  void clear() {
    next_ = 0;
    recorded_ = 0;
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t next_ = 0;      ///< next write slot
  std::uint64_t recorded_ = 0;
};

}  // namespace etrain::obs
