#include "obs/prom.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace etrain::obs {

namespace {

/// Shortest decimal form that strtod round-trips back to `v` — readable
/// le-labels and values without sacrificing determinism (a pure function
/// of the bits of `v`).
std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  // Exact small integers print as integers ("10", not "1e+01") — the
  // common case for counts and round bucket bounds.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// One family of the output: a TYPE (+ optional HELP) header followed by
/// its sample lines. Families are sorted by name before concatenation.
struct Family {
  std::string name;
  std::string text;
};

void append_header(std::string& out, const std::string& name,
                   const char* type, const std::string& help) {
  if (!help.empty()) {
    out += "# HELP " + name + " " + help + "\n";
  }
  out += "# TYPE " + name + " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string prom_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 7);
  if (name.rfind("etrain_", 0) != 0) out = "etrain_";
  for (const char c : name) {
    out += name_char_ok(c) ? c : '_';
  }
  return out;
}

std::string encode_prometheus(const MetricsSnapshot& snapshot,
                              const std::vector<PromGauge>& gauges) {
  std::vector<Family> families;
  families.reserve(snapshot.counters.size() + snapshot.histograms.size() +
                   gauges.size());

  for (const auto& counter : snapshot.counters) {
    Family family;
    family.name = prom_metric_name(counter.name) + "_total";
    append_header(family.text, family.name, "counter", counter.name);
    family.text +=
        family.name + " " + std::to_string(counter.value) + "\n";
    families.push_back(std::move(family));
  }

  for (const auto& histogram : snapshot.histograms) {
    Family family;
    family.name = prom_metric_name(histogram.name);
    append_header(family.text, family.name, "histogram", histogram.name);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.counts.size(); ++i) {
      cumulative += histogram.counts[i];
      const std::string le = i < histogram.bounds.size()
                                 ? format_double(histogram.bounds[i])
                                 : "+Inf";
      family.text += family.name + "_bucket{le=\"" + le + "\"} " +
                     std::to_string(cumulative) + "\n";
    }
    family.text +=
        family.name + "_sum " + format_double(histogram.sum) + "\n";
    family.text +=
        family.name + "_count " + std::to_string(histogram.count) + "\n";
    families.push_back(std::move(family));

    // Quantile companions, through the same shared estimator the run
    // report serializes (obs/metrics.h histogram_quantile).
    const std::pair<const char*, double> quantiles[3] = {
        {"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
    for (const auto& [suffix, q] : quantiles) {
      Family quantile_family;
      quantile_family.name = prom_metric_name(histogram.name) + suffix;
      append_header(quantile_family.text, quantile_family.name, "gauge", "");
      quantile_family.text += quantile_family.name + " " +
                              format_double(histogram.quantile(q)) + "\n";
      families.push_back(std::move(quantile_family));
    }
  }

  // Gauges sharing a raw name form one family (one TYPE header, samples
  // in the order given — label order is the caller's).
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const std::string name = prom_metric_name(gauges[i].name);
    const bool continues_family =
        i > 0 && prom_metric_name(gauges[i - 1].name) == name;
    if (!continues_family) {
      Family family;
      family.name = name;
      append_header(family.text, name, "gauge", gauges[i].help);
      families.push_back(std::move(family));
    }
    Family& family = families.back();
    family.text += name;
    if (!gauges[i].labels.empty()) {
      family.text += "{";
      for (std::size_t l = 0; l < gauges[i].labels.size(); ++l) {
        if (l > 0) family.text += ",";
        family.text += gauges[i].labels[l].first + "=\"" +
                       escape_label(gauges[i].labels[l].second) + "\"";
      }
      family.text += "}";
    }
    family.text += " " + format_double(gauges[i].value) + "\n";
  }

  std::stable_sort(families.begin(), families.end(),
                   [](const Family& a, const Family& b) {
                     return a.name < b.name;
                   });
  std::string out;
  for (const Family& family : families) out += family.text;
  return out;
}

}  // namespace etrain::obs
