// Shared command-line plumbing for the bench binaries.
//
// Every figure bench accepts the same observability flags on top of the
// parallel engine's --jobs:
//
//   --trace <out.json>      export a Chrome trace of one representative
//                           traced run (chrome://tracing / Perfetto)
//   --timeline <out.csv>    export that run's power/RRC-state timeline CSV
//   --quick                 shrink the bench to a smoke-sized subset
//                           (bench-specific; fig10 runs only the Fig. 9
//                           methodology check)
//   --report <out.json>     emit a RunReport (provenance manifest + digest
//                           + energy ledger + metrics + profile) validated
//                           by report_check; see docs/observability.md
//
// parse_bench_options() also parses --jobs (via parse_jobs_flag) and
// applies it with set_default_jobs(), so a bench main reduces to:
//
//   const obs::BenchOptions opts = obs::parse_bench_options(argc, argv);
//   ...
//   if (opts.tracing()) { /* run one traced run, then */
//     obs::export_traced_run(opts, buffer, log, model, horizon, summary); }
//
// Naming convention (docs/experiments.md): traces land under results/ as
// <bench>.trace.json and <bench>.power_timeline.csv, reports as
// BENCH_<name>.json or results/<bench>.report.json; all three patterns are
// git-ignored.
#pragma once

#include <cstddef>
#include <string>

#include "obs/exporters.h"
#include "obs/trace_buffer.h"

namespace etrain::obs {

struct BenchOptions {
  std::string trace_path;     ///< empty = no Chrome-trace export
  std::string timeline_path;  ///< empty = no timeline export
  std::string report_path;    ///< empty = no RunReport export
  bool quick = false;
  std::size_t jobs = 0;  ///< 0 = automatic (already applied globally)

  /// True when the bench should perform its traced representative run.
  bool tracing() const {
    return !trace_path.empty() || !timeline_path.empty();
  }

  /// True when the bench should emit a RunReport.
  bool reporting() const { return !report_path.empty(); }
};

/// Parses the shared flags (and --jobs, which it applies via
/// set_default_jobs). Throws std::invalid_argument on a malformed or
/// value-less flag.
BenchOptions parse_bench_options(int argc, char** argv);

/// Writes the artifacts the flags asked for: the Chrome trace of `buffer`'s
/// events (with transmission spans from `log` and a RunSummary) to
/// opts.trace_path, and the power timeline of (`log`, `model`) over
/// [0, horizon] to opts.timeline_path. Prints one line per file written.
void export_traced_run(const BenchOptions& opts, const TraceBuffer& buffer,
                       const radio::TransmissionLog& log,
                       const radio::PowerModel& model, Duration horizon,
                       const RunSummary& summary);

}  // namespace etrain::obs
