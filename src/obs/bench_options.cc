#include "obs/bench_options.h"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "common/parallel.h"

namespace etrain::obs {

namespace {

/// Returns the value of `--flag <v>` / `--flag=<v>`, or empty when absent.
std::string parse_string_flag(int argc, char** argv, const std::string& flag) {
  const std::string prefix = flag + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag) {
      if (i + 1 >= argc) {
        throw std::invalid_argument(flag + " requires a value");
      }
      return argv[i + 1];
    }
    if (arg.rfind(prefix, 0) == 0) {
      const std::string value = arg.substr(prefix.size());
      if (value.empty()) {
        throw std::invalid_argument(flag + " requires a value");
      }
      return value;
    }
  }
  return "";
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions opts;
  opts.jobs = parse_jobs_flag(argc, argv);
  set_default_jobs(opts.jobs);
  opts.trace_path = parse_string_flag(argc, argv, "--trace");
  opts.timeline_path = parse_string_flag(argc, argv, "--timeline");
  opts.report_path = parse_string_flag(argc, argv, "--report");
  opts.quick = has_flag(argc, argv, "--quick");
  return opts;
}

void export_traced_run(const BenchOptions& opts, const TraceBuffer& buffer,
                       const radio::TransmissionLog& log,
                       const radio::PowerModel& model, Duration horizon,
                       const RunSummary& summary) {
  if (!opts.trace_path.empty()) {
    const auto events = buffer.events();
    write_chrome_trace_file(opts.trace_path, events, &log, &summary);
    std::printf("trace: %zu events (%llu dropped) -> %s\n", events.size(),
                static_cast<unsigned long long>(buffer.dropped()),
                opts.trace_path.c_str());
  }
  if (!opts.timeline_path.empty()) {
    write_power_timeline_file(opts.timeline_path, log, model, horizon);
    std::printf("timeline: %.1f s at 0.1 s -> %s\n", horizon,
                opts.timeline_path.c_str());
  }
}

}  // namespace etrain::obs
