// A minimal recursive-descent JSON reader shared by the validators
// (trace_check, report_check): just enough to verify well-formedness and
// pull out the handful of fields the checks need. Deliberately not a
// general JSON library — the repo's no-dependency rule extends to not
// growing one internally. Methods throw std::string error messages; the
// check_* entry points catch them and turn them into result.error.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>

namespace etrain::obs::jsonio {

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  std::size_t pos() const { return pos_; }
  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            pos_ += 4;  // validated but not decoded; names are ASCII
            out += '?';
            break;
          default: fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number: " + token);
    return value;
  }

  bool parse_bool() {
    const char c = peek();
    if (c == 't') {
      literal("true");
      return true;
    }
    literal("false");
    return false;
  }

  /// Consumes "null" when positioned on it; returns whether it did.
  bool consume_null() {
    if (peek() != 'n') return false;
    literal("null");
    return true;
  }

  /// Skips any JSON value, validating structure.
  void skip_value() {
    const char c = peek();
    if (c == '{') {
      skip_object();
    } else if (c == '[') {
      expect('[');
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      parse_string();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      parse_number();
    }
  }

  /// Iterates an object's members, calling on_member(key) positioned at the
  /// member's value; on_member must consume exactly that value.
  template <typename Fn>
  void parse_object(Fn&& on_member) {
    expect('{');
    if (consume('}')) return;
    do {
      const std::string key = parse_string();
      expect(':');
      on_member(key);
    } while (consume(','));
    expect('}');
  }

  /// Iterates an array's elements, calling on_element() positioned at each
  /// element; on_element must consume exactly that value.
  template <typename Fn>
  void parse_array(Fn&& on_element) {
    expect('[');
    if (consume(']')) return;
    do {
      on_element();
    } while (consume(','));
    expect(']');
  }

  void skip_object() {
    parse_object([this](const std::string&) { skip_value(); });
  }

  [[noreturn]] void fail(const std::string& message) {
    throw message + " at offset " + std::to_string(pos_);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("invalid literal");
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace etrain::obs::jsonio
