// End-of-run reports: the machine-readable record that makes two bench
// runs mechanically comparable.
//
// PR 2 built the in-run primitives (TraceEvents, counters, histograms);
// a RunReport is the layer above: one self-describing JSON document per
// bench invocation that ties every metric to the exact provenance that
// produced it — policy spec, scenario knobs, seeds, device preset, build
// flags — in the spirit of measurement-first energy papers where every
// joule claim is anchored to a reproducible record.
//
// Sections, in serialization order (docs/observability.md has the schema):
//   schema/version/bench   self-description
//   provenance             ordered key -> string manifest (policy spec from
//                          core::PolicyRegistry, scenario description,
//                          seeds, device preset...)
//   build                  compiler / obs / sanitizer flags of the binary
//   results                headline digest scalars (name -> double)
//   energy                 the full EnergyReport decomposition (cellular +
//                          optional Wi-Fi + optional Monsoon cross-check)
//   delay                  normalized delay / violation / total cost
//   ledger                 the per-interface / per-TxKind / per-app
//                          energy-attribution ledger (Fig. 10(a)'s red and
//                          blue bars in machine-readable form)
//   fleet                  fleet runs only (omitted otherwise): population
//                          totals + per-activeness-class aggregates; the
//                          ledger above is then the fleet ledger keyed by
//                          class index (docs/fleet.md)
//   metrics                the MetricsSnapshot with p50/p95/p99 quantiles
//                          (null when observability is detached/disabled)
//   artifacts              CSV files the bench exported, with row counts
//                          and column sums for cross-validation
//   environment            NON-COMPARED: jobs etc. (varies run to run)
//   profile                NON-COMPARED: the wall-clock profiler tree
//
// Determinism contract (docs/determinism.md): everything above
// `environment` must be byte-identical between serial and parallel runs of
// the same bench; wall-clock and concurrency facts are quarantined below.
// The writer serializes with fixed key order and %.17g doubles so equal
// runs produce equal bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "radio/energy_meter.h"
#include "radio/transmission_log.h"

namespace etrain::obs {

inline constexpr const char* kReportSchemaName = "etrain-run-report";
inline constexpr int kReportSchemaVersion = 1;

/// One (interface, kind, app) row of the energy-attribution ledger.
/// tx/setup/tail mirror the EnergyMeter's attribution exactly: every
/// attempt's data-phase and promotion energy lands in tx_J/setup_J (failed
/// attempts included — loss wastes energy, that is the point), and the
/// tail a transmission opens is billed to its row. failed_airtime_J is an
/// *overlay*, not an addend: the share of tx_J + setup_J burned by failed
/// attempts.
struct LedgerRow {
  /// "cellular" | "wifi" | an extra interface's registry name ("lora"...).
  std::string interface_name = "cellular";
  radio::TxKind kind = radio::TxKind::kData;
  int app = 0;
  Joules tx_J = 0.0;
  Joules setup_J = 0.0;
  Joules tail_J = 0.0;
  Joules failed_airtime_J = 0.0;  ///< subset of tx_J + setup_J
  std::size_t transmissions = 0;
  std::size_t failures = 0;
  Duration airtime_s = 0.0;
  Duration failed_airtime_s = 0.0;

  Joules total() const { return tx_J + setup_J + tail_J; }
};

/// The full attribution ledger. Rows are sorted by (interface, kind, app);
/// total() equals RunMetrics::network_energy() to 1e-9 J (report_check and
/// obs_report_test enforce this).
struct EnergyLedger {
  std::vector<LedgerRow> rows;

  Joules total() const;
  /// Sum of row totals for one kind across interfaces.
  Joules kind_total(radio::TxKind kind) const;
};

/// Appends `log`'s attribution rows (replayed against `model` over
/// [0, horizon] with exactly the EnergyMeter's billing rules) and keeps the
/// ledger sorted. Horizon must satisfy the meter's contract
/// (>= log.last_end()).
void append_ledger(EnergyLedger& ledger, const std::string& interface_name,
                   const radio::TransmissionLog& log,
                   const radio::PowerModel& model, Duration horizon);

/// The energy section: the cellular EnergyReport, the Wi-Fi one when the
/// run used a second interface, per-interface reports for any extra
/// radios, and the simulated Monsoon integral when a power monitor was
/// attached. The `extra` map is serialized only when non-empty, so
/// single-interface (and Wi-Fi-only) reports keep their exact byte format.
struct EnergySection {
  radio::EnergyReport cellular;
  std::optional<radio::EnergyReport> wifi;
  /// (interface name, report) in interface-slot order.
  std::vector<std::pair<std::string, radio::EnergyReport>> extra;
  std::optional<Joules> monsoon_J;

  Joules network_J() const {
    Joules total = cellular.network_energy() +
                   (wifi.has_value() ? wifi->network_energy() : 0.0);
    for (const auto& [name, report] : extra) total += report.network_energy();
    return total;
  }
  Joules tail_J() const {
    Joules total = cellular.tail_energy() +
                   (wifi.has_value() ? wifi->tail_energy() : 0.0);
    for (const auto& [name, report] : extra) total += report.tail_energy();
    return total;
  }
  std::size_t transmissions() const {
    std::size_t total = cellular.transmissions +
                        (wifi.has_value() ? wifi->transmissions : 0);
    for (const auto& [name, report] : extra) total += report.transmissions;
    return total;
  }
};

/// Per-activeness-class population aggregate of one fleet run (see
/// exp::FleetHarness and docs/fleet.md). Energy quantities are fleet-ledger
/// row sums, so heartbeat_J + data_J == network_J by construction.
struct FleetClassStats {
  std::string name;
  std::size_t devices = 0;
  std::size_t packets = 0;
  std::size_t violations = 0;
  std::size_t transmissions = 0;
  std::size_t failures = 0;
  Joules network_J = 0.0;
  Joules heartbeat_J = 0.0;
  Joules data_J = 0.0;
  double normalized_delay_s = 0.0;
  double violation_ratio = 0.0;
  double delay_cost = 0.0;
};

/// The fleet section of a RunReport: population totals plus the per-class
/// breakdown. Present only on fleet reports — single-run reports serialize
/// no "fleet" key at all, keeping their byte format unchanged. When
/// present, the report's `ledger` is the FLEET ledger (app = class index)
/// and report_check enforces ledger.total() == device_meter_total_J within
/// 1e-9 J x max(1, devices).
struct FleetSection {
  std::size_t devices = 0;
  std::uint64_t total_slots = 0;
  std::size_t packets = 0;
  /// Sum of per-device RunMetrics::network_energy() meters, folded in
  /// device-id order.
  Joules device_meter_total_J = 0.0;
  std::vector<FleetClassStats> classes;
};

/// The gateway section of a RunReport: the live daemon's shutdown totals
/// (docs/gateway.md). Present only on gateway reports — like `fleet`, it
/// serializes no key at all otherwise, keeping every existing report's
/// byte format (and the golden v1 fixture) unchanged. report_check
/// enforces two exact partitions — clients_accepted == disconnected +
/// at_shutdown and packets_enqueued == piggybacked + dripped + flushed —
/// plus transmissions == heartbeats + packets_enqueued, and that the
/// report's ledger re-bills client_meter_total_J within
/// 1e-9 J x max(1, clients_accepted).
struct GatewaySection {
  std::size_t clients_accepted = 0;
  std::size_t clients_disconnected = 0;
  std::size_t clients_at_shutdown = 0;
  std::size_t protocol_errors = 0;
  std::size_t heartbeats = 0;
  std::size_t packets_enqueued = 0;
  std::size_t packets_piggybacked = 0;
  std::size_t packets_dripped = 0;
  std::size_t packets_flushed = 0;
  std::size_t transmissions = 0;
  /// Sum of per-session measure_energy network totals, folded in close
  /// order — the meter the ledger must re-bill.
  Joules client_meter_total_J = 0.0;
};

/// The delay side of the paper's evaluation triple.
struct DelaySection {
  std::size_t packets = 0;
  double normalized_delay_s = 0.0;
  double violation_ratio = 0.0;
  double total_delay_cost = 0.0;
};

/// One CSV file a bench exported: its path as written, data-row count and
/// per-column sums, letting report_check re-read the file and re-sum to
/// 1e-9 — the report and the plot data can never drift apart silently.
struct CsvArtifact {
  std::string file;
  std::size_t rows = 0;
  std::vector<std::pair<std::string, double>> column_sums;
};

/// Process-global collector of exported CSV artifacts. The figure-export
/// helpers record here as a side effect; finalize_run_report() drains the
/// collection into the report. One bench process = one report, so a global
/// is the honest scope; the mutex exists only for exports inside parallel
/// sections.
class ArtifactLog {
 public:
  static ArtifactLog& global();
  void record(CsvArtifact artifact);
  std::vector<CsvArtifact> snapshot() const;
  void clear();

 private:
  struct Impl;
  static Impl& impl();
};

/// Build facts of the reporting binary, recovered from predefined macros.
struct BuildInfo {
  std::string compiler;      ///< __VERSION__
  long cxx_standard = 0;     ///< __cplusplus
  bool obs_enabled = true;   ///< false under ETRAIN_OBS_DISABLED
  bool assertions = true;    ///< false under NDEBUG
  std::string sanitizer;     ///< "none" | "address" | "undefined"
};

/// The BuildInfo of this translation of the library.
BuildInfo current_build_info();

/// The complete report model. Benches fill bench/provenance/results and
/// whatever run sections they have, then call write_run_report_file()
/// (usually via finalize_run_report, which stamps build/environment/
/// artifacts/profile automatically).
struct RunReport {
  std::string bench;

  /// Ordered manifest entries; keys should be unique (first wins in
  /// readers). add_provenance() appends.
  std::vector<std::pair<std::string, std::string>> provenance;

  /// Headline digest scalars, in insertion order. Deterministic values
  /// only — wall-clock numbers belong in `environment`.
  std::vector<std::pair<std::string, double>> results;

  std::optional<EnergySection> energy;
  std::optional<DelaySection> delay;
  std::optional<EnergyLedger> ledger;
  /// Fleet runs only; serialized (between "ledger" and "metrics") only
  /// when present, so non-fleet reports keep their exact byte format.
  std::optional<FleetSection> fleet;
  /// Gateway runs only; serialized (after "fleet", before "metrics") only
  /// when present — same byte-compatibility contract as `fleet`.
  std::optional<GatewaySection> gateway;
  /// Null when the run had no Registry attached or observability is
  /// compiled out — the manifest and energy sections survive either way.
  std::optional<MetricsSnapshot> metrics;

  std::vector<CsvArtifact> artifacts;

  /// NON-COMPARED sections (see header comment).
  std::vector<std::pair<std::string, double>> environment;
  std::optional<ProfileNode> profile;

  BuildInfo build = current_build_info();

  void add_provenance(std::string key, std::string value) {
    provenance.emplace_back(std::move(key), std::move(value));
  }
  void add_result(std::string name, double value) {
    results.emplace_back(std::move(name), value);
  }
  void add_environment(std::string name, double value) {
    environment.emplace_back(std::move(name), value);
  }
};

/// Serializes the report as deterministic JSON (fixed key order, %.17g
/// doubles, no whitespace variance).
void write_run_report(std::ostream& out, const RunReport& report);

/// write_run_report to `path`; throws std::runtime_error on I/O failure.
void write_run_report_file(const std::string& path, const RunReport& report);

/// Stamps the cross-cutting sections every bench report shares — jobs into
/// `environment`, the drained ArtifactLog into `artifacts` (unless the
/// bench already filled it) and the profiler snapshot into `profile` —
/// then writes to `path` and prints one "report: ... -> path" line.
void finalize_run_report(const std::string& path, RunReport report);

}  // namespace etrain::obs
