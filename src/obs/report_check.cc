#include "obs/report_check.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>

#include "obs/json_reader.h"
#include "obs/report.h"

namespace etrain::obs {

namespace {

using jsonio::JsonReader;

constexpr double kJouleTolerance = 1e-9;

std::string fmt(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

/// abs-difference check with a uniform error message and explicit
/// tolerance (fleet checks scale it with the population).
void require_close_tol(JsonReader& reader, const std::string& what,
                       double got, double expected, double tolerance) {
  if (std::fabs(got - expected) > tolerance) {
    reader.fail(what + ": " + fmt(got) + " != " + fmt(expected));
  }
}

/// abs-difference check with a uniform error message.
void require_close(JsonReader& reader, const std::string& what, double got,
                   double expected) {
  require_close_tol(reader, what, got, expected, kJouleTolerance);
}

/// The by-kind decomposition of one parsed EnergyReport object.
struct ParsedEnergyReport {
  double tx = 0.0, setup = 0.0, dch_tail = 0.0, fach_tail = 0.0;
  double tail = 0.0, network = 0.0;
  double tx_by_kind[2] = {0.0, 0.0};
  double tail_by_kind[2] = {0.0, 0.0};
  double transmissions = 0.0;
};

ParsedEnergyReport parse_energy_report(JsonReader& reader) {
  ParsedEnergyReport r;
  reader.parse_object([&](const std::string& key) {
    if (key == "tx_J") {
      r.tx = reader.parse_number();
    } else if (key == "setup_J") {
      r.setup = reader.parse_number();
    } else if (key == "dch_tail_J") {
      r.dch_tail = reader.parse_number();
    } else if (key == "fach_tail_J") {
      r.fach_tail = reader.parse_number();
    } else if (key == "tail_J") {
      r.tail = reader.parse_number();
    } else if (key == "network_J") {
      r.network = reader.parse_number();
    } else if (key == "tx_by_kind_J") {
      reader.parse_object([&](const std::string& kind) {
        if (kind == "heartbeat") {
          r.tx_by_kind[0] = reader.parse_number();
        } else if (kind == "data") {
          r.tx_by_kind[1] = reader.parse_number();
        } else {
          reader.fail("unknown kind '" + kind + "' in tx_by_kind_J");
        }
      });
    } else if (key == "tail_by_kind_J") {
      reader.parse_object([&](const std::string& kind) {
        if (kind == "heartbeat") {
          r.tail_by_kind[0] = reader.parse_number();
        } else if (kind == "data") {
          r.tail_by_kind[1] = reader.parse_number();
        } else {
          reader.fail("unknown kind '" + kind + "' in tail_by_kind_J");
        }
      });
    } else if (key == "transmissions") {
      r.transmissions = reader.parse_number();
    } else {
      reader.skip_value();
    }
  });
  // The decompositions must be self-consistent before any cross-section
  // comparison is meaningful.
  require_close(reader, "energy report tail_J != dch + fach", r.tail,
                r.dch_tail + r.fach_tail);
  require_close(reader, "energy report network_J != tx + setup + tail",
                r.network, r.tx + r.setup + r.tail);
  require_close(reader, "tx_by_kind_J does not sum to tx_J",
                r.tx_by_kind[0] + r.tx_by_kind[1], r.tx);
  require_close(reader, "tail_by_kind_J does not sum to tail_J",
                r.tail_by_kind[0] + r.tail_by_kind[1], r.tail);
  return r;
}

/// The per-kind ledger aggregates the cross-section checks compare.
struct LedgerTotals {
  double total = 0.0;
  double declared_total = 0.0;
  double declared_by_kind[2] = {0.0, 0.0};
  double tx_by_kind[2] = {0.0, 0.0};
  double tail_by_kind[2] = {0.0, 0.0};
  double setup = 0.0;
  double transmissions = 0.0;
  std::size_t rows = 0;
};

LedgerTotals parse_ledger(JsonReader& reader) {
  LedgerTotals totals;
  // Previous row's sort key, for the ordering check.
  std::string prev_interface;
  int prev_kind = -1;
  double prev_app = -1.0;
  bool have_prev = false;

  reader.parse_object([&](const std::string& key) {
    if (key == "total_J") {
      totals.declared_total = reader.parse_number();
    } else if (key == "heartbeat_J") {
      totals.declared_by_kind[0] = reader.parse_number();
    } else if (key == "data_J") {
      totals.declared_by_kind[1] = reader.parse_number();
    } else if (key == "rows") {
      reader.parse_array([&] {
        std::string iface, kind_name;
        double app = 0.0, tx = 0.0, setup = 0.0, tail = 0.0, total = 0.0;
        double failed_airtime = 0.0, transmissions = 0.0, failures = 0.0;
        reader.parse_object([&](const std::string& field) {
          if (field == "interface") {
            iface = reader.parse_string();
          } else if (field == "kind") {
            kind_name = reader.parse_string();
          } else if (field == "app") {
            app = reader.parse_number();
          } else if (field == "tx_J") {
            tx = reader.parse_number();
          } else if (field == "setup_J") {
            setup = reader.parse_number();
          } else if (field == "tail_J") {
            tail = reader.parse_number();
          } else if (field == "total_J") {
            total = reader.parse_number();
          } else if (field == "failed_airtime_J") {
            failed_airtime = reader.parse_number();
          } else if (field == "transmissions") {
            transmissions = reader.parse_number();
          } else if (field == "failures") {
            failures = reader.parse_number();
          } else {
            reader.skip_value();
          }
        });
        int kind;
        if (kind_name == "heartbeat") {
          kind = 0;
        } else if (kind_name == "data") {
          kind = 1;
        } else {
          reader.fail("ledger row with unknown kind '" + kind_name + "'");
        }
        require_close(reader, "ledger row total_J != tx + setup + tail",
                      total, tx + setup + tail);
        if (failed_airtime > tx + setup + kJouleTolerance) {
          reader.fail("ledger row failed_airtime_J exceeds tx_J + setup_J");
        }
        if (failures > transmissions) {
          reader.fail("ledger row failures exceed transmissions");
        }
        if (have_prev) {
          const auto prev = std::make_tuple(prev_interface, prev_kind,
                                            prev_app);
          const auto cur = std::make_tuple(iface, kind, app);
          if (!(prev < cur)) {
            reader.fail("ledger rows not sorted by (interface, kind, app)");
          }
        }
        prev_interface = iface;
        prev_kind = kind;
        prev_app = app;
        have_prev = true;

        totals.rows += 1;
        totals.total += total;
        totals.tx_by_kind[kind] += tx;
        totals.tail_by_kind[kind] += tail;
        totals.setup += setup;
        totals.transmissions += transmissions;
      });
    } else {
      reader.skip_value();
    }
  });
  require_close(reader, "ledger total_J != sum of row totals",
                totals.declared_total, totals.total);
  require_close(
      reader, "ledger heartbeat_J + data_J != total_J",
      totals.declared_by_kind[0] + totals.declared_by_kind[1],
      totals.declared_total);
  return totals;
}

/// Digest of the fleet section: per-class invariants checked inline, the
/// population sums kept for the post-parse cross-checks against the
/// fleet-level totals and the ledger.
struct ParsedFleet {
  double devices = 0.0;
  double packets = 0.0;
  double meter_J = 0.0;
  std::size_t classes = 0;
  double class_devices = 0.0;
  double class_packets = 0.0;
  double class_network = 0.0;
  double class_heartbeat = 0.0;
  double class_data = 0.0;
};

ParsedFleet parse_fleet(JsonReader& reader) {
  ParsedFleet fleet;
  reader.parse_object([&](const std::string& key) {
    if (key == "devices") {
      fleet.devices = reader.parse_number();
    } else if (key == "packets") {
      fleet.packets = reader.parse_number();
    } else if (key == "device_meter_total_J") {
      fleet.meter_J = reader.parse_number();
    } else if (key == "classes") {
      reader.parse_array([&] {
        std::string name;
        double devices = 0.0, packets = 0.0, violations = 0.0;
        double transmissions = 0.0, failures = 0.0;
        double network = 0.0, heartbeat = 0.0, data = 0.0;
        double violation_ratio = 0.0;
        reader.parse_object([&](const std::string& field) {
          if (field == "name") {
            name = reader.parse_string();
          } else if (field == "devices") {
            devices = reader.parse_number();
          } else if (field == "packets") {
            packets = reader.parse_number();
          } else if (field == "violations") {
            violations = reader.parse_number();
          } else if (field == "transmissions") {
            transmissions = reader.parse_number();
          } else if (field == "failures") {
            failures = reader.parse_number();
          } else if (field == "network_J") {
            network = reader.parse_number();
          } else if (field == "heartbeat_J") {
            heartbeat = reader.parse_number();
          } else if (field == "data_J") {
            data = reader.parse_number();
          } else if (field == "violation_ratio") {
            violation_ratio = reader.parse_number();
          } else {
            reader.skip_value();
          }
        });
        if (name.empty()) reader.fail("fleet class without name");
        if (violations > packets) {
          reader.fail("fleet class '" + name +
                      "': violations exceed packets");
        }
        if (failures > transmissions) {
          reader.fail("fleet class '" + name +
                      "': failures exceed transmissions");
        }
        if (violation_ratio < 0.0 ||
            violation_ratio > 1.0 + kJouleTolerance) {
          reader.fail("fleet class '" + name +
                      "': violation_ratio outside [0, 1]");
        }
        // The class energy is defined as its ledger-bucket sum, so the
        // heartbeat/data split partitions it exactly (unscaled tolerance).
        require_close(reader,
                      "fleet class '" + name +
                          "' heartbeat_J + data_J != network_J",
                      heartbeat + data, network);
        fleet.classes += 1;
        fleet.class_devices += devices;
        fleet.class_packets += packets;
        fleet.class_network += network;
        fleet.class_heartbeat += heartbeat;
        fleet.class_data += data;
      });
    } else {
      reader.skip_value();
    }
  });
  if (fleet.classes == 0) reader.fail("fleet section without classes");
  if (fleet.class_devices != fleet.devices) {
    reader.fail("fleet class devices do not sum to fleet devices");
  }
  if (fleet.class_packets != fleet.packets) {
    reader.fail("fleet class packets do not sum to fleet packets");
  }
  return fleet;
}

/// Digest of the gateway section: count invariants checked inline, the
/// totals kept for the post-parse ledger cross-checks.
struct ParsedGateway {
  double clients_accepted = 0.0;
  double clients_disconnected = 0.0;
  double clients_at_shutdown = 0.0;
  double heartbeats = 0.0;
  double enqueued = 0.0;
  double piggybacked = 0.0;
  double dripped = 0.0;
  double flushed = 0.0;
  double transmissions = 0.0;
  double meter_J = 0.0;
};

ParsedGateway parse_gateway(JsonReader& reader) {
  ParsedGateway gw;
  reader.parse_object([&](const std::string& key) {
    if (key == "clients_accepted") {
      gw.clients_accepted = reader.parse_number();
    } else if (key == "clients_disconnected") {
      gw.clients_disconnected = reader.parse_number();
    } else if (key == "clients_at_shutdown") {
      gw.clients_at_shutdown = reader.parse_number();
    } else if (key == "heartbeats") {
      gw.heartbeats = reader.parse_number();
    } else if (key == "packets_enqueued") {
      gw.enqueued = reader.parse_number();
    } else if (key == "packets_piggybacked") {
      gw.piggybacked = reader.parse_number();
    } else if (key == "packets_dripped") {
      gw.dripped = reader.parse_number();
    } else if (key == "packets_flushed") {
      gw.flushed = reader.parse_number();
    } else if (key == "transmissions") {
      gw.transmissions = reader.parse_number();
    } else if (key == "client_meter_total_J") {
      gw.meter_J = reader.parse_number();
    } else {
      reader.skip_value();
    }
  });
  // Exact partitions — these are integer counters, so no tolerance.
  if (gw.clients_accepted !=
      gw.clients_disconnected + gw.clients_at_shutdown) {
    reader.fail(
        "gateway clients_accepted != disconnected + at_shutdown");
  }
  if (gw.enqueued != gw.piggybacked + gw.dripped + gw.flushed) {
    reader.fail(
        "gateway packets_enqueued != piggybacked + dripped + flushed");
  }
  // Every enqueued packet leaves exactly once and every heartbeat is one
  // radio occupancy, so the log length is fully determined.
  if (gw.transmissions != gw.heartbeats + gw.enqueued) {
    reader.fail(
        "gateway transmissions != heartbeats + packets_enqueued");
  }
  if (gw.meter_J < -kJouleTolerance) {
    reader.fail("gateway client_meter_total_J is negative");
  }
  return gw;
}

void check_metrics(JsonReader& reader) {
  reader.parse_object([&](const std::string& key) {
    if (key == "counters") {
      reader.parse_object([&](const std::string&) {
        const double value = reader.parse_number();
        if (value < 0.0) reader.fail("negative counter value");
      });
    } else if (key == "histograms") {
      reader.parse_array([&] {
        std::string name;
        double count = 0.0, min = 0.0, max = 0.0;
        double p50 = 0.0, p95 = 0.0, p99 = 0.0;
        std::size_t bounds = 0;
        double bucket_sum = 0.0;
        std::size_t buckets = 0;
        reader.parse_object([&](const std::string& field) {
          if (field == "name") {
            name = reader.parse_string();
          } else if (field == "count") {
            count = reader.parse_number();
          } else if (field == "min") {
            min = reader.parse_number();
          } else if (field == "max") {
            max = reader.parse_number();
          } else if (field == "p50") {
            p50 = reader.parse_number();
          } else if (field == "p95") {
            p95 = reader.parse_number();
          } else if (field == "p99") {
            p99 = reader.parse_number();
          } else if (field == "bounds") {
            reader.parse_array([&] {
              reader.parse_number();
              ++bounds;
            });
          } else if (field == "counts") {
            reader.parse_array([&] {
              bucket_sum += reader.parse_number();
              ++buckets;
            });
          } else {
            reader.skip_value();
          }
        });
        if (buckets != bounds + 1) {
          reader.fail("histogram '" + name +
                      "': counts length != bounds length + 1");
        }
        if (bucket_sum != count) {
          reader.fail("histogram '" + name +
                      "': bucket counts do not sum to count");
        }
        if (count > 0.0) {
          if (!(p50 <= p95 && p95 <= p99)) {
            reader.fail("histogram '" + name +
                        "': quantiles not monotone (p50 <= p95 <= p99)");
          }
          if (p50 < min - kJouleTolerance || p99 > max + kJouleTolerance) {
            reader.fail("histogram '" + name +
                        "': quantiles outside [min, max]");
          }
        }
      });
    } else {
      reader.skip_value();
    }
  });
}

void check_profile_node(JsonReader& reader, int depth) {
  if (depth > 64) reader.fail("profile tree too deep");
  bool has_name = false;
  reader.parse_object([&](const std::string& field) {
    if (field == "name") {
      if (reader.parse_string().empty()) {
        reader.fail("profile node with empty name");
      }
      has_name = true;
    } else if (field == "seconds") {
      if (reader.parse_number() < 0.0) {
        reader.fail("profile node with negative seconds");
      }
    } else if (field == "calls") {
      reader.parse_number();
    } else if (field == "children") {
      reader.parse_array([&] { check_profile_node(reader, depth + 1); });
    } else {
      reader.skip_value();
    }
  });
  if (!has_name) reader.fail("profile node without name");
}

}  // namespace

ReportCheckResult check_run_report(const std::string& json) {
  ReportCheckResult result;
  JsonReader reader(json);
  try {
    bool saw_schema = false, saw_build = false, saw_provenance = false;
    std::optional<ParsedEnergyReport> cellular;
    std::optional<ParsedEnergyReport> wifi;
    std::vector<ParsedEnergyReport> extras;
    std::optional<double> section_network, section_tail, section_tx_count;
    std::optional<LedgerTotals> ledger;
    std::optional<ParsedFleet> fleet;
    std::optional<ParsedGateway> gateway;

    reader.parse_object([&](const std::string& key) {
      if (key == "schema") {
        const std::string schema = reader.parse_string();
        if (schema != kReportSchemaName) {
          reader.fail("unknown schema '" + schema + "'");
        }
        saw_schema = true;
      } else if (key == "version") {
        result.version = static_cast<int>(reader.parse_number());
        if (result.version != kReportSchemaVersion) {
          reader.fail("unsupported report version " +
                      std::to_string(result.version));
        }
      } else if (key == "bench") {
        result.bench = reader.parse_string();
        if (result.bench.empty()) reader.fail("empty bench name");
      } else if (key == "provenance") {
        saw_provenance = true;
        reader.parse_object([&](const std::string&) {
          reader.parse_string();
          ++result.provenance_entries;
        });
      } else if (key == "build") {
        saw_build = true;
        reader.parse_object([&](const std::string& field) {
          if (field == "obs") {
            result.obs_enabled = reader.parse_bool();
          } else if (field == "compiler") {
            if (reader.parse_string().empty()) {
              reader.fail("empty build.compiler");
            }
          } else {
            reader.skip_value();
          }
        });
      } else if (key == "results") {
        reader.parse_object([&](const std::string& name) {
          const double value = reader.parse_number();
          if (std::isnan(value)) {
            reader.fail("result '" + name + "' is NaN");
          }
          ++result.results;
        });
      } else if (key == "energy") {
        if (reader.consume_null()) return;
        reader.parse_object([&](const std::string& field) {
          if (field == "network_J") {
            section_network = reader.parse_number();
          } else if (field == "tail_J") {
            section_tail = reader.parse_number();
          } else if (field == "transmissions") {
            section_tx_count = reader.parse_number();
          } else if (field == "cellular") {
            cellular = parse_energy_report(reader);
          } else if (field == "wifi") {
            if (!reader.consume_null()) {
              wifi = parse_energy_report(reader);
            }
          } else if (field == "extra") {
            // Optional per-interface reports for extra radios, keyed by
            // interface name; each must be a full EnergyReport.
            reader.parse_object([&](const std::string& interface_name) {
              if (interface_name.empty() || interface_name == "cellular" ||
                  interface_name == "wifi") {
                reader.fail("energy extra interface with reserved name '" +
                            interface_name + "'");
              }
              extras.push_back(parse_energy_report(reader));
            });
          } else {
            reader.skip_value();
          }
        });
        if (!cellular.has_value()) {
          reader.fail("energy section without cellular report");
        }
        double other_network = wifi.has_value() ? wifi->network : 0.0;
        double other_tail = wifi.has_value() ? wifi->tail : 0.0;
        for (const ParsedEnergyReport& r : extras) {
          other_network += r.network;
          other_tail += r.tail;
        }
        require_close(reader,
                      "energy network_J != sum of interface networks",
                      section_network.value_or(-1.0),
                      cellular->network + other_network);
        require_close(reader, "energy tail_J != sum of interface tails",
                      section_tail.value_or(-1.0),
                      cellular->tail + other_tail);
      } else if (key == "delay") {
        if (reader.consume_null()) return;
        reader.parse_object([&](const std::string& field) {
          if (field == "violation_ratio") {
            const double v = reader.parse_number();
            if (v < 0.0 || v > 1.0 + kJouleTolerance) {
              reader.fail("violation_ratio outside [0, 1]");
            }
          } else {
            reader.skip_value();
          }
        });
      } else if (key == "ledger") {
        if (reader.consume_null()) return;
        ledger = parse_ledger(reader);
        result.ledger_rows = ledger->rows;
        result.ledger_total_J = ledger->declared_total;
      } else if (key == "fleet") {
        fleet = parse_fleet(reader);
        result.fleet_present = true;
        result.fleet_devices = fleet->devices;
        result.fleet_meter_J = fleet->meter_J;
      } else if (key == "gateway") {
        gateway = parse_gateway(reader);
        result.gateway_present = true;
        result.gateway_clients = gateway->clients_accepted;
        result.gateway_meter_J = gateway->meter_J;
      } else if (key == "metrics") {
        if (reader.consume_null()) return;
        result.metrics_present = true;
        check_metrics(reader);
      } else if (key == "artifacts") {
        reader.parse_array([&] {
          ReportCheckResult::Artifact artifact;
          reader.parse_object([&](const std::string& field) {
            if (field == "file") {
              artifact.file = reader.parse_string();
            } else if (field == "rows") {
              artifact.rows =
                  static_cast<std::size_t>(reader.parse_number());
            } else if (field == "column_sums") {
              reader.parse_object([&](const std::string& column) {
                artifact.column_sums.emplace_back(column,
                                                  reader.parse_number());
              });
            } else {
              reader.skip_value();
            }
          });
          if (artifact.file.empty()) {
            reader.fail("artifact without file name");
          }
          result.artifacts.push_back(std::move(artifact));
        });
      } else if (key == "environment") {
        reader.parse_object(
            [&](const std::string&) { reader.parse_number(); });
      } else if (key == "profile") {
        if (reader.consume_null()) return;
        result.profile_present = true;
        check_profile_node(reader, 0);
      } else {
        reader.skip_value();
      }
    });
    if (!reader.at_end()) reader.fail("trailing garbage after report");
    if (!saw_schema) reader.fail("missing schema field");
    if (!saw_provenance) reader.fail("missing provenance section");
    if (!saw_build) reader.fail("missing build section");
    if (result.bench.empty()) reader.fail("missing bench field");

    if (section_network.has_value()) {
      result.network_J = section_network;
      result.tail_J = section_tail;
      result.transmissions = section_tx_count;
    }

    // The headline cross-section invariant: the attribution ledger is a
    // *partition* of the run's network energy — every joule lands in
    // exactly one (interface, kind, app) bucket.
    if (ledger.has_value() && cellular.has_value()) {
      std::vector<const ParsedEnergyReport*> reports{&cellular.value()};
      if (wifi.has_value()) reports.push_back(&wifi.value());
      for (const ParsedEnergyReport& r : extras) reports.push_back(&r);
      double tx_by_kind[2] = {0.0, 0.0};
      double tail_by_kind[2] = {0.0, 0.0};
      double setup = 0.0;
      double transmissions = 0.0;
      for (const ParsedEnergyReport* r : reports) {
        for (int k = 0; k < 2; ++k) {
          tx_by_kind[k] += r->tx_by_kind[k];
          tail_by_kind[k] += r->tail_by_kind[k];
        }
        setup += r->setup;
        transmissions += r->transmissions;
      }
      require_close(reader, "ledger total_J != energy network_J",
                    ledger->declared_total, *section_network);
      require_close(reader, "ledger heartbeat tx_J != meter by-kind tx",
                    ledger->tx_by_kind[0], tx_by_kind[0]);
      require_close(reader, "ledger data tx_J != meter by-kind tx",
                    ledger->tx_by_kind[1], tx_by_kind[1]);
      require_close(reader, "ledger heartbeat tail_J != meter by-kind tail",
                    ledger->tail_by_kind[0], tail_by_kind[0]);
      require_close(reader, "ledger data tail_J != meter by-kind tail",
                    ledger->tail_by_kind[1], tail_by_kind[1]);
      require_close(reader, "ledger setup_J != meter setup energy",
                    ledger->setup, setup);
      if (ledger->transmissions != transmissions) {
        reader.fail("ledger transmissions != meter transmissions");
      }
    }

    // Fleet cross-checks: the fleet ledger must re-bill the sum of the
    // per-device meters. Each device's ledger matches its meter to 1e-9 J
    // (the single-run invariant above), so the population sum is compared
    // at 1e-9 x max(1, devices).
    // Gateway cross-checks: the gateway ledger must re-bill the sum of the
    // per-session meters. Each session's log bills to 1e-9 J, so the
    // population sum is compared at 1e-9 x max(1, clients).
    if (gateway.has_value()) {
      if (!ledger.has_value()) {
        reader.fail("gateway section without an energy ledger");
      }
      const double gateway_tolerance =
          kJouleTolerance * std::max(1.0, gateway->clients_accepted);
      require_close_tol(reader,
                        "ledger total_J != gateway client_meter_total_J",
                        ledger->declared_total, gateway->meter_J,
                        gateway_tolerance);
      if (ledger->transmissions != gateway->transmissions) {
        reader.fail("ledger transmissions != gateway transmissions");
      }
    }

    if (fleet.has_value()) {
      const double fleet_tolerance =
          kJouleTolerance * std::max(1.0, fleet->devices);
      if (!ledger.has_value()) {
        reader.fail("fleet section without an energy ledger");
      }
      require_close_tol(reader,
                        "fleet class network_J do not sum to "
                        "device_meter_total_J",
                        fleet->class_network, fleet->meter_J,
                        fleet_tolerance);
      require_close_tol(reader,
                        "ledger total_J != fleet device_meter_total_J",
                        ledger->declared_total, fleet->meter_J,
                        fleet_tolerance);
      require_close_tol(reader,
                        "ledger heartbeat_J != fleet class heartbeat sum",
                        ledger->declared_by_kind[0], fleet->class_heartbeat,
                        fleet_tolerance);
      require_close_tol(reader, "ledger data_J != fleet class data sum",
                        ledger->declared_by_kind[1], fleet->class_data,
                        fleet_tolerance);
    }
  } catch (const std::string& error) {
    result.error = error;
    return result;
  }
  result.ok = true;
  return result;
}

ReportCheckResult check_run_report_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ReportCheckResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return check_run_report(buffer.str());
}

std::string cross_check_trace(const ReportCheckResult& report,
                              const TraceCheckResult& trace) {
  if (!report.ok) return "report failed validation: " + report.error;
  if (!trace.ok) return "trace failed validation: " + trace.error;
  if (!report.network_J.has_value()) {
    return "report has no energy section to compare";
  }
  if (!trace.reported_network.has_value() ||
      !trace.reported_tail.has_value()) {
    return "trace has no RunSummary to compare";
  }
  if (std::fabs(*report.network_J - *trace.reported_network) >
      kJouleTolerance) {
    return "network energy mismatch: report " + fmt(*report.network_J) +
           " J vs trace " + fmt(*trace.reported_network) + " J";
  }
  if (report.tail_J.has_value() &&
      std::fabs(*report.tail_J - *trace.reported_tail) > kJouleTolerance) {
    return "tail energy mismatch: report " + fmt(*report.tail_J) +
           " J vs trace " + fmt(*trace.reported_tail) + " J";
  }
  if (report.transmissions.has_value() &&
      trace.reported_transmissions.has_value() &&
      *report.transmissions != *trace.reported_transmissions) {
    return "transmission count mismatch: report " +
           fmt(*report.transmissions) + " vs trace " +
           fmt(*trace.reported_transmissions);
  }
  return "";
}

namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else if (c != '\r') {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

}  // namespace

std::string cross_check_artifacts(const ReportCheckResult& report,
                                  const std::string& base_dir) {
  if (!report.ok) return "report failed validation: " + report.error;
  for (const auto& artifact : report.artifacts) {
    std::string path = artifact.file;
    if (!base_dir.empty() && !path.empty() && path.front() != '/') {
      path = base_dir + "/" + path;
    }
    std::ifstream in(path);
    if (!in) return "artifact missing: " + path;

    std::string line;
    if (!std::getline(in, line)) return "artifact empty: " + path;
    const std::vector<std::string> header = split_csv_line(line);

    // Column index for every recorded sum.
    std::vector<std::size_t> indices;
    for (const auto& [column, sum] : artifact.column_sums) {
      (void)sum;
      std::size_t index = header.size();
      for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == column) index = i;
      }
      if (index == header.size()) {
        return "artifact " + path + " lost column '" + column + "'";
      }
      indices.push_back(index);
    }

    std::size_t rows = 0;
    std::vector<double> sums(artifact.column_sums.size(), 0.0);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::vector<std::string> cells = split_csv_line(line);
      if (cells.size() != header.size()) {
        return "artifact " + path + " has a ragged row";
      }
      ++rows;
      for (std::size_t i = 0; i < indices.size(); ++i) {
        char* end = nullptr;
        const double value = std::strtod(cells[indices[i]].c_str(), &end);
        if (end == nullptr || *end != '\0') {
          return "artifact " + path + " has non-numeric cell '" +
                 cells[indices[i]] + "'";
        }
        sums[i] += value;
      }
    }
    if (rows != artifact.rows) {
      return "artifact " + path + " row count " + std::to_string(rows) +
             " != recorded " + std::to_string(artifact.rows);
    }
    for (std::size_t i = 0; i < sums.size(); ++i) {
      if (std::fabs(sums[i] - artifact.column_sums[i].second) >
          kJouleTolerance) {
        return "artifact " + path + " column '" +
               artifact.column_sums[i].first + "' sum " + fmt(sums[i]) +
               " != recorded " + fmt(artifact.column_sums[i].second);
      }
    }
  }
  return "";
}

}  // namespace etrain::obs
