#include "obs/report.h"

#include "common/parallel.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <tuple>

namespace etrain::obs {

namespace {

/// %.17g — shortest round-trippable form, same as the trace exporters, so
/// equal doubles always serialize to equal bytes.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* kind_name(radio::TxKind kind) {
  return kind == radio::TxKind::kHeartbeat ? "heartbeat" : "data";
}

/// Row sort key: interface, then kind, then app. Cellular sorts before
/// wifi alphabetically, which is also the natural reading order.
auto row_key(const LedgerRow& row) {
  return std::make_tuple(row.interface_name,
                         static_cast<int>(row.kind), row.app);
}

}  // namespace

Joules EnergyLedger::total() const {
  Joules sum = 0.0;
  for (const auto& row : rows) sum += row.total();
  return sum;
}

Joules EnergyLedger::kind_total(radio::TxKind kind) const {
  Joules sum = 0.0;
  for (const auto& row : rows) {
    if (row.kind == kind) sum += row.total();
  }
  return sum;
}

void append_ledger(EnergyLedger& ledger, const std::string& interface_name,
                   const radio::TransmissionLog& log,
                   const radio::PowerModel& model, Duration horizon) {
  // Same contract as measure_energy — a ledger built from a log the meter
  // would reject would not cross-check against anything.
  if (horizon < log.last_end() - 1e-9) {
    throw std::invalid_argument(
        "append_ledger: horizon ends before the last transmission");
  }

  auto row_for = [&](radio::TxKind kind, int app) -> LedgerRow& {
    for (auto& row : ledger.rows) {
      if (row.interface_name == interface_name && row.kind == kind &&
          row.app == app) {
        return row;
      }
    }
    LedgerRow row;
    row.interface_name = interface_name;
    row.kind = kind;
    row.app = app;
    ledger.rows.push_back(std::move(row));
    return ledger.rows.back();
  };

  // This loop is measure_energy's billing restated per (kind, app) bucket:
  // data-phase energy at tx_extra_power, promotion at dch_extra_power, and
  // the gap after each transmission split into DCH/FACH tail components and
  // billed to the transmission that opened it. obs_report_test asserts the
  // bucketed sums reproduce the meter's by-kind totals to 1e-9 J, so the two
  // implementations cannot drift apart unnoticed.
  const auto& entries = log.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const radio::Transmission& tx = entries[i];
    LedgerRow& row = row_for(tx.kind, tx.app_id);

    const Joules data_energy = model.tx_extra_power * tx.duration;
    const Joules setup_energy = model.dch_extra_power * tx.setup;
    row.tx_J += data_energy;
    row.setup_J += setup_energy;
    row.transmissions += 1;
    row.airtime_s += tx.setup + tx.duration;
    if (tx.failed) {
      row.failures += 1;
      row.failed_airtime_J += data_energy + setup_energy;
      row.failed_airtime_s += tx.setup + tx.duration;
    }

    const TimePoint gap_end =
        (i + 1 < entries.size()) ? entries[i + 1].start : horizon;
    const Duration gap = std::max(0.0, gap_end - tx.end());
    if (gap > 0.0) {
      const Duration dch_part = std::min(gap, model.dch_tail);
      const Duration fach_part =
          std::clamp(gap - model.dch_tail, 0.0, model.fach_tail);
      row.tail_J += model.dch_extra_power * dch_part +
                    model.fach_extra_power * fach_part;
      // Extra tail phases (CDRX long-DRX windows) bill into the same tail
      // bucket, mirroring the EnergyMeter's FACH-extension accounting.
      Duration boundary = model.dch_tail + model.fach_tail;
      for (const radio::TailPhase& p : model.extra_tail) {
        if (gap <= boundary) break;
        row.tail_J += p.extra_power * std::min(gap - boundary, p.length);
        boundary += p.length;
      }
    }
  }

  std::sort(ledger.rows.begin(), ledger.rows.end(),
            [](const LedgerRow& a, const LedgerRow& b) {
              return row_key(a) < row_key(b);
            });
}

struct ArtifactLog::Impl {
  std::mutex mutex;
  std::vector<CsvArtifact> artifacts;
};

ArtifactLog::Impl& ArtifactLog::impl() {
  static Impl instance;
  return instance;
}

ArtifactLog& ArtifactLog::global() {
  static ArtifactLog log;
  return log;
}

void ArtifactLog::record(CsvArtifact artifact) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.artifacts.push_back(std::move(artifact));
}

std::vector<CsvArtifact> ArtifactLog::snapshot() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.artifacts;
}

void ArtifactLog::clear() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.artifacts.clear();
}

BuildInfo current_build_info() {
  BuildInfo info;
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
  info.cxx_standard = static_cast<long>(__cplusplus);
#if defined(ETRAIN_OBS_DISABLED)
  info.obs_enabled = false;
#else
  info.obs_enabled = true;
#endif
#if defined(NDEBUG)
  info.assertions = false;
#else
  info.assertions = true;
#endif
#if defined(__SANITIZE_ADDRESS__)
  info.sanitizer = "address";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  info.sanitizer = "address";
#else
  info.sanitizer = "none";
#endif
#else
  info.sanitizer = "none";
#endif
  return info;
}

namespace {

void write_energy_report(std::ostream& out,
                         const radio::EnergyReport& report) {
  out << "{\"horizon_s\":" << num(report.horizon)
      << ",\"idle_baseline_J\":" << num(report.idle_baseline)
      << ",\"tx_J\":" << num(report.tx_energy)
      << ",\"setup_J\":" << num(report.setup_energy)
      << ",\"dch_tail_J\":" << num(report.dch_tail_energy)
      << ",\"fach_tail_J\":" << num(report.fach_tail_energy)
      << ",\"tail_J\":" << num(report.tail_energy())
      << ",\"network_J\":" << num(report.network_energy())
      << ",\"tx_by_kind_J\":{\"heartbeat\":"
      << num(report.tx_energy_by_kind[0])
      << ",\"data\":" << num(report.tx_energy_by_kind[1])
      << "},\"tail_by_kind_J\":{\"heartbeat\":"
      << num(report.tail_energy_by_kind[0])
      << ",\"data\":" << num(report.tail_energy_by_kind[1])
      << "},\"transmissions\":" << report.transmissions
      << ",\"full_tails\":" << report.full_tails
      << ",\"truncated_tails\":" << report.truncated_tails
      << ",\"promotions\":" << report.promotions
      << ",\"cold_starts\":" << report.cold_starts << "}";
}

void write_energy_section(std::ostream& out, const EnergySection& energy) {
  out << "{\"network_J\":" << num(energy.network_J())
      << ",\"tail_J\":" << num(energy.tail_J())
      << ",\"transmissions\":" << energy.transmissions()
      << ",\"cellular\":";
  write_energy_report(out, energy.cellular);
  out << ",\"wifi\":";
  if (energy.wifi.has_value()) {
    write_energy_report(out, *energy.wifi);
  } else {
    out << "null";
  }
  // The extra-interface map is written only when non-empty so existing
  // single-interface reports keep their exact byte layout.
  if (!energy.extra.empty()) {
    out << ",\"extra\":{";
    for (std::size_t i = 0; i < energy.extra.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << escape(energy.extra[i].first) << "\":";
      write_energy_report(out, energy.extra[i].second);
    }
    out << "}";
  }
  out << ",\"monsoon_J\":";
  if (energy.monsoon_J.has_value()) {
    out << num(*energy.monsoon_J);
  } else {
    out << "null";
  }
  out << "}";
}

void write_delay_section(std::ostream& out, const DelaySection& delay) {
  out << "{\"packets\":" << delay.packets
      << ",\"normalized_delay_s\":" << num(delay.normalized_delay_s)
      << ",\"violation_ratio\":" << num(delay.violation_ratio)
      << ",\"total_delay_cost\":" << num(delay.total_delay_cost) << "}";
}

void write_ledger(std::ostream& out, const EnergyLedger& ledger) {
  out << "{\"total_J\":" << num(ledger.total()) << ",\"heartbeat_J\":"
      << num(ledger.kind_total(radio::TxKind::kHeartbeat))
      << ",\"data_J\":" << num(ledger.kind_total(radio::TxKind::kData))
      << ",\"rows\":[";
  for (std::size_t i = 0; i < ledger.rows.size(); ++i) {
    const LedgerRow& row = ledger.rows[i];
    if (i > 0) out << ",";
    out << "{\"interface\":\"" << escape(row.interface_name)
        << "\",\"kind\":\"" << kind_name(row.kind)
        << "\",\"app\":" << row.app << ",\"tx_J\":" << num(row.tx_J)
        << ",\"setup_J\":" << num(row.setup_J)
        << ",\"tail_J\":" << num(row.tail_J)
        << ",\"total_J\":" << num(row.total())
        << ",\"failed_airtime_J\":" << num(row.failed_airtime_J)
        << ",\"transmissions\":" << row.transmissions
        << ",\"failures\":" << row.failures
        << ",\"airtime_s\":" << num(row.airtime_s)
        << ",\"failed_airtime_s\":" << num(row.failed_airtime_s) << "}";
  }
  out << "]}";
}

void write_fleet_section(std::ostream& out, const FleetSection& fleet) {
  out << "{\"devices\":" << fleet.devices
      << ",\"total_slots\":" << fleet.total_slots
      << ",\"packets\":" << fleet.packets << ",\"device_meter_total_J\":"
      << num(fleet.device_meter_total_J) << ",\"classes\":[";
  for (std::size_t i = 0; i < fleet.classes.size(); ++i) {
    const FleetClassStats& cls = fleet.classes[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << escape(cls.name)
        << "\",\"devices\":" << cls.devices << ",\"packets\":" << cls.packets
        << ",\"violations\":" << cls.violations
        << ",\"transmissions\":" << cls.transmissions
        << ",\"failures\":" << cls.failures
        << ",\"network_J\":" << num(cls.network_J)
        << ",\"heartbeat_J\":" << num(cls.heartbeat_J)
        << ",\"data_J\":" << num(cls.data_J)
        << ",\"normalized_delay_s\":" << num(cls.normalized_delay_s)
        << ",\"violation_ratio\":" << num(cls.violation_ratio)
        << ",\"delay_cost\":" << num(cls.delay_cost) << "}";
  }
  out << "]}";
}

void write_gateway_section(std::ostream& out, const GatewaySection& gw) {
  out << "{\"clients_accepted\":" << gw.clients_accepted
      << ",\"clients_disconnected\":" << gw.clients_disconnected
      << ",\"clients_at_shutdown\":" << gw.clients_at_shutdown
      << ",\"protocol_errors\":" << gw.protocol_errors
      << ",\"heartbeats\":" << gw.heartbeats
      << ",\"packets_enqueued\":" << gw.packets_enqueued
      << ",\"packets_piggybacked\":" << gw.packets_piggybacked
      << ",\"packets_dripped\":" << gw.packets_dripped
      << ",\"packets_flushed\":" << gw.packets_flushed
      << ",\"transmissions\":" << gw.transmissions
      << ",\"client_meter_total_J\":" << num(gw.client_meter_total_J)
      << "}";
}

void write_metrics(std::ostream& out, const MetricsSnapshot& metrics) {
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < metrics.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << escape(metrics.counters[i].name)
        << "\":" << metrics.counters[i].value;
  }
  out << "},\"histograms\":[";
  for (std::size_t i = 0; i < metrics.histograms.size(); ++i) {
    const HistogramSnapshot& h = metrics.histograms[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << escape(h.name) << "\",\"count\":" << h.count
        << ",\"sum\":" << num(h.sum) << ",\"min\":" << num(h.min)
        << ",\"max\":" << num(h.max) << ",\"mean\":" << num(h.mean())
        << ",\"p50\":" << num(h.quantile(0.50))
        << ",\"p95\":" << num(h.quantile(0.95))
        << ",\"p99\":" << num(h.quantile(0.99)) << ",\"bounds\":[";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j > 0) out << ",";
      out << num(h.bounds[j]);
    }
    out << "],\"counts\":[";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j > 0) out << ",";
      out << h.counts[j];
    }
    out << "]}";
  }
  out << "]}";
}

void write_artifact(std::ostream& out, const CsvArtifact& artifact) {
  out << "{\"file\":\"" << escape(artifact.file)
      << "\",\"rows\":" << artifact.rows << ",\"column_sums\":{";
  for (std::size_t i = 0; i < artifact.column_sums.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << escape(artifact.column_sums[i].first)
        << "\":" << num(artifact.column_sums[i].second);
  }
  out << "}}";
}

void write_profile(std::ostream& out, const ProfileNode& node) {
  out << "{\"name\":\"" << escape(node.name)
      << "\",\"seconds\":" << num(node.seconds)
      << ",\"calls\":" << node.calls << ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out << ",";
    write_profile(out, node.children[i]);
  }
  out << "]}";
}

}  // namespace

void write_run_report(std::ostream& out, const RunReport& report) {
  out << "{\"schema\":\"" << kReportSchemaName
      << "\",\"version\":" << kReportSchemaVersion << ",\"bench\":\""
      << escape(report.bench) << "\",\"provenance\":{";
  for (std::size_t i = 0; i < report.provenance.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << escape(report.provenance[i].first) << "\":\""
        << escape(report.provenance[i].second) << "\"";
  }
  out << "},\"build\":{\"compiler\":\"" << escape(report.build.compiler)
      << "\",\"cxx\":" << report.build.cxx_standard << ",\"obs\":"
      << (report.build.obs_enabled ? "true" : "false") << ",\"assertions\":"
      << (report.build.assertions ? "true" : "false") << ",\"sanitizer\":\""
      << escape(report.build.sanitizer) << "\"},\"results\":{";
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << escape(report.results[i].first)
        << "\":" << num(report.results[i].second);
  }
  out << "},\"energy\":";
  if (report.energy.has_value()) {
    write_energy_section(out, *report.energy);
  } else {
    out << "null";
  }
  out << ",\"delay\":";
  if (report.delay.has_value()) {
    write_delay_section(out, *report.delay);
  } else {
    out << "null";
  }
  out << ",\"ledger\":";
  if (report.ledger.has_value()) {
    write_ledger(out, *report.ledger);
  } else {
    out << "null";
  }
  // The fleet section is written only when present so non-fleet reports —
  // including the committed golden fixture — keep their exact byte layout.
  if (report.fleet.has_value()) {
    out << ",\"fleet\":";
    write_fleet_section(out, *report.fleet);
  }
  // Same conditional-presence contract as `fleet` for gateway reports.
  if (report.gateway.has_value()) {
    out << ",\"gateway\":";
    write_gateway_section(out, *report.gateway);
  }
  out << ",\"metrics\":";
  if (report.metrics.has_value() && !report.metrics->empty()) {
    write_metrics(out, *report.metrics);
  } else {
    out << "null";
  }
  out << ",\"artifacts\":[";
  for (std::size_t i = 0; i < report.artifacts.size(); ++i) {
    if (i > 0) out << ",";
    write_artifact(out, report.artifacts[i]);
  }
  // Everything below this line is the non-compared zone: values here may
  // differ between byte-identical runs (docs/determinism.md).
  out << "],\"environment\":{";
  for (std::size_t i = 0; i < report.environment.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << escape(report.environment[i].first)
        << "\":" << num(report.environment[i].second);
  }
  out << "},\"profile\":";
  if (report.profile.has_value()) {
    write_profile(out, *report.profile);
  } else {
    out << "null";
  }
  out << "}\n";
}

void write_run_report_file(const std::string& path,
                           const RunReport& report) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_run_report_file: cannot open " + path);
  }
  write_run_report(out, report);
  if (!out) {
    throw std::runtime_error("write_run_report_file: write failed for " +
                             path);
  }
}

void finalize_run_report(const std::string& path, RunReport report) {
  bool has_jobs = false;
  for (const auto& entry : report.environment) {
    if (entry.first == "jobs") has_jobs = true;
  }
  if (!has_jobs) {
    report.add_environment("jobs", static_cast<double>(default_jobs()));
  }
  if (report.artifacts.empty()) {
    report.artifacts = ArtifactLog::global().snapshot();
  }
  if (!report.profile.has_value()) {
    report.profile = profiler_snapshot();
  }
  write_run_report_file(path, report);
  std::ostringstream line;
  line << "report: " << report.bench << " -> " << path << "\n";
  std::fputs(line.str().c_str(), stdout);
}

}  // namespace etrain::obs
