#include "obs/exporters.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "radio/energy_meter.h"

namespace etrain::obs {

namespace {

/// Track ids of the Chrome export; see the header comment.
enum Track : int {
  kTrackScheduler = 1,
  kTrackRadio = 2,
  kTrackHeartbeats = 3,
  kTrackKernel = 4,
  kTrackMeter = 5,
};

int track_of(EventType type) {
  switch (type) {
    case EventType::kSlotBegin:
    case EventType::kGateOpen:
    case EventType::kPacketSelect:
      return kTrackScheduler;
    case EventType::kRrcTransition:
    case EventType::kTxFailure:
    case EventType::kTxRetry:
    case EventType::kOutageDefer:
      return kTrackRadio;
    case EventType::kHeartbeatTx:
      return kTrackHeartbeats;
    case EventType::kEventFire:
      return kTrackKernel;
    case EventType::kTailCharge:
      return kTrackMeter;
  }
  return kTrackKernel;
}

/// Seconds -> integer microseconds (trace_event's ts unit). Rounding keeps
/// equal simulated times equal in the export.
long long micros(TimePoint t) {
  return static_cast<long long>(t * 1e6 + (t >= 0 ? 0.5 : -0.5));
}

void write_thread_name(std::ostream& out, int tid, const char* name) {
  out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
      << ",\"args\":{\"name\":\"" << name << "\"}}";
}

/// Formats a double with enough digits to round-trip (the checker re-sums
/// TailCharge joules to 1e-9 J).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_event(std::ostream& out, const TraceEvent& e) {
  out << "{\"name\":\"" << to_string(e.type)
      << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << track_of(e.type)
      << ",\"ts\":" << micros(e.time) << ",\"args\":{";
  switch (e.type) {
    case EventType::kSlotBegin:
      out << "\"queued\":" << e.a << ",\"cost\":" << num(e.x);
      break;
    case EventType::kGateOpen:
      out << "\"heartbeat\":" << e.a << ",\"P\":" << num(e.x)
          << ",\"theta\":" << num(e.y);
      break;
    case EventType::kPacketSelect:
      out << "\"app\":" << e.a << ",\"packet\":" << e.b
          << ",\"gain\":" << num(e.x) << ",\"phi\":" << num(e.y);
      break;
    case EventType::kHeartbeatTx:
      out << "\"train\":" << e.a << ",\"bytes\":" << e.b;
      break;
    case EventType::kRrcTransition:
      out << "\"from\":\""
          << radio::to_string(static_cast<radio::RrcState>(e.a))
          << "\",\"to\":\""
          << radio::to_string(static_cast<radio::RrcState>(e.b)) << "\"";
      break;
    case EventType::kTailCharge:
      out << "\"kind\":\"" << (e.a == 0 ? "heartbeat" : "data")
          << "\",\"joules\":" << num(e.x) << ",\"gap_s\":" << num(e.y);
      break;
    case EventType::kEventFire:
      out << "\"event_id\":" << e.b;
      break;
    case EventType::kTxFailure:
      out << "\"kind\":\"" << (e.a == 0 ? "heartbeat" : "data")
          << "\",\"entity\":" << e.b << ",\"attempt\":" << num(e.x)
          << ",\"airtime_s\":" << num(e.y);
      break;
    case EventType::kTxRetry:
      out << "\"kind\":\"" << (e.a == 0 ? "heartbeat" : "data")
          << "\",\"entity\":" << e.b << ",\"attempt\":" << num(e.x)
          << ",\"backoff_s\":" << num(e.y);
      break;
    case EventType::kOutageDefer:
      out << "\"kind\":\"" << (e.a == 0 ? "heartbeat" : "data")
          << "\",\"entity\":" << e.b << ",\"until_s\":" << num(e.x)
          << ",\"wait_s\":" << num(e.y);
      break;
  }
  out << "}}";
}

void write_transmission_span(std::ostream& out,
                             const radio::Transmission& tx) {
  out << "{\"name\":\""
      << (tx.kind == radio::TxKind::kHeartbeat ? "heartbeat_tx" : "data_tx")
      << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << kTrackRadio
      << ",\"ts\":" << micros(tx.start)
      << ",\"dur\":" << micros(tx.setup + tx.duration)
      << ",\"args\":{\"bytes\":" << tx.bytes << ",\"app\":" << tx.app_id
      << ",\"packet\":" << tx.packet_id << ",\"setup_s\":" << num(tx.setup)
      << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const radio::TransmissionLog* log,
                        const RunSummary* summary) {
  // Sinks record in emission order, which is not globally chronological
  // (the energy meter bills tails after the run; the RRC machine emits
  // demotions retroactively). Sort by time, stable so same-instant events
  // keep their emission order.
  std::vector<TraceEvent> sorted = events;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.time < b.time;
                   });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"etrain\"}}";
  out << ",";
  write_thread_name(out, kTrackScheduler, "scheduler");
  out << ",";
  write_thread_name(out, kTrackRadio, "radio");
  out << ",";
  write_thread_name(out, kTrackHeartbeats, "heartbeats");
  out << ",";
  write_thread_name(out, kTrackKernel, "kernel");
  out << ",";
  write_thread_name(out, kTrackMeter, "meter");

  // Transmission spans merge into the same stream: the checker (and some
  // trace viewers) want file order to be non-decreasing in ts, so instants
  // and spans interleave chronologically rather than forming two blocks.
  std::vector<radio::Transmission> spans;
  if (log != nullptr) {
    spans = log->entries();
    std::stable_sort(spans.begin(), spans.end(),
                     [](const radio::Transmission& a,
                        const radio::Transmission& b) {
                       return a.start < b.start;
                     });
  }

  double tail_sum = 0.0;
  TimePoint last_time = 0.0;
  std::size_t ei = 0;
  std::size_t ti = 0;
  while (ei < sorted.size() || ti < spans.size()) {
    out << ",";
    const bool take_event =
        ei < sorted.size() &&
        (ti >= spans.size() || sorted[ei].time <= spans[ti].start);
    if (take_event) {
      const TraceEvent& e = sorted[ei++];
      write_event(out, e);
      if (e.type == EventType::kTailCharge) tail_sum += e.x;
      last_time = std::max(last_time, e.time);
    } else {
      const radio::Transmission& tx = spans[ti++];
      write_transmission_span(out, tx);
      last_time = std::max(last_time, tx.end());
    }
  }
  if (summary != nullptr) {
    out << ",{\"name\":\"RunSummary\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,"
        << "\"tid\":" << kTrackMeter << ",\"ts\":" << micros(last_time)
        << ",\"args\":{\"tail_charge_sum_J\":" << num(tail_sum)
        << ",\"reported_tail_J\":" << num(summary->tail_energy_joules)
        << ",\"network_energy_J\":" << num(summary->network_energy_joules)
        << ",\"transmissions\":" << summary->transmissions << "}}";
  }
  out << "]}\n";
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const radio::TransmissionLog* log,
                             const RunSummary* summary) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
  }
  write_chrome_trace(out, events, log, summary);
  if (!out) {
    throw std::runtime_error("write_chrome_trace_file: write failed: " + path);
  }
}

radio::RrcState state_at(const radio::TransmissionLog& log,
                         const radio::PowerModel& model, TimePoint t) {
  const auto& entries = log.entries();
  const auto it = std::upper_bound(
      entries.begin(), entries.end(), t,
      [](TimePoint v, const radio::Transmission& tx) { return v < tx.start; });
  if (it == entries.begin()) return radio::RrcState::kIdle;
  const radio::Transmission& prev = *std::prev(it);
  if (t < prev.end()) return radio::RrcState::kDch;  // setup or data phase
  const Duration elapsed = t - prev.end();
  if (elapsed < model.dch_tail) return radio::RrcState::kDch;
  if (elapsed < model.tail_time()) return radio::RrcState::kFach;
  return radio::RrcState::kIdle;
}

void write_power_timeline(std::ostream& out, const radio::TransmissionLog& log,
                          const radio::PowerModel& model, Duration horizon,
                          Duration dt) {
  if (dt <= 0.0) {
    throw std::invalid_argument("write_power_timeline: non-positive dt");
  }
  out << "time_s,power_W,rrc_state,transmitting\n";
  const auto& entries = log.entries();
  std::size_t next_tx = 0;
  char line[128];
  for (TimePoint t = 0.0; t <= horizon + 1e-12; t += dt) {
    // A transmission is "in flight" at t when some entry's data phase
    // covers t; advance the cursor instead of re-searching per sample.
    while (next_tx < entries.size() && entries[next_tx].end() <= t) {
      ++next_tx;
    }
    const bool transmitting = next_tx < entries.size() &&
                              entries[next_tx].data_start() <= t &&
                              t < entries[next_tx].end();
    const Watts p = radio::power_at(log, model, t);
    std::snprintf(line, sizeof(line), "%.3f,%.6f,%s,%d\n", t, p,
                  radio::to_string(state_at(log, model, t)).c_str(),
                  transmitting ? 1 : 0);
    out << line;
  }
}

void write_power_timeline_file(const std::string& path,
                               const radio::TransmissionLog& log,
                               const radio::PowerModel& model,
                               Duration horizon, Duration dt) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_power_timeline_file: cannot open " + path);
  }
  write_power_timeline(out, log, model, horizon, dt);
  if (!out) {
    throw std::runtime_error("write_power_timeline_file: write failed: " +
                             path);
  }
}

}  // namespace etrain::obs
