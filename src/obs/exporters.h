// Trace exporters: Chrome trace_event JSON (loadable in chrome://tracing
// and Perfetto) and the CSV power/RRC-state timeline that reconstructs the
// paper's Fig. 3/4-style plots from any finished run.
//
// The Chrome export lays components out as one named track each:
//   tid 1 "scheduler"  — SlotBegin / GateOpen / PacketSelect instants
//   tid 2 "radio"      — transmissions as complete ("X") spans (from the
//                        TransmissionLog) plus RrcTransition instants
//   tid 3 "heartbeats" — HeartbeatTx instants
//   tid 4 "kernel"     — DES EventFire instants
//   tid 5 "meter"      — TailCharge instants and the final RunSummary
// Timestamps are simulated seconds scaled to microseconds (the trace_event
// unit); events are sorted by time before writing, so the checker can
// assert monotonicity.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "radio/power_model.h"
#include "radio/transmission_log.h"

namespace etrain::obs {

/// End-of-run totals embedded in the trace as a RunSummary event. The
/// checker cross-validates summed TailCharge joules against
/// `tail_energy_joules` (must agree to 1e-9 J).
struct RunSummary {
  Joules tail_energy_joules = 0.0;
  Joules network_energy_joules = 0.0;
  std::size_t transmissions = 0;
};

/// Writes `events` (plus optional transmission spans and the run summary)
/// as Chrome trace_event JSON. `log`/`summary` may be null.
void write_chrome_trace(std::ostream& out,
                        const std::vector<TraceEvent>& events,
                        const radio::TransmissionLog* log = nullptr,
                        const RunSummary* summary = nullptr);

/// write_chrome_trace to `path`; throws std::runtime_error on I/O failure.
void write_chrome_trace_file(const std::string& path,
                             const std::vector<TraceEvent>& events,
                             const radio::TransmissionLog* log = nullptr,
                             const RunSummary* summary = nullptr);

/// Writes the per-run power timeline as CSV with header
/// `time_s,power_W,rrc_state,transmitting`: the instantaneous total power
/// and RRC state sampled every `dt` seconds over [0, horizon], derived by
/// replaying `log` against `model` — i.e. exactly what the Monsoon monitor
/// of Fig. 9 sees, in a form gnuplot/matplotlib can turn back into a
/// Fig. 3-style figure (recipe in docs/observability.md).
void write_power_timeline(std::ostream& out, const radio::TransmissionLog& log,
                          const radio::PowerModel& model, Duration horizon,
                          Duration dt = 0.1);

/// write_power_timeline to `path`; throws std::runtime_error on I/O failure.
void write_power_timeline_file(const std::string& path,
                               const radio::TransmissionLog& log,
                               const radio::PowerModel& model,
                               Duration horizon, Duration dt = 0.1);

/// RRC state of a finished log at time t (the offline counterpart of
/// RrcStateMachine::state_at; the timeline exporter's third column).
radio::RrcState state_at(const radio::TransmissionLog& log,
                         const radio::PowerModel& model, TimePoint t);

}  // namespace etrain::obs
