// A small validator for exported Chrome traces.
//
// Checks what the importers (chrome://tracing, Perfetto's TraceProcessor)
// actually require of the JSON trace_event format, plus the invariants our
// own exporter promises:
//   * well-formed JSON object with a "traceEvents" array of objects
//     (brace/bracket balance, string escaping, no trailing garbage);
//   * every event has "name", "ph", "pid", "tid" and a numeric "ts" >= 0;
//   * non-metadata timestamps are monotonically non-decreasing in file
//     order (the exporter sorts before writing);
//   * when a RunSummary event is present, the sum of all TailCharge
//     "joules" args equals its "reported_tail_J" to within 1e-9 J — the
//     end-to-end guarantee that the trace and the EnergyMeter agree.
//
// Used both as a ctest (obs_exporters_test / obs_integration_test) and by
// the `trace_check` CLI that scripts/check.sh runs on a real traced bench.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>

namespace etrain::obs {

struct TraceCheckResult {
  bool ok = false;
  std::string error;          ///< empty when ok
  std::size_t events = 0;     ///< traceEvents entries (metadata included)
  std::size_t tail_charges = 0;
  double tail_charge_sum = 0.0;
  std::optional<double> reported_tail;  ///< RunSummary's reported_tail_J
  /// RunSummary's network_energy_J / transmissions args, when present —
  /// report_check cross-validates a run report against these.
  std::optional<double> reported_network;
  std::optional<double> reported_transmissions;
};

/// Validates the JSON text of one exported trace.
TraceCheckResult check_chrome_trace(const std::string& json);

/// Reads and validates a trace file; a missing/unreadable file fails.
TraceCheckResult check_chrome_trace_file(const std::string& path);

}  // namespace etrain::obs
