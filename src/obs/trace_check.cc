#include "obs/trace_check.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace etrain::obs {

namespace {

/// A minimal recursive-descent JSON reader: just enough to verify
/// well-formedness and pull out the handful of fields the checks need.
/// Throws std::string error messages; check_chrome_trace catches them.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  std::size_t pos() const { return pos_; }
  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            pos_ += 4;  // validated but not decoded; names are ASCII
            out += '?';
            break;
          default: fail("invalid escape");
        }
      } else {
        out += c;
      }
    }
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number: " + token);
    return value;
  }

  /// Skips any JSON value, validating structure.
  void skip_value() {
    const char c = peek();
    if (c == '{') {
      skip_object();
    } else if (c == '[') {
      expect('[');
      if (!consume(']')) {
        do {
          skip_value();
        } while (consume(','));
        expect(']');
      }
    } else if (c == '"') {
      parse_string();
    } else if (c == 't') {
      literal("true");
    } else if (c == 'f') {
      literal("false");
    } else if (c == 'n') {
      literal("null");
    } else {
      parse_number();
    }
  }

  /// Iterates an object's members, calling on_member(key) positioned at the
  /// member's value; on_member must consume exactly that value.
  template <typename Fn>
  void parse_object(Fn&& on_member) {
    expect('{');
    if (consume('}')) return;
    do {
      const std::string key = parse_string();
      expect(':');
      on_member(key);
    } while (consume(','));
    expect('}');
  }

  void skip_object() {
    parse_object([this](const std::string&) { skip_value(); });
  }

  [[noreturn]] void fail(const std::string& message) {
    throw message + " at offset " + std::to_string(pos_);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("invalid literal");
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// The fields of one traceEvents entry the checks care about.
struct EventFields {
  std::string name;
  std::string ph;
  bool has_ts = false, has_pid = false, has_tid = false;
  double ts = 0.0;
  double joules = 0.0;
  bool has_joules = false;
  std::optional<double> reported_tail;
};

EventFields parse_event(JsonReader& reader) {
  EventFields ev;
  reader.parse_object([&](const std::string& key) {
    if (key == "name") {
      ev.name = reader.parse_string();
    } else if (key == "ph") {
      ev.ph = reader.parse_string();
    } else if (key == "ts") {
      ev.ts = reader.parse_number();
      ev.has_ts = true;
    } else if (key == "pid") {
      reader.parse_number();
      ev.has_pid = true;
    } else if (key == "tid") {
      reader.parse_number();
      ev.has_tid = true;
    } else if (key == "args") {
      reader.parse_object([&](const std::string& arg) {
        if (arg == "joules") {
          ev.joules = reader.parse_number();
          ev.has_joules = true;
        } else if (arg == "reported_tail_J") {
          ev.reported_tail = reader.parse_number();
        } else {
          reader.skip_value();
        }
      });
    } else {
      reader.skip_value();
    }
  });
  return ev;
}

}  // namespace

TraceCheckResult check_chrome_trace(const std::string& json) {
  TraceCheckResult result;
  JsonReader reader(json);
  try {
    bool saw_trace_events = false;
    double last_ts = -1.0;
    reader.parse_object([&](const std::string& key) {
      if (key != "traceEvents") {
        reader.skip_value();
        return;
      }
      saw_trace_events = true;
      reader.expect('[');
      if (reader.consume(']')) return;
      do {
        const EventFields ev = parse_event(reader);
        ++result.events;
        if (ev.name.empty()) reader.fail("event without name");
        if (ev.ph.empty()) reader.fail("event without ph");
        if (!ev.has_pid) {
          reader.fail("event '" + ev.name + "' without pid");
        }
        if (ev.ph != "M") {
          // Metadata entries like process_name legitimately omit tid;
          // every real event needs a track.
          if (!ev.has_tid) {
            reader.fail("event '" + ev.name + "' without tid");
          }
          if (!ev.has_ts) reader.fail("event '" + ev.name + "' without ts");
          if (ev.ts < 0.0) reader.fail("negative ts");
          if (ev.ts < last_ts) {
            reader.fail("non-monotone ts in event '" + ev.name + "'");
          }
          last_ts = ev.ts;
        }
        if (ev.name == "TailCharge") {
          if (!ev.has_joules) reader.fail("TailCharge without joules");
          ++result.tail_charges;
          result.tail_charge_sum += ev.joules;
        }
        if (ev.name == "RunSummary" && ev.reported_tail.has_value()) {
          result.reported_tail = ev.reported_tail;
        }
      } while (reader.consume(','));
      reader.expect(']');
    });
    if (!reader.at_end()) reader.fail("trailing garbage after trace object");
    if (!saw_trace_events) {
      result.error = "no traceEvents array";
      return result;
    }
    if (result.events == 0) {
      result.error = "empty traceEvents array";
      return result;
    }
    if (result.reported_tail.has_value() &&
        std::fabs(result.tail_charge_sum - *result.reported_tail) > 1e-9) {
      std::ostringstream msg;
      msg.precision(17);
      msg << "TailCharge sum " << result.tail_charge_sum
          << " J != reported tail " << *result.reported_tail << " J";
      result.error = msg.str();
      return result;
    }
  } catch (const std::string& error) {
    result.error = error;
    return result;
  }
  result.ok = true;
  return result;
}

TraceCheckResult check_chrome_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    TraceCheckResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return check_chrome_trace(buffer.str());
}

}  // namespace etrain::obs
