#include "obs/trace_check.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json_reader.h"

namespace etrain::obs {

namespace {

using jsonio::JsonReader;

/// The fields of one traceEvents entry the checks care about.
struct EventFields {
  std::string name;
  std::string ph;
  bool has_ts = false, has_pid = false, has_tid = false;
  double ts = 0.0;
  double joules = 0.0;
  bool has_joules = false;
  std::optional<double> reported_tail;
  std::optional<double> reported_network;
  std::optional<double> reported_transmissions;
};

EventFields parse_event(JsonReader& reader) {
  EventFields ev;
  reader.parse_object([&](const std::string& key) {
    if (key == "name") {
      ev.name = reader.parse_string();
    } else if (key == "ph") {
      ev.ph = reader.parse_string();
    } else if (key == "ts") {
      ev.ts = reader.parse_number();
      ev.has_ts = true;
    } else if (key == "pid") {
      reader.parse_number();
      ev.has_pid = true;
    } else if (key == "tid") {
      reader.parse_number();
      ev.has_tid = true;
    } else if (key == "args") {
      reader.parse_object([&](const std::string& arg) {
        if (arg == "joules") {
          ev.joules = reader.parse_number();
          ev.has_joules = true;
        } else if (arg == "reported_tail_J") {
          ev.reported_tail = reader.parse_number();
        } else if (arg == "network_energy_J") {
          ev.reported_network = reader.parse_number();
        } else if (arg == "transmissions") {
          ev.reported_transmissions = reader.parse_number();
        } else {
          reader.skip_value();
        }
      });
    } else {
      reader.skip_value();
    }
  });
  return ev;
}

}  // namespace

TraceCheckResult check_chrome_trace(const std::string& json) {
  TraceCheckResult result;
  JsonReader reader(json);
  try {
    bool saw_trace_events = false;
    double last_ts = -1.0;
    reader.parse_object([&](const std::string& key) {
      if (key != "traceEvents") {
        reader.skip_value();
        return;
      }
      saw_trace_events = true;
      reader.expect('[');
      if (reader.consume(']')) return;
      do {
        const EventFields ev = parse_event(reader);
        ++result.events;
        if (ev.name.empty()) reader.fail("event without name");
        if (ev.ph.empty()) reader.fail("event without ph");
        if (!ev.has_pid) {
          reader.fail("event '" + ev.name + "' without pid");
        }
        if (ev.ph != "M") {
          // Metadata entries like process_name legitimately omit tid;
          // every real event needs a track.
          if (!ev.has_tid) {
            reader.fail("event '" + ev.name + "' without tid");
          }
          if (!ev.has_ts) reader.fail("event '" + ev.name + "' without ts");
          if (ev.ts < 0.0) reader.fail("negative ts");
          if (ev.ts < last_ts) {
            reader.fail("non-monotone ts in event '" + ev.name + "'");
          }
          last_ts = ev.ts;
        }
        if (ev.name == "TailCharge") {
          if (!ev.has_joules) reader.fail("TailCharge without joules");
          ++result.tail_charges;
          result.tail_charge_sum += ev.joules;
        }
        if (ev.name == "RunSummary") {
          if (ev.reported_tail.has_value()) {
            result.reported_tail = ev.reported_tail;
          }
          if (ev.reported_network.has_value()) {
            result.reported_network = ev.reported_network;
          }
          if (ev.reported_transmissions.has_value()) {
            result.reported_transmissions = ev.reported_transmissions;
          }
        }
      } while (reader.consume(','));
      reader.expect(']');
    });
    if (!reader.at_end()) reader.fail("trailing garbage after trace object");
    if (!saw_trace_events) {
      result.error = "no traceEvents array";
      return result;
    }
    if (result.events == 0) {
      result.error = "empty traceEvents array";
      return result;
    }
    if (result.reported_tail.has_value() &&
        std::fabs(result.tail_charge_sum - *result.reported_tail) > 1e-9) {
      std::ostringstream msg;
      msg.precision(17);
      msg << "TailCharge sum " << result.tail_charge_sum
          << " J != reported tail " << *result.reported_tail << " J";
      result.error = msg.str();
      return result;
    }
  } catch (const std::string& error) {
    result.error = error;
    return result;
  }
  result.ok = true;
  return result;
}

TraceCheckResult check_chrome_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    TraceCheckResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return check_chrome_trace(buffer.str());
}

}  // namespace etrain::obs
