#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <utility>

namespace etrain::obs {

namespace {

/// Requests larger than this are hostile or broken; answer 400 and close.
constexpr std::size_t kMaxRequestBytes = 4096;

}  // namespace

/// Per-connection state: the buffered request and the (possibly
/// partially written) response. One request per connection (HTTP/1.0).
struct StatsServer::Connection {
  int fd = -1;
  std::string inbuf;
  std::string outbuf;
  std::size_t out_off = 0;
  bool responded = false;
  bool want_write = false;

  bool has_backlog() const { return out_off < outbuf.size(); }
};

StatsServer::StatsServer() = default;
StatsServer::~StatsServer() { close_all(); }

int StatsServer::open(int port, StatsHandlers handlers) {
  if (listen_fd_ >= 0) {
    throw std::runtime_error("stats: open() called twice");
  }
  handlers_ = std::move(handlers);
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("stats: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("stats: bind() failed on port " +
                             std::to_string(port) + ": " +
                             std::strerror(err));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("stats: listen() failed on port " +
                             std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("stats: getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  return port_;
}

void StatsServer::register_with(int epoll_fd) {
  epoll_fd_ = epoll_fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
}

bool StatsServer::owns(int fd) const {
  return fd >= 0 &&
         (fd == listen_fd_ || connections_.find(fd) != connections_.end());
}

void StatsServer::handle_event(int fd, std::uint32_t mask) {
  if (fd == listen_fd_) {
    accept_ready();
    return;
  }
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
    close_connection(fd);
    return;
  }
  if ((mask & EPOLLOUT) != 0) handle_writable(conn);
  if (connections_.find(fd) == connections_.end()) return;
  if ((mask & EPOLLIN) != 0) handle_readable(conn);
}

void StatsServer::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient failure; the listener stays armed
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_.emplace(fd, std::move(conn));
  }
}

void StatsServer::handle_readable(Connection& conn) {
  const int fd = conn.fd;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!conn.responded) {
        conn.inbuf.append(buf, static_cast<std::size_t>(n));
        if (conn.inbuf.size() > kMaxRequestBytes) {
          queue_response(conn, 400, "Bad Request", "text/plain",
                         "request too large\n");
        } else if (conn.inbuf.find("\r\n") != std::string::npos) {
          respond(conn);
        }
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) return;
      continue;
    }
    if (n == 0) {
      // EOF: if the peer half-closed after a complete request, the
      // response (if any) still flushes; otherwise drop.
      if (!conn.has_backlog()) close_connection(fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_connection(fd);
    return;
  }
}

bool StatsServer::respond(Connection& conn) {
  const std::size_t eol = conn.inbuf.find("\r\n");
  if (eol == std::string::npos) return false;
  const std::string_view line(conn.inbuf.data(), eol);

  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    queue_response(conn, 400, "Bad Request", "text/plain", "bad request\n");
    return true;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);

  if (method != "GET") {
    queue_response(conn, 405, "Method Not Allowed", "text/plain",
                   "only GET is served here\n");
    return true;
  }
  if (path == "/metrics") {
    queue_response(conn, 200, "OK", "text/plain; version=0.0.4",
                   handlers_.metrics_text ? handlers_.metrics_text() : "");
  } else if (path == "/healthz") {
    const StatsHealth health =
        handlers_.health ? handlers_.health() : StatsHealth{};
    const std::string body =
        std::string("{\"healthy\":") + (health.healthy ? "true" : "false") +
        ",\"detail\":" + health.detail + "}\n";
    if (health.healthy) {
      queue_response(conn, 200, "OK", "application/json", body);
    } else {
      queue_response(conn, 503, "Service Unavailable", "application/json",
                     body);
    }
  } else if (path == "/sessions") {
    queue_response(conn, 200, "OK", "application/json",
                   handlers_.sessions_json ? handlers_.sessions_json()
                                           : "{}");
  } else {
    queue_response(conn, 404, "Not Found", "text/plain",
                   "not found — try /metrics, /healthz or /sessions\n");
  }
  return true;
}

void StatsServer::queue_response(Connection& conn, int status,
                                 const char* reason,
                                 const char* content_type,
                                 const std::string& body) {
  if (conn.responded) return;
  conn.responded = true;
  ++requests_;
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                status, reason, content_type, body.size());
  conn.outbuf.assign(header);
  conn.outbuf += body;
  conn.out_off = 0;
  handle_writable(conn);
}

void StatsServer::handle_writable(Connection& conn) {
  while (conn.has_backlog()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbuf.data() + conn.out_off,
               conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_write_interest(conn);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_connection(conn.fd);  // peer gone
    return;
  }
  if (conn.responded) {
    close_connection(conn.fd);  // one request per connection
  } else {
    update_write_interest(conn);
  }
}

void StatsServer::update_write_interest(Connection& conn) {
  const bool want = conn.has_backlog();
  if (want == conn.want_write) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void StatsServer::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
}

void StatsServer::close_all() {
  for (auto& [fd, conn] : connections_) {
    (void)conn;
    if (epoll_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    if (epoll_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

int http_get(int port, const std::string& path, std::string* body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return 0;
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ::close(fd);
      return 0;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF (HTTP/1.0 close-delimited) or error
  }
  ::close(fd);

  // "HTTP/1.0 200 OK\r\n...\r\n\r\n<body>"
  if (response.rfind("HTTP/", 0) != 0) return 0;
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) return 0;
  const int status = std::atoi(response.c_str() + sp + 1);
  if (body != nullptr) {
    const std::size_t split = response.find("\r\n\r\n");
    *body = split == std::string::npos ? std::string()
                                       : response.substr(split + 4);
  }
  return status;
}

}  // namespace etrain::obs
