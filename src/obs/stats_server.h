// A minimal HTTP/1.0 stats listener that plugs into an existing epoll
// loop — the serving half of the live telemetry plane
// (docs/live_telemetry.md).
//
// The owner (the gateway daemon) opens the listener on its own port,
// registers it with the loop's epoll fd, and routes every event whose fd
// the server owns() to handle_event(). The server accepts connections,
// parses one GET request line each, answers from the three handler
// callbacks, and closes (HTTP/1.0, Connection: close):
//
//   GET /metrics   -> handlers.metrics_text()   text/plain; version=0.0.4
//   GET /healthz   -> handlers.health()          200 when healthy, 503
//                                                otherwise, JSON detail
//   GET /sessions  -> handlers.sessions_json()   application/json
//
// Everything runs on the loop thread — handlers may read loop-confined
// state without locks, which is the whole design: the stats plane only
// *reads* snapshots, never feeds back into scheduling, so determinism
// contracts elsewhere are untouched. Requests are bounded (4 KiB) and a
// malformed or oversized request gets a 400 and a close; a slow or
// hostile scraper can never wedge the loop (all sockets nonblocking,
// writes fall back to EPOLLOUT).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

namespace etrain::obs {

/// What /healthz reports. `detail` is embedded verbatim in the JSON body
/// (pre-rendered by the owner; keep it a JSON object).
struct StatsHealth {
  bool healthy = true;
  std::string detail = "{}";
};

struct StatsHandlers {
  std::function<std::string()> metrics_text;
  std::function<StatsHealth()> health;
  std::function<std::string()> sessions_json;
};

class StatsServer {
 public:
  StatsServer();  // out of line: Connection is incomplete here
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds + listens on 127.0.0.1:`port` (0 = ephemeral) with nonblocking
  /// sockets. Returns the bound port. Throws std::runtime_error with the
  /// port in the message on any socket failure — the daemon exits loudly
  /// instead of silently serving without its stats plane.
  int open(int port, StatsHandlers handlers);

  bool is_open() const { return listen_fd_ >= 0; }
  int port() const { return port_; }

  /// Registers the listen socket with `epoll_fd`; accepted connections
  /// register themselves on the same fd. Call once, after open().
  void register_with(int epoll_fd);

  /// True when `fd` is the listener or one of its connections — the
  /// loop's dispatch test.
  bool owns(int fd) const;

  /// Handles one epoll event (`mask` = epoll_event.events) for an owned
  /// fd: accepts, reads + answers, or flushes a pending response.
  void handle_event(int fd, std::uint32_t mask);

  /// Requests answered so far (any status).
  std::uint64_t requests_served() const { return requests_; }

  /// Closes the listener and every connection (idempotent; also run by
  /// the destructor).
  void close_all();

 private:
  struct Connection;

  void accept_ready();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  /// Parses the buffered request and queues the response; true when a
  /// full request line was seen.
  bool respond(Connection& conn);
  void queue_response(Connection& conn, int status, const char* reason,
                      const char* content_type, const std::string& body);
  void close_connection(int fd);
  void update_write_interest(Connection& conn);

  StatsHandlers handlers_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int port_ = 0;
  std::uint64_t requests_ = 0;
  std::map<int, std::unique_ptr<Connection>> connections_;
};

/// Minimal blocking HTTP/1.0 GET against 127.0.0.1:`port` for tests,
/// benches and scrapers: returns the status code (0 on connect/transport
/// failure) and fills `body` (may be null) with the response body.
int http_get(int port, const std::string& path, std::string* body);

}  // namespace etrain::obs
