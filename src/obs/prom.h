// Prometheus text-format (exposition format 0.0.4) encoding of a
// MetricsSnapshot, plus ad-hoc gauges computed at scrape time.
//
// This is the wire half of the live telemetry plane (docs/live_telemetry.md):
// the gateway's stats listener calls encode_prometheus() on every GET
// /metrics, turning the same Registry the shutdown manifest freezes into
// scrape-able series. Dependency-free and deterministic on purpose — two
// snapshots of the same registry state encode byte-identically, families
// are sorted by encoded name, and doubles print in their shortest
// round-trippable form — so the format can be linted mechanically
// (scripts/check_prom.py) and diffed across scrapes.
//
// Naming scheme:
//   counter  "gateway.heartbeats"  ->  etrain_gateway_heartbeats_total
//   histogram "gateway.latency_s"  ->  etrain_gateway_latency_s_bucket{le=...}
//                                      + _sum + _count, and gauge companions
//                                      ..._p50 / _p95 / _p99 computed with
//                                      the shared histogram_quantile
//                                      estimator (obs/metrics.h)
//   gauge    PromGauge{name,...}   ->  etrain_<sanitized name>
// Dots and any other character outside [a-zA-Z0-9_:] become '_'.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace etrain::obs {

/// `name` sanitized to the Prometheus metric-name charset and prefixed
/// with "etrain_" (unless it already starts with it).
std::string prom_metric_name(const std::string& name);

/// One gauge sample computed at scrape time (queue depths, staleness,
/// uptime...). `name` is the raw pre-sanitation name; gauges sharing a
/// name (e.g. an RRC-state family distinguished by labels) are emitted
/// under one TYPE declaration, in the order given.
struct PromGauge {
  std::string name;
  double value = 0.0;
  /// Optional labels, emitted as {k="v",...} in the order given.
  std::vector<std::pair<std::string, std::string>> labels;
  /// Optional HELP text (first sample of a family wins).
  std::string help;
};

/// Encodes `snapshot` (counters as *_total, histograms with cumulative
/// le-buckets, _sum, _count and p50/p95/p99 gauge companions) plus
/// `gauges` as Prometheus text. Families are sorted by encoded name;
/// equal input state yields byte-identical output.
std::string encode_prometheus(const MetricsSnapshot& snapshot,
                              const std::vector<PromGauge>& gauges = {});

}  // namespace etrain::obs
