// Validator for RunReport JSON files — the sibling of trace_check.
//
// Three layers of checking, each usable separately:
//
//   check_run_report(json)        structural + internal invariants: schema
//                                 id and version, mandatory sections, every
//                                 ledger row's total equals tx+setup+tail,
//                                 ledger total equals the energy section's
//                                 network_J, per-kind tx/tail sums across
//                                 rows equal the EnergyReports' by-kind
//                                 arrays, histogram bucket counts sum to
//                                 the sample count and p50 <= p95 <= p99 —
//                                 all joule comparisons to 1e-9.
//   cross_check_trace(...)        the report agrees with the Chrome trace
//                                 of the same run (RunSummary's
//                                 network_energy_J / reported_tail_J /
//                                 transmissions) to 1e-9 J.
//   cross_check_artifacts(...)    every CSV artifact the report lists still
//                                 exists, has the recorded row count, and
//                                 re-summing each numeric column reproduces
//                                 the recorded sums to 1e-9 — the report
//                                 and the plot data cannot drift apart.
//
// Used as a ctest (obs_report_test) and by the `report_check` CLI that
// scripts/check.sh runs on every BENCH_*.json the quick bench suite emits.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_check.h"

namespace etrain::obs {

/// What check_run_report extracted; valid (beyond `ok`/`error`) only when
/// ok. The parsed artifact table rides along so cross_check_artifacts can
/// re-verify files without re-parsing the JSON.
struct ReportCheckResult {
  bool ok = false;
  std::string error;  ///< empty when ok

  std::string bench;
  int version = 0;
  std::size_t provenance_entries = 0;
  std::size_t results = 0;
  std::size_t ledger_rows = 0;
  bool metrics_present = false;  ///< false is legal (detached/disabled runs)
  bool profile_present = false;
  bool obs_enabled = true;  ///< build.obs of the emitting binary

  /// Energy section digest, when the report has one.
  std::optional<double> network_J;
  std::optional<double> tail_J;
  std::optional<double> transmissions;
  /// Ledger grand total, when the report has a ledger.
  std::optional<double> ledger_total_J;

  /// Fleet section digest, when the report has one (fleet runs). The
  /// validator enforces ledger total == device_meter_total_J within
  /// 1e-9 J x max(1, devices) — per-device re-billing accuracy summed over
  /// the population (docs/fleet.md).
  bool fleet_present = false;
  std::optional<double> fleet_devices;
  std::optional<double> fleet_meter_J;

  /// Gateway section digest, when the report has one (live gateway /
  /// bench_gateway runs). The validator enforces the exact client and
  /// packet partitions, transmissions == heartbeats + packets_enqueued,
  /// and ledger total == client_meter_total_J within
  /// 1e-9 J x max(1, clients_accepted) — per-session re-billing accuracy
  /// summed over the client population (docs/gateway.md).
  bool gateway_present = false;
  std::optional<double> gateway_clients;
  std::optional<double> gateway_meter_J;

  struct Artifact {
    std::string file;
    std::size_t rows = 0;
    std::vector<std::pair<std::string, double>> column_sums;
  };
  std::vector<Artifact> artifacts;
};

/// Validates the JSON text of one run report.
ReportCheckResult check_run_report(const std::string& json);

/// Reads and validates a report file; a missing/unreadable file fails.
ReportCheckResult check_run_report_file(const std::string& path);

/// Cross-validates a checked report against the checked trace of the same
/// run. Returns an empty string on agreement, else a description of the
/// first mismatch. Either side lacking the compared quantity (report
/// without an energy section, trace without a RunSummary) is a mismatch —
/// a silent skip would make the check vacuous.
std::string cross_check_trace(const ReportCheckResult& report,
                              const TraceCheckResult& trace);

/// Re-reads every CSV artifact listed in the report (paths resolved
/// against `base_dir` unless absolute; "" = as recorded) and re-derives
/// row counts and column sums. Returns "" on agreement, else the first
/// discrepancy.
std::string cross_check_artifacts(const ReportCheckResult& report,
                                  const std::string& base_dir = "");

}  // namespace etrain::obs
