// Figure-data export: every bench can dump the series it prints as CSV
// under results/, ready for external plotting (gnuplot, matplotlib). Kept
// separate from the table printers so bench output stays human-first.
#pragma once

#include <string>
#include <vector>

#include "exp/sweeps.h"

namespace etrain::experiments {

/// Creates `dir` (default "results") if needed; returns its path. Throws
/// std::runtime_error when the directory cannot be created.
std::string ensure_results_dir(const std::string& dir = "results");

/// Writes an E-D frontier as "param,energy_J,delay_s,violation".
void export_frontier(const std::string& dir, const std::string& name,
                     const std::vector<EDPoint>& frontier);

/// Writes arbitrary named series as columns: header row then values;
/// all series must have equal length.
void export_series(const std::string& dir, const std::string& name,
                   const std::vector<std::string>& headers,
                   const std::vector<std::vector<double>>& columns);

}  // namespace etrain::experiments
