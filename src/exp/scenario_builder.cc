#include "exp/scenario_builder.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/profile.h"

namespace etrain::experiments {

ScenarioBuilder& ScenarioBuilder::lambda(double packets_per_second) {
  config_.lambda = packets_per_second;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::trains(int count) {
  config_.train_count = count;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::horizon(Duration seconds) {
  config_.horizon = seconds;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::workload_seed(std::uint64_t seed) {
  config_.workload_seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::bandwidth_seed(std::uint64_t seed) {
  config_.bandwidth_seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::shared_deadline(Duration seconds) {
  config_.shared_deadline = seconds;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::model(const radio::PowerModel& model) {
  config_.model = model;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::radio(const std::string& spec) {
  config_.model = radio::make_radio_model(spec).power;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::interfaces(
    const std::vector<std::string>& specs) {
  std::vector<ScenarioInterface> extras;
  extras.reserve(specs.size());
  for (const std::string& spec : specs) {
    ScenarioInterface extra;
    extra.radio = radio::make_radio_model(spec);
    extra.trace = net::BandwidthTrace::constant(extra.radio.bandwidth, 1);
    extras.push_back(std::move(extra));
  }
  extra_interfaces_ = std::move(extras);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::faults(net::FaultPlan plan) {
  faults_ = std::move(plan);
  outage_duty_.reset();
  return *this;
}

ScenarioBuilder& ScenarioBuilder::loss(double probability) {
  faults_.loss_probability = probability;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::outages(double duty, Duration episode_mean) {
  outage_duty_ = duty;
  outage_episode_mean_ = episode_mean;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::outage_episodes(
    std::vector<net::OutageEpisode> episodes) {
  faults_.outages = std::move(episodes);
  outage_duty_.reset();
  return *this;
}

ScenarioBuilder& ScenarioBuilder::heartbeat_jitter(Duration sigma) {
  faults_.heartbeat_jitter_sigma = sigma;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::heartbeat_drops(double probability) {
  faults_.heartbeat_drop_probability = probability;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fault_seed(std::uint64_t seed) {
  faults_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::wifi(net::WifiAvailability availability) {
  wifi_ = std::move(availability);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::estimate_noise(double sigma) {
  estimate_noise_ = sigma;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::noise_seed(std::uint64_t seed) {
  noise_seed_ = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::trace(net::BandwidthTrace trace) {
  trace_ = std::move(trace);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::downlink_trace(net::BandwidthTrace trace) {
  downlink_trace_ = std::move(trace);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::timetable(
    std::vector<apps::TrainEvent> events) {
  timetable_ = std::move(events);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::packets(
    std::vector<core::Packet> packets,
    std::vector<const core::CostProfile*> profiles) {
  packets_ = std::move(packets);
  profiles_ = std::move(profiles);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::background(
    std::vector<apps::TrainEvent> events) {
  background_ = std::move(events);
  return *this;
}

Scenario ScenarioBuilder::build() const {
  OBS_PROFILE_SCOPE("generate.scenario_builder");
  Scenario s = make_scenario(config_);
  if (trace_.has_value()) s.trace = *trace_;
  if (downlink_trace_.has_value()) s.downlink_trace = *downlink_trace_;
  if (timetable_.has_value()) s.trains = *timetable_;
  if (packets_.has_value()) {
    s.packets = *packets_;
    s.profiles = *profiles_;
  }
  if (background_.has_value()) s.background = *background_;
  if (wifi_.has_value()) s.wifi = *wifi_;
  s.extra_interfaces = extra_interfaces_;
  // Radio heartbeats: a lora interface with a heartbeat period is a second
  // train source — merge its link beacons into the timetable.
  bool added_radio_beats = false;
  for (std::size_t i = 0; i < s.extra_interfaces.size(); ++i) {
    const auto& lora = s.extra_interfaces[i].radio.lora;
    if (!lora.has_value() || lora->heartbeat_period <= 0.0) continue;
    // Staggered first beats, like independently started daemons.
    for (TimePoint t = 3.0 * (static_cast<double>(i) + 1.0); t < s.horizon;
         t += lora->heartbeat_period) {
      apps::TrainEvent beat;
      beat.time = t;
      beat.train = 100 + static_cast<int>(i);
      beat.bytes = lora->heartbeat_bytes;
      beat.interface = 2 + static_cast<int>(i);
      s.trains.push_back(beat);
      added_radio_beats = true;
    }
  }
  if (added_radio_beats) {
    std::stable_sort(s.trains.begin(), s.trains.end(),
                     [](const apps::TrainEvent& a, const apps::TrainEvent& b) {
                       return a.time < b.time;
                     });
  }
  if (estimate_noise_.has_value()) s.estimate_noise_sigma = *estimate_noise_;
  if (noise_seed_.has_value()) s.noise_seed = *noise_seed_;

  s.faults = faults_;
  if (outage_duty_.has_value()) {
    net::OutagePatternConfig pattern;
    pattern.horizon = s.horizon;
    pattern.duty = *outage_duty_;
    pattern.episode_mean = outage_episode_mean_;
    s.faults.outages = net::generate_outages(pattern, s.faults.seed);
  }

  validate_scenario(s);
  return s;
}

}  // namespace etrain::experiments
