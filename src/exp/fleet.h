// Fleet-scale simulation: one run = a city of devices (ROADMAP item 1).
//
// A single-device Scenario answers "what does eTrain do to one phone?";
// the paper's claim is population-level — millions of always-online
// handsets wasting tail energy on heartbeats. FleetHarness simulates
// 10k–1M+ heterogeneous devices in one run:
//
//   * a seeded FleetSpec describes the population as a distribution over
//     *activeness classes* (Fig. 11's axis): each class is an ordinary
//     ScenarioBuilder prototype (lambda, train apps, RRC preset, faults,
//     deadlines...) plus a PolicyRegistry spec and a population weight;
//   * every device is an independent single-device simulation through the
//     unmodified exp::run_slotted engine — all PR-3 fault semantics and
//     PR-5 hot-path guarantees hold per device;
//   * devices are sharded (contiguous device-id ranges) across the
//     common/parallel.h ThreadPool; per-device randomness derives from
//     pure splitmix64 streams of (fleet seed, device id), never from the
//     shard or thread that happened to run the device;
//   * per-device results land in struct-of-arrays columns (FleetArrays):
//     each worker writes only its shard's rows, and every aggregate is
//     folded from the columns serially in device-id order afterwards —
//     so the result is byte-identical for ANY shard count and ANY job
//     count (docs/fleet.md states the contract, exp_fleet_test enforces
//     1/2/8 shards x serial/parallel bit-equality);
//   * energy is attributed through the PR-4 ledger machinery: each
//     device's TransmissionLog is re-billed into (interface, kind) rows
//     whose per-device digests are folded into a fleet-level EnergyLedger
//     keyed by activeness class (row.app = class index). The fleet ledger
//     re-bills the sum of the device meters — report_check validates the
//     equality on every emitted fleet report.
//
// bench_fleet drives this at 100k+ devices with a committed devices/sec
// floor (bench/baselines/fleet.baseline.json, enforced by check.sh).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/policy_registry.h"
#include "exp/scenario_builder.h"
#include "obs/report.h"

namespace etrain::experiments {

/// One activeness class: a slice of the population sharing a scenario
/// prototype and a scheduling policy. Per-device heterogeneity inside a
/// class comes from the harness overriding the prototype's four seeds
/// (workload, bandwidth, noise, faults) with device-specific streams.
struct FleetClass {
  std::string name = "default";
  /// Relative share of the population (normalized across classes).
  double weight = 1.0;
  /// Scenario prototype; seeds set here are ignored (the harness owns
  /// them). Everything else — lambda, trains, horizon, model, faults,
  /// deadlines, wifi — describes every device of the class.
  ScenarioBuilder scenario;
  /// PolicyRegistry spec (baselines::make_policy grammar).
  std::string policy = "etrain:theta=1,k=20";
};

struct FleetSpec {
  /// Population size. bench_fleet defaults to 100k; the SoA layout holds
  /// ~30 doubles per device, so 1M devices is ~a quarter GB of columns.
  std::size_t devices = 10000;
  /// Base seed for every per-device stream (class assignment, workload,
  /// bandwidth, noise, faults). Same spec + same seed = same fleet,
  /// device by device.
  std::uint64_t seed = 2015;
  /// Shard count (contiguous device-id ranges fanned over the thread
  /// pool). 0 = auto (a small multiple of default_jobs()). Results are
  /// byte-identical for every value; this knob only shapes parallelism.
  std::size_t shards = 0;
  std::vector<FleetClass> classes;

  /// Throws std::invalid_argument on an empty/degenerate spec (no
  /// devices, no classes, non-positive total weight, empty policy spec).
  void validate() const;

  /// The canonical heterogeneous city: four activeness classes (idle /
  /// light / regular / heavy — Fig. 11's axis) over the paper-simulation
  /// RRC preset, each device living `horizon` seconds.
  static FleetSpec city(std::size_t devices, Duration horizon = 600.0);
};

/// Struct-of-arrays per-device results: column i of every array belongs
/// to device i. Workers write disjoint contiguous row ranges (their
/// shard); nothing here depends on shard or thread count. The layout is
/// relocatable (plain vectors, no pointers into rows), so shards can be
/// re-partitioned freely and the columns stream well when the fold walks
/// them in device order.
struct FleetArrays {
  /// Per-(interface, kind) ledger digest columns for one bucket: the
  /// device's PR-4 ledger rows collapsed over cargo apps. Folding these
  /// per class reproduces append_ledger's rows at fleet scale.
  struct LedgerColumns {
    std::vector<double> tx_J, setup_J, tail_J, failed_airtime_J;
    std::vector<double> airtime_s, failed_airtime_s;
    std::vector<std::uint32_t> transmissions, failures;
    void resize(std::size_t n);
  };

  std::vector<std::uint32_t> class_id;
  /// The device meter: RunMetrics::network_energy() (cellular + wifi).
  std::vector<double> meter_J;
  /// Delay side: per-device sums, folded into class aggregates.
  std::vector<double> delay_sum_s, delay_cost;
  std::vector<std::uint32_t> packets, violations;
  std::vector<std::uint32_t> slots;

  /// One column group per (interface, kind) ledger bucket. Wi-Fi groups
  /// stay all-zero for cellular-only classes (the slotted harness never
  /// routes heartbeats over Wi-Fi, but the bucket exists so no joule can
  /// ever fall outside the fold).
  LedgerColumns cellular_heartbeat, cellular_data;
  LedgerColumns wifi_heartbeat, wifi_data;

  std::size_t size() const { return class_id.size(); }
  void resize(std::size_t n);
};

/// One activeness class's population aggregate. Energy quantities are
/// ledger-row sums (tx + setup + tail), so heartbeat_J + data_J ==
/// network_J exactly up to float associativity — the partition property
/// report_check enforces on the serialized section.
struct FleetClassAggregate {
  std::string name;
  std::size_t devices = 0;
  std::size_t packets = 0;
  std::size_t violations = 0;
  std::size_t transmissions = 0;
  std::size_t failures = 0;
  Joules network_J = 0.0;
  Joules heartbeat_J = 0.0;
  Joules data_J = 0.0;
  double delay_sum_s = 0.0;
  double delay_cost = 0.0;

  double normalized_delay_s() const {
    return packets == 0 ? 0.0 : delay_sum_s / static_cast<double>(packets);
  }
  double violation_ratio() const {
    return packets == 0
               ? 0.0
               : static_cast<double>(violations) / static_cast<double>(packets);
  }
};

struct FleetResult {
  std::size_t devices = 0;
  /// Sum over devices of that device's slot count (horizon / slot).
  std::uint64_t total_slots = 0;
  std::size_t total_packets = 0;
  /// Sum of the per-device energy meters, folded in device-id order —
  /// the quantity the fleet ledger must re-bill.
  Joules device_meter_total_J = 0.0;
  /// Per-class aggregates, in class-declaration order.
  std::vector<FleetClassAggregate> classes;
  /// The fleet-level energy-attribution ledger: (interface, kind,
  /// app = activeness-class index) rows folded from the per-device
  /// digests. ledger.total() == device_meter_total_J (within the
  /// device-scaled float tolerance; see docs/fleet.md).
  obs::EnergyLedger ledger;
  /// The raw per-device columns (kept: tests and downstream analysis
  /// read them; ~250 B/device).
  FleetArrays arrays;
};

/// One periodic progress snapshot from a running fleet (bench_fleet
/// --progress; the telemetry side of docs/live_telemetry.md). Emitted
/// from worker threads under the harness's progress lock, so a callback
/// sees consistent numbers — keep it cheap (a printf, a gauge store).
struct FleetProgress {
  std::size_t devices_done = 0;
  std::size_t devices_total = 0;
  double elapsed_s = 0.0;
  double devices_per_s = 0.0;
  /// Remaining / rate; 0 once done.
  double eta_s = 0.0;
  /// Running per-class device-meter totals, class-declaration order.
  /// Folded in completion order, so the float sum is advisory — the
  /// report's numbers come from the deterministic serial fold, which
  /// this never touches.
  std::vector<double> class_energy_J;
};

struct FleetProgressOptions {
  /// Null = no progress tracking at all (the hot path stays lock-free).
  std::function<void(const FleetProgress&)> callback;
  /// Real seconds between emissions (a final 100% emission always fires).
  double min_interval_s = 1.0;
};

/// Runs a fleet. Construction validates the spec; run() may be called
/// repeatedly (and concurrently from one thread at a time per instance).
class FleetHarness {
 public:
  explicit FleetHarness(FleetSpec spec);

  const FleetSpec& spec() const { return spec_; }

  /// Deterministic class of one device: a pure hash of (spec.seed,
  /// device), weighted by FleetClass::weight. Exposed so tests can
  /// reconstruct any single device independently of the fleet run.
  std::size_t class_of(std::uint64_t device) const;

  /// The per-device seed for one of the four streams below — again a
  /// pure (spec.seed, stream, device) hash, independent of sharding.
  std::uint64_t device_seed(std::uint64_t device, std::uint64_t stream) const;

  /// Builds the exact Scenario device `device` simulates (class
  /// prototype + the four per-device seed streams applied).
  Scenario device_scenario(std::uint64_t device) const;

  /// Simulates the whole fleet, constructing each class's policy through
  /// `registry` (exp cannot depend on the baselines library — pass
  /// baselines::builtin_registry(), mirroring replicate()'s decoupling).
  /// `jobs` bounds the worker count (0 = default_jobs()); the result is
  /// byte-identical for every jobs and shard value.
  FleetResult run(const core::PolicyRegistry& registry,
                  std::size_t jobs = 0) const;

  /// run() with periodic progress reporting (devices done, devices/sec,
  /// ETA, running per-class energy). The result is bit-identical to the
  /// progress-free overload for every jobs/shard value — progress only
  /// *observes* completed devices, it never feeds back into the run.
  FleetResult run(const core::PolicyRegistry& registry, std::size_t jobs,
                  const FleetProgressOptions& progress) const;

  /// Effective shard count run() will use (resolves spec.shards == 0).
  std::size_t shard_count() const;

  /// Seed streams (mixed into spec.seed per device).
  static constexpr std::uint64_t kStreamClass = 0xf1ee7c1a55ULL;
  static constexpr std::uint64_t kStreamWorkload = 0xf1ee70ad5eedULL;
  static constexpr std::uint64_t kStreamBandwidth = 0xf1ee7ba2d51dULL;
  static constexpr std::uint64_t kStreamNoise = 0xf1ee7201e5e0ULL;
  static constexpr std::uint64_t kStreamFaults = 0xf1ee7fa0175eULL;

 private:
  FleetSpec spec_;
  std::vector<double> cumulative_weight_;  ///< normalized, size = classes
};

}  // namespace etrain::experiments
