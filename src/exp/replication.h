// Multi-seed replication: every stochastic result in EXPERIMENTS.md can be
// re-run across independent workload seeds to get a mean and a confidence
// interval instead of a single draw. Used by the benches' "replicated"
// sections and by tests asserting that orderings hold beyond one seed.
#pragma once

#include <functional>
#include <vector>

#include "common/stats.h"
#include "exp/slotted_sim.h"

namespace etrain::experiments {

/// Aggregate of one metric across replications.
struct Replicated {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half_width = 0.0;  ///< normal-approximation 95 % CI
  double min = 0.0;
  double max = 0.0;
  std::size_t runs = 0;
};

Replicated replicate_metric(const std::vector<double>& samples);

/// Everything a replicated comparison reports per policy.
struct ReplicatedMetrics {
  Replicated energy;     ///< network energy, J
  Replicated delay;      ///< normalized delay, s
  Replicated violation;  ///< deadline violation ratio
};

/// Runs `make_policy()` against `seeds.size()` freshly generated scenarios
/// (identical config except the workload seed) and aggregates the metrics.
/// Seeds run concurrently on up to default_jobs() threads (ETRAIN_JOBS /
/// --jobs / core count; see common/parallel.h): `make_policy` must be safe
/// to call concurrently, and the aggregates are byte-identical to a serial
/// run because per-seed metrics are folded in `seeds` order.
ReplicatedMetrics replicate(
    const ScenarioConfig& config, const std::vector<std::uint64_t>& seeds,
    const std::function<std::unique_ptr<core::SchedulingPolicy>()>&
        make_policy);

/// Convenience: seeds 1..n.
std::vector<std::uint64_t> default_seeds(std::size_t n);

}  // namespace etrain::experiments
