#include "exp/replication.h"

#include <array>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "obs/profile.h"

namespace etrain::experiments {

Replicated replicate_metric(const std::vector<double>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("replicate_metric: no samples");
  }
  RunningStats stats;
  for (const double s : samples) stats.add(s);
  Replicated r;
  r.mean = stats.mean();
  r.stddev = stats.stddev();
  r.min = stats.min();
  r.max = stats.max();
  r.runs = stats.count();
  r.ci95_half_width =
      stats.count() > 1
          ? 1.96 * stats.stddev() / std::sqrt(static_cast<double>(r.runs))
          : 0.0;
  return r;
}

ReplicatedMetrics replicate(
    const ScenarioConfig& config, const std::vector<std::uint64_t>& seeds,
    const std::function<std::unique_ptr<core::SchedulingPolicy>()>&
        make_policy) {
  if (seeds.empty()) {
    throw std::invalid_argument("replicate: no seeds");
  }
  OBS_PROFILE_SCOPE("simulate.replicate");
  // Each seed builds its own scenario and policy, so replications run
  // concurrently (ETRAIN_JOBS-bounded) with byte-identical aggregates: the
  // per-seed metrics come back in `seeds` order and the Welford accumulator
  // below consumes them in that same order regardless of thread count.
  const auto runs = parallel_map(seeds, [&](std::uint64_t seed) {
    ScenarioConfig cfg = config;
    cfg.workload_seed = seed;
    const Scenario scenario = make_scenario(cfg);
    const auto policy = make_policy();
    const RunMetrics m = run_slotted(scenario, *policy);
    return std::array<double, 3>{m.network_energy(), m.normalized_delay,
                                 m.violation_ratio};
  });
  std::vector<double> energies, delays, violations;
  for (const auto& run : runs) {
    energies.push_back(run[0]);
    delays.push_back(run[1]);
    violations.push_back(run[2]);
  }
  return ReplicatedMetrics{replicate_metric(energies),
                           replicate_metric(delays),
                           replicate_metric(violations)};
}

std::vector<std::uint64_t> default_seeds(std::size_t n) {
  std::vector<std::uint64_t> seeds(n);
  for (std::size_t i = 0; i < n; ++i) seeds[i] = i + 1;
  return seeds;
}

}  // namespace etrain::experiments
