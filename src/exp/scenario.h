// Scenario assembly for trace-driven experiments (Sec. VI-A).
//
// A Scenario bundles everything one simulation run needs: the radio power
// model, the bandwidth trace, the merged train (heartbeat) timetable, the
// pre-generated cargo packet arrivals, and the per-app cost profiles. The
// same Scenario object is replayed against every policy under comparison so
// differences are attributable to scheduling alone.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "apps/cargo_app.h"
#include "apps/train_schedule.h"
#include "core/cost_profile.h"
#include "core/packet.h"
#include "net/bandwidth_trace.h"
#include "net/fault_plan.h"
#include "net/wifi_availability.h"
#include "radio/model_registry.h"
#include "radio/power_model.h"

namespace etrain::experiments {

/// One extra radio interface attached for the whole run (slot 2+). Unlike
/// Wi-Fi's episodic coverage, an extra interface is "available" to
/// policies while it is hot — within its own DCH-tail window after recent
/// activity — so cargo can ride a radio heartbeat's tail.
struct ScenarioInterface {
  radio::RadioModel radio;
  net::BandwidthTrace trace = net::BandwidthTrace::constant(1100.0, 1);
};

struct Scenario {
  Duration horizon = 7200.0;
  radio::PowerModel model = radio::PowerModel::PaperUmts3G();
  net::BandwidthTrace trace = net::BandwidthTrace::constant(120.0e3, 1);
  /// Downlink bandwidth for Direction::kDownlink packets (prefetching).
  /// 3G downlinks run several times faster than uplinks; default 3x the
  /// nominal uplink mean.
  net::BandwidthTrace downlink_trace =
      net::BandwidthTrace::constant(360.0e3, 1);
  /// Merged heartbeat departure timetable (may be empty: the NULL setting
  /// of Fig. 10(a)).
  std::vector<apps::TrainEvent> trains;
  /// Interactive foreground traffic (timeline refreshes, browsing fetches)
  /// transmitted immediately at its timestamps, outside any policy's
  /// control and *not* treated as a train departure — used by the Fig. 11
  /// user-trace replay. `train` holds the originating cargo app id.
  std::vector<apps::TrainEvent> background;
  /// Cargo packet arrivals, sorted by arrival time, ids unique.
  std::vector<core::Packet> packets;
  /// Cost profile per cargo app (index = CargoAppId).
  std::vector<const core::CostProfile*> profiles;

  /// Multi-interface extension: Wi-Fi coverage episodes (empty = cellular
  /// only), the Wi-Fi radio's power profile, and its bandwidth.
  net::WifiAvailability wifi = net::WifiAvailability::none();
  radio::PowerModel wifi_model = radio::PowerModel::WifiPsm();
  net::BandwidthTrace wifi_trace = net::BandwidthTrace::constant(2.0e6, 1);

  /// Extra always-attached radios beyond cellular/Wi-Fi (LoRa links, a
  /// second cellular modem). Interface slot i of Selection/TrainEvent maps
  /// to extra_interfaces[i - 2]. Each carries its own RadioModel (energy
  /// billed separately, reported per interface) and bandwidth trace; a
  /// model with lora link params gets ACK/retransmit semantics and, when
  /// heartbeat_period > 0, contributes radio heartbeats to `trains`.
  std::vector<ScenarioInterface> extra_interfaces;

  /// Lognormal noise applied to the per-slot bandwidth measurement policies
  /// receive (Sec. IV: application-layer bandwidth prediction is inaccurate
  /// in reality; eTrain ignores the estimate, PerES/eTime depend on it).
  double estimate_noise_sigma = 0.25;
  std::uint64_t noise_seed = 7;

  /// Fault injection (transfer loss, coverage outages, heartbeat jitter /
  /// drops). The default FaultPlan::none() makes every run bit-identical
  /// to the pre-fault-injection behaviour; run_slotted and the DES system
  /// share the same plan semantics. See docs/faults.md.
  net::FaultPlan faults;
};

/// Declarative description of the paper's standard setup.
struct ScenarioConfig {
  /// Total cargo arrival rate lambda in packets/second; the 5:2:10 Mail /
  /// Weibo / Cloud inter-arrival proportion is preserved (Sec. VI-A).
  double lambda = 0.08;
  /// Number of train apps, taken in order QQ, WeChat, WhatsApp (0..3).
  int train_count = 3;
  Duration horizon = 7200.0;
  std::uint64_t workload_seed = 42;
  std::uint64_t bandwidth_seed = 20141208;
  /// When set, overrides every cargo app's deadline (Fig. 10(c) sweep).
  std::optional<Duration> shared_deadline;
  radio::PowerModel model = radio::PowerModel::PaperUmts3G();
};

/// Builds the standard scenario: synthetic Wuhan bandwidth trace, QQ /
/// WeChat / WhatsApp trains, Poisson Mail / Weibo / Cloud cargo.
Scenario make_scenario(const ScenarioConfig& config);

/// Structural validation with descriptive errors: packets sorted by
/// arrival with unique ids and in-range app indices, trains/background
/// sorted, horizon positive, fault plan well-formed. run_slotted() calls
/// this before simulating; hand-built scenarios can call it directly.
void validate_scenario(const Scenario& scenario);

/// Applies a FaultPlan's heartbeat faults to a merged timetable: each beat
/// is jittered by plan.heartbeat_jitter and dropped per
/// plan.heartbeat_drop_probability, keyed by (train id, per-train beat
/// index) exactly like the DES TrainAppProcess, then re-sorted by time.
/// Returns `trains` untouched when the plan has no heartbeat faults.
std::vector<apps::TrainEvent> apply_heartbeat_faults(
    const std::vector<apps::TrainEvent>& trains, const net::FaultPlan& plan);

}  // namespace etrain::experiments
