// Fluent assembly of experiment scenarios.
//
// make_scenario(ScenarioConfig) covers the paper's standard setup, but the
// benches and examples used to poke Scenario's fields directly whenever
// they needed a variation (a custom trace, a deadline sweep, faults...).
// ScenarioBuilder is the one supported way to express those variations:
//
//   const Scenario s = ScenarioBuilder()
//                          .lambda(0.08)
//                          .trains(3)
//                          .horizon(7200.0)
//                          .loss(0.05)
//                          .outages(0.1, 120.0)
//                          .build();
//
// build() derives everything underneath from the standard generator, then
// layers the explicitly-set overrides on top and validates the result, so
// a builder with no calls produces exactly make_scenario(ScenarioConfig{}).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/scenario.h"

namespace etrain::experiments {

class ScenarioBuilder {
 public:
  /// --- standard-generator knobs (forwarded to ScenarioConfig) ---

  /// Total cargo arrival rate, packets/second.
  ScenarioBuilder& lambda(double packets_per_second);
  /// Number of train apps (0..3: QQ, WeChat, WhatsApp in order).
  ScenarioBuilder& trains(int count);
  ScenarioBuilder& horizon(Duration seconds);
  ScenarioBuilder& workload_seed(std::uint64_t seed);
  ScenarioBuilder& bandwidth_seed(std::uint64_t seed);
  /// Overrides every cargo app's deadline (Fig. 10(c) sweep).
  ScenarioBuilder& shared_deadline(Duration seconds);
  ScenarioBuilder& model(const radio::PowerModel& model);
  /// Primary-radio registry spec ("3g:paper", "lte_cdrx:inactivity=5"...):
  /// resolves via builtin_model_registry() and replaces the power model.
  /// Throws std::invalid_argument immediately on a bad spec.
  ScenarioBuilder& radio(const std::string& spec);

  /// --- fault injection ---

  /// Installs a complete plan (replaces any fault knobs set so far).
  ScenarioBuilder& faults(net::FaultPlan plan);
  /// Per-attempt transfer loss probability.
  ScenarioBuilder& loss(double probability);
  /// Generated coverage-outage pattern: `duty` fraction of the horizon in
  /// outage, mean episode length `episode_mean` (resolved at build(), after
  /// the horizon is known).
  ScenarioBuilder& outages(double duty, Duration episode_mean = 120.0);
  /// Explicit outage episodes (sorted, disjoint); replaces outages().
  ScenarioBuilder& outage_episodes(std::vector<net::OutageEpisode> episodes);
  /// Gaussian heartbeat departure jitter, seconds.
  ScenarioBuilder& heartbeat_jitter(Duration sigma);
  /// Per-beat heartbeat drop probability.
  ScenarioBuilder& heartbeat_drops(double probability);
  /// Seed for every hashed fault decision (and the outage generator).
  ScenarioBuilder& fault_seed(std::uint64_t seed);

  /// --- multi-interface / estimation knobs ---

  ScenarioBuilder& wifi(net::WifiAvailability availability);
  /// Attaches extra always-on radios (interface slots 2+), one registry
  /// spec each ("lora:sf=9,heartbeat_period=30"). Each gets a constant
  /// bandwidth trace at the model's rate; a lora model with a heartbeat
  /// period contributes radio heartbeats to the train timetable at
  /// build(). Replaces any previously set list. Throws immediately on a
  /// bad spec.
  ScenarioBuilder& interfaces(const std::vector<std::string>& specs);
  ScenarioBuilder& estimate_noise(double sigma);
  ScenarioBuilder& noise_seed(std::uint64_t seed);

  /// --- escape hatches: replace generated pieces wholesale ---

  ScenarioBuilder& trace(net::BandwidthTrace trace);
  ScenarioBuilder& downlink_trace(net::BandwidthTrace trace);
  /// Replaces the generated heartbeat timetable.
  ScenarioBuilder& timetable(std::vector<apps::TrainEvent> events);
  /// Replaces the generated cargo workload. `profiles[app]` must outlive
  /// the scenario (they are borrowed, matching Scenario's contract).
  ScenarioBuilder& packets(std::vector<core::Packet> packets,
                           std::vector<const core::CostProfile*> profiles);
  /// Interactive foreground traffic (Fig. 11 user-trace replay).
  ScenarioBuilder& background(std::vector<apps::TrainEvent> events);

  /// Assembles and validates the scenario; throws std::invalid_argument on
  /// inconsistent knobs. The builder is reusable: build() does not mutate.
  Scenario build() const;

  /// --- inspection (fleet provenance reads the prototype's knobs) ---

  /// The standard-generator knobs as set so far (lambda, trains, horizon,
  /// seeds, model...). FleetHarness provenance reads these off each class
  /// prototype without building a scenario.
  const ScenarioConfig& base_config() const { return config_; }
  /// The fault knobs as set so far. NOTE: when outages(duty, mean) was
  /// used, the episodes are generated at build() — this plan's `outages`
  /// list is empty until then; `has_generated_outages()` tells callers.
  const net::FaultPlan& fault_plan() const { return faults_; }
  /// True when outages(duty, mean) deferred episode generation to build().
  bool has_generated_outages() const { return outage_duty_.has_value(); }

 private:
  ScenarioConfig config_;
  net::FaultPlan faults_;
  std::optional<double> outage_duty_;
  Duration outage_episode_mean_ = 120.0;

  std::optional<net::WifiAvailability> wifi_;
  std::vector<ScenarioInterface> extra_interfaces_;
  std::optional<double> estimate_noise_;
  std::optional<std::uint64_t> noise_seed_;

  std::optional<net::BandwidthTrace> trace_;
  std::optional<net::BandwidthTrace> downlink_trace_;
  std::optional<std::vector<apps::TrainEvent>> timetable_;
  std::optional<std::vector<core::Packet>> packets_;
  std::optional<std::vector<const core::CostProfile*>> profiles_;
  std::optional<std::vector<apps::TrainEvent>> background_;
};

}  // namespace etrain::experiments
