// Bridges experiment-layer objects (Scenario, RunMetrics) into obs-layer
// RunReports. obs deliberately knows nothing above radio, so the
// translation — scenario knobs into provenance strings, RunMetrics into
// energy/delay/ledger sections — lives here in exp.
#pragma once

#include <string>

#include "exp/fleet.h"
#include "exp/metrics.h"
#include "exp/scenario.h"
#include "obs/report.h"

namespace etrain::experiments {

/// Appends `scenario`'s provenance manifest to the report: the "workload"
/// discriminator ("single-device"; fleet reports say "fleet"), device
/// preset, horizon, workload sizes, estimation-noise and fault knobs (with
/// their seeds), Wi-Fi coverage. Everything a reader needs to reproduce
/// the run, in deterministic key order.
void describe_scenario(obs::RunReport& report, const Scenario& scenario);

/// Appends a fleet's provenance manifest: "workload"="fleet" (so
/// scripts/compare_reports distinguishes fleet from single-device runs),
/// population size, fleet seed, and each activeness class's name / weight /
/// policy spec / generator knobs / fault summary. Shard and job counts are
/// deliberately absent — they are non-compared facts (the report is
/// byte-identical across them) and belong in `environment`.
void describe_fleet(obs::RunReport& report, const FleetSpec& spec);

/// Fills the run sections from one finished run: headline results, the
/// energy section (cellular + Wi-Fi + Monsoon when present), the delay
/// section, the per-(interface, kind, app) energy-attribution ledger
/// (rebuilt from the transmission logs with the meter's exact billing
/// rules) and the MetricsSnapshot. Records "policy" provenance from
/// metrics.policy_name. The power models must be the ones the run was
/// billed with (the ledger re-bills against them).
void fill_run_sections(obs::RunReport& report,
                       const radio::PowerModel& model,
                       const radio::PowerModel& wifi_model,
                       const RunMetrics& metrics);

/// Scenario convenience: models taken from the scenario.
void fill_run_sections(obs::RunReport& report, const Scenario& scenario,
                       const RunMetrics& metrics);

/// Convenience: a complete report for one (scenario, policy) run.
obs::RunReport report_for_run(const std::string& bench,
                              const Scenario& scenario,
                              const RunMetrics& metrics);

/// Fills the fleet sections from one finished fleet run: headline results
/// (devices, slots, packets, joules, per-device averages), the `fleet`
/// section (population totals + per-class aggregates) and the fleet-level
/// energy-attribution ledger (app = activeness-class index). report_check
/// verifies ledger total == fleet.device_meter_total_J within the
/// device-scaled tolerance.
void fill_fleet_sections(obs::RunReport& report, const FleetResult& result);

/// Convenience: a complete report for one fleet run.
obs::RunReport report_for_fleet(const std::string& bench,
                                const FleetSpec& spec,
                                const FleetResult& result);

}  // namespace etrain::experiments
