#include "exp/metrics.h"

namespace etrain::experiments {

void finalize_metrics(RunMetrics& metrics) {
  if (metrics.outcomes.empty()) {
    metrics.normalized_delay = 0.0;
    metrics.violation_ratio = 0.0;
    metrics.total_delay_cost = 0.0;
    return;
  }
  double delay_sum = 0.0;
  double cost_sum = 0.0;
  std::size_t violations = 0;
  for (const auto& o : metrics.outcomes) {
    delay_sum += o.delay;
    cost_sum += o.cost;
    if (o.violated) ++violations;
  }
  const auto n = static_cast<double>(metrics.outcomes.size());
  metrics.normalized_delay = delay_sum / n;
  metrics.violation_ratio = static_cast<double>(violations) / n;
  metrics.total_delay_cost = cost_sum;
}

}  // namespace etrain::experiments
