#include "exp/sweeps.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/parallel.h"
#include "obs/profile.h"

namespace etrain::experiments {

std::vector<EDPoint> sweep(const Scenario& scenario,
                           const PolicyFactory& factory,
                           const std::vector<double>& params) {
  OBS_PROFILE_SCOPE("simulate.sweep");
  // One independent simulation per knob value: the shared scenario is
  // read-only and each task owns its policy instance, so the runs are
  // byte-identical to the serial loop regardless of ETRAIN_JOBS.
  return parallel_map(params, [&](double param) {
    const auto policy = factory(param);
    const RunMetrics metrics = run_slotted(scenario, *policy);
    return EDPoint{param, metrics.network_energy(),
                   metrics.normalized_delay, metrics.violation_ratio};
  });
}

EDPoint frontier_at_delay(const std::vector<EDPoint>& frontier,
                          double target_delay) {
  if (frontier.empty()) {
    throw std::invalid_argument("frontier_at_delay: empty frontier");
  }
  // Sort a copy by delay.
  std::vector<EDPoint> sorted = frontier;
  std::sort(sorted.begin(), sorted.end(),
            [](const EDPoint& a, const EDPoint& b) {
              return a.delay < b.delay;
            });
  if (target_delay <= sorted.front().delay) return sorted.front();
  if (target_delay >= sorted.back().delay) return sorted.back();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i].delay >= target_delay) {
      const EDPoint& lo = sorted[i - 1];
      const EDPoint& hi = sorted[i];
      const double span = hi.delay - lo.delay;
      const double w = span > 1e-12 ? (target_delay - lo.delay) / span : 0.5;
      EDPoint out;
      out.param = lo.param + w * (hi.param - lo.param);
      out.energy = lo.energy + w * (hi.energy - lo.energy);
      out.delay = target_delay;
      out.violation = lo.violation + w * (hi.violation - lo.violation);
      return out;
    }
  }
  return sorted.back();  // unreachable
}

std::vector<double> linspace_step(double from, double to, double step) {
  if (step <= 0.0) {
    throw std::invalid_argument("linspace_step: non-positive step");
  }
  std::vector<double> out;
  for (double v = from; v <= to + step * 1e-9; v += step) {
    out.push_back(v);
  }
  return out;
}

}  // namespace etrain::experiments
