#include "exp/figure_export.h"

#include <cstdlib>
#include <filesystem>
#include <stdexcept>

#include "common/csv.h"
#include "obs/profile.h"
#include "obs/report.h"

namespace etrain::experiments {

namespace {

/// The value a CSV cell will round-trip to. Artifact column sums must be
/// computed over these, not the original doubles: the file stores
/// std::to_string's 6-decimal rendering, and report_check re-sums what it
/// reads back.
double as_written(const std::string& cell) {
  return std::strtod(cell.c_str(), nullptr);
}

}  // namespace

std::string ensure_results_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create results directory: " + dir);
  }
  return dir;
}

void export_frontier(const std::string& dir, const std::string& name,
                     const std::vector<EDPoint>& frontier) {
  OBS_PROFILE_SCOPE("export.csv");
  const std::string path = dir + "/" + name + ".csv";
  obs::CsvArtifact artifact;
  artifact.file = path;
  artifact.rows = frontier.size();
  artifact.column_sums = {
      {"param", 0.0}, {"energy_J", 0.0}, {"delay_s", 0.0}, {"violation", 0.0}};

  CsvWriter w(path);
  w.write_row({"param", "energy_J", "delay_s", "violation"});
  for (const auto& p : frontier) {
    const std::string cells[4] = {
        std::to_string(p.param), std::to_string(p.energy),
        std::to_string(p.delay), std::to_string(p.violation)};
    w.write_row({cells[0], cells[1], cells[2], cells[3]});
    for (int i = 0; i < 4; ++i) {
      artifact.column_sums[static_cast<std::size_t>(i)].second +=
          as_written(cells[i]);
    }
  }
  obs::ArtifactLog::global().record(std::move(artifact));
}

void export_series(const std::string& dir, const std::string& name,
                   const std::vector<std::string>& headers,
                   const std::vector<std::vector<double>>& columns) {
  OBS_PROFILE_SCOPE("export.csv");
  if (columns.size() != headers.size()) {
    throw std::invalid_argument("export_series: header/column mismatch");
  }
  for (const auto& c : columns) {
    if (c.size() != columns.front().size()) {
      throw std::invalid_argument("export_series: ragged columns");
    }
  }
  const std::string path = dir + "/" + name + ".csv";
  obs::CsvArtifact artifact;
  artifact.file = path;
  artifact.rows = columns.empty() ? 0 : columns.front().size();
  for (const auto& h : headers) artifact.column_sums.emplace_back(h, 0.0);

  CsvWriter w(path);
  w.write_row(headers);
  if (!columns.empty()) {
    for (std::size_t row = 0; row < columns.front().size(); ++row) {
      std::vector<std::string> cells;
      cells.reserve(columns.size());
      for (std::size_t col = 0; col < columns.size(); ++col) {
        cells.push_back(std::to_string(columns[col][row]));
        artifact.column_sums[col].second += as_written(cells.back());
      }
      w.write_row(cells);
    }
  }
  obs::ArtifactLog::global().record(std::move(artifact));
}

}  // namespace etrain::experiments
