#include "exp/figure_export.h"

#include <filesystem>
#include <stdexcept>

#include "common/csv.h"

namespace etrain::experiments {

std::string ensure_results_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create results directory: " + dir);
  }
  return dir;
}

void export_frontier(const std::string& dir, const std::string& name,
                     const std::vector<EDPoint>& frontier) {
  CsvWriter w(dir + "/" + name + ".csv");
  w.write_row({"param", "energy_J", "delay_s", "violation"});
  for (const auto& p : frontier) {
    w.write_row({std::to_string(p.param), std::to_string(p.energy),
                 std::to_string(p.delay), std::to_string(p.violation)});
  }
}

void export_series(const std::string& dir, const std::string& name,
                   const std::vector<std::string>& headers,
                   const std::vector<std::vector<double>>& columns) {
  if (columns.size() != headers.size()) {
    throw std::invalid_argument("export_series: header/column mismatch");
  }
  for (const auto& c : columns) {
    if (c.size() != columns.front().size()) {
      throw std::invalid_argument("export_series: ragged columns");
    }
  }
  CsvWriter w(dir + "/" + name + ".csv");
  w.write_row(headers);
  if (columns.empty()) return;
  for (std::size_t row = 0; row < columns.front().size(); ++row) {
    std::vector<std::string> cells;
    cells.reserve(columns.size());
    for (const auto& c : columns) cells.push_back(std::to_string(c[row]));
    w.write_row(cells);
  }
}

}  // namespace etrain::experiments
