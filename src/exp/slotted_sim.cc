#include "exp/slotted_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "common/rng.h"
#include "common/stats.h"

namespace etrain::experiments {

namespace {

/// Serialized-uplink bookkeeping shared by heartbeat and data transmission.
class Uplink {
 public:
  Uplink(const Scenario& scenario, radio::TransmissionLog& log)
      : scenario_(scenario), log_(log) {}

  /// Transmits `bytes` no earlier than `not_before`; returns the actual
  /// start time (after any in-flight transmission and RRC promotion).
  TimePoint transmit(TimePoint not_before, Bytes bytes, radio::TxKind kind,
                     int app_id, core::PacketId packet_id,
                     core::Direction direction = core::Direction::kUplink) {
    const TimePoint start = std::max(not_before, free_at_);
    const net::BandwidthTrace& trace =
        direction == core::Direction::kDownlink ? scenario_.downlink_trace
                                                : scenario_.trace;
    radio::Transmission tx;
    tx.start = start;
    tx.setup = promotion_delay(start);
    tx.duration = trace.transfer_duration(bytes, start + tx.setup);
    tx.bytes = bytes;
    tx.kind = kind;
    tx.app_id = app_id;
    tx.packet_id = packet_id;
    log_.add(tx);
    free_at_ = tx.end();
    last_end_ = tx.end();
    return start;
  }

  TimePoint free_at() const { return free_at_; }

 private:
  Duration promotion_delay(TimePoint start) const {
    if (last_end_ < 0.0) return scenario_.model.idle_to_dch_delay;
    const Duration elapsed = start - last_end_;
    if (elapsed < scenario_.model.dch_tail) return 0.0;
    if (elapsed < scenario_.model.tail_time()) {
      return scenario_.model.fach_to_dch_delay;
    }
    return scenario_.model.idle_to_dch_delay;
  }

  const Scenario& scenario_;
  radio::TransmissionLog& log_;
  TimePoint free_at_ = 0.0;
  TimePoint last_end_ = -1.0;
};

}  // namespace

RunMetrics run_slotted(const Scenario& scenario,
                       core::SchedulingPolicy& policy,
                       const obs::Observers& observers) {
  policy.reset();

  RunMetrics metrics;
  metrics.policy_name = policy.name();

  obs::TraceSink* const trace = observers.trace;
  // Policy-agnostic run counters: what any scheduler did with the slots it
  // was given, measured identically across policies.
  obs::Counter* heartbeats_counter = nullptr;
  obs::Counter* piggybacked_counter = nullptr;
  obs::Counter* dripped_counter = nullptr;
  if (observers.metrics != nullptr) {
    heartbeats_counter = &observers.metrics->counter("run.heartbeats");
    piggybacked_counter =
        &observers.metrics->counter("run.packets_piggybacked");
    dripped_counter = &observers.metrics->counter("run.packets_dripped");
  }

  const Duration slot = policy.preferred_slot_length();
  if (slot <= 0.0) {
    throw std::invalid_argument("run_slotted: non-positive slot length");
  }
  validate_scenario(scenario);

  core::WaitingQueues queues(static_cast<int>(scenario.profiles.size()));
  Uplink uplink(scenario, metrics.log);

  // Wi-Fi channel (multi-interface extension): independent serialization,
  // its own log; energy metered against the Wi-Fi power model afterwards.
  TimePoint wifi_free_at = 0.0;
  const auto transmit_wifi = [&](const core::QueuedPacket& qp,
                                 TimePoint not_before) -> TimePoint {
    const TimePoint start = std::max(not_before, wifi_free_at);
    radio::Transmission tx;
    tx.start = start;
    tx.setup = scenario.wifi_model.idle_to_dch_delay;
    tx.duration =
        scenario.wifi_trace.transfer_duration(qp.packet.bytes, start + tx.setup);
    tx.bytes = qp.packet.bytes;
    tx.kind = radio::TxKind::kData;
    tx.app_id = qp.packet.app;
    tx.packet_id = qp.packet.id;
    metrics.wifi_log.add(tx);
    wifi_free_at = tx.end();
    return start;
  };

  // Noisy bandwidth estimation the channel-dependent policies consume.
  Rng noise(scenario.noise_seed);
  Ewma short_term(0.3);
  RunningStats long_term;

  const std::vector<TimePoint> departures =
      apps::departure_times(scenario.trains);

  std::size_t next_packet = 0;
  std::size_t next_train = 0;
  std::size_t next_departure = 0;
  std::size_t next_background = 0;

  // Interactive foreground transmissions happen at their own timestamps,
  // outside the policy's control; they are billed as data but carry the
  // sentinel packet id -2 so they never join the outcome metrics.
  const auto flush_background_until = [&](TimePoint limit) {
    while (next_background < scenario.background.size() &&
           scenario.background[next_background].time <= limit) {
      const auto& e = scenario.background[next_background];
      uplink.transmit(e.time, e.bytes, radio::TxKind::kData, e.train, -2);
      ++next_background;
    }
  };

  const auto transmit_data = [&](core::QueuedPacket&& qp, TimePoint slot_start,
                                 bool via_wifi = false) {
    const TimePoint sent =
        via_wifi
            ? transmit_wifi(qp, slot_start)
            : uplink.transmit(slot_start, qp.packet.bytes,
                              radio::TxKind::kData, qp.packet.app,
                              qp.packet.id, qp.packet.direction);
    PacketOutcome o;
    o.id = qp.packet.id;
    o.app = qp.packet.app;
    o.arrival = qp.packet.arrival;
    o.sent = sent;
    o.delay = sent - qp.packet.arrival;
    o.cost = qp.profile->cost(o.delay, qp.packet.deadline);
    o.violated = o.delay > qp.packet.deadline + 1e-9;
    o.bytes = qp.packet.bytes;
    metrics.outcomes.push_back(o);
  };

  for (TimePoint t = 0.0; t < scenario.horizon; t += slot) {
    const TimePoint slot_end = t + slot;

    // (1) Arrivals from the previous slot join their queues.
    while (next_packet < scenario.packets.size() &&
           scenario.packets[next_packet].arrival < t) {
      const core::Packet& p = scenario.packets[next_packet];
      queues.enqueue(core::QueuedPacket{p, scenario.profiles.at(p.app)});
      ++next_packet;
    }

    // (2) Heartbeats due at or before the slot start; interactive traffic
    // up to the slot start goes out as it happened.
    flush_background_until(t);
    bool heartbeat_now = false;
    while (next_train < scenario.trains.size() &&
           scenario.trains[next_train].time <= t) {
      const auto& hb = scenario.trains[next_train];
      uplink.transmit(t, hb.bytes, radio::TxKind::kHeartbeat, hb.train, -1);
      ETRAIN_TRACE(trace, obs::TraceEvent::heartbeat_tx(t, hb.train,
                                                        hb.bytes));
      if (heartbeats_counter != nullptr) heartbeats_counter->increment();
      heartbeat_now = true;
      ++next_train;
    }
    // Any heartbeat later within this slot still marks the slot as a train
    // departure for the policy (the paper treats heartbeats as firing at
    // slot boundaries).
    if (next_train < scenario.trains.size() &&
        scenario.trains[next_train].time < slot_end) {
      heartbeat_now = true;
    }

    // (3) Policy decision.
    const double measured =
        scenario.trace.at(t) *
        std::exp(noise.normal(0.0, scenario.estimate_noise_sigma));
    short_term.add(measured);
    long_term.add(measured);

    core::SlotContext ctx;
    ctx.slot_start = t;
    ctx.slot_length = slot;
    ctx.heartbeat_now = heartbeat_now;
    while (next_departure < departures.size() &&
           departures[next_departure] < t) {
      ++next_departure;
    }
    for (std::size_t i = next_departure;
         i < departures.size() && i < next_departure + 16; ++i) {
      ctx.upcoming_heartbeats.push_back(departures[i]);
    }
    ctx.bandwidth_estimate = short_term.value_or(measured);
    ctx.bandwidth_long_term = long_term.mean();
    ctx.wifi_available = scenario.wifi.available(t);

    // Only slots with something to decide are interesting on the trace;
    // quiescent 1 s ticks would bury the signal.
    if (trace != nullptr && (!queues.empty() || heartbeat_now)) {
      trace->record(obs::TraceEvent::slot_begin(
          t, static_cast<std::int32_t>(queues.total_size()),
          queues.instantaneous_cost(t)));
    }

    const auto selections = policy.select(ctx, queues);
    if (!selections.empty()) {
      obs::Counter* const bucket =
          heartbeat_now ? piggybacked_counter : dripped_counter;
      if (bucket != nullptr) bucket->increment(selections.size());
    }
    std::unordered_set<core::PacketId> seen;
    for (const auto& sel : selections) {
      if (!seen.insert(sel.packet).second) {
        throw std::logic_error("policy selected the same packet twice");
      }
      const bool via_wifi = sel.via_wifi && ctx.wifi_available;
      transmit_data(queues.remove(sel.app, sel.packet), t, via_wifi);
    }

    // (4) Heartbeats and interactive traffic later within the slot fire at
    // their exact times.
    while (next_train < scenario.trains.size() &&
           scenario.trains[next_train].time < slot_end) {
      const auto& hb = scenario.trains[next_train];
      uplink.transmit(hb.time, hb.bytes, radio::TxKind::kHeartbeat, hb.train,
                      -1);
      ETRAIN_TRACE(trace, obs::TraceEvent::heartbeat_tx(hb.time, hb.train,
                                                        hb.bytes));
      if (heartbeats_counter != nullptr) heartbeats_counter->increment();
      ++next_train;
    }
    flush_background_until(slot_end - 1e-12);
  }
  flush_background_until(scenario.horizon);

  // Force-flush stragglers at the horizon.
  for (auto& qp : queues.drain_all()) {
    transmit_data(std::move(qp), scenario.horizon);
  }
  // Also flush packets that arrived in the final slot but were never
  // enqueued (arrival >= last slot start).
  while (next_packet < scenario.packets.size()) {
    const core::Packet& p = scenario.packets[next_packet];
    transmit_data(core::QueuedPacket{p, scenario.profiles.at(p.app)},
                  std::max(scenario.horizon, p.arrival));
    ++next_packet;
  }

  // Energy accounting: extend the metering window past the final tail so
  // every policy is billed for the tail it leaves behind.
  const Duration energy_horizon =
      std::max(scenario.horizon, metrics.log.last_end()) +
      scenario.model.tail_time();
  metrics.energy = radio::measure_energy(metrics.log, scenario.model,
                                         energy_horizon, trace);
  const Duration wifi_horizon =
      std::max(scenario.horizon, metrics.wifi_log.last_end()) +
      scenario.wifi_model.tail_time();
  metrics.wifi_energy = radio::measure_energy(metrics.wifi_log,
                                              scenario.wifi_model,
                                              wifi_horizon, trace);
  finalize_metrics(metrics);
  if (observers.metrics != nullptr) {
    metrics.observed = observers.metrics->snapshot();
  }
  return metrics;
}

}  // namespace etrain::experiments
