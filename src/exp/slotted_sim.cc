#include "exp/slotted_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "android/heartbeat_monitor.h"
#include "common/rng.h"
#include "common/stats.h"

namespace etrain::experiments {

namespace {

/// Fault-injection counters the uplink reports into (all optional).
struct FaultCounters {
  obs::Counter* failures = nullptr;
  obs::Counter* retries = nullptr;
  obs::Counter* outage_deferrals = nullptr;
};

/// Serialized-uplink bookkeeping shared by heartbeat and data transmission,
/// with the same fault semantics as net::RadioLink: coverage outages defer
/// transfer starts (no energy) and truncate in-flight transfers (partial
/// airtime billed, failed), hashed loss draws fail whole attempts, data
/// retries with capped exponential backoff, heartbeats are fire-and-forget.
class Uplink {
 public:
  /// Outcome of one transmit() call (a whole attempt chain for data).
  struct Result {
    /// Start of the delivering attempt; meaningless when !delivered.
    TimePoint sent = 0.0;
    bool delivered = true;
    /// End of the last failed attempt — when the app learns of the final
    /// failure and can requeue.
    TimePoint failed_at = 0.0;
    /// Last 1-based attempt number consumed (for fresh draws on requeue).
    int last_attempt = 1;
  };

  Uplink(const Scenario& scenario, radio::TransmissionLog& log,
         obs::TraceSink* trace, FaultCounters counters)
      : scenario_(scenario),
        faults_(scenario.faults),
        log_(log),
        trace_(trace),
        counters_(counters) {}

  /// The horizon force-flush must terminate even under loss_probability 1:
  /// it runs faultless.
  void disable_faults() { faults_ = net::FaultPlan::none(); }

  /// Transmits `bytes` no earlier than `not_before`. `entity` keys the
  /// fault draws (packet id for cargo, a timetable sequence number for
  /// heartbeats); `first_attempt` continues a packet's draw sequence across
  /// requeues so retries never replay the same coin flips.
  Result transmit(TimePoint not_before, Bytes bytes, radio::TxKind kind,
                  int app_id, core::PacketId packet_id,
                  core::Direction direction = core::Direction::kUplink,
                  std::int64_t entity = 0, int first_attempt = 1) {
    const net::BandwidthTrace& trace =
        direction == core::Direction::kDownlink ? scenario_.downlink_trace
                                                : scenario_.trace;
    const bool faulty = faults_.affects_link();
    int attempt = first_attempt;
    TimePoint ready = not_before;
    while (true) {
      TimePoint start = std::max(ready, free_at_);
      if (faulty && faults_.in_outage(start)) {
        // No service: the transfer cannot begin. Waiting burns no airtime.
        const TimePoint resume = faults_.outage_end_after(start);
        ETRAIN_TRACE(trace_, obs::TraceEvent::outage_defer(
                                 start, static_cast<std::int32_t>(kind),
                                 entity, resume));
        if (counters_.outage_deferrals != nullptr) {
          counters_.outage_deferrals->increment();
        }
        start = resume;
      }
      radio::Transmission tx;
      tx.start = start;
      tx.setup = promotion_delay(start);
      tx.duration = trace.transfer_duration(bytes, start + tx.setup);
      tx.bytes = bytes;
      tx.kind = kind;
      tx.app_id = app_id;
      tx.packet_id = packet_id;
      tx.attempt = attempt;
      if (faulty) {
        const TimePoint cut = faults_.next_outage_start(start);
        if (cut < tx.end()) {
          // Coverage drops mid-flight: the stream dies at the boundary and
          // only the airtime before it is billed.
          tx.failed = true;
          tx.setup = std::min(tx.setup, cut - start);
          tx.duration = std::max(0.0, (cut - start) - tx.setup);
        } else if (faults_.lose_transfer(entity, attempt)) {
          tx.failed = true;  // lost in flight: full airtime, nothing moved
        }
      }
      log_.add(tx);
      free_at_ = tx.end();
      last_end_ = tx.end();
      if (!tx.failed) return Result{start, true, 0.0, attempt};

      ETRAIN_TRACE(trace_, obs::TraceEvent::tx_failure(
                               tx.end(), static_cast<std::int32_t>(kind),
                               entity, attempt, tx.setup + tx.duration));
      if (counters_.failures != nullptr) counters_.failures->increment();
      const int used = attempt - first_attempt + 1;
      if (kind == radio::TxKind::kHeartbeat || used > faults_.max_retries) {
        // Heartbeats are fire-and-forget (the next cycle supersedes a lost
        // one); data exhausts its retry budget and reports failure.
        return Result{start, false, tx.end(), attempt};
      }
      const Duration backoff = faults_.backoff_delay(attempt);
      ETRAIN_TRACE(trace_, obs::TraceEvent::tx_retry(
                               tx.end(), static_cast<std::int32_t>(kind),
                               entity, attempt + 1, backoff));
      if (counters_.retries != nullptr) counters_.retries->increment();
      ready = tx.end() + backoff;
      ++attempt;
    }
  }

  TimePoint free_at() const { return free_at_; }

 private:
  Duration promotion_delay(TimePoint start) const {
    if (last_end_ < 0.0) return scenario_.model.idle_to_dch_delay;
    return scenario_.model.promotion_delay_after_gap(start - last_end_);
  }

  const Scenario& scenario_;
  net::FaultPlan faults_;
  radio::TransmissionLog& log_;
  obs::TraceSink* trace_;
  FaultCounters counters_;
  TimePoint free_at_ = 0.0;
  TimePoint last_end_ = -1.0;
};

/// One non-cellular radio channel: Wi-Fi (interface slot 1) or an extra
/// interface (slots 2+). Independent serialization, its own log, promotion
/// derived from the model's tail via promotion_delay_after_gap. LoRa-class
/// channels add ACK-wait/retransmit link semantics on top.
class SecondaryChannel {
 public:
  SecondaryChannel(const radio::PowerModel& model,
                   const net::BandwidthTrace& trace,
                   radio::TransmissionLog& log)
      : model_(model), trace_(trace), log_(log) {}

  struct Result {
    TimePoint sent = 0.0;
    bool delivered = true;
    /// When !delivered: the moment the last ACK window closed and the
    /// sender learned of the final loss.
    TimePoint failed_at = 0.0;
  };

  /// One faultless transmission (Wi-Fi data, radio heartbeats); returns
  /// the start time.
  TimePoint transmit(TimePoint not_before, Bytes bytes, radio::TxKind kind,
                     int app_id, core::PacketId packet_id) {
    const radio::Transmission tx =
        fill(std::max(not_before, free_at_), bytes, kind, app_id, packet_id,
             /*attempt=*/1);
    log_.add(tx);
    free_at_ = last_end_ = tx.end();
    return tx.start;
  }

  /// LoRa-style reliable datagram: every frame waits for an ACK; a hashed
  /// loss draw kills the attempt, the sender retransmits when the ACK
  /// window (`link.ack_timeout`) closes, at most link.max_retries times.
  Result transmit_reliable(TimePoint not_before, Bytes bytes, int app_id,
                           core::PacketId packet_id,
                           const radio::LoraLinkParams& link,
                           const net::FaultPlan& faults, std::int64_t entity,
                           obs::TraceSink* trace, FaultCounters counters) {
    const bool faulty = faults.affects_link();
    int attempt = 1;
    TimePoint ready = not_before;
    while (true) {
      radio::Transmission tx =
          fill(std::max(ready, free_at_), bytes, radio::TxKind::kData, app_id,
               packet_id, attempt);
      tx.failed = faulty && faults.lose_transfer(entity, attempt);
      log_.add(tx);
      free_at_ = last_end_ = tx.end();
      if (!tx.failed) return Result{tx.start, true, 0.0};

      // The loss only becomes known when the ACK window closes.
      const TimePoint known = tx.end() + link.ack_timeout;
      ETRAIN_TRACE(trace, obs::TraceEvent::tx_failure(
                              tx.end(),
                              static_cast<std::int32_t>(radio::TxKind::kData),
                              entity, attempt, tx.setup + tx.duration));
      if (counters.failures != nullptr) counters.failures->increment();
      if (attempt > link.max_retries) {
        return Result{tx.start, false, known};
      }
      ETRAIN_TRACE(trace, obs::TraceEvent::tx_retry(
                              tx.end(),
                              static_cast<std::int32_t>(radio::TxKind::kData),
                              entity, attempt + 1, link.ack_timeout));
      if (counters.retries != nullptr) counters.retries->increment();
      ready = known;
      ++attempt;
    }
  }

  /// True while the radio is inside the DCH-tail window of its own recent
  /// activity — the moment cargo can ride along for marginal energy.
  bool hot(TimePoint t) const {
    return last_end_ >= 0.0 && t - last_end_ < model_.dch_tail;
  }

 private:
  radio::Transmission fill(TimePoint start, Bytes bytes, radio::TxKind kind,
                           int app_id, core::PacketId packet_id,
                           int attempt) const {
    radio::Transmission tx;
    tx.start = start;
    tx.setup = last_end_ < 0.0
                   ? model_.idle_to_dch_delay
                   : model_.promotion_delay_after_gap(start - last_end_);
    tx.duration = trace_.transfer_duration(bytes, start + tx.setup);
    tx.bytes = bytes;
    tx.kind = kind;
    tx.app_id = app_id;
    tx.packet_id = packet_id;
    tx.attempt = attempt;
    return tx;
  }

  const radio::PowerModel& model_;
  const net::BandwidthTrace& trace_;
  radio::TransmissionLog& log_;
  TimePoint free_at_ = 0.0;
  TimePoint last_end_ = -1.0;
};

}  // namespace

RunMetrics run_slotted(const Scenario& scenario,
                       core::SchedulingPolicy& policy,
                       const obs::Observers& observers) {
  policy.reset();

  RunMetrics metrics;
  metrics.policy_name = policy.name();

  obs::TraceSink* const trace = observers.trace;
  // Policy-agnostic run counters: what any scheduler did with the slots it
  // was given, measured identically across policies.
  obs::Counter* heartbeats_counter = nullptr;
  obs::Counter* piggybacked_counter = nullptr;
  obs::Counter* dripped_counter = nullptr;
  obs::Counter* recovered_counter = nullptr;
  obs::Counter* hb_dropped_counter = nullptr;
  FaultCounters fault_counters;
  if (observers.metrics != nullptr) {
    heartbeats_counter = &observers.metrics->counter("run.heartbeats");
    piggybacked_counter =
        &observers.metrics->counter("run.packets_piggybacked");
    dripped_counter = &observers.metrics->counter("run.packets_dripped");
    recovered_counter = &observers.metrics->counter("run.packets_recovered");
    hb_dropped_counter =
        &observers.metrics->counter("run.heartbeats_dropped");
    fault_counters.failures = &observers.metrics->counter("run.tx_failures");
    fault_counters.retries = &observers.metrics->counter("run.tx_retries");
    fault_counters.outage_deferrals =
        &observers.metrics->counter("run.outage_deferrals");
  }

  const Duration slot = policy.preferred_slot_length();
  if (slot <= 0.0) {
    throw std::invalid_argument("run_slotted: non-positive slot length");
  }
  validate_scenario(scenario);

  core::WaitingQueues queues(static_cast<int>(scenario.profiles.size()));
  Uplink uplink(scenario, metrics.log, trace, fault_counters);

  // Heartbeat faults perturb the timetable before the run (same hashed
  // draws as the DES TrainAppProcess); without them `trains` aliases the
  // scenario's timetable untouched.
  const std::vector<apps::TrainEvent> trains =
      apply_heartbeat_faults(scenario.trains, scenario.faults);
  const bool faulted_heartbeats = scenario.faults.affects_heartbeats();
  if (hb_dropped_counter != nullptr &&
      trains.size() < scenario.trains.size()) {
    hb_dropped_counter->increment(scenario.trains.size() - trains.size());
  }
  // Under heartbeat faults the exact future timetable is unknowable; the
  // policies' lookahead comes from the HeartbeatMonitor's online cycle
  // re-estimation instead (exactly what the eTrain service does on-device).
  android::HeartbeatMonitor monitor;

  // Packets whose transfer exhausted its retry budget: they rejoin their
  // app queue (delay still accruing from the original arrival) once the
  // failure is known, and their next chain continues the attempt numbering
  // so the hashed draws stay fresh.
  struct RetryEntry {
    core::QueuedPacket qp;
    TimePoint ready = 0.0;
  };
  std::vector<RetryEntry> retry_buffer;
  std::unordered_map<core::PacketId, int> attempts_used;

  // Wi-Fi channel (multi-interface extension): independent serialization,
  // its own log; energy metered against the Wi-Fi power model afterwards.
  SecondaryChannel wifi_channel(scenario.wifi_model, scenario.wifi_trace,
                                metrics.wifi_log);

  // Extra interfaces (slots 2+): one channel each, logged and metered per
  // interface. Built before the channels so the log references are stable.
  metrics.extras.reserve(scenario.extra_interfaces.size());
  for (const auto& extra : scenario.extra_interfaces) {
    ExtraInterfaceMetrics m;
    m.name = extra.radio.interface_name;
    m.spec = extra.radio.spec;
    m.model = extra.radio.power;
    metrics.extras.push_back(std::move(m));
  }
  std::vector<SecondaryChannel> extra_channels;
  extra_channels.reserve(scenario.extra_interfaces.size());
  for (std::size_t i = 0; i < scenario.extra_interfaces.size(); ++i) {
    extra_channels.emplace_back(scenario.extra_interfaces[i].radio.power,
                                scenario.extra_interfaces[i].trace,
                                metrics.extras[i].log);
  }

  // Announce the interface layout so name-routing policies (SelectPolicy)
  // can resolve their preferences to slots.
  {
    std::vector<std::string> interface_names{"cellular", "wifi"};
    for (const auto& extra : scenario.extra_interfaces) {
      interface_names.push_back(extra.radio.interface_name);
    }
    policy.bind_interfaces(interface_names);
  }

  // Noisy bandwidth estimation the channel-dependent policies consume.
  Rng noise(scenario.noise_seed);
  Ewma short_term(0.3);
  RunningStats long_term;

  // The policies' train lookahead covers cellular departures only: an
  // extra radio's heartbeat heats *that* radio, not the cellular tail.
  std::vector<TimePoint> departures;
  if (scenario.extra_interfaces.empty()) {
    departures = apps::departure_times(trains);
  } else {
    std::vector<apps::TrainEvent> cellular_trains;
    for (const auto& e : trains) {
      if (e.interface == core::kInterfaceCellular) cellular_trains.push_back(e);
    }
    departures = apps::departure_times(cellular_trains);
  }

  std::size_t next_packet = 0;
  std::size_t next_train = 0;
  std::size_t next_departure = 0;
  std::size_t next_background = 0;

  // Interactive foreground transmissions happen at their own timestamps,
  // outside the policy's control; they are billed as data but carry the
  // sentinel packet id -2 so they never join the outcome metrics. They see
  // the same link faults as cargo (entity = a timetable sequence number);
  // a finally-failed interactive fetch is simply abandoned.
  const auto flush_background_until = [&](TimePoint limit) {
    while (next_background < scenario.background.size() &&
           scenario.background[next_background].time <= limit) {
      const auto& e = scenario.background[next_background];
      uplink.transmit(e.time, e.bytes, radio::TxKind::kData, e.train, -2,
                      core::Direction::kUplink,
                      -1000000 - static_cast<std::int64_t>(next_background));
      ++next_background;
    }
  };

  const auto record_outcome = [&](const core::QueuedPacket& qp,
                                  TimePoint sent) {
    PacketOutcome o;
    o.id = qp.packet.id;
    o.app = qp.packet.app;
    o.arrival = qp.packet.arrival;
    o.sent = sent;
    o.delay = sent - qp.packet.arrival;
    o.cost = qp.profile->cost(o.delay, qp.packet.deadline);
    o.violated = o.delay > qp.packet.deadline + 1e-9;
    o.bytes = qp.packet.bytes;
    metrics.outcomes.push_back(o);
  };

  const auto transmit_data = [&](core::QueuedPacket&& qp, TimePoint slot_start,
                                 int interface = core::kInterfaceCellular) {
    if (interface == core::kInterfaceWifi) {
      // The Wi-Fi channel is outside the cellular fault domain.
      const TimePoint sent =
          wifi_channel.transmit(slot_start, qp.packet.bytes,
                                radio::TxKind::kData, qp.packet.app,
                                qp.packet.id);
      record_outcome(qp, sent);
      return;
    }
    if (interface >= core::kInterfaceExtraBase) {
      const std::size_t idx =
          static_cast<std::size_t>(interface - core::kInterfaceExtraBase);
      SecondaryChannel& channel = extra_channels[idx];
      const auto& lora = scenario.extra_interfaces[idx].radio.lora;
      if (lora.has_value()) {
        // ACK-loss draws use a dedicated entity range so they never
        // collide with the cellular link's per-packet draws.
        const SecondaryChannel::Result result = channel.transmit_reliable(
            slot_start, qp.packet.bytes, qp.packet.app, qp.packet.id, *lora,
            scenario.faults, -3'000'000'000LL - qp.packet.id, trace,
            fault_counters);
        if (!result.delivered) {
          // Link gave up: the packet rejoins its app queue once the loss
          // is known and the cellular path takes over.
          if (recovered_counter != nullptr) recovered_counter->increment();
          retry_buffer.push_back(RetryEntry{std::move(qp), result.failed_at});
          return;
        }
        record_outcome(qp, result.sent);
        return;
      }
      const TimePoint sent =
          channel.transmit(slot_start, qp.packet.bytes, radio::TxKind::kData,
                           qp.packet.app, qp.packet.id);
      record_outcome(qp, sent);
      return;
    }
    int& used = attempts_used[qp.packet.id];
    const Uplink::Result result = uplink.transmit(
        slot_start, qp.packet.bytes, radio::TxKind::kData, qp.packet.app,
        qp.packet.id, qp.packet.direction, qp.packet.id, used + 1);
    used = result.last_attempt;
    if (!result.delivered) {
      // Retry budget exhausted: the packet returns to its app queue once
      // the failure is known; delay keeps accruing from the arrival.
      if (recovered_counter != nullptr) recovered_counter->increment();
      retry_buffer.push_back(RetryEntry{std::move(qp), result.failed_at});
      return;
    }
    record_outcome(qp, result.sent);
  };

  // Hot-loop scratch, hoisted so the steady state reuses capacity instead
  // of reallocating every slot: the slot context (its heartbeat lookahead
  // vector in particular), the policy's selection buffer, and the
  // duplicate-selection guard.
  core::SlotContext ctx;
  std::vector<core::Selection> selections;
  std::vector<core::PacketId> seen;

  for (TimePoint t = 0.0; t < scenario.horizon; t += slot) {
    const TimePoint slot_end = t + slot;

    // (1) Arrivals from the previous slot join their queues, as do packets
    // whose transfer failure became known before this slot.
    while (next_packet < scenario.packets.size() &&
           scenario.packets[next_packet].arrival < t) {
      const core::Packet& p = scenario.packets[next_packet];
      queues.enqueue(core::QueuedPacket{p, scenario.profiles.at(p.app)});
      ++next_packet;
    }
    if (!retry_buffer.empty()) {
      auto pending = retry_buffer.begin();
      for (auto it = retry_buffer.begin(); it != retry_buffer.end(); ++it) {
        if (it->ready < t) {
          queues.enqueue(std::move(it->qp));
        } else {
          if (pending != it) *pending = std::move(*it);
          ++pending;
        }
      }
      retry_buffer.erase(pending, retry_buffer.end());
    }

    // (2) Heartbeats due at or before the slot start; interactive traffic
    // up to the slot start goes out as it happened.
    flush_background_until(t);
    bool heartbeat_now = false;
    while (next_train < trains.size() && trains[next_train].time <= t) {
      const auto& hb = trains[next_train];
      if (hb.interface >= core::kInterfaceExtraBase) {
        // Radio heartbeat on an extra interface (a LoRa link beacon): it
        // heats that radio's tail but is not a cellular train departure.
        extra_channels[hb.interface - core::kInterfaceExtraBase].transmit(
            t, hb.bytes, radio::TxKind::kHeartbeat, hb.train, -1);
        if (heartbeats_counter != nullptr) heartbeats_counter->increment();
        ++next_train;
        continue;
      }
      uplink.transmit(t, hb.bytes, radio::TxKind::kHeartbeat, hb.train, -1,
                      core::Direction::kUplink,
                      -1 - static_cast<std::int64_t>(next_train));
      monitor.on_heartbeat(hb.train, hb.time);
      ETRAIN_TRACE(trace, obs::TraceEvent::heartbeat_tx(t, hb.train,
                                                        hb.bytes));
      if (heartbeats_counter != nullptr) heartbeats_counter->increment();
      heartbeat_now = true;
      ++next_train;
    }
    // Any cellular heartbeat later within this slot still marks the slot
    // as a train departure for the policy (the paper treats heartbeats as
    // firing at slot boundaries).
    for (std::size_t j = next_train;
         j < trains.size() && trains[j].time < slot_end; ++j) {
      if (trains[j].interface == core::kInterfaceCellular) {
        heartbeat_now = true;
        break;
      }
    }

    // (3) Policy decision.
    const double measured =
        scenario.trace.at(t) *
        std::exp(noise.normal(0.0, scenario.estimate_noise_sigma));
    short_term.add(measured);
    long_term.add(measured);

    ctx.slot_start = t;
    ctx.slot_length = slot;
    ctx.heartbeat_now = heartbeat_now;
    ctx.upcoming_heartbeats.clear();
    if (faulted_heartbeats) {
      // No oracle timetable under heartbeat faults: the lookahead is the
      // monitor's online prediction from the beats actually observed.
      monitor.predict_departures(t, scenario.horizon,
                                 ctx.upcoming_heartbeats);
      if (ctx.upcoming_heartbeats.size() > 16) {
        ctx.upcoming_heartbeats.resize(16);
      }
    } else {
      while (next_departure < departures.size() &&
             departures[next_departure] < t) {
        ++next_departure;
      }
      for (std::size_t i = next_departure;
           i < departures.size() && i < next_departure + 16; ++i) {
        ctx.upcoming_heartbeats.push_back(departures[i]);
      }
    }
    ctx.bandwidth_estimate = short_term.value_or(measured);
    ctx.bandwidth_long_term = long_term.mean();
    ctx.wifi_available = scenario.wifi.available(t);
    ctx.extra_available = 0;
    for (std::size_t i = 0; i < extra_channels.size() && i < 32; ++i) {
      if (extra_channels[i].hot(t)) {
        ctx.extra_available |= (std::uint32_t{1} << i);
      }
    }

    // Only slots with something to decide are interesting on the trace;
    // quiescent 1 s ticks would bury the signal.
    if (trace != nullptr && (!queues.empty() || heartbeat_now)) {
      trace->record(obs::TraceEvent::slot_begin(
          t, static_cast<std::int32_t>(queues.total_size()),
          queues.instantaneous_cost(t)));
    }

    policy.select_into(ctx, queues, selections);
    if (!selections.empty()) {
      obs::Counter* const bucket =
          heartbeat_now ? piggybacked_counter : dripped_counter;
      if (bucket != nullptr) bucket->increment(selections.size());
    }
    // Selections are at most K(t) per slot, so a linear scan over the
    // reused scratch beats a freshly-allocated hash set.
    seen.clear();
    for (const auto& sel : selections) {
      if (std::find(seen.begin(), seen.end(), sel.packet) != seen.end()) {
        throw std::logic_error("policy selected the same packet twice");
      }
      seen.push_back(sel.packet);
      // Selections naming an absent or currently-unavailable interface
      // fall back to the cellular uplink (which is always attached).
      int interface = sel.interface;
      if (interface < 0 || !ctx.interface_available(interface) ||
          interface >= core::kInterfaceExtraBase +
                           static_cast<int>(extra_channels.size())) {
        interface = core::kInterfaceCellular;
      }
      transmit_data(queues.remove(sel.app, sel.packet), t, interface);
    }

    // (4) Heartbeats and interactive traffic later within the slot fire at
    // their exact times.
    while (next_train < trains.size() && trains[next_train].time < slot_end) {
      const auto& hb = trains[next_train];
      if (hb.interface >= core::kInterfaceExtraBase) {
        extra_channels[hb.interface - core::kInterfaceExtraBase].transmit(
            hb.time, hb.bytes, radio::TxKind::kHeartbeat, hb.train, -1);
        if (heartbeats_counter != nullptr) heartbeats_counter->increment();
        ++next_train;
        continue;
      }
      uplink.transmit(hb.time, hb.bytes, radio::TxKind::kHeartbeat, hb.train,
                      -1, core::Direction::kUplink,
                      -1 - static_cast<std::int64_t>(next_train));
      monitor.on_heartbeat(hb.train, hb.time);
      ETRAIN_TRACE(trace, obs::TraceEvent::heartbeat_tx(hb.time, hb.train,
                                                        hb.bytes));
      if (heartbeats_counter != nullptr) heartbeats_counter->increment();
      ++next_train;
    }
    flush_background_until(slot_end - 1e-12);
  }
  flush_background_until(scenario.horizon);

  // Force-flush stragglers at the horizon — faultless, so the flush always
  // terminates and delivers even under loss_probability 1.
  uplink.disable_faults();
  for (auto& entry : retry_buffer) {
    queues.enqueue(std::move(entry.qp));
  }
  retry_buffer.clear();
  for (auto& qp : queues.drain_all()) {
    transmit_data(std::move(qp), scenario.horizon);
  }
  // Also flush packets that arrived in the final slot but were never
  // enqueued (arrival >= last slot start).
  while (next_packet < scenario.packets.size()) {
    const core::Packet& p = scenario.packets[next_packet];
    transmit_data(core::QueuedPacket{p, scenario.profiles.at(p.app)},
                  std::max(scenario.horizon, p.arrival));
    ++next_packet;
  }

  // Energy accounting: extend the metering window past the final tail so
  // every policy is billed for the tail it leaves behind.
  const Duration energy_horizon =
      std::max(scenario.horizon, metrics.log.last_end()) +
      scenario.model.tail_time();
  metrics.energy = radio::measure_energy(metrics.log, scenario.model,
                                         energy_horizon, trace);
  const Duration wifi_horizon =
      std::max(scenario.horizon, metrics.wifi_log.last_end()) +
      scenario.wifi_model.tail_time();
  metrics.wifi_energy = radio::measure_energy(metrics.wifi_log,
                                              scenario.wifi_model,
                                              wifi_horizon, trace);
  for (std::size_t i = 0; i < metrics.extras.size(); ++i) {
    auto& extra = metrics.extras[i];
    const radio::PowerModel& model = scenario.extra_interfaces[i].radio.power;
    const Duration extra_horizon =
        std::max(scenario.horizon, extra.log.last_end()) + model.tail_time();
    extra.energy =
        radio::measure_energy(extra.log, model, extra_horizon, trace);
  }
  finalize_metrics(metrics);
  if (observers.metrics != nullptr) {
    metrics.observed = observers.metrics->snapshot();
  }
  return metrics;
}

}  // namespace etrain::experiments
