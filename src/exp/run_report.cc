#include "exp/run_report.h"

#include <cstdio>

namespace etrain::experiments {

namespace {

/// Deterministic string form of a double for provenance values (%.17g,
/// same policy as the JSON writer).
std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt(std::uint64_t v) { return std::to_string(v); }

}  // namespace

void describe_scenario(obs::RunReport& report, const Scenario& scenario) {
  report.add_provenance("workload", "single-device");
  report.add_provenance("device_preset", scenario.model.name);
  report.add_provenance("horizon_s", fmt(scenario.horizon));
  report.add_provenance("heartbeats",
                        std::to_string(scenario.trains.size()));
  report.add_provenance("background_events",
                        std::to_string(scenario.background.size()));
  report.add_provenance("packets", std::to_string(scenario.packets.size()));
  report.add_provenance("cargo_apps",
                        std::to_string(scenario.profiles.size()));
  report.add_provenance("estimate_noise_sigma",
                        fmt(scenario.estimate_noise_sigma));
  report.add_provenance("noise_seed", fmt(scenario.noise_seed));

  const net::FaultPlan& faults = scenario.faults;
  report.add_provenance("faults",
                        faults.enabled() ? "enabled" : "none");
  if (faults.enabled()) {
    report.add_provenance("fault_seed", fmt(faults.seed));
    report.add_provenance("loss_probability",
                          fmt(faults.loss_probability));
    report.add_provenance("outages",
                          std::to_string(faults.outages.size()));
    report.add_provenance("heartbeat_jitter_sigma",
                          fmt(faults.heartbeat_jitter_sigma));
    report.add_provenance("heartbeat_drop_probability",
                          fmt(faults.heartbeat_drop_probability));
    report.add_provenance("max_retries",
                          std::to_string(faults.max_retries));
  }

  const auto& wifi = scenario.wifi.episodes();
  if (!wifi.empty()) {
    report.add_provenance("wifi_episodes", std::to_string(wifi.size()));
    report.add_provenance("wifi_coverage",
                          fmt(scenario.wifi.coverage(scenario.horizon)));
    report.add_provenance("wifi_preset", scenario.wifi_model.name);
  }

  // Extra interfaces (slots 2+): record the preset each ledger row will be
  // billed on and the exact registry spec that built it.
  for (const auto& extra : scenario.extra_interfaces) {
    const std::string prefix = "interface." + extra.radio.interface_name + ".";
    report.add_provenance(prefix + "preset", extra.radio.power.name);
    report.add_provenance(prefix + "spec", extra.radio.spec);
  }
}

void fill_run_sections(obs::RunReport& report,
                       const radio::PowerModel& model,
                       const radio::PowerModel& wifi_model,
                       const RunMetrics& metrics) {
  if (!metrics.policy_name.empty()) {
    report.add_provenance("policy", metrics.policy_name);
  }

  Joules tail_total =
      metrics.energy.tail_energy() + metrics.wifi_energy.tail_energy();
  std::size_t tx_total = metrics.log.size() + metrics.wifi_log.size();
  std::size_t failed_total =
      metrics.log.failed_count() + metrics.wifi_log.failed_count();
  for (const auto& extra : metrics.extras) {
    tail_total += extra.energy.tail_energy();
    tx_total += extra.log.size();
    failed_total += extra.log.failed_count();
  }

  report.add_result("network_energy_J", metrics.network_energy());
  report.add_result("tail_energy_J", tail_total);
  report.add_result("heartbeat_energy_J", metrics.heartbeat_energy());
  report.add_result("data_energy_J", metrics.data_energy());
  report.add_result("normalized_delay_s", metrics.normalized_delay);
  report.add_result("violation_ratio", metrics.violation_ratio);
  report.add_result("total_delay_cost", metrics.total_delay_cost);
  report.add_result("transmissions", static_cast<double>(tx_total));
  report.add_result("failed_transmissions",
                    static_cast<double>(failed_total));

  // A secondary interface participates in the report only when it carried
  // traffic; an idle second radio contributes zero to every total, and
  // omitting it keeps cellular-only reports free of dead sections.
  const bool has_wifi = !metrics.wifi_log.empty();

  obs::EnergySection energy;
  energy.cellular = metrics.energy;
  if (has_wifi) energy.wifi = metrics.wifi_energy;
  for (const auto& extra : metrics.extras) {
    if (extra.log.empty()) continue;
    energy.extra.emplace_back(extra.name, extra.energy);
  }
  energy.monsoon_J = metrics.monsoon_energy;
  report.energy = energy;

  obs::DelaySection delay;
  delay.packets = metrics.outcomes.size();
  delay.normalized_delay_s = metrics.normalized_delay;
  delay.violation_ratio = metrics.violation_ratio;
  delay.total_delay_cost = metrics.total_delay_cost;
  report.delay = delay;

  // The ledger re-bills both logs with the meter's own rules against the
  // horizons the meter actually used (EnergyReport records them), so the
  // bucketed totals reproduce the meter's sums to 1e-9 J — report_check
  // enforces the equality on every emitted report.
  obs::EnergyLedger ledger;
  obs::append_ledger(ledger, "cellular", metrics.log, model,
                     metrics.energy.horizon);
  if (has_wifi) {
    obs::append_ledger(ledger, "wifi", metrics.wifi_log, wifi_model,
                       metrics.wifi_energy.horizon);
  }
  for (const auto& extra : metrics.extras) {
    if (extra.log.empty()) continue;
    obs::append_ledger(ledger, extra.name, extra.log, extra.model,
                       extra.energy.horizon);
  }
  report.ledger = std::move(ledger);

  if (!metrics.observed.empty()) {
    report.metrics = metrics.observed;
  }
}

void fill_run_sections(obs::RunReport& report, const Scenario& scenario,
                       const RunMetrics& metrics) {
  fill_run_sections(report, scenario.model, scenario.wifi_model, metrics);
}

obs::RunReport report_for_run(const std::string& bench,
                              const Scenario& scenario,
                              const RunMetrics& metrics) {
  obs::RunReport report;
  report.bench = bench;
  describe_scenario(report, scenario);
  fill_run_sections(report, scenario, metrics);
  return report;
}

void describe_fleet(obs::RunReport& report, const FleetSpec& spec) {
  report.add_provenance("workload", "fleet");
  report.add_provenance("fleet_devices", std::to_string(spec.devices));
  report.add_provenance("fleet_seed", fmt(spec.seed));
  report.add_provenance("fleet_classes",
                        std::to_string(spec.classes.size()));
  for (const FleetClass& cls : spec.classes) {
    const std::string prefix = "class." + cls.name + ".";
    const ScenarioConfig& config = cls.scenario.base_config();
    report.add_provenance(prefix + "weight", fmt(cls.weight));
    report.add_provenance(prefix + "policy", cls.policy);
    report.add_provenance(prefix + "lambda", fmt(config.lambda));
    report.add_provenance(prefix + "trains",
                          std::to_string(config.train_count));
    report.add_provenance(prefix + "horizon_s", fmt(config.horizon));
    report.add_provenance(prefix + "device_preset", config.model.name);
    const net::FaultPlan& faults = cls.scenario.fault_plan();
    const bool faulty =
        faults.enabled() || cls.scenario.has_generated_outages();
    report.add_provenance(prefix + "faults", faulty ? "enabled" : "none");
  }
  // Deliberately absent: shards and jobs. The run is byte-identical across
  // both, so they are non-compared environment facts, not provenance.
}

void fill_fleet_sections(obs::RunReport& report, const FleetResult& result) {
  const double devices = static_cast<double>(result.devices);
  report.add_result("devices", devices);
  report.add_result("total_slots", static_cast<double>(result.total_slots));
  report.add_result("total_packets",
                    static_cast<double>(result.total_packets));
  report.add_result("fleet_network_J", result.device_meter_total_J);
  report.add_result("joules_per_device",
                    devices == 0.0 ? 0.0
                                   : result.device_meter_total_J / devices);

  obs::FleetSection fleet;
  fleet.devices = result.devices;
  fleet.total_slots = result.total_slots;
  fleet.packets = result.total_packets;
  fleet.device_meter_total_J = result.device_meter_total_J;
  fleet.classes.reserve(result.classes.size());
  for (const FleetClassAggregate& agg : result.classes) {
    obs::FleetClassStats stats;
    stats.name = agg.name;
    stats.devices = agg.devices;
    stats.packets = agg.packets;
    stats.violations = agg.violations;
    stats.transmissions = agg.transmissions;
    stats.failures = agg.failures;
    stats.network_J = agg.network_J;
    stats.heartbeat_J = agg.heartbeat_J;
    stats.data_J = agg.data_J;
    stats.normalized_delay_s = agg.normalized_delay_s();
    stats.violation_ratio = agg.violation_ratio();
    stats.delay_cost = agg.delay_cost;
    fleet.classes.push_back(std::move(stats));
  }
  report.fleet = std::move(fleet);
  report.ledger = result.ledger;
}

obs::RunReport report_for_fleet(const std::string& bench,
                                const FleetSpec& spec,
                                const FleetResult& result) {
  obs::RunReport report;
  report.bench = bench;
  describe_fleet(report, spec);
  fill_fleet_sections(report, result);
  return report;
}

}  // namespace etrain::experiments
