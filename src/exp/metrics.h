// Per-run result metrics: the three quantities the paper evaluates —
// (1) total energy consumption, (2) normalized delay (average per-packet
// delay), (3) deadline violation ratio — plus the full transmission log and
// per-packet outcomes for deeper analysis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/packet.h"
#include "obs/metrics.h"
#include "radio/energy_meter.h"
#include "radio/transmission_log.h"

namespace etrain::experiments {

/// What happened to one cargo packet.
struct PacketOutcome {
  core::PacketId id = -1;
  core::CargoAppId app = 0;
  TimePoint arrival = 0.0;
  /// Transmission start t_s(u).
  TimePoint sent = 0.0;
  Duration delay = 0.0;
  /// phi_u at the realized delay.
  double cost = 0.0;
  bool violated = false;
  Bytes bytes = 0;
};

/// Log + energy report of one extra radio interface (slot 2+).
struct ExtraInterfaceMetrics {
  /// Ledger / provenance interface name ("lora", "lte"...).
  std::string name;
  /// The registry spec the radio was built from (provenance).
  std::string spec;
  /// The power model the log was billed against (the report ledger re-bills
  /// with it; its `name` is the preset provenance).
  radio::PowerModel model;
  radio::EnergyReport energy;
  radio::TransmissionLog log;
};

struct RunMetrics {
  std::string policy_name;
  radio::EnergyReport energy;
  radio::TransmissionLog log;
  std::vector<PacketOutcome> outcomes;

  /// Multi-interface extension: the Wi-Fi radio's own log and energy
  /// report (zero/empty in cellular-only scenarios). Wi-Fi transfers run
  /// concurrently with cellular ones; their packets appear in `outcomes`
  /// like any other.
  radio::EnergyReport wifi_energy;
  radio::TransmissionLog wifi_log;

  /// Per-interface logs/reports of the scenario's extra radios, in
  /// interface-slot order (empty when none are attached).
  std::vector<ExtraInterfaceMetrics> extras;

  /// When a simulated Monsoon power monitor was attached (Fig. 9 setup),
  /// the energy it recovered by integrating its 0.1 s current samples —
  /// the lab-style measurement, cross-checking the analytic meter.
  std::optional<Joules> monsoon_energy;

  /// Observability counters/histograms of this run (empty unless an
  /// obs::Registry was attached — see docs/observability.md).
  obs::MetricsSnapshot observed;

  /// Average t_s(u) - t_a(u) over all cargo packets ("normalized delay").
  double normalized_delay = 0.0;
  /// Fraction of packets with delay > deadline.
  double violation_ratio = 0.0;
  /// Sum of realized delay costs (the paper's budget constraint quantity).
  double total_delay_cost = 0.0;

  /// Radio energy above idle: transmissions + promotions + tails, for both
  /// heartbeats and data, across every interface. The headline "total
  /// energy" of the figures.
  Joules network_energy() const {
    Joules total = energy.network_energy() + wifi_energy.network_energy();
    for (const auto& extra : extras) total += extra.energy.network_energy();
    return total;
  }

  /// Energy attributable to cargo data only (tx + the tails their
  /// transmissions produced) — the blue bars of Fig. 10(a).
  Joules data_energy() const {
    const auto d = static_cast<std::size_t>(radio::TxKind::kData);
    return energy.tx_energy_by_kind[d] + energy.tail_energy_by_kind[d];
  }

  /// Energy attributable to heartbeats (the red bars of Fig. 10(a)).
  Joules heartbeat_energy() const {
    const auto h = static_cast<std::size_t>(radio::TxKind::kHeartbeat);
    return energy.tx_energy_by_kind[h] + energy.tail_energy_by_kind[h];
  }
};

/// Fills the aggregate fields from `outcomes` (call after populating them).
void finalize_metrics(RunMetrics& metrics);

}  // namespace etrain::experiments
