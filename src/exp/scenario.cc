#include "exp/scenario.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "common/rng.h"
#include "net/synthetic_bandwidth.h"
#include "obs/profile.h"

namespace etrain::experiments {

Scenario make_scenario(const ScenarioConfig& config) {
  OBS_PROFILE_SCOPE("generate.scenario");
  if (config.train_count < 0 || config.train_count > 3) {
    throw std::invalid_argument("make_scenario: train_count must be 0..3");
  }
  Scenario s;
  s.horizon = config.horizon;
  s.model = config.model;

  net::SyntheticBandwidthConfig bw;
  bw.length = std::max(config.horizon, 60.0);
  s.trace = net::generate_synthetic_trace(bw, config.bandwidth_seed);
  // 3G downlink: same fading structure, ~3x the uplink rate.
  std::vector<BytesPerSecond> down = s.trace.samples();
  for (auto& v : down) v *= 3.0;
  s.downlink_trace = net::BandwidthTrace(std::move(down));

  const auto all_trains = apps::default_train_specs();
  std::vector<apps::HeartbeatSpec> trains(
      all_trains.begin(), all_trains.begin() + config.train_count);
  s.trains = apps::build_train_schedule(trains, config.horizon);

  auto cargo = apps::cargo_specs_for_lambda(config.lambda);
  if (config.shared_deadline.has_value()) {
    for (auto& c : cargo) c.deadline = *config.shared_deadline;
  }
  Rng rng(config.workload_seed);
  s.packets = apps::generate_workload(cargo, config.horizon, rng);
  for (const auto& c : cargo) s.profiles.push_back(c.profile);
  return s;
}

void validate_scenario(const Scenario& scenario) {
  if (scenario.horizon <= 0.0) {
    throw std::invalid_argument("Scenario: non-positive horizon");
  }
  std::unordered_set<core::PacketId> ids;
  TimePoint prev_arrival = -kTimeInfinity;
  for (const auto& p : scenario.packets) {
    if (p.arrival < prev_arrival) {
      throw std::invalid_argument("Scenario: packets not sorted by arrival");
    }
    prev_arrival = p.arrival;
    if (p.app < 0 ||
        p.app >= static_cast<core::CargoAppId>(scenario.profiles.size())) {
      throw std::invalid_argument("Scenario: packet app id out of range");
    }
    if (scenario.profiles[p.app] == nullptr) {
      throw std::invalid_argument("Scenario: null cost profile");
    }
    if (!ids.insert(p.id).second) {
      throw std::invalid_argument("Scenario: duplicate packet id");
    }
    if (p.bytes <= 0) {
      throw std::invalid_argument("Scenario: packet with non-positive size");
    }
    if (p.deadline <= 0.0) {
      throw std::invalid_argument("Scenario: non-positive deadline");
    }
  }
  const auto check_sorted = [](const std::vector<apps::TrainEvent>& events,
                               const char* what) {
    for (std::size_t i = 1; i < events.size(); ++i) {
      if (events[i].time < events[i - 1].time) {
        throw std::invalid_argument(std::string("Scenario: ") + what +
                                    " not sorted by time");
      }
    }
  };
  check_sorted(scenario.trains, "trains");
  check_sorted(scenario.background, "background traffic");
  std::unordered_set<std::string> interface_names;
  for (const auto& extra : scenario.extra_interfaces) {
    const std::string& name = extra.radio.interface_name;
    if (name.empty() || name == "cellular" || name == "wifi") {
      throw std::invalid_argument(
          "Scenario: extra interface name '" + name +
          "' collides with a built-in interface slot");
    }
    if (!interface_names.insert(name).second) {
      throw std::invalid_argument("Scenario: duplicate extra interface '" +
                                  name + "'");
    }
  }
  const int max_interface =
      1 + static_cast<int>(scenario.extra_interfaces.size());
  for (const auto& event : scenario.trains) {
    if (event.interface == 1 || event.interface < 0 ||
        event.interface > max_interface) {
      throw std::invalid_argument(
          "Scenario: train event on invalid interface slot " +
          std::to_string(event.interface));
    }
  }
  scenario.faults.validate();
}

std::vector<apps::TrainEvent> apply_heartbeat_faults(
    const std::vector<apps::TrainEvent>& trains, const net::FaultPlan& plan) {
  if (!plan.affects_heartbeats()) return trains;
  std::vector<apps::TrainEvent> out;
  out.reserve(trains.size());
  // Per-train beat indices: the timetable is time-sorted, so each train's
  // events appear in beat order and the (train << 32 | index) key matches
  // the DES TrainAppProcess draw for the same plan.
  std::map<int, int> beat_index;
  for (const auto& event : trains) {
    const int index = beat_index[event.train]++;
    const std::int64_t entity =
        (static_cast<std::int64_t>(event.train) << 32) |
        static_cast<std::int64_t>(index);
    if (plan.drops_heartbeat(entity)) continue;
    apps::TrainEvent faulted = event;
    faulted.time =
        std::max<TimePoint>(0.0, event.time + plan.heartbeat_jitter(entity));
    out.push_back(faulted);
  }
  std::sort(out.begin(), out.end(),
            [](const apps::TrainEvent& a, const apps::TrainEvent& b) {
              return a.time < b.time;
            });
  return out;
}

}  // namespace etrain::experiments
