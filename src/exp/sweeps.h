// Parameter sweeps and the E–D (energy–delay) panel used throughout the
// evaluation (Fig. 7(b), Fig. 8(a), Fig. 8(b)).
//
// Each policy exposes one tradeoff knob (Theta for eTrain, Omega for PerES,
// V for eTime). Sweeping the knob over a scenario yields a frontier of
// (energy, delay) points; policies are compared either by their whole
// frontier (panel plots) or at an equalized normalized delay (Fig. 8(b)
// fixes D = 55 s and compares energies).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/policy.h"
#include "exp/slotted_sim.h"

namespace etrain::experiments {

/// One point of an energy–delay frontier.
struct EDPoint {
  double param = 0.0;       ///< knob value that produced the point
  Joules energy = 0.0;      ///< network energy (tx + tails, no idle floor)
  double delay = 0.0;       ///< normalized delay, seconds
  double violation = 0.0;   ///< deadline violation ratio
};

/// Builds a policy for a given knob value. Called concurrently from the
/// sweep's worker threads, so it must be thread-safe (the stateless lambdas
/// the benches use trivially are).
using PolicyFactory =
    std::function<std::unique_ptr<core::SchedulingPolicy>(double)>;

/// Runs the scenario once per knob value. Knob values run concurrently on
/// up to default_jobs() threads (ETRAIN_JOBS / --jobs / core count; see
/// common/parallel.h); the returned frontier is always in `params` order
/// and byte-identical to a serial run.
std::vector<EDPoint> sweep(const Scenario& scenario,
                           const PolicyFactory& factory,
                           const std::vector<double>& params);

/// Energy (and violation) of a frontier at a target delay, linearly
/// interpolated between the two bracketing points; falls back to the
/// closest point when the target lies outside the frontier's delay range.
EDPoint frontier_at_delay(const std::vector<EDPoint>& frontier,
                          double target_delay);

/// Evenly spaced values helper: from, from+step, ..., to (inclusive,
/// within floating tolerance).
std::vector<double> linspace_step(double from, double to, double step);

}  // namespace etrain::experiments
