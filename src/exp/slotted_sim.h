// The slotted, trace-driven simulator (Sec. IV's slotted time model +
// Sec. VI-A's methodology).
//
// Per slot, in order:
//   1. packets that arrived during the previous slot join their waiting
//      queues (the paper assumes arrivals of slot t are available at the
//      end of slot t);
//   2. heartbeats due at/before the slot start transmit immediately —
//      heartbeats are never rescheduled by any policy;
//   3. the policy under test selects Q*(t); selected packets enter the FIFO
//      transmission queue and transmit serialized behind any in-flight
//      transmission (constraint (3));
//   4. heartbeats due later within the slot transmit at their exact times.
//
// The radio is modeled by (start, duration) occupancy intervals; energy is
// computed afterwards by replaying the resulting TransmissionLog through
// the EnergyMeter, identically for every policy.
#pragma once

#include "core/policy.h"
#include "exp/metrics.h"
#include "exp/scenario.h"
#include "obs/metrics.h"

namespace etrain::experiments {

/// Runs one policy over one scenario. The policy's preferred slot length is
/// honoured (1 s for eTrain/PerES/Baseline, 60 s for eTime, per the paper).
/// Packets still queued when the horizon is reached are force-flushed at the
/// horizon so no policy can hide delay or energy by never transmitting.
///
/// `observers` (both members optional) attaches observability to the run
/// itself: SlotBegin/HeartbeatTx trace events, TailCharge events from the
/// energy-meter replay, and policy-agnostic run.* counters; the snapshot of
/// the registry lands in RunMetrics::observed. Policy-internal events
/// (GateOpen, PacketSelect) are the policy's own business — attach the same
/// sink to the EtrainScheduler before calling. One run per sink/registry:
/// both are thread-confined, so parallel_map fan-outs need per-task
/// instances (docs/observability.md shows the pattern).
RunMetrics run_slotted(const Scenario& scenario,
                       core::SchedulingPolicy& policy,
                       const obs::Observers& observers = {});

}  // namespace etrain::experiments
