#include "exp/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "common/parallel.h"
#include "exp/slotted_sim.h"
#include "obs/profile.h"

namespace etrain::experiments {

namespace {

/// A hashed uint64 mapped to [0, 1) — the same 53-bit construction
/// common/rng.h uses, applied to an already-mixed value.
double to_unit(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

void FleetArrays::LedgerColumns::resize(std::size_t n) {
  tx_J.assign(n, 0.0);
  setup_J.assign(n, 0.0);
  tail_J.assign(n, 0.0);
  failed_airtime_J.assign(n, 0.0);
  airtime_s.assign(n, 0.0);
  failed_airtime_s.assign(n, 0.0);
  transmissions.assign(n, 0);
  failures.assign(n, 0);
}

void FleetArrays::resize(std::size_t n) {
  class_id.assign(n, 0);
  meter_J.assign(n, 0.0);
  delay_sum_s.assign(n, 0.0);
  delay_cost.assign(n, 0.0);
  packets.assign(n, 0);
  violations.assign(n, 0);
  slots.assign(n, 0);
  cellular_heartbeat.resize(n);
  cellular_data.resize(n);
  wifi_heartbeat.resize(n);
  wifi_data.resize(n);
}

void FleetSpec::validate() const {
  if (devices == 0) {
    throw std::invalid_argument("FleetSpec: zero devices");
  }
  if (classes.empty()) {
    throw std::invalid_argument("FleetSpec: no activeness classes");
  }
  double total_weight = 0.0;
  for (const auto& cls : classes) {
    if (cls.name.empty()) {
      throw std::invalid_argument("FleetSpec: class with empty name");
    }
    if (!(cls.weight >= 0.0)) {
      throw std::invalid_argument("FleetSpec: class '" + cls.name +
                                  "' has a negative or NaN weight");
    }
    if (cls.policy.empty()) {
      throw std::invalid_argument("FleetSpec: class '" + cls.name +
                                  "' has an empty policy spec");
    }
    total_weight += cls.weight;
  }
  if (!(total_weight > 0.0)) {
    throw std::invalid_argument("FleetSpec: total class weight is zero");
  }
}

FleetSpec FleetSpec::city(std::size_t devices, Duration horizon) {
  FleetSpec spec;
  spec.devices = devices;
  const auto make_class = [&](const char* name, double weight, double lambda,
                              int trains, const char* policy) {
    FleetClass cls;
    cls.name = name;
    cls.weight = weight;
    cls.policy = policy;
    cls.scenario.lambda(lambda)
        .trains(trains)
        .horizon(horizon)
        .model(radio::PowerModel::PaperSimulation());
    return cls;
  };
  // Fig. 11's activeness axis as population shares: most users idle most
  // of the day, a heavy-tail minority does most of the traffic. Heavy
  // users get a looser cost gate (theta=2) — they tolerate less deferral.
  spec.classes.push_back(
      make_class("idle", 0.35, 0.01, 1, "etrain:theta=1,k=20"));
  spec.classes.push_back(
      make_class("light", 0.30, 0.04, 2, "etrain:theta=1,k=20"));
  spec.classes.push_back(
      make_class("regular", 0.25, 0.08, 3, "etrain:theta=1,k=20"));
  spec.classes.push_back(
      make_class("heavy", 0.10, 0.20, 3, "etrain:theta=2,k=20"));
  return spec;
}

FleetHarness::FleetHarness(FleetSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  cumulative_weight_.reserve(spec_.classes.size());
  double total = 0.0;
  for (const auto& cls : spec_.classes) total += cls.weight;
  double running = 0.0;
  for (const auto& cls : spec_.classes) {
    running += cls.weight / total;
    cumulative_weight_.push_back(running);
  }
  cumulative_weight_.back() = 1.0;  // guard against float shortfall
}

std::size_t FleetHarness::class_of(std::uint64_t device) const {
  const double u =
      to_unit(task_seed(splitmix64(spec_.seed ^ kStreamClass), device));
  const auto it = std::upper_bound(cumulative_weight_.begin(),
                                   cumulative_weight_.end(), u);
  const std::size_t index =
      static_cast<std::size_t>(it - cumulative_weight_.begin());
  return std::min(index, spec_.classes.size() - 1);
}

std::uint64_t FleetHarness::device_seed(std::uint64_t device,
                                        std::uint64_t stream) const {
  return task_seed(splitmix64(spec_.seed ^ stream), device);
}

Scenario FleetHarness::device_scenario(std::uint64_t device) const {
  // Copy the class prototype and claim its four seed knobs: per-device
  // randomness is a pure function of (fleet seed, stream, device id),
  // never of the shard or thread simulating the device.
  ScenarioBuilder builder = spec_.classes[class_of(device)].scenario;
  builder.workload_seed(device_seed(device, kStreamWorkload))
      .bandwidth_seed(device_seed(device, kStreamBandwidth))
      .noise_seed(device_seed(device, kStreamNoise))
      .fault_seed(device_seed(device, kStreamFaults));
  return builder.build();
}

std::size_t FleetHarness::shard_count() const {
  if (spec_.shards != 0) return std::min(spec_.shards, spec_.devices);
  // Auto: a few shards per worker so one slow shard cannot serialize the
  // tail of the run. Any value is correct; this only shapes parallelism.
  return std::min<std::size_t>(spec_.devices, 4 * default_jobs());
}

FleetResult FleetHarness::run(const core::PolicyRegistry& registry,
                              std::size_t jobs) const {
  return run(registry, jobs, FleetProgressOptions{});
}

FleetResult FleetHarness::run(const core::PolicyRegistry& registry,
                              std::size_t jobs,
                              const FleetProgressOptions& progress) const {
  OBS_PROFILE_SCOPE("fleet.run");
  // Fail fast on a typo'd policy spec before any thread spawns.
  for (const auto& cls : spec_.classes) (void)registry.make(cls.policy);

  FleetResult result;
  result.devices = spec_.devices;
  result.arrays.resize(spec_.devices);
  FleetArrays& arrays = result.arrays;

  const std::size_t shards = shard_count();
  std::vector<std::size_t> shard_ids(shards);
  std::iota(shard_ids.begin(), shard_ids.end(), std::size_t{0});

  // Collapses one device's PR-4 ledger rows (already summed over cargo
  // apps by bucket) into that device's SoA digest columns.
  const auto digest_ledger = [&arrays](const obs::EnergyLedger& ledger,
                                       std::size_t device) {
    for (const auto& row : ledger.rows) {
      const bool wifi = row.interface_name == "wifi";
      const bool heartbeat = row.kind == radio::TxKind::kHeartbeat;
      FleetArrays::LedgerColumns& columns =
          wifi ? (heartbeat ? arrays.wifi_heartbeat : arrays.wifi_data)
               : (heartbeat ? arrays.cellular_heartbeat
                            : arrays.cellular_data);
      columns.tx_J[device] += row.tx_J;
      columns.setup_J[device] += row.setup_J;
      columns.tail_J[device] += row.tail_J;
      columns.failed_airtime_J[device] += row.failed_airtime_J;
      columns.airtime_s[device] += row.airtime_s;
      columns.failed_airtime_s[device] += row.failed_airtime_s;
      columns.transmissions[device] +=
          static_cast<std::uint32_t>(row.transmissions);
      columns.failures[device] += static_cast<std::uint32_t>(row.failures);
    }
  };

  // Progress plumbing (bench_fleet --progress). Workers fold each
  // finished device into a mutex-guarded running tally and the one that
  // crosses the emission interval calls the callback while holding the
  // lock (snapshots stay consistent; callbacks must be cheap). With no
  // callback none of this exists and the hot path is untouched.
  struct ProgressState {
    std::mutex mutex;
    std::size_t done = 0;
    std::vector<double> class_energy;
    std::chrono::steady_clock::time_point start;
    std::chrono::steady_clock::time_point last_emit;
  };
  ProgressState tally;
  const bool report_progress = static_cast<bool>(progress.callback);
  if (report_progress) {
    tally.class_energy.assign(spec_.classes.size(), 0.0);
    tally.start = std::chrono::steady_clock::now();
    tally.last_emit = tally.start;
  }
  // Emit under the lock. `final` forces the 100% line out regardless of
  // the interval gate.
  const auto emit_progress = [&](bool final_emission) {
    const auto now = std::chrono::steady_clock::now();
    if (!final_emission) {
      const double since_last =
          std::chrono::duration<double>(now - tally.last_emit).count();
      if (since_last < progress.min_interval_s) return;
    }
    tally.last_emit = now;
    FleetProgress snapshot;
    snapshot.devices_done = tally.done;
    snapshot.devices_total = spec_.devices;
    snapshot.elapsed_s =
        std::chrono::duration<double>(now - tally.start).count();
    snapshot.devices_per_s =
        snapshot.elapsed_s > 0.0
            ? static_cast<double>(tally.done) / snapshot.elapsed_s
            : 0.0;
    snapshot.eta_s =
        snapshot.devices_per_s > 0.0
            ? static_cast<double>(spec_.devices - tally.done) /
                  snapshot.devices_per_s
            : 0.0;
    snapshot.class_energy_J = tally.class_energy;
    progress.callback(snapshot);
  };

  // Phase 1: shard workers. Each writes only its own contiguous row
  // range of the SoA columns; the fn's return value is just a sanity
  // count. parallel_map's order preservation is irrelevant here — the
  // columns are indexed by device id, not completion order.
  parallel_map(
      shard_ids,
      [&](std::size_t shard) -> std::size_t {
        OBS_PROFILE_SCOPE("fleet.shard");
        const std::size_t begin = spec_.devices * shard / shards;
        const std::size_t end = spec_.devices * (shard + 1) / shards;
        // One policy instance per class, reused across the shard's
        // devices (run_slotted resets it per run).
        std::vector<std::unique_ptr<core::SchedulingPolicy>> policies(
            spec_.classes.size());
        for (std::size_t device = begin; device < end; ++device) {
          const std::size_t cls = class_of(device);
          arrays.class_id[device] = static_cast<std::uint32_t>(cls);
          if (policies[cls] == nullptr) {
            policies[cls] = registry.make(spec_.classes[cls].policy);
          }
          const Scenario scenario = device_scenario(device);
          const RunMetrics metrics =
              run_slotted(scenario, *policies[cls]);

          arrays.meter_J[device] = metrics.network_energy();
          double delay_sum = 0.0;
          std::uint32_t violations = 0;
          for (const auto& outcome : metrics.outcomes) {
            delay_sum += outcome.delay;
            if (outcome.violated) ++violations;
          }
          arrays.delay_sum_s[device] = delay_sum;
          arrays.delay_cost[device] = metrics.total_delay_cost;
          arrays.packets[device] =
              static_cast<std::uint32_t>(metrics.outcomes.size());
          arrays.violations[device] = violations;
          arrays.slots[device] = static_cast<std::uint32_t>(std::ceil(
              scenario.horizon / policies[cls]->preferred_slot_length() -
              1e-12));

          obs::EnergyLedger device_ledger;
          obs::append_ledger(device_ledger, "cellular", metrics.log,
                             scenario.model, metrics.energy.horizon);
          if (!metrics.wifi_log.empty()) {
            obs::append_ledger(device_ledger, "wifi", metrics.wifi_log,
                               scenario.wifi_model,
                               metrics.wifi_energy.horizon);
          }
          digest_ledger(device_ledger, device);

          if (report_progress) {
            std::lock_guard<std::mutex> lock(tally.mutex);
            tally.done += 1;
            tally.class_energy[cls] += arrays.meter_J[device];
            emit_progress(/*final_emission=*/false);
          }
        }
        return end - begin;
      },
      jobs);
  if (report_progress) {
    std::lock_guard<std::mutex> lock(tally.mutex);
    emit_progress(/*final_emission=*/true);
  }

  // Phase 2: the serial fold, in device-id order regardless of how the
  // shards were cut — this is what makes every aggregate byte-identical
  // across shard and job counts (float addition is not associative, so
  // per-shard partial sums merged shard-wise would not be).
  OBS_PROFILE_SCOPE("fleet.fold");
  const std::size_t class_count = spec_.classes.size();
  result.classes.resize(class_count);
  for (std::size_t c = 0; c < class_count; ++c) {
    result.classes[c].name = spec_.classes[c].name;
  }
  // Per-(class, bucket) ledger accumulators, folded in device order.
  struct BucketAccumulator {
    obs::LedgerRow row;
    bool used = false;
  };
  const char* const interface_names[2] = {"cellular", "wifi"};
  const radio::TxKind kinds[2] = {radio::TxKind::kHeartbeat,
                                  radio::TxKind::kData};
  std::vector<BucketAccumulator> buckets(class_count * 4);
  const auto bucket_of = [&](std::size_t cls, std::size_t interface_index,
                             std::size_t kind_index) -> BucketAccumulator& {
    return buckets[cls * 4 + interface_index * 2 + kind_index];
  };

  for (std::size_t device = 0; device < spec_.devices; ++device) {
    const std::size_t cls = arrays.class_id[device];
    FleetClassAggregate& agg = result.classes[cls];
    agg.devices += 1;
    agg.packets += arrays.packets[device];
    agg.violations += arrays.violations[device];
    agg.delay_sum_s += arrays.delay_sum_s[device];
    agg.delay_cost += arrays.delay_cost[device];
    result.device_meter_total_J += arrays.meter_J[device];
    result.total_slots += arrays.slots[device];
    result.total_packets += arrays.packets[device];

    const FleetArrays::LedgerColumns* groups[2][2] = {
        {&arrays.cellular_heartbeat, &arrays.cellular_data},
        {&arrays.wifi_heartbeat, &arrays.wifi_data}};
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t k = 0; k < 2; ++k) {
        const FleetArrays::LedgerColumns& columns = *groups[i][k];
        const double total = columns.tx_J[device] + columns.setup_J[device] +
                             columns.tail_J[device];
        if (columns.transmissions[device] == 0 && total == 0.0) continue;
        BucketAccumulator& bucket = bucket_of(cls, i, k);
        obs::LedgerRow& row = bucket.row;
        if (!bucket.used) {
          row.interface_name = interface_names[i];
          row.kind = kinds[k];
          row.app = static_cast<int>(cls);
          bucket.used = true;
        }
        row.tx_J += columns.tx_J[device];
        row.setup_J += columns.setup_J[device];
        row.tail_J += columns.tail_J[device];
        row.failed_airtime_J += columns.failed_airtime_J[device];
        row.airtime_s += columns.airtime_s[device];
        row.failed_airtime_s += columns.failed_airtime_s[device];
        row.transmissions += columns.transmissions[device];
        row.failures += columns.failures[device];
        if (k == 0) {
          agg.heartbeat_J += total;
        } else {
          agg.data_J += total;
        }
        agg.transmissions += columns.transmissions[device];
        agg.failures += columns.failures[device];
      }
    }
  }
  for (auto& agg : result.classes) {
    // The class energy is defined as the sum of its ledger-bucket totals,
    // so heartbeat_J + data_J partitions it exactly.
    agg.network_J = agg.heartbeat_J + agg.data_J;
  }

  // Emit rows in the ledger's canonical (interface, kind, app) order:
  // "cellular" < "wifi", kHeartbeat < kData, class index ascending.
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t k = 0; k < 2; ++k) {
      for (std::size_t c = 0; c < class_count; ++c) {
        const BucketAccumulator& bucket = bucket_of(c, i, k);
        if (bucket.used) result.ledger.rows.push_back(bucket.row);
      }
    }
  }
  return result;
}

}  // namespace etrain::experiments
