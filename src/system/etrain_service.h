// The eTrain service: Heartbeat Monitor + eTrain Scheduler + Broadcast
// glue, i.e. the "eTrain" box of Fig. 5, running as a process on the
// Android substrate.
//
// Responsibilities (Sec. V):
//   * install Xposed hooks on every known train app's heartbeat method and
//     feed triggers into the HeartbeatMonitor;
//   * maintain one waiting queue per registered cargo app, fed by SUBMIT
//     broadcasts;
//   * tick once per slot: run Algorithm 1 against the queues, using the
//     monitor's observation ("did a train depart this slot?") and
//     predictions (upcoming departures), and broadcast a TRANSMIT decision
//     for every selected packet;
//   * when no train app is running, flush rather than defer, "to avoid
//     cargo apps' indefinite waiting" (Sec. V-3).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "android/alarm_manager.h"
#include "android/broadcast_bus.h"
#include "android/heartbeat_monitor.h"
#include "android/xposed.h"
#include "core/etrain_scheduler.h"
#include "core/queues.h"

namespace etrain::system {

class EtrainService {
 public:
  struct Config {
    core::EtrainConfig scheduler;
    /// Scheduler tick period (the slot length of Algorithm 1).
    Duration slot = 1.0;
    /// How far ahead the monitor's departure predictions are requested.
    Duration prediction_horizon = 1800.0;
    /// A train is considered "running" if it beat within this window.
    Duration train_staleness = 900.0;
    /// Max cargo apps the service accepts (queue table is pre-sized).
    int max_cargo_apps = 16;
  };

  EtrainService(Config config, sim::Simulator& simulator,
                android::BroadcastBus& bus, android::AlarmManager& alarms,
                android::XposedRegistry& xposed);

  EtrainService(const EtrainService&) = delete;
  EtrainService& operator=(const EtrainService&) = delete;

  /// Installs the Xposed hook for one train app's heartbeat method, mapping
  /// triggers to `train_id` in the monitor.
  void hook_train_app(const std::string& hook_class,
                      const std::string& hook_method, int train_id);

  /// Starts listening for REGISTER/SUBMIT broadcasts and arms the periodic
  /// scheduler tick. Call once.
  void start();

  /// Attaches observability (either pointer may be null). Forwards to the
  /// embedded EtrainScheduler (GateOpen/PacketSelect events, scheduler.*
  /// counters) and additionally traces the no-train flush path's decisions
  /// and the service.flush_selections counter.
  void attach_observability(obs::TraceSink* trace, obs::Registry* registry);

  const android::HeartbeatMonitor& monitor() const { return monitor_; }
  const core::WaitingQueues& queues() const { return queues_; }
  std::uint64_t decisions_broadcast() const { return decisions_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  void on_register(const android::Intent& intent);
  void on_unregister(const android::Intent& intent);
  void on_submit(const android::Intent& intent);
  void on_tick();

  Config config_;
  sim::Simulator& simulator_;
  android::BroadcastBus& bus_;
  android::AlarmManager& alarms_;
  android::XposedRegistry& xposed_;

  android::HeartbeatMonitor monitor_;
  core::EtrainScheduler scheduler_;
  core::WaitingQueues queues_;
  /// Profile per registered app (index = app id); nullptr = unregistered.
  std::vector<const core::CostProfile*> profiles_;

  bool started_ = false;
  std::uint64_t decisions_ = 0;
  std::uint64_t ticks_ = 0;
  obs::TraceSink* trace_ = nullptr;
  obs::Counter* flush_counter_ = nullptr;
};

}  // namespace etrain::system
