// A simulated train-app daemon process.
//
// Mirrors how real IM apps behave (Sec. II-A / V-2): a background daemon
// thread arms AlarmManager for its next heartbeat; when the alarm fires it
// sends the keep-alive over the radio and re-arms. The heartbeat-sending
// method is routed through the XposedRegistry so eTrain's hook observes
// every beat without the app cooperating — eTrain is transparent to train
// apps.
#pragma once

#include <string>

#include "android/alarm_manager.h"
#include "android/xposed.h"
#include "apps/heartbeat_spec.h"
#include "net/fault_plan.h"
#include "net/radio_link.h"

namespace etrain::system {

class TrainAppProcess {
 public:
  /// `train_id` indexes the app within the scenario; `first_beat` is when
  /// its daemon sends the first heartbeat.
  TrainAppProcess(int train_id, apps::HeartbeatSpec spec, TimePoint first_beat,
                  android::AlarmManager& alarms, android::XposedRegistry& xposed,
                  net::RadioLink& link);
  ~TrainAppProcess();

  TrainAppProcess(const TrainAppProcess&) = delete;
  TrainAppProcess& operator=(const TrainAppProcess&) = delete;

  /// Arms the first heartbeat alarm. Idempotent.
  void start();
  /// Cancels the pending alarm (app force-stopped).
  void stop();

  int beats_sent() const { return beats_sent_; }
  /// Heartbeats the fault plan suppressed (daemon killed / alarm deferred).
  int beats_dropped() const { return beats_dropped_; }
  const apps::HeartbeatSpec& spec() const { return spec_; }

  /// Attaches heartbeat timing faults (jitter / drops). `plan` may be null
  /// (no faults) and must outlive this process. Call before start(); with a
  /// null plan or a plan where affects_heartbeats() is false, behaviour is
  /// bit-identical to the fault-free daemon.
  void set_fault_plan(const net::FaultPlan* plan) { faults_ = plan; }

  /// The (class, method) eTrain hooks — the paper locates it by its
  /// AlarmManager/BroadcastReceiver call sites in the decompiled APK.
  std::string hook_class() const;
  static std::string hook_method() { return "sendHeartbeat"; }

 private:
  void send_heartbeat(TimePoint now);
  void arm_next(TimePoint now);
  /// Stable fault-draw key for scheduled beat `index` of this train.
  std::int64_t beat_entity(int index) const;
  /// Departure time of scheduled beat `index` with fault jitter applied,
  /// clamped to never run backwards past `not_before`.
  TimePoint departure_time(int index, TimePoint not_before) const;

  int train_id_;
  apps::HeartbeatSpec spec_;
  TimePoint first_beat_;
  android::AlarmManager& alarms_;
  android::XposedRegistry& xposed_;
  net::RadioLink& link_;
  const net::FaultPlan* faults_ = nullptr;

  bool started_ = false;
  int beats_sent_ = 0;
  int beats_dropped_ = 0;
  /// Index of the next *scheduled* beat (counts dropped beats too, so the
  /// doubling discipline keeps its cadence when a beat is suppressed).
  int beat_index_ = 0;
  android::AlarmId pending_alarm_ = 0;
  bool alarm_armed_ = false;
};

}  // namespace etrain::system
