#include "system/etrain_service.h"

#include <stdexcept>

#include "system/protocol.h"

namespace etrain::system {

EtrainService::EtrainService(Config config, sim::Simulator& simulator,
                             android::BroadcastBus& bus,
                             android::AlarmManager& alarms,
                             android::XposedRegistry& xposed)
    : config_(config),
      simulator_(simulator),
      bus_(bus),
      alarms_(alarms),
      xposed_(xposed),
      scheduler_(config.scheduler),
      queues_(config.max_cargo_apps),
      profiles_(config.max_cargo_apps, nullptr) {
  if (config.slot <= 0.0) {
    throw std::invalid_argument("EtrainService: non-positive slot");
  }
}

void EtrainService::hook_train_app(const std::string& hook_class,
                                   const std::string& hook_method,
                                   int train_id) {
  xposed_.hook_method(hook_class, hook_method,
                      [this, train_id](const android::MethodCall& call) {
                        monitor_.on_heartbeat(train_id, call.time);
                      });
}

void EtrainService::start() {
  if (started_) return;
  started_ = true;
  bus_.register_receiver(kActionRegister, [this](const android::Intent& i) {
    on_register(i);
  });
  bus_.register_receiver(kActionUnregister,
                         [this](const android::Intent& i) {
                           on_unregister(i);
                         });
  bus_.register_receiver(kActionSubmit, [this](const android::Intent& i) {
    on_submit(i);
  });
  alarms_.set_repeating(config_.slot, config_.slot, [this] { on_tick(); });
}

void EtrainService::on_register(const android::Intent& intent) {
  const auto app = intent.get_int(kExtraApp);
  const auto profile_name = intent.get_string(kExtraProfile);
  if (!app.has_value() || !profile_name.has_value()) return;
  if (*app < 0 || *app >= static_cast<std::int64_t>(profiles_.size())) {
    throw std::out_of_range("EtrainService: cargo app id out of range");
  }
  const core::CostProfile* profile = core::cost_profile_by_name(*profile_name);
  if (profile == nullptr) {
    throw std::invalid_argument("EtrainService: unknown cost profile " +
                                *profile_name);
  }
  profiles_[*app] = profile;
}

void EtrainService::on_unregister(const android::Intent& intent) {
  const auto app = intent.get_int(kExtraApp);
  if (!app.has_value() || *app < 0 ||
      *app >= static_cast<std::int64_t>(profiles_.size())) {
    return;
  }
  const auto id = static_cast<core::CargoAppId>(*app);
  if (profiles_[id] == nullptr) return;
  // A departing app must not strand its queued requests: flush them as
  // immediate transmit decisions, then forget the registration.
  for (const auto& qp : queues_.queue(id)) {
    android::Intent decision(kActionTransmit);
    decision.put(kExtraApp, static_cast<std::int64_t>(id));
    decision.put(kExtraPacket, qp.packet.id);
    bus_.send_broadcast(decision);
    ++decisions_;
  }
  while (!queues_.queue(id).empty()) {
    queues_.remove(id, queues_.queue(id).front().packet.id);
  }
  profiles_[id] = nullptr;
}

void EtrainService::on_submit(const android::Intent& intent) {
  const auto app = intent.get_int(kExtraApp);
  const auto packet = intent.get_int(kExtraPacket);
  const auto bytes = intent.get_int(kExtraBytes);
  const auto deadline = intent.get_double(kExtraDeadline);
  const auto arrival = intent.get_double(kExtraArrival);
  if (!app.has_value() || !packet.has_value() || !bytes.has_value() ||
      !deadline.has_value() || !arrival.has_value()) {
    return;  // malformed request — dropped, as a defensive service would
  }
  const auto id = static_cast<core::CargoAppId>(*app);
  if (id < 0 || id >= queues_.app_count() || profiles_[id] == nullptr) {
    return;  // unregistered app
  }
  core::Packet p;
  p.id = *packet;
  p.app = id;
  p.bytes = *bytes;
  p.deadline = *deadline;
  p.arrival = *arrival;
  queues_.enqueue(core::QueuedPacket{p, profiles_[id]});
}

void EtrainService::attach_observability(obs::TraceSink* trace,
                                         obs::Registry* registry) {
  trace_ = trace;
  scheduler_.attach_observability(trace, registry);
  flush_counter_ = registry == nullptr
                       ? nullptr
                       : &registry->counter("service.flush_selections");
}

void EtrainService::on_tick() {
  ++ticks_;
  const TimePoint t = simulator_.now();
  if (queues_.empty()) return;

  std::vector<core::Selection> selections;
  if (!monitor_.any_train_active(t, config_.train_staleness)) {
    // No trains to ride: flush everything rather than defer indefinitely.
    for (int app = 0; app < queues_.app_count(); ++app) {
      for (const auto& qp : queues_.queue(app)) {
        selections.push_back(core::Selection{app, qp.packet.id});
        // A flush is a forced selection with no Eq. 9 score; traced with
        // gain 0 so the timeline still shows when each packet left.
        ETRAIN_TRACE(trace_, obs::TraceEvent::packet_select(
                                 t, app, qp.packet.id, 0.0,
                                 qp.speculative_cost(t)));
      }
    }
    if (flush_counter_ != nullptr && !selections.empty()) {
      flush_counter_->increment(selections.size());
    }
  } else {
    core::SlotContext ctx;
    ctx.slot_start = t;
    ctx.slot_length = config_.slot;
    // A heartbeat observed within the last slot counts as "the train is
    // departing now": the radio is at the start of that beat's tail.
    const auto recent = monitor_.most_recent_beat();
    ctx.heartbeat_now =
        recent.has_value() && *recent >= t - config_.slot - 1e-9;
    ctx.upcoming_heartbeats =
        monitor_.predict_departures(t, t + config_.prediction_horizon);
    selections = scheduler_.select(ctx, queues_);
  }

  for (const auto& sel : selections) {
    queues_.remove(sel.app, sel.packet);
    android::Intent decision(kActionTransmit);
    decision.put(kExtraApp, static_cast<std::int64_t>(sel.app));
    decision.put(kExtraPacket, sel.packet);
    bus_.send_broadcast(decision);
    ++decisions_;
  }
}

}  // namespace etrain::system
