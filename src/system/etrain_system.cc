#include "system/etrain_system.h"

#include <stdexcept>

#include "radio/model_registry.h"
#include "radio/power_monitor.h"

namespace etrain::system {

void EtrainSystem::Config::set_radio(const std::string& spec) {
  const radio::RadioModel resolved = radio::make_radio_model(spec);
  model = resolved.power;
  radio_spec = resolved.spec;
}

EtrainSystem::EtrainSystem(Config config, net::BandwidthTrace trace)
    : config_(config), trace_(std::move(trace)) {
  bus_ = std::make_unique<android::BroadcastBus>(simulator_);
  alarms_ = std::make_unique<android::AlarmManager>(simulator_);
  link_ = std::make_unique<net::RadioLink>(
      simulator_, config_.model, trace_,
      config_.downlink_trace.has_value() ? &*config_.downlink_trace
                                         : nullptr);
  link_->set_fault_plan(config_.faults);
  link_->attach_metrics(config_.observers.metrics);
  service_ = std::make_unique<EtrainService>(config_.service, simulator_,
                                             *bus_, *alarms_, xposed_);
  simulator_.set_trace_sink(config_.observers.trace);
  link_->set_trace_sink(config_.observers.trace);
  service_->attach_observability(config_.observers.trace,
                                 config_.observers.metrics);
}

void EtrainSystem::add_train_app(const apps::HeartbeatSpec& spec,
                                 TimePoint first_beat) {
  const int train_id = static_cast<int>(trains_.size());
  auto process = std::make_unique<TrainAppProcess>(
      train_id, spec, first_beat, *alarms_, xposed_, *link_);
  process->set_fault_plan(&config_.faults);
  service_->hook_train_app(process->hook_class(),
                           TrainAppProcess::hook_method(), train_id);
  trains_.push_back(std::move(process));
}

void EtrainSystem::add_cargo_app(core::CargoAppId app_id,
                                 const core::CostProfile& profile,
                                 std::vector<core::Packet> packets) {
  cargos_.push_back(std::make_unique<CargoAppClient>(
      app_id, profile, std::move(packets), simulator_, *bus_, *link_));
}

experiments::RunMetrics EtrainSystem::run() {
  if (ran_) {
    throw std::logic_error("EtrainSystem::run may only be called once");
  }
  ran_ = true;

  service_->start();
  for (auto& train : trains_) train->start();
  for (auto& cargo : cargos_) cargo->start();

  simulator_.run_until(config_.horizon);
  // Stop the heartbeat daemons so the drain below terminates, then let
  // in-flight transmissions and pending broadcasts complete.
  for (auto& train : trains_) train->stop();
  // The scheduler's repeating tick would run forever; advance in bounded
  // steps until all cargo queues are flushed (the service flushes once the
  // trains go stale) or a generous grace period elapses.
  const Duration grace = config_.service.train_staleness + 600.0;
  for (TimePoint t = config_.horizon; t < config_.horizon + grace;
       t += 60.0) {
    bool all_done = true;
    for (const auto& cargo : cargos_) {
      if (cargo->pending() > 0) all_done = false;
    }
    if (all_done && !link_->busy()) break;
    simulator_.run_until(t + 60.0);
  }

  experiments::RunMetrics metrics;
  metrics.policy_name = "eTrain(system)";
  metrics.log = link_->log();
  for (const auto& cargo : cargos_) {
    metrics.outcomes.insert(metrics.outcomes.end(), cargo->outcomes().begin(),
                            cargo->outcomes().end());
  }
  const Duration energy_horizon =
      std::max(config_.horizon, metrics.log.last_end()) +
      config_.model.tail_time();
  // Close out the trace: demote the radio through its final tail, then let
  // the meter replay bill every gap as TailCharge events.
  link_->flush_trace(energy_horizon);
  metrics.energy = radio::measure_energy(metrics.log, config_.model,
                                         energy_horizon,
                                         config_.observers.trace);
  if (config_.attach_power_monitor) {
    // The controlled-experiment harness: a Monsoon monitor samples the
    // device current at 0.1 s / 3.7 V and integrates (Sec. VI-D, Fig. 9).
    const radio::PowerMonitor monitor(0.1, 3.7);
    metrics.monsoon_energy = monitor.integrate(
        monitor.sample(metrics.log, config_.model, energy_horizon));
  }
  experiments::finalize_metrics(metrics);
  if (config_.observers.metrics != nullptr) {
    metrics.observed = config_.observers.metrics->snapshot();
  }
  return metrics;
}

}  // namespace etrain::system
