// The assembled device: simulation kernel, radio link, Android substrate,
// the eTrain service, train-app daemons and cargo-app clients — everything
// the controlled experiments of Sec. VI-D run on a physical phone, wired on
// the simulator. This is the public entry point the examples use.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "exp/metrics.h"
#include "net/synthetic_bandwidth.h"
#include "system/cargo_app_client.h"
#include "system/etrain_service.h"
#include "system/train_app.h"

namespace etrain::system {

class EtrainSystem {
 public:
  struct Config {
    /// Radio model for the device's uplink. Prefer set_radio() over
    /// assigning directly: it resolves a ModelRegistry spec ("3g:paper",
    /// "lte_cdrx:inactivity=5"...) and records the spec for provenance.
    radio::PowerModel model = radio::PowerModel::PaperUmts3G();
    /// The registry spec `model` came from.
    std::string radio_spec = "3g:paper";
    EtrainService::Config service;
    Duration horizon = 7200.0;
    /// Downlink bandwidth for prefetch cargo; empty = downloads use the
    /// uplink trace.
    std::optional<net::BandwidthTrace> downlink_trace;
    /// When true (the paper's controlled-experiment harness), a simulated
    /// Monsoon power monitor samples the run at 0.1 s for the report.
    bool attach_power_monitor = false;

    /// Fault injection (default: none, bit-identical to fault-free runs).
    /// Link-level faults (loss, outages, backoff retransmission) go to the
    /// RadioLink; heartbeat jitter/drops go to every TrainAppProcess. The
    /// same plan drives the slotted harness via Scenario::faults, keeping
    /// DES and slotted results comparable. See docs/faults.md.
    net::FaultPlan faults;

    /// Observability hooks (both optional, thread-confined to this system's
    /// run): the trace sink receives DES EventFire, RRC transitions,
    /// heartbeat starts, the scheduler's gate/selection events and the
    /// energy meter's TailCharge records; the registry's snapshot lands in
    /// RunMetrics::observed.
    obs::Observers observers;

    /// Resolves `spec` through radio::builtin_model_registry() into
    /// `model` + `radio_spec`. Throws std::invalid_argument on bad specs.
    void set_radio(const std::string& spec);
  };

  EtrainSystem(Config config, net::BandwidthTrace trace);

  /// Adds a train app whose first heartbeat fires at `first_beat`. The
  /// service's Xposed hook for it is installed automatically. Call before
  /// run().
  void add_train_app(const apps::HeartbeatSpec& spec, TimePoint first_beat);

  /// Adds a cargo app with its packet-arrival trace; every packet's `app`
  /// field must equal `app_id`. Call before run().
  void add_cargo_app(core::CargoAppId app_id, const core::CostProfile& profile,
                     std::vector<core::Packet> packets);

  /// Runs the simulation to the horizon and returns the standard metrics
  /// (energy from the EnergyMeter replay; per-packet delays from the cargo
  /// clients). Can only be called once.
  experiments::RunMetrics run();

  // Component access (tests / advanced use).
  sim::Simulator& simulator() { return simulator_; }
  android::BroadcastBus& bus() { return *bus_; }
  net::RadioLink& link() { return *link_; }
  EtrainService& service() { return *service_; }
  const std::vector<std::unique_ptr<TrainAppProcess>>& trains() const {
    return trains_;
  }

 private:
  Config config_;
  net::BandwidthTrace trace_;
  sim::Simulator simulator_;
  std::unique_ptr<android::BroadcastBus> bus_;
  std::unique_ptr<android::AlarmManager> alarms_;
  android::XposedRegistry xposed_;
  std::unique_ptr<net::RadioLink> link_;
  std::unique_ptr<EtrainService> service_;
  std::vector<std::unique_ptr<TrainAppProcess>> trains_;
  std::vector<std::unique_ptr<CargoAppClient>> cargos_;
  bool ran_ = false;
};

}  // namespace etrain::system
