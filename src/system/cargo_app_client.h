// A simulated cargo app linked against the eTrain client library.
//
// On start it REGISTERs its delay-cost profile with the eTrain service,
// then SUBMITs a request for every data packet its workload generates, and
// transmits a packet only when the service broadcasts the TRANSMIT decision
// for it — "the cargo app will perform data transmission according to
// eTrain's decision" (Sec. V-4). Developers only add the predefined
// BroadcastReceiver subclasses; this class plays that role.
#pragma once

#include <unordered_map>
#include <vector>

#include "android/broadcast_bus.h"
#include "core/cost_profile.h"
#include "core/packet.h"
#include "exp/metrics.h"
#include "net/radio_link.h"

namespace etrain::system {

class CargoAppClient {
 public:
  /// `packets` is this app's complete arrival trace (each packet's `app`
  /// must equal `app_id`); arrivals are scheduled as simulator events.
  CargoAppClient(core::CargoAppId app_id, const core::CostProfile& profile,
                 std::vector<core::Packet> packets, sim::Simulator& simulator,
                 android::BroadcastBus& bus, net::RadioLink& link);

  CargoAppClient(const CargoAppClient&) = delete;
  CargoAppClient& operator=(const CargoAppClient&) = delete;

  /// Registers with eTrain and schedules all arrival events. Call once
  /// before the simulation runs.
  void start();

  /// Packets submitted but not yet granted transmission.
  std::size_t pending() const { return pending_.size(); }

  /// Transmission outcomes recorded so far (start times, delays, costs).
  const std::vector<experiments::PacketOutcome>& outcomes() const {
    return outcomes_;
  }

  /// Link-level delivery failures this app recovered from (the packet went
  /// back to the service's queue and was re-decided later). 0 without
  /// fault injection.
  std::uint64_t recovered_failures() const { return recovered_failures_; }

  core::CargoAppId app_id() const { return app_id_; }

 private:
  void submit(const core::Packet& p);
  void on_transmit_decision(const android::Intent& intent);
  void transmit(const core::Packet& p);

  core::CargoAppId app_id_;
  const core::CostProfile& profile_;
  std::vector<core::Packet> packets_;
  sim::Simulator& simulator_;
  android::BroadcastBus& bus_;
  net::RadioLink& link_;

  std::unordered_map<core::PacketId, core::Packet> pending_;
  std::vector<experiments::PacketOutcome> outcomes_;
  std::uint64_t recovered_failures_ = 0;
  bool started_ = false;
};

}  // namespace etrain::system
