// The broadcast protocol between the eTrain service and cargo apps
// (Sec. V-4): all communication goes through Android broadcasts.
//
//   REGISTER  (cargo -> eTrain): app announces itself and its delay-cost
//             profile when it subscribes to eTrain's service.
//   SUBMIT    (cargo -> eTrain): a request carrying the transmission
//             meta-data — "size of the data packet and its deadline for
//             delivery, etc.".
//   TRANSMIT  (eTrain -> cargo): the scheduler's decision that a specific
//             packet should be transmitted now.
//
// The `wire` namespace below carries the same protocol over real sockets
// for the live gateway (docs/gateway.md): explicit little-endian
// fixed-width serialization — independent of host endianness and struct
// layout — framed as [u32 payload_len][u8 type][payload]. Both the gateway
// daemon and the bench_gateway load generator encode and decode through
// these helpers, so a frame written by one side is by construction
// readable by the other.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.h"

namespace etrain::system {

inline const std::string kActionRegister = "etrain.action.REGISTER";
inline const std::string kActionUnregister = "etrain.action.UNREGISTER";
inline const std::string kActionSubmit = "etrain.action.SUBMIT_REQUEST";
inline const std::string kActionTransmit = "etrain.action.TRANSMIT";

// Extra keys.
inline const std::string kExtraApp = "app";
inline const std::string kExtraPacket = "packet";
inline const std::string kExtraBytes = "bytes";
inline const std::string kExtraDeadline = "deadline";
inline const std::string kExtraArrival = "arrival";
inline const std::string kExtraProfile = "profile";

namespace wire {

// ---------------------------------------------------------------------------
// Little-endian fixed-width primitives. Writers append to a std::string;
// readers consume via an explicit cursor and return false on truncation
// (never reading past the buffer), which is what makes garbage input safe.
// ---------------------------------------------------------------------------

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// IEEE-754 doubles travel as their little-endian bit pattern.
inline void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline bool get_u8(std::string_view buf, std::size_t& pos, std::uint8_t& v) {
  if (buf.size() - pos < 1 || pos > buf.size()) return false;
  v = static_cast<std::uint8_t>(buf[pos]);
  pos += 1;
  return true;
}

inline bool get_u16(std::string_view buf, std::size_t& pos, std::uint16_t& v) {
  if (pos > buf.size() || buf.size() - pos < 2) return false;
  v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(buf[pos + static_cast<std::size_t>(i)])
        << (8 * i));
  }
  pos += 2;
  return true;
}

inline bool get_u32(std::string_view buf, std::size_t& pos, std::uint32_t& v) {
  if (pos > buf.size() || buf.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(buf[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

inline bool get_u64(std::string_view buf, std::size_t& pos, std::uint64_t& v) {
  if (pos > buf.size() || buf.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(buf[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

inline bool get_f64(std::string_view buf, std::size_t& pos, double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(buf, pos, bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

// ---------------------------------------------------------------------------
// Frames. Every message is [u32 payload_len][u8 type][payload bytes].
// ---------------------------------------------------------------------------

enum class FrameType : std::uint8_t {
  kHello = 1,      // client -> gateway: REGISTER over the wire
  kHeartbeat = 2,  // client -> gateway: a train app's keep-alive fired
  kCargo = 3,      // client -> gateway: SUBMIT over the wire
  kAck = 4,        // gateway -> client: TRANSMIT decision for one packet
  kBye = 5,        // client -> gateway: orderly goodbye (flush me now)
};

/// Frame header size on the wire: u32 length + u8 type.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Upper bound on payload length. Anything larger is a garbage or hostile
/// frame; the reader rejects it without buffering.
inline constexpr std::uint32_t kMaxPayloadBytes = 64 * 1024;

/// Hard cap on per-HELLO app registrations (both lists).
inline constexpr std::size_t kMaxAppsPerClient = 64;

/// Delay-cost profile of a registered cargo app (core/cost_profile.h).
enum class ProfileCode : std::uint8_t { kMail = 0, kWeibo = 1, kCloud = 2 };

struct CargoAppSpec {
  std::uint32_t app = 0;
  ProfileCode profile = ProfileCode::kMail;
  bool operator==(const CargoAppSpec&) const = default;
};

/// REGISTER: the client announces its id, its cargo apps (with delay-cost
/// profiles) and its heartbeat-bearing train apps.
struct HelloFrame {
  std::uint64_t client_id = 0;
  std::vector<CargoAppSpec> cargo_apps;
  std::vector<std::uint32_t> train_apps;
  bool operator==(const HelloFrame&) const = default;
};

/// A train app's keep-alive fired on the device; the gateway observes it
/// (timestamping at receipt) and may board waiting cargo on it.
struct HeartbeatFrame {
  std::uint32_t train_app = 0;
  std::uint32_t seq = 0;
  bool operator==(const HeartbeatFrame&) const = default;
};

/// SUBMIT: one cargo packet — size plus its delivery deadline, expressed
/// in seconds from enqueue.
struct CargoFrame {
  std::uint32_t cargo_app = 0;
  std::uint64_t packet_id = 0;
  std::uint64_t bytes = 0;
  double deadline_s = 0.0;
  bool operator==(const CargoFrame&) const = default;
};

/// TRANSMIT: the scheduler released `packet_id`. `latency_s` is the
/// enqueue->transmit batching latency in gateway clock seconds;
/// `boarded` distinguishes heartbeat piggybacks from drip/flush sends.
struct AckFrame {
  std::uint64_t packet_id = 0;
  double latency_s = 0.0;
  std::uint8_t boarded = 0;
  bool operator==(const AckFrame&) const = default;
};

inline void append_frame_header(std::string& out, FrameType type,
                                std::uint32_t payload_len) {
  put_u32(out, payload_len);
  put_u8(out, static_cast<std::uint8_t>(type));
}

/// Appends a complete frame (header + payload) for `type` whose payload is
/// written by `body(payload_string)`.
template <typename Body>
void append_frame(std::string& out, FrameType type, Body&& body) {
  std::string payload;
  body(payload);
  append_frame_header(out, type, static_cast<std::uint32_t>(payload.size()));
  out += payload;
}

inline std::string encode_hello(const HelloFrame& f) {
  std::string out;
  append_frame(out, FrameType::kHello, [&](std::string& p) {
    put_u64(p, f.client_id);
    put_u16(p, static_cast<std::uint16_t>(f.cargo_apps.size()));
    for (const CargoAppSpec& a : f.cargo_apps) {
      put_u32(p, a.app);
      put_u8(p, static_cast<std::uint8_t>(a.profile));
    }
    put_u16(p, static_cast<std::uint16_t>(f.train_apps.size()));
    for (std::uint32_t a : f.train_apps) put_u32(p, a);
  });
  return out;
}

inline std::string encode_heartbeat(const HeartbeatFrame& f) {
  std::string out;
  append_frame(out, FrameType::kHeartbeat, [&](std::string& p) {
    put_u32(p, f.train_app);
    put_u32(p, f.seq);
  });
  return out;
}

inline std::string encode_cargo(const CargoFrame& f) {
  std::string out;
  append_frame(out, FrameType::kCargo, [&](std::string& p) {
    put_u32(p, f.cargo_app);
    put_u64(p, f.packet_id);
    put_u64(p, f.bytes);
    put_f64(p, f.deadline_s);
  });
  return out;
}

inline std::string encode_ack(const AckFrame& f) {
  std::string out;
  append_frame(out, FrameType::kAck, [&](std::string& p) {
    put_u64(p, f.packet_id);
    put_f64(p, f.latency_s);
    put_u8(p, f.boarded);
  });
  return out;
}

inline std::string encode_bye() {
  std::string out;
  append_frame_header(out, FrameType::kBye, 0);
  return out;
}

/// Strict decoders: false on truncation, trailing bytes, or out-of-range
/// values. A payload must be exactly its frame, nothing more.
inline bool decode_hello(std::string_view payload, HelloFrame& out) {
  std::size_t pos = 0;
  out = HelloFrame{};
  std::uint16_t n_cargo = 0;
  if (!get_u64(payload, pos, out.client_id)) return false;
  if (!get_u16(payload, pos, n_cargo)) return false;
  if (n_cargo > kMaxAppsPerClient) return false;
  out.cargo_apps.reserve(n_cargo);
  for (std::uint16_t i = 0; i < n_cargo; ++i) {
    CargoAppSpec spec;
    std::uint8_t code = 0;
    if (!get_u32(payload, pos, spec.app)) return false;
    if (!get_u8(payload, pos, code)) return false;
    if (code > static_cast<std::uint8_t>(ProfileCode::kCloud)) return false;
    spec.profile = static_cast<ProfileCode>(code);
    out.cargo_apps.push_back(spec);
  }
  std::uint16_t n_train = 0;
  if (!get_u16(payload, pos, n_train)) return false;
  if (n_train > kMaxAppsPerClient) return false;
  out.train_apps.reserve(n_train);
  for (std::uint16_t i = 0; i < n_train; ++i) {
    std::uint32_t app = 0;
    if (!get_u32(payload, pos, app)) return false;
    out.train_apps.push_back(app);
  }
  return pos == payload.size();
}

inline bool decode_heartbeat(std::string_view payload, HeartbeatFrame& out) {
  std::size_t pos = 0;
  out = HeartbeatFrame{};
  if (!get_u32(payload, pos, out.train_app)) return false;
  if (!get_u32(payload, pos, out.seq)) return false;
  return pos == payload.size();
}

inline bool decode_cargo(std::string_view payload, CargoFrame& out) {
  std::size_t pos = 0;
  out = CargoFrame{};
  if (!get_u32(payload, pos, out.cargo_app)) return false;
  if (!get_u64(payload, pos, out.packet_id)) return false;
  if (!get_u64(payload, pos, out.bytes)) return false;
  if (!get_f64(payload, pos, out.deadline_s)) return false;
  return pos == payload.size();
}

inline bool decode_ack(std::string_view payload, AckFrame& out) {
  std::size_t pos = 0;
  out = AckFrame{};
  if (!get_u64(payload, pos, out.packet_id)) return false;
  if (!get_f64(payload, pos, out.latency_s)) return false;
  if (!get_u8(payload, pos, out.boarded)) return false;
  return pos == payload.size();
}

/// A decoded frame: type plus raw payload (decode_* parses the payload).
struct Frame {
  FrameType type = FrameType::kBye;
  std::string payload;
};

/// Incremental frame scanner for a TCP byte stream. feed() arbitrary
/// chunks, then drain frames with next(). A malformed header (oversized
/// length, unknown type) poisons the reader permanently — the stream has
/// lost sync, so the connection must be dropped.
class FrameReader {
 public:
  enum class Status { kFrame, kNeedMore, kError };

  void feed(std::string_view bytes) {
    if (!error_) buffer_.append(bytes.data(), bytes.size());
  }

  Status next(Frame& out) {
    if (error_) return Status::kError;
    if (buffer_.size() - start_ < kFrameHeaderBytes) {
      compact();
      return Status::kNeedMore;
    }
    std::size_t pos = start_;
    std::uint32_t len = 0;
    std::uint8_t type = 0;
    if (!get_u32(buffer_, pos, len) || !get_u8(buffer_, pos, type)) {
      return fail();
    }
    if (len > kMaxPayloadBytes) return fail();
    if (type < static_cast<std::uint8_t>(FrameType::kHello) ||
        type > static_cast<std::uint8_t>(FrameType::kBye)) {
      return fail();
    }
    if (buffer_.size() - pos < len) {
      compact();
      return Status::kNeedMore;
    }
    out.type = static_cast<FrameType>(type);
    out.payload.assign(buffer_, pos, len);
    start_ = pos + len;
    return Status::kFrame;
  }

  bool errored() const { return error_; }
  /// Bytes buffered but not yet consumed as frames.
  std::size_t buffered() const { return buffer_.size() - start_; }

 private:
  Status fail() {
    error_ = true;
    buffer_.clear();
    start_ = 0;
    return Status::kError;
  }

  /// Drops consumed bytes once they dominate the buffer, keeping memory
  /// proportional to the unconsumed tail.
  void compact() {
    if (start_ > 4096 && start_ * 2 > buffer_.size()) {
      buffer_.erase(0, start_);
      start_ = 0;
    }
  }

  std::string buffer_;
  std::size_t start_ = 0;
  bool error_ = false;
};

}  // namespace wire
}  // namespace etrain::system
