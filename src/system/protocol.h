// The broadcast protocol between the eTrain service and cargo apps
// (Sec. V-4): all communication goes through Android broadcasts.
//
//   REGISTER  (cargo -> eTrain): app announces itself and its delay-cost
//             profile when it subscribes to eTrain's service.
//   SUBMIT    (cargo -> eTrain): a request carrying the transmission
//             meta-data — "size of the data packet and its deadline for
//             delivery, etc.".
//   TRANSMIT  (eTrain -> cargo): the scheduler's decision that a specific
//             packet should be transmitted now.
#pragma once

#include <string>

namespace etrain::system {

inline const std::string kActionRegister = "etrain.action.REGISTER";
inline const std::string kActionUnregister = "etrain.action.UNREGISTER";
inline const std::string kActionSubmit = "etrain.action.SUBMIT_REQUEST";
inline const std::string kActionTransmit = "etrain.action.TRANSMIT";

// Extra keys.
inline const std::string kExtraApp = "app";
inline const std::string kExtraPacket = "packet";
inline const std::string kExtraBytes = "bytes";
inline const std::string kExtraDeadline = "deadline";
inline const std::string kExtraArrival = "arrival";
inline const std::string kExtraProfile = "profile";

}  // namespace etrain::system
