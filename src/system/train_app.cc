#include "system/train_app.h"

#include <utility>

namespace etrain::system {

TrainAppProcess::TrainAppProcess(int train_id, apps::HeartbeatSpec spec,
                                 TimePoint first_beat,
                                 android::AlarmManager& alarms,
                                 android::XposedRegistry& xposed,
                                 net::RadioLink& link)
    : train_id_(train_id),
      spec_(std::move(spec)),
      first_beat_(first_beat),
      alarms_(alarms),
      xposed_(xposed),
      link_(link) {}

TrainAppProcess::~TrainAppProcess() { stop(); }

std::string TrainAppProcess::hook_class() const {
  return "com." + spec_.app_name + "/HeartbeatDaemon";
}

void TrainAppProcess::start() {
  if (started_) return;
  started_ = true;
  pending_alarm_ = alarms_.set_exact(
      first_beat_, [this] { send_heartbeat(first_beat_); });
  alarm_armed_ = true;
}

void TrainAppProcess::stop() {
  if (alarm_armed_) {
    alarms_.cancel(pending_alarm_);
    alarm_armed_ = false;
  }
}

void TrainAppProcess::send_heartbeat(TimePoint now) {
  alarm_armed_ = false;
  ++beats_sent_;
  link_.submit(net::RadioLink::Request{.bytes = spec_.heartbeat_bytes,
                                       .kind = radio::TxKind::kHeartbeat,
                                       .app_id = train_id_,
                                       .packet_id = -1});
  // The Xposed after-hook fires as the method returns — this is where
  // eTrain's monitor learns of the beat.
  android::MethodCall call;
  call.class_name = hook_class();
  call.method_name = hook_method();
  call.time = now;
  call.arg = spec_.heartbeat_bytes;
  xposed_.invoke(call);

  arm_next();
}

void TrainAppProcess::arm_next() {
  // Gap to the next beat; for doubling apps this grows per the discipline.
  const TimePoint when = spec_.beat_time(beats_sent_, first_beat_);
  pending_alarm_ =
      alarms_.set_exact(when, [this, when] { send_heartbeat(when); });
  alarm_armed_ = true;
}

}  // namespace etrain::system
