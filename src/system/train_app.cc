#include "system/train_app.h"

#include <utility>

namespace etrain::system {

TrainAppProcess::TrainAppProcess(int train_id, apps::HeartbeatSpec spec,
                                 TimePoint first_beat,
                                 android::AlarmManager& alarms,
                                 android::XposedRegistry& xposed,
                                 net::RadioLink& link)
    : train_id_(train_id),
      spec_(std::move(spec)),
      first_beat_(first_beat),
      alarms_(alarms),
      xposed_(xposed),
      link_(link) {}

TrainAppProcess::~TrainAppProcess() { stop(); }

std::string TrainAppProcess::hook_class() const {
  return "com." + spec_.app_name + "/HeartbeatDaemon";
}

void TrainAppProcess::start() {
  if (started_) return;
  started_ = true;
  const TimePoint when = departure_time(0, 0.0);
  pending_alarm_ =
      alarms_.set_exact(when, [this, when] { send_heartbeat(when); });
  alarm_armed_ = true;
}

void TrainAppProcess::stop() {
  if (alarm_armed_) {
    alarms_.cancel(pending_alarm_);
    alarm_armed_ = false;
  }
}

std::int64_t TrainAppProcess::beat_entity(int index) const {
  // Stable across replays and harnesses: train id in the high bits, beat
  // index in the low. Matches exp/scenario.cc's apply_heartbeat_faults.
  return (static_cast<std::int64_t>(train_id_) << 32) |
         static_cast<std::int64_t>(index);
}

TimePoint TrainAppProcess::departure_time(int index, TimePoint not_before) const {
  TimePoint when = spec_.beat_time(index, first_beat_);
  if (faults_ != nullptr && faults_->affects_heartbeats()) {
    when += faults_->heartbeat_jitter(beat_entity(index));
    if (when < not_before) when = not_before;
  }
  return when;
}

void TrainAppProcess::send_heartbeat(TimePoint now) {
  alarm_armed_ = false;
  const int index = beat_index_++;
  const bool dropped = faults_ != nullptr && faults_->affects_heartbeats() &&
                       faults_->drops_heartbeat(beat_entity(index));
  if (dropped) {
    // The OS killed/deferred the daemon: no radio traffic, no Xposed hook
    // fire (eTrain never observes the beat), but the alarm cadence goes on.
    ++beats_dropped_;
    arm_next(now);
    return;
  }
  ++beats_sent_;
  link_.submit(net::RadioLink::Request{.bytes = spec_.heartbeat_bytes,
                                       .kind = radio::TxKind::kHeartbeat,
                                       .app_id = train_id_,
                                       .packet_id = -1});
  // The Xposed after-hook fires as the method returns — this is where
  // eTrain's monitor learns of the beat.
  android::MethodCall call;
  call.class_name = hook_class();
  call.method_name = hook_method();
  call.time = now;
  call.arg = spec_.heartbeat_bytes;
  xposed_.invoke(call);

  arm_next(now);
}

void TrainAppProcess::arm_next(TimePoint now) {
  // Gap to the next beat; for doubling apps this grows per the discipline.
  // Jitter perturbs each departure independently off the nominal schedule
  // (no drift accumulation), clamped so the daemon never goes back in time.
  const TimePoint when = departure_time(beat_index_, now);
  pending_alarm_ =
      alarms_.set_exact(when, [this, when] { send_heartbeat(when); });
  alarm_armed_ = true;
}

}  // namespace etrain::system
