#include "system/cargo_app_client.h"

#include <stdexcept>

#include "system/protocol.h"

namespace etrain::system {

CargoAppClient::CargoAppClient(core::CargoAppId app_id,
                               const core::CostProfile& profile,
                               std::vector<core::Packet> packets,
                               sim::Simulator& simulator,
                               android::BroadcastBus& bus,
                               net::RadioLink& link)
    : app_id_(app_id),
      profile_(profile),
      packets_(std::move(packets)),
      simulator_(simulator),
      bus_(bus),
      link_(link) {
  for (const auto& p : packets_) {
    if (p.app != app_id_) {
      throw std::invalid_argument("CargoAppClient: packet app id mismatch");
    }
  }
}

void CargoAppClient::start() {
  if (started_) return;
  started_ = true;

  // REGISTER with the service.
  android::Intent reg(kActionRegister);
  reg.put(kExtraApp, static_cast<std::int64_t>(app_id_));
  reg.put(kExtraProfile, profile_.name());
  bus_.send_broadcast(reg);

  // Listen for transmit decisions.
  bus_.register_receiver(kActionTransmit, [this](const android::Intent& i) {
    on_transmit_decision(i);
  });

  // Schedule arrivals.
  for (const auto& p : packets_) {
    simulator_.schedule_at(p.arrival, [this, p] { submit(p); });
  }
}

void CargoAppClient::submit(const core::Packet& p) {
  pending_.emplace(p.id, p);
  android::Intent intent(kActionSubmit);
  intent.put(kExtraApp, static_cast<std::int64_t>(p.app));
  intent.put(kExtraPacket, p.id);
  intent.put(kExtraBytes, p.bytes);
  intent.put(kExtraDeadline, p.deadline);
  intent.put(kExtraArrival, p.arrival);
  bus_.send_broadcast(intent);
}

void CargoAppClient::on_transmit_decision(const android::Intent& intent) {
  const auto app = intent.get_int(kExtraApp);
  const auto packet = intent.get_int(kExtraPacket);
  if (!app.has_value() || !packet.has_value()) return;
  if (static_cast<core::CargoAppId>(*app) != app_id_) return;
  const auto it = pending_.find(*packet);
  if (it == pending_.end()) return;  // duplicate decision — already sent
  const core::Packet p = it->second;
  pending_.erase(it);
  transmit(p);
}

void CargoAppClient::transmit(const core::Packet& p) {
  link_.submit(net::RadioLink::Request{
      .bytes = p.bytes,
      .kind = radio::TxKind::kData,
      .app_id = p.app,
      .packet_id = p.id,
      .direction = p.direction,
      .on_complete = [this, p](const radio::Transmission& tx,
                               net::TxOutcome outcome) {
        switch (outcome) {
          case net::TxOutcome::kSuccess: {
            experiments::PacketOutcome o;
            o.id = p.id;
            o.app = p.app;
            o.arrival = p.arrival;
            o.sent = tx.start;
            o.delay = tx.start - p.arrival;
            o.cost = profile_.cost(o.delay, p.deadline);
            o.violated = o.delay > p.deadline + 1e-9;
            o.bytes = p.bytes;
            outcomes_.push_back(o);
            break;
          }
          case net::TxOutcome::kFailed:
            // Graceful degradation: the packet goes back to its app queue
            // by re-SUBMITting to the service (delay keeps accruing from
            // the original arrival); the scheduler will re-decide it.
            ++recovered_failures_;
            submit(p);
            break;
          case net::TxOutcome::kCancelled:
            // Link torn down — nothing left to do for this packet.
            break;
        }
      }});
}

}  // namespace etrain::system
