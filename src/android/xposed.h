// Xposed-style method hooking (Sec. V-2).
//
// The real eTrain locates each train app's heartbeat-sending method (found
// via AlarmManager/BroadcastReceiver call sites in the decompiled APK) and
// installs an Xposed after-hook that pings the heartbeat monitor whenever
// the method runs — without modifying the app. This registry reproduces
// that mechanism: app processes route their method calls through invoke(),
// and installed after-hooks observe them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"

namespace etrain::android {

/// Metadata an after-hook observes about an intercepted call.
struct MethodCall {
  std::string class_name;
  std::string method_name;
  TimePoint time = 0.0;
  /// Free-form payload, e.g. heartbeat size in bytes.
  std::int64_t arg = 0;
};

using HookId = std::uint64_t;

class XposedRegistry {
 public:
  using AfterHook = std::function<void(const MethodCall&)>;

  /// Installs an after-hook on class::method. Multiple hooks may coexist;
  /// they run in installation order.
  HookId hook_method(const std::string& class_name,
                     const std::string& method_name, AfterHook hook);

  /// Removes a hook; returns false if unknown.
  bool unhook(HookId id);

  /// Invoked by the "app process" when the (hooked or not) method runs.
  /// Runs all matching after-hooks. Returns the number of hooks that ran.
  std::size_t invoke(const MethodCall& call) const;

  std::size_t hook_count() const;

 private:
  struct Entry {
    HookId id;
    AfterHook hook;
  };
  std::map<std::pair<std::string, std::string>, std::vector<Entry>> hooks_;
  HookId next_id_ = 1;
};

}  // namespace etrain::android
