#include "android/alarm_manager.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace etrain::android {

AlarmId AlarmManager::set_exact(TimePoint when, Callback callback) {
  const AlarmId id = next_id_++;
  Alarm alarm;
  alarm.interval = 0.0;
  alarm.callback = std::move(callback);
  alarm.event = simulator_.schedule_at(when, [this, id] { fire(id); });
  alarms_.emplace(id, std::move(alarm));
  return id;
}

AlarmId AlarmManager::set_repeating(TimePoint first, Duration interval,
                                    Callback callback) {
  if (interval <= 0.0) {
    throw std::invalid_argument("AlarmManager: non-positive interval");
  }
  const AlarmId id = next_id_++;
  Alarm alarm;
  alarm.interval = interval;
  alarm.callback = std::move(callback);
  alarm.event = simulator_.schedule_at(first, [this, id] { fire(id); });
  alarms_.emplace(id, std::move(alarm));
  return id;
}

TimePoint AlarmManager::batched(TimePoint nominal, Duration window) {
  if (window <= 0.0) return nominal;
  const double buckets = std::ceil(nominal / window - 1e-9);
  return buckets * window;
}

AlarmId AlarmManager::set_inexact_repeating(TimePoint first,
                                            Duration interval,
                                            Callback callback,
                                            Duration batch_window) {
  if (interval <= 0.0 || batch_window <= 0.0) {
    throw std::invalid_argument(
        "AlarmManager: non-positive interval/batch window");
  }
  const AlarmId id = next_id_++;
  Alarm alarm;
  alarm.interval = interval;
  alarm.batch_window = batch_window;
  alarm.next_nominal = first;
  alarm.callback = std::move(callback);
  alarm.event = simulator_.schedule_at(batched(first, batch_window),
                                       [this, id] { fire(id); });
  alarms_.emplace(id, std::move(alarm));
  return id;
}

bool AlarmManager::cancel(AlarmId id) {
  const auto it = alarms_.find(id);
  if (it == alarms_.end()) return false;
  simulator_.cancel(it->second.event);
  alarms_.erase(it);
  return true;
}

void AlarmManager::fire(AlarmId id) {
  const auto it = alarms_.find(id);
  if (it == alarms_.end()) return;  // cancelled concurrently
  // Copy the callback out: for one-shot alarms the entry is erased before
  // invocation so the callback may re-arm freely.
  Callback callback = it->second.callback;
  if (it->second.interval > 0.0) {
    if (it->second.batch_window > 0.0) {
      // Inexact: advance the nominal schedule (no drift accumulation from
      // batching) and snap the actual fire to the next batch boundary.
      it->second.next_nominal += it->second.interval;
      const TimePoint when = std::max(
          batched(it->second.next_nominal, it->second.batch_window),
          simulator_.now());
      it->second.event =
          simulator_.schedule_at(when, [this, id] { fire(id); });
    } else {
      it->second.event = simulator_.schedule_after(it->second.interval,
                                                   [this, id] { fire(id); });
    }
  } else {
    alarms_.erase(it);
  }
  callback();
}

}  // namespace etrain::android
