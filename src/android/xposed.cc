#include "android/xposed.h"

#include <algorithm>

namespace etrain::android {

HookId XposedRegistry::hook_method(const std::string& class_name,
                                   const std::string& method_name,
                                   AfterHook hook) {
  const HookId id = next_id_++;
  hooks_[{class_name, method_name}].push_back(Entry{id, std::move(hook)});
  return id;
}

bool XposedRegistry::unhook(HookId id) {
  for (auto& [key, entries] : hooks_) {
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [id](const Entry& e) { return e.id == id; });
    if (it != entries.end()) {
      entries.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t XposedRegistry::invoke(const MethodCall& call) const {
  const auto it = hooks_.find({call.class_name, call.method_name});
  if (it == hooks_.end()) return 0;
  for (const Entry& entry : it->second) entry.hook(call);
  return it->second.size();
}

std::size_t XposedRegistry::hook_count() const {
  std::size_t n = 0;
  for (const auto& [key, entries] : hooks_) n += entries.size();
  return n;
}

}  // namespace etrain::android
