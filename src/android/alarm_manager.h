// Android-style AlarmManager on the simulation kernel.
//
// Train apps schedule their heartbeat daemons with AlarmManager +
// BroadcastReceiver (Sec. V-2: "the most common way train apps use to
// schedule periodic transmissions of heartbeats on Android"). This class
// reproduces the API shape eTrain's heartbeat monitor keys off.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/simulator.h"

namespace etrain::android {

using AlarmId = std::uint64_t;

class AlarmManager {
 public:
  using Callback = std::function<void()>;

  explicit AlarmManager(sim::Simulator& simulator) : simulator_(simulator) {}

  AlarmManager(const AlarmManager&) = delete;
  AlarmManager& operator=(const AlarmManager&) = delete;

  /// One-shot alarm at an absolute time (AlarmManager.setExact).
  AlarmId set_exact(TimePoint when, Callback callback);

  /// Repeating alarm: first fire at `first`, then every `interval`
  /// (AlarmManager.setRepeating). Cancel to stop.
  AlarmId set_repeating(TimePoint first, Duration interval,
                        Callback callback);

  /// Inexact repeating alarm (AlarmManager.setInexactRepeating): Android
  /// reserves the right to defer the fire to align it with other pending
  /// alarms and save wake-ups. Modeled as Android does in practice —
  /// deliveries are deferred to the next multiple of `batch_window`
  /// seconds, so alarms from independent apps fire together. Heartbeats
  /// scheduled this way cluster, truncating each other's radio tails even
  /// without eTrain (see bench_alarm_batching).
  AlarmId set_inexact_repeating(TimePoint first, Duration interval,
                                Callback callback,
                                Duration batch_window = 60.0);

  /// Cancels an alarm; pending and future fires are suppressed. Returns
  /// false for unknown/already-fired one-shot ids.
  bool cancel(AlarmId id);

  std::size_t active_alarms() const { return alarms_.size(); }

 private:
  struct Alarm {
    sim::EventId event = 0;
    Duration interval = 0.0;  ///< 0 = one-shot
    /// Inexact alarms only: fires snap up to multiples of this window.
    Duration batch_window = 0.0;
    /// Nominal (un-batched) time of the next fire, for drift-free
    /// rescheduling of inexact alarms.
    TimePoint next_nominal = 0.0;
    Callback callback;
  };

  void fire(AlarmId id);
  static TimePoint batched(TimePoint nominal, Duration window);

  sim::Simulator& simulator_;
  std::unordered_map<AlarmId, Alarm> alarms_;
  AlarmId next_id_ = 1;
};

}  // namespace etrain::android
