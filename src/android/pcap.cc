#include "android/pcap.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "common/csv.h"

namespace etrain::android {

PcapAnalyzer::PcapAnalyzer(Bytes heartbeat_size_threshold,
                           double fixed_tolerance)
    : threshold_(heartbeat_size_threshold),
      fixed_tolerance_(fixed_tolerance) {}

CycleEstimate PcapAnalyzer::analyze_flow(
    const std::string& flow, std::vector<CapturedPacket> packets) const {
  CycleEstimate estimate;
  estimate.flow = flow;

  std::sort(packets.begin(), packets.end(),
            [](const CapturedPacket& a, const CapturedPacket& b) {
              return a.time < b.time;
            });

  std::vector<TimePoint> beats;
  for (const auto& p : packets) {
    if (p.size <= threshold_) beats.push_back(p.time);
  }
  estimate.heartbeats = beats.size();
  if (beats.size() < 2) return estimate;

  std::vector<Duration> gaps;
  gaps.reserve(beats.size() - 1);
  for (std::size_t i = 1; i < beats.size(); ++i) {
    gaps.push_back(beats[i] - beats[i - 1]);
  }

  std::vector<Duration> sorted = gaps;
  std::sort(sorted.begin(), sorted.end());
  const Duration median = sorted.size() % 2 == 1
                              ? sorted[sorted.size() / 2]
                              : 0.5 * (sorted[sorted.size() / 2 - 1] +
                                       sorted[sorted.size() / 2]);
  estimate.min_cycle = sorted.front();
  estimate.max_cycle = sorted.back();
  estimate.median_cycle = median;
  estimate.fixed_cycle =
      std::all_of(gaps.begin(), gaps.end(), [&](Duration g) {
        return std::abs(g - median) <= fixed_tolerance_ * median;
      });
  return estimate;
}

std::vector<CycleEstimate> PcapAnalyzer::analyze(
    const std::vector<CapturedPacket>& capture) const {
  std::map<std::string, std::vector<CapturedPacket>> by_flow;
  for (const auto& p : capture) by_flow[p.flow].push_back(p);
  std::vector<CycleEstimate> out;
  out.reserve(by_flow.size());
  for (auto& [flow, packets] : by_flow) {
    out.push_back(analyze_flow(flow, std::move(packets)));
  }
  return out;
}

void save_capture_csv(const std::vector<CapturedPacket>& capture,
                      const std::string& path) {
  CsvWriter w(path);
  w.write_comment("packet capture (Wireshark-style export)");
  w.write_row({"time_s", "size_bytes", "flow"});
  for (const auto& p : capture) {
    w.write_row({std::to_string(p.time), std::to_string(p.size), p.flow});
  }
}

std::vector<CapturedPacket> load_capture_csv(const std::string& path) {
  const auto rows = read_csv_file(path, /*skip_header=*/true);
  std::vector<CapturedPacket> capture;
  capture.reserve(rows.size());
  for (const auto& row : rows) {
    if (row.size() < 3) {
      throw std::runtime_error("capture CSV: malformed row in " + path);
    }
    CapturedPacket p;
    p.time = std::stod(row[0]);
    p.size = std::stoll(row[1]);
    p.flow = row[2];
    capture.push_back(p);
  }
  std::sort(capture.begin(), capture.end(),
            [](const CapturedPacket& a, const CapturedPacket& b) {
              return a.time < b.time;
            });
  return capture;
}

std::vector<CapturedPacket> synthesize_capture(const apps::HeartbeatSpec& spec,
                                               Duration horizon, Rng& rng,
                                               bool with_data_traffic,
                                               Duration jitter) {
  std::vector<CapturedPacket> capture;
  for (const TimePoint t : spec.departures(0.0, horizon)) {
    CapturedPacket p;
    p.time = std::max(0.0, t + rng.uniform(-jitter, jitter));
    p.size = spec.heartbeat_bytes;
    p.flow = spec.app_name;
    capture.push_back(p);
  }
  if (with_data_traffic) {
    // Foreground use: message/picture bursts, clearly larger than any
    // heartbeat (Fig. 3 shows data does not disturb heartbeat timing).
    for (TimePoint t = rng.exponential_mean(120.0); t < horizon;
         t += rng.exponential_mean(120.0)) {
      const int burst = static_cast<int>(rng.uniform_int(1, 5));
      for (int i = 0; i < burst; ++i) {
        CapturedPacket p;
        p.time = t + 0.3 * i;
        p.size = static_cast<Bytes>(
            rng.truncated_normal(20000.0, 15000.0, 2000.0));
        p.flow = spec.app_name;
        capture.push_back(p);
      }
    }
  }
  std::sort(capture.begin(), capture.end(),
            [](const CapturedPacket& a, const CapturedPacket& b) {
              return a.time < b.time;
            });
  return capture;
}

}  // namespace etrain::android
