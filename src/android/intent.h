// Minimal Android-style Intents for inter-component messaging.
//
// eTrain's real implementation communicates with cargo apps exclusively via
// Android Broadcast (Sec. V-1: "broadcast is more efficient for one-to-many
// communications, which is the case for eTrain"). We reproduce the same
// structure: an action string plus typed extras.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace etrain::android {

class Intent {
 public:
  Intent() = default;
  explicit Intent(std::string action) : action_(std::move(action)) {}

  const std::string& action() const { return action_; }

  Intent& put(const std::string& key, std::int64_t value) {
    ints_[key] = value;
    return *this;
  }
  Intent& put(const std::string& key, double value) {
    doubles_[key] = value;
    return *this;
  }
  Intent& put(const std::string& key, std::string value) {
    strings_[key] = std::move(value);
    return *this;
  }

  std::optional<std::int64_t> get_int(const std::string& key) const {
    const auto it = ints_.find(key);
    return it == ints_.end() ? std::nullopt : std::optional(it->second);
  }
  std::optional<double> get_double(const std::string& key) const {
    const auto it = doubles_.find(key);
    return it == doubles_.end() ? std::nullopt : std::optional(it->second);
  }
  std::optional<std::string> get_string(const std::string& key) const {
    const auto it = strings_.find(key);
    return it == strings_.end() ? std::nullopt : std::optional(it->second);
  }

 private:
  std::string action_;
  std::map<std::string, std::int64_t> ints_;
  std::map<std::string, double> doubles_;
  std::map<std::string, std::string> strings_;
};

}  // namespace etrain::android
