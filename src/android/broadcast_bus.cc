#include "android/broadcast_bus.h"

#include <algorithm>
#include <stdexcept>

namespace etrain::android {

BroadcastBus::BroadcastBus(sim::Simulator& simulator,
                           Duration dispatch_latency)
    : simulator_(simulator), dispatch_latency_(dispatch_latency) {
  if (dispatch_latency < 0.0) {
    throw std::invalid_argument("BroadcastBus: negative dispatch latency");
  }
}

ReceiverId BroadcastBus::register_receiver(const std::string& action,
                                           Receiver receiver) {
  const ReceiverId id = next_id_++;
  by_action_[action].push_back(Entry{id, std::move(receiver)});
  return id;
}

bool BroadcastBus::unregister_receiver(ReceiverId id) {
  for (auto& [action, entries] : by_action_) {
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [id](const Entry& e) { return e.id == id; });
    if (it != entries.end()) {
      entries.erase(it);
      return true;
    }
  }
  return false;
}

void BroadcastBus::send_broadcast(const Intent& intent) {
  ++broadcasts_sent_;
  const auto it = by_action_.find(intent.action());
  if (it == by_action_.end()) return;
  // Snapshot receiver callbacks now; late registrations don't see this
  // broadcast, and unregistration after send still receives it (matching
  // an already-queued delivery on Android).
  for (const Entry& entry : it->second) {
    simulator_.schedule_after(
        dispatch_latency_,
        [receiver = entry.receiver, intent] { receiver(intent); });
  }
}

std::size_t BroadcastBus::receiver_count(const std::string& action) const {
  const auto it = by_action_.find(action);
  return it == by_action_.end() ? 0 : it->second.size();
}

}  // namespace etrain::android
