// Wireshark-style capture analysis (Sec. II-B methodology).
//
// The paper determines Table 1's heartbeat cycles by capturing raw traffic
// with Wireshark and analyzing the captures offline. This module reproduces
// that pipeline against synthetic captures: packets are grouped per flow,
// heartbeat candidates are separated from foreground data by size, and the
// cycle structure (fixed vs. NetEase-style growing) is inferred from the
// inter-heartbeat gaps.
#pragma once

#include <string>
#include <vector>

#include "apps/heartbeat_spec.h"
#include "common/rng.h"

namespace etrain::android {

/// One captured packet, as Wireshark would log it.
struct CapturedPacket {
  TimePoint time = 0.0;
  Bytes size = 0;
  /// Flow identifier (app's server endpoint).
  std::string flow;
};

/// Result of analyzing one flow.
struct CycleEstimate {
  std::string flow;
  std::size_t heartbeats = 0;
  /// True when the gaps are consistent with a single fixed cycle.
  bool fixed_cycle = false;
  /// For fixed cycles min == max == the cycle; for growing cycles the
  /// observed range (NetEase: 60 s .. 480 s).
  Duration min_cycle = 0.0;
  Duration max_cycle = 0.0;
  Duration median_cycle = 0.0;
};

class PcapAnalyzer {
 public:
  /// Packets at or below `heartbeat_size_threshold` bytes are heartbeat
  /// candidates; larger ones are treated as foreground data and ignored
  /// for cycle inference.
  explicit PcapAnalyzer(Bytes heartbeat_size_threshold = 1000,
                        double fixed_tolerance = 0.05);

  /// Analyzes one flow's packets (any order; sorted internally).
  CycleEstimate analyze_flow(const std::string& flow,
                             std::vector<CapturedPacket> packets) const;

  /// Splits a mixed capture by flow and analyzes each.
  std::vector<CycleEstimate> analyze(
      const std::vector<CapturedPacket>& capture) const;

 private:
  Bytes threshold_;
  double fixed_tolerance_;
};

/// Capture CSV round trip ("time_s,size_bytes,flow") so real Wireshark
/// exports (or the synthetic captures) can be stored and re-analyzed —
/// the bring-your-own-data path of the Table 1 pipeline.
void save_capture_csv(const std::vector<CapturedPacket>& capture,
                      const std::string& path);
std::vector<CapturedPacket> load_capture_csv(const std::string& path);

/// Synthesizes the capture of one app's traffic over [0, horizon):
/// heartbeats per `spec` (with small timing jitter) plus, optionally,
/// bursts of foreground data traffic (messages/pictures sent by the user,
/// as in Fig. 3's measurements).
std::vector<CapturedPacket> synthesize_capture(const apps::HeartbeatSpec& spec,
                                               Duration horizon, Rng& rng,
                                               bool with_data_traffic,
                                               Duration jitter = 0.2);

}  // namespace etrain::android
