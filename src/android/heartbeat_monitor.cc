#include "android/heartbeat_monitor.h"

#include <algorithm>
#include <stdexcept>

namespace etrain::android {

namespace {

double median_of(std::vector<Duration> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

HeartbeatMonitor::HeartbeatMonitor(std::size_t history) : history_(history) {
  if (history < 2) {
    throw std::invalid_argument("HeartbeatMonitor: history must be >= 2");
  }
}

void HeartbeatMonitor::on_heartbeat(int app, TimePoint t) {
  AppState& state = apps_[app];
  if (state.last.has_value()) {
    const Duration gap = t - *state.last;
    if (gap < -1e-9) {
      throw std::invalid_argument("HeartbeatMonitor: time moved backwards");
    }
    state.gaps.push_back(std::max(gap, 0.0));
    if (state.gaps.size() > history_) state.gaps.pop_front();
  }
  state.last = t;
}

std::size_t HeartbeatMonitor::observed_beats(int app) const {
  const auto it = apps_.find(app);
  if (it == apps_.end()) return 0;
  return it->second.gaps.size() + (it->second.last.has_value() ? 1 : 0);
}

std::optional<TimePoint> HeartbeatMonitor::last_beat(int app) const {
  const auto it = apps_.find(app);
  return it == apps_.end() ? std::nullopt : it->second.last;
}

std::optional<TimePoint> HeartbeatMonitor::most_recent_beat() const {
  std::optional<TimePoint> latest;
  for (const auto& [app, state] : apps_) {
    if (state.last.has_value() && (!latest.has_value() || *state.last > *latest)) {
      latest = state.last;
    }
  }
  return latest;
}

std::optional<Duration> HeartbeatMonitor::estimated_cycle(int app) const {
  const auto it = apps_.find(app);
  if (it == apps_.end() || it->second.gaps.empty()) return std::nullopt;
  const auto& gaps = it->second.gaps;
  const Duration last = gaps.back();

  // With a single gap, it is the only evidence.
  if (gaps.size() == 1) return last;

  // Stable cycle: recent gaps agree within 5% -> use their median (robust
  // against one delayed beat).
  const std::size_t window = std::min<std::size_t>(gaps.size(), 5);
  std::vector<Duration> recent(gaps.end() - window, gaps.end());
  const Duration med = median_of(recent);
  const bool stable = std::all_of(recent.begin(), recent.end(),
                                  [med](Duration g) {
                                    return std::abs(g - med) <= 0.05 * med;
                                  });
  if (stable) return med;

  // Jittery-but-unimodal cycle (OS alarm noise, fault-injected departure
  // jitter): deviations exceed the 5% band yet scatter symmetrically
  // around one value. Distinguish that from a real regime change via the
  // median absolute deviation: when the spread is moderate and the latest
  // gap sits within the noise cloud, the median is the cycle and the last
  // gap is just one noisy sample.
  std::vector<Duration> deviations;
  deviations.reserve(recent.size());
  for (const Duration g : recent) deviations.push_back(std::abs(g - med));
  const Duration mad = median_of(deviations);
  // 1.4826 * MAD estimates sigma for Gaussian noise; 3.5 sigma covers the
  // cloud. The 5%-of-median floor keeps a tight cluster from flagging
  // every sample as a regime change when MAD ~ 0.
  const Duration tolerance = std::max(3.5 * 1.4826 * mad, 0.05 * med);
  const bool unimodal = mad <= 0.25 * med;
  if (unimodal && std::abs(last - med) <= tolerance) return med;

  // Changing cycle (doubling discipline or app restart): the most recent
  // gap is the best predictor of the next one.
  return last;
}

std::optional<TimePoint> HeartbeatMonitor::predict_next(int app) const {
  const auto cycle = estimated_cycle(app);
  const auto last = last_beat(app);
  if (!cycle.has_value() || !last.has_value()) return std::nullopt;
  return *last + *cycle;
}

std::vector<TimePoint> HeartbeatMonitor::predict_departures(
    TimePoint from, TimePoint horizon) const {
  std::vector<TimePoint> out;
  predict_departures(from, horizon, out);
  return out;
}

void HeartbeatMonitor::predict_departures(TimePoint from, TimePoint horizon,
                                          std::vector<TimePoint>& out) const {
  out.clear();
  for (const auto& [app, state] : apps_) {
    const auto cycle = estimated_cycle(app);
    if (!cycle.has_value() || !state.last.has_value() || *cycle <= 0.0) {
      continue;
    }
    TimePoint t = *state.last;
    while (t <= from) t += *cycle;
    for (; t <= horizon; t += *cycle) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
}

bool HeartbeatMonitor::any_train_active(TimePoint now,
                                        Duration staleness) const {
  for (const auto& [app, state] : apps_) {
    if (state.last.has_value() && now - *state.last <= staleness) return true;
  }
  return false;
}

}  // namespace etrain::android
