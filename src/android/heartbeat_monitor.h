// The Heartbeat Monitor module (Sec. V-2, Fig. 5).
//
// Receives a trigger (via the Xposed hook) every time a train app sends a
// heartbeat, learns each app's cycle online, and supplies the scheduler
// with (a) "a heartbeat just departed" notifications and (b) predicted
// future departure times ("as soon as eTrain observes one heartbeat of a
// train app, it can accurately predict when the subsequent heartbeats of
// the same train app will be transmitted", Sec. III-C).
//
// Handles both cycle disciplines found in the wild: fixed cycles converge
// after two observations; NetEase-style doubling cycles are tracked by
// predicting "the last gap repeats", which is correct five times out of six
// (the cycle doubles after every 6 beats) and self-corrects after each miss.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/time.h"

namespace etrain::android {

class HeartbeatMonitor {
 public:
  /// `history`: number of recent inter-beat gaps kept per app.
  explicit HeartbeatMonitor(std::size_t history = 16);

  /// Trigger from the Xposed hook: train `app` sent a heartbeat at time t.
  /// Times per app must be non-decreasing.
  void on_heartbeat(int app, TimePoint t);

  /// Number of beats observed for an app (0 for unknown apps).
  std::size_t observed_beats(int app) const;

  /// Time of the most recent beat; nullopt before the first.
  std::optional<TimePoint> last_beat(int app) const;

  /// Most recent beat across all monitored apps; nullopt before any.
  std::optional<TimePoint> most_recent_beat() const;

  /// Current cycle estimate (the predicted gap to the next beat); nullopt
  /// until two beats have been seen.
  std::optional<Duration> estimated_cycle(int app) const;

  /// Predicted time of the app's next heartbeat; nullopt until estimable.
  std::optional<TimePoint> predict_next(int app) const;

  /// Merged predicted departures of all monitored apps in (from, horizon],
  /// sorted ascending. Apps without a cycle estimate contribute nothing.
  std::vector<TimePoint> predict_departures(TimePoint from,
                                            TimePoint horizon) const;

  /// Allocation-aware variant: clears and fills `out` with the same
  /// departures. The slotted harness calls this every faulted slot with a
  /// reused buffer, keeping its hot loop off the heap.
  void predict_departures(TimePoint from, TimePoint horizon,
                          std::vector<TimePoint>& out) const;

  /// True when some app has beaten within `staleness` seconds of `now` —
  /// used by the scheduler to stop deferring when no train app is running
  /// (Sec. V-3: "In case when no train app is running, eTrain will stop its
  /// scheduler to avoid cargo apps' indefinite waiting").
  bool any_train_active(TimePoint now, Duration staleness = 900.0) const;

 private:
  struct AppState {
    std::optional<TimePoint> last;
    std::deque<Duration> gaps;
  };

  std::size_t history_;
  std::map<int, AppState> apps_;
};

}  // namespace etrain::android
