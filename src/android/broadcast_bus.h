// Asynchronous one-to-many broadcast delivery (Android's sendBroadcast /
// BroadcastReceiver pair), running on the simulation kernel.
//
// Receivers register for an action; a broadcast is delivered to every
// matching receiver as a separate simulator event after a small dispatch
// latency, mirroring Android's asynchronous delivery semantics (a broadcast
// never runs the receivers inline with the sender).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "android/intent.h"
#include "sim/simulator.h"

namespace etrain::android {

/// Registration handle.
using ReceiverId = std::uint64_t;

class BroadcastBus {
 public:
  using Receiver = std::function<void(const Intent&)>;

  explicit BroadcastBus(sim::Simulator& simulator,
                        Duration dispatch_latency = 0.001);

  BroadcastBus(const BroadcastBus&) = delete;
  BroadcastBus& operator=(const BroadcastBus&) = delete;

  /// Registers `receiver` for broadcasts whose action equals `action`.
  ReceiverId register_receiver(const std::string& action, Receiver receiver);

  /// Removes a registration; returns false if unknown.
  bool unregister_receiver(ReceiverId id);

  /// Delivers `intent` to all receivers registered for its action, each as
  /// an independent event dispatch_latency seconds from now. Receivers
  /// registered after this call do not see the broadcast.
  void send_broadcast(const Intent& intent);

  std::size_t receiver_count(const std::string& action) const;
  std::uint64_t broadcasts_sent() const { return broadcasts_sent_; }

 private:
  struct Entry {
    ReceiverId id;
    Receiver receiver;
  };

  sim::Simulator& simulator_;
  Duration dispatch_latency_;
  std::map<std::string, std::vector<Entry>> by_action_;
  ReceiverId next_id_ = 1;
  std::uint64_t broadcasts_sent_ = 0;
};

}  // namespace etrain::android
